"""Ablation: orderings inside Clark's reduction and inside the global optimizer.

Two design choices the paper calls out are exercised here:

1. **Variable ordering in the pairwise max reduction.**  The paper (citing
   Ross 2003) orders the stage delays by increasing mean before applying
   Clark's pairwise max, to minimise the approximation error.  This ablation
   measures the mean/sigma error of the three orderings against exact
   sampling for heterogeneous stage populations.

2. **Stage processing order in the Fig. 9 global optimization.**  The paper
   processes stages in ascending order of the eq. 14 sensitivity ratio R_i.
   This ablation runs the global optimizer with ascending, descending and
   document order on the ALU-Decoder pipeline and compares the final
   area/yield.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import format_table
from repro.core.pipeline_delay import PipelineDelayModel
from repro.core.stage_delay import StageDelayDistribution
from repro.core.clark import max_of_gaussians
from repro.core.yield_model import stage_yield_budget
from repro.optimize.balance import design_balanced_pipeline
from repro.optimize.global_opt import GlobalPipelineOptimizer
from repro.optimize.lagrangian import LagrangianSizer
from repro.pipeline.builder import alu_decoder_pipeline
from repro.process.technology import default_technology
from repro.process.variation import VariationModel

from bench_utils import run_once, save_report


def clark_ordering_ablation() -> str:
    rng = np.random.default_rng(99)
    rows = []
    for case, (means, stds) in {
        "spread means, equal sigmas": (np.linspace(180e-12, 220e-12, 8), np.full(8, 8e-12)),
        "equal means, spread sigmas": (np.full(8, 200e-12), np.linspace(4e-12, 16e-12, 8)),
        "anti-correlated mean/sigma": (np.linspace(180e-12, 220e-12, 8), np.linspace(16e-12, 4e-12, 8)),
    }.items():
        samples = (rng.standard_normal((400_000, means.size)) * stds + means).max(axis=1)
        for ordering in ("increasing", "decreasing", "given"):
            result = max_of_gaussians(means, stds, ordering=ordering)
            rows.append([
                case,
                ordering,
                round(100.0 * abs(result.mean - samples.mean()) / samples.mean(), 3),
                round(100.0 * abs(result.std - samples.std()) / samples.std(), 2),
            ])
    return format_table(
        ["stage population", "ordering", "mean error (%)", "sigma error (%)"],
        rows,
        title="Ablation: variable ordering inside Clark's pairwise max",
    )


def stage_ordering_ablation() -> str:
    pipeline = alu_decoder_pipeline(width=8, n_address=4)
    sizer = LagrangianSizer(default_technology(), VariationModel.combined())
    stage_yield = stage_yield_budget(0.80, pipeline.n_stages)
    fastest = min(
        sizer.stage_distribution(stage).delay_at_yield(stage_yield)
        for stage in pipeline.stages
    )
    target_delay = 0.85 * fastest
    balanced = design_balanced_pipeline(pipeline, sizer, target_delay, 0.80)

    rows = []
    for ordering in ("ri_ascending", "ri_descending", "pipeline"):
        optimizer = GlobalPipelineOptimizer(sizer, curve_points=4, ordering=ordering)
        result = optimizer.optimize(balanced.pipeline, target_delay, 0.80)
        rows.append([
            ordering,
            " -> ".join(result.stage_order),
            round(result.after.total_area, 1),
            round(100.0 * result.after.pipeline_yield, 1),
        ])
    rows.append([
        "(balanced baseline)", "-",
        round(balanced.total_area, 1),
        round(100.0 * GlobalPipelineOptimizer(sizer).pipeline_yield(balanced.pipeline, target_delay), 1),
    ])
    return format_table(
        ["stage ordering", "processing order", "final area (um^2)", "final pipeline yield (%)"],
        rows,
        title=f"Ablation: stage ordering in the Fig. 9 flow (target {target_delay*1e12:.0f} ps, yield 80 %)",
    )


def test_ablation_clark_ordering(benchmark):
    report = run_once(benchmark, clark_ordering_ablation)
    save_report("ablation_clark_ordering", report)


def test_ablation_stage_ordering(benchmark):
    report = run_once(benchmark, stage_ordering_ablation)
    save_report("ablation_stage_ordering", report)
