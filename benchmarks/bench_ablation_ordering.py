"""Ablation: orderings inside Clark's reduction and inside the global optimizer.

Two design choices the paper calls out are exercised here:

1. **Variable ordering in the pairwise max reduction.**  The paper (citing
   Ross 2003) orders the stage delays by increasing mean before applying
   Clark's pairwise max, to minimise the approximation error.  This ablation
   measures the mean/sigma error of the three orderings against exact
   sampling for heterogeneous stage populations.

2. **Stage processing order in the Fig. 9 global optimization.**  The paper
   processes stages in ascending order of the eq. 14 sensitivity ratio R_i.
   This ablation sweeps ``design.ordering`` through the Design API on the
   ALU-Decoder pipeline and compares the final area/yield; the three sweep
   points share the session-cached balanced baseline and area--delay curves,
   so only the global optimization itself is repeated per ordering.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import format_table
from repro.api import DesignSpec, PipelineSpec, VariationSpec, run_sweep
from repro.core.clark import max_of_gaussians

from bench_utils import design_study, run_once, save_report, study_session


def clark_ordering_ablation() -> str:
    rng = np.random.default_rng(99)
    rows = []
    for case, (means, stds) in {
        "spread means, equal sigmas": (np.linspace(180e-12, 220e-12, 8), np.full(8, 8e-12)),
        "equal means, spread sigmas": (np.full(8, 200e-12), np.linspace(4e-12, 16e-12, 8)),
        "anti-correlated mean/sigma": (np.linspace(180e-12, 220e-12, 8), np.linspace(16e-12, 4e-12, 8)),
    }.items():
        samples = (rng.standard_normal((400_000, means.size)) * stds + means).max(axis=1)
        for ordering in ("increasing", "decreasing", "given"):
            result = max_of_gaussians(means, stds, ordering=ordering)
            rows.append([
                case,
                ordering,
                round(100.0 * abs(result.mean - samples.mean()) / samples.mean(), 3),
                round(100.0 * abs(result.std - samples.std()) / samples.std(), 2),
            ])
    return format_table(
        ["stage population", "ordering", "mean error (%)", "sigma error (%)"],
        rows,
        title="Ablation: variable ordering inside Clark's pairwise max",
    )


def stage_ordering_ablation() -> str:
    base = design_study(
        PipelineSpec(kind="alu_decoder", width=8, n_address=4),
        VariationSpec.combined(),
        DesignSpec(
            optimizer="global",
            sizer="lagrangian",
            yield_target=0.80,
            delay_policy="stage_min",
            delay_scale=0.85,
            curve_points=4,
        ),
    )
    result = run_sweep(
        base,
        {"design.ordering": ["ri_ascending", "ri_descending", "pipeline"]},
        session=study_session(),
    )

    rows = []
    for point in result:
        report = point.report
        rows.append([
            point.coord("design.ordering"),
            " -> ".join(report.stage_order),
            round(report.total_area, 1),
            round(100.0 * report.predicted_yield, 1),
        ])
    baseline = result[0].report.baseline
    target_delay = result[0].report.target_delay
    rows.append([
        "(balanced baseline)", "-",
        round(baseline.total_area, 1),
        round(100.0 * baseline.pipeline_yield, 1),
    ])
    return format_table(
        ["stage ordering", "processing order", "final area (um^2)", "final pipeline yield (%)"],
        rows,
        title=f"Ablation: stage ordering in the Fig. 9 flow (target {target_delay*1e12:.0f} ps, yield 80 %)",
    )


def test_ablation_clark_ordering(benchmark):
    report = run_once(benchmark, clark_ordering_ablation)
    save_report("ablation_clark_ordering", report)


def test_ablation_stage_ordering(benchmark):
    report = run_once(benchmark, stage_ordering_ablation)
    save_report("ablation_stage_ordering", report)
