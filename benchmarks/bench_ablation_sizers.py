"""Ablation: Lagrangian-relaxation sizer vs. greedy (TILOS-like) sizer.

The paper relies on the Lagrangian-relaxation statistical sizer of Choi et
al. (DAC 2004) for its low complexity.  This ablation sizes the same stages
for the same statistical targets with this repo's Lagrangian sizer and with
a classical greedy upsizing baseline, and compares achieved yield, area and
runtime.
"""

from __future__ import annotations

import time

from repro.analysis.reporting import format_table
from repro.circuit.iscas import iscas_benchmark
from repro.optimize.greedy import GreedySizer
from repro.optimize.lagrangian import LagrangianSizer
from repro.pipeline.stage import PipelineStage
from repro.process.technology import default_technology
from repro.process.variation import VariationModel

from bench_utils import run_once, save_report

STAGE_YIELD = 0.95
SPEEDUP = 0.85  # delay target as a fraction of the min-size stage delay


def sizer_ablation() -> str:
    technology = default_technology()
    variation = VariationModel.combined()
    lagrangian = LagrangianSizer(technology, variation)
    greedy = GreedySizer(technology, variation, max_moves=2500)

    rows = []
    for benchmark_name in ("c432", "c1908"):
        stage = PipelineStage(benchmark_name, iscas_benchmark(benchmark_name))
        baseline = lagrangian.stage_distribution(stage)
        target = SPEEDUP * baseline.delay_at_yield(STAGE_YIELD)
        minimum_area = stage.netlist.total_area()

        for label, sizer in (("lagrangian", lagrangian), ("greedy", greedy)):
            start = time.perf_counter()
            result = sizer.size_stage(stage, target, STAGE_YIELD, apply=False)
            elapsed = time.perf_counter() - start
            rows.append([
                benchmark_name,
                label,
                round(target * 1e12, 1),
                round(100.0 * result.achieved_yield, 1),
                "yes" if result.met_target else "no",
                round(result.area, 1),
                round(result.area / minimum_area, 3),
                round(elapsed, 2),
            ])
    return format_table(
        [
            "stage", "sizer", "target (ps)", "achieved yield (%)", "met",
            "area (um^2)", "area / min-size area", "runtime (s)",
        ],
        rows,
        title=f"Ablation: statistical sizers (stage yield target {STAGE_YIELD:.0%})",
    )


def test_ablation_sizers(benchmark):
    report = run_once(benchmark, sizer_ablation)
    save_report("ablation_sizers", report)
