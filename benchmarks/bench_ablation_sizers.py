"""Ablation: Lagrangian-relaxation sizer vs. greedy (TILOS-like) sizer.

The paper relies on the Lagrangian-relaxation statistical sizer of Choi et
al. (DAC 2004) for its low complexity.  This ablation sizes the same stages
(a c432 + c1908 ISCAS pipeline) for the same statistical targets with both
registered sizer strategies and compares achieved yield, area and runtime.

Through the Design API this is one zip-mode sweep over ``design.sizer`` (with
matching ``design.sizer_options``): the ``"stage_relative"`` delay policy
gives every stage its own target -- 0.85x its minimum-size delay at the 95 %
stage yield -- and the per-stage sizing trace of each ``DesignReport``
carries the achieved yield, area, and wall-clock seconds the table reports.
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.api import DesignSpec, PipelineSpec, VariationSpec, run_sweep

from bench_utils import design_study, run_once, save_report, study_session

STAGE_YIELD = 0.95
SPEEDUP = 0.85  # delay target as a fraction of the min-size stage delay


def sizer_ablation() -> str:
    base = design_study(
        PipelineSpec(kind="iscas", benchmarks=("c432", "c1908")),
        VariationSpec.combined(),
        DesignSpec(
            optimizer="balanced",
            sizer="lagrangian",
            yield_target=0.80,
            stage_yield=STAGE_YIELD,
            delay_policy="stage_relative",
            delay_scale=SPEEDUP,
        ),
    )
    result = run_sweep(
        base,
        {
            "design.sizer": ["lagrangian", "greedy"],
            "design.sizer_options": [{}, {"max_moves": 2500}],
        },
        mode="zip",
        session=study_session(),
    )

    rows = []
    for stage_index in range(2):
        for point in result:
            report = point.report
            entry = report.trace[stage_index]
            minimum_area = report.baseline.stage_logic_areas[stage_index]
            rows.append([
                entry.stage,
                report.sizer,
                round(entry.target_delay * 1e12, 1),
                round(100.0 * entry.achieved_yield, 1),
                "yes" if entry.met_target else "no",
                round(entry.area, 1),
                round(entry.area / minimum_area, 3),
                round(entry.seconds, 2),
            ])
    return format_table(
        [
            "stage", "sizer", "target (ps)", "achieved yield (%)", "met",
            "area (um^2)", "area / min-size area", "runtime (s)",
        ],
        rows,
        title=f"Ablation: statistical sizers (stage yield target {STAGE_YIELD:.0%})",
    )


def test_ablation_sizers(benchmark):
    report = run_once(benchmark, sizer_ablation)
    save_report("ablation_sizers", report)
