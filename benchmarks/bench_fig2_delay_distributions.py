"""Figure 2: pipeline delay distributions, Monte-Carlo vs. analytical model.

The paper overlays SPICE Monte-Carlo histograms of a 12-stage inverter-chain
pipeline (stage logic depth 10) with the distribution predicted by the
analytical model, for three variation regimes:

  (a) only random intra-die variation  -> independent stage delays,
  (b) only inter-die variation         -> perfectly correlated stage delays,
  (c) inter + intra (random and spatially correlated) -> partial correlation.

This benchmark regenerates the three panels as data: for each regime it runs
the Monte-Carlo engine, fits the per-stage distributions, feeds them (plus
the measured correlations) to the pipeline model, and reports the Monte-Carlo
vs. analytical mean/sigma together with a coarse histogram overlay.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.histogram import overlay_series
from repro.analysis.reporting import format_series, format_table
from repro.core.pipeline_delay import PipelineDelayModel
from repro.montecarlo.engine import MonteCarloEngine
from repro.pipeline.builder import inverter_chain_pipeline
from repro.process.variation import VariationModel

from bench_utils import run_once, save_report

N_STAGES = 12
LOGIC_DEPTH = 10
N_SAMPLES = 4000

REGIMES = {
    "fig2a_intra_only": VariationModel.intra_random_only(),
    "fig2b_inter_only": VariationModel.inter_only(0.040),
    "fig2c_inter_plus_intra": VariationModel.combined(
        sigma_vth_inter=0.020, sigma_vth_random=0.025, sigma_vth_systematic=0.012
    ),
}


def reproduce_panel(name: str, variation: VariationModel) -> str:
    pipeline = inverter_chain_pipeline(N_STAGES, LOGIC_DEPTH)
    engine = MonteCarloEngine(variation, n_samples=N_SAMPLES, seed=2005)
    mc = engine.run_pipeline(pipeline)
    pipeline_mc = mc.pipeline_result()

    model = PipelineDelayModel(mc.stage_distributions(), mc.correlation_matrix())
    estimate = model.estimate()

    summary = format_table(
        ["quantity", "Monte-Carlo", "analytical", "error (%)"],
        [
            [
                "mean (ps)",
                pipeline_mc.mean * 1e12,
                estimate.mean * 1e12,
                100.0 * abs(estimate.mean - pipeline_mc.mean) / pipeline_mc.mean,
            ],
            [
                "sigma (ps)",
                pipeline_mc.std * 1e12,
                estimate.std * 1e12,
                100.0 * abs(estimate.std - pipeline_mc.std) / pipeline_mc.std,
            ],
            [
                "mean stage correlation",
                float(np.mean(mc.correlation_matrix()[np.triu_indices(N_STAGES, 1)])),
                "-",
                "-",
            ],
        ],
        title=f"{name}: {N_STAGES}-stage inverter-chain pipeline, logic depth {LOGIC_DEPTH}",
    )

    overlay = overlay_series(mc.pipeline_samples, estimate.mean, estimate.std, bins=18)
    histogram = format_series(
        "delay (ps)",
        list(np.round(overlay["delay"] * 1e12, 1)),
        {
            "monte_carlo_density": list(np.round(overlay["monte_carlo"] * 1e-12, 4)),
            "analytical_density": list(np.round(overlay["analytical"] * 1e-12, 4)),
        },
        title="Histogram overlay (densities per ps)",
    )
    return summary + "\n\n" + histogram


def test_fig2a_intra_only(benchmark):
    report = run_once(
        benchmark, lambda: reproduce_panel("fig2a_intra_only", REGIMES["fig2a_intra_only"])
    )
    save_report("fig2a_intra_only", report)


def test_fig2b_inter_only(benchmark):
    report = run_once(
        benchmark, lambda: reproduce_panel("fig2b_inter_only", REGIMES["fig2b_inter_only"])
    )
    save_report("fig2b_inter_only", report)


def test_fig2c_inter_plus_intra(benchmark):
    report = run_once(
        benchmark,
        lambda: reproduce_panel("fig2c_inter_plus_intra", REGIMES["fig2c_inter_plus_intra"]),
    )
    save_report("fig2c_inter_plus_intra", report)
