"""Figure 2: pipeline delay distributions, Monte-Carlo vs. analytical model.

The paper overlays SPICE Monte-Carlo histograms of a 12-stage inverter-chain
pipeline (stage logic depth 10) with the distribution predicted by the
analytical model, for three variation regimes:

  (a) only random intra-die variation  -> independent stage delays,
  (b) only inter-die variation         -> perfectly correlated stage delays,
  (c) inter + intra (random and spatially correlated) -> partial correlation.

This benchmark regenerates the three panels as data through the Study API:
for each regime one study is characterised once, and the ``montecarlo`` /
``analytic`` backend report pair provides the Monte-Carlo vs. model
mean/sigma together with a coarse histogram overlay.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.histogram import overlay_series
from repro.analysis.reporting import format_series, format_table
from repro.api import VariationSpec

from bench_utils import characterize, inverter_chain_spec, run_once, save_report

N_STAGES = 12
LOGIC_DEPTH = 10
N_SAMPLES = 4000

REGIMES = {
    "fig2a_intra_only": VariationSpec.intra_random_only(),
    "fig2b_inter_only": VariationSpec.inter_only(0.040),
    "fig2c_inter_plus_intra": VariationSpec.combined(
        sigma_vth_inter=0.020, sigma_vth_random=0.025, sigma_vth_systematic=0.012
    ),
}


def reproduce_panel(name: str, variation: VariationSpec) -> str:
    mc, model = characterize(
        inverter_chain_spec(N_STAGES, LOGIC_DEPTH), variation, N_SAMPLES, seed=2005
    )

    summary = format_table(
        ["quantity", "Monte-Carlo", "analytical", "error (%)"],
        [
            [
                "mean (ps)",
                mc.pipeline_mean * 1e12,
                model.pipeline_mean * 1e12,
                100.0 * abs(model.pipeline_mean - mc.pipeline_mean) / mc.pipeline_mean,
            ],
            [
                "sigma (ps)",
                mc.pipeline_std * 1e12,
                model.pipeline_std * 1e12,
                100.0 * abs(model.pipeline_std - mc.pipeline_std) / mc.pipeline_std,
            ],
            [
                "mean stage correlation",
                mc.mean_stage_correlation(),
                "-",
                "-",
            ],
        ],
        title=f"{name}: {N_STAGES}-stage inverter-chain pipeline, logic depth {LOGIC_DEPTH}",
    )

    overlay = overlay_series(
        mc.pipeline_samples, model.pipeline_mean, model.pipeline_std, bins=18
    )
    histogram = format_series(
        "delay (ps)",
        list(np.round(overlay["delay"] * 1e12, 1)),
        {
            "monte_carlo_density": list(np.round(overlay["monte_carlo"] * 1e-12, 4)),
            "analytical_density": list(np.round(overlay["analytical"] * 1e-12, 4)),
        },
        title="Histogram overlay (densities per ps)",
    )
    return summary + "\n\n" + histogram


def test_fig2a_intra_only(benchmark):
    report = run_once(
        benchmark, lambda: reproduce_panel("fig2a_intra_only", REGIMES["fig2a_intra_only"])
    )
    save_report("fig2a_intra_only", report)


def test_fig2b_inter_only(benchmark):
    report = run_once(
        benchmark, lambda: reproduce_panel("fig2b_inter_only", REGIMES["fig2b_inter_only"])
    )
    save_report("fig2b_inter_only", report)


def test_fig2c_inter_plus_intra(benchmark):
    report = run_once(
        benchmark,
        lambda: reproduce_panel("fig2c_inter_plus_intra", REGIMES["fig2c_inter_plus_intra"]),
    )
    save_report("fig2c_inter_plus_intra", report)
