"""Figure 3: trend of the modeling error with stage count and correlation.

The paper reports the percent error of the analytically estimated mean and
sigma of the pipeline delay (Clark's method) against Monte-Carlo, as a
function of (a) the number of pipeline stages and (b) the correlation
coefficient between stage delays, and observes that the sigma error grows in
both cases while the mean error stays tiny (< 0.2 %).

Here the comparison isolates the approximation itself: stage delays are
sampled from the exact multivariate Gaussian the model assumes, so the error
measured is purely Clark's, exactly as in the paper's Fig. 3.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import format_series
from repro.core.pipeline_delay import PipelineDelayModel
from repro.core.stage_delay import StageDelayDistribution

from bench_utils import run_once, save_report

STAGE_MEAN = 200e-12
STAGE_SIGMA = 8e-12
N_SAMPLES = 400_000


def error_vs_stage_count() -> str:
    counts = [2, 5, 10, 15, 20, 25, 30]
    mean_errors = []
    sigma_errors = []
    rng = np.random.default_rng(3)
    for count in counts:
        stages = [StageDelayDistribution(STAGE_MEAN, STAGE_SIGMA)] * count
        model = PipelineDelayModel(stages)
        estimate = model.estimate()
        samples = model.sample(N_SAMPLES, rng)
        mean_errors.append(100.0 * abs(estimate.mean - samples.mean()) / samples.mean())
        sigma_errors.append(100.0 * abs(estimate.std - samples.std()) / samples.std())
    return format_series(
        "number of stages",
        counts,
        {
            "mean error (%)": list(np.round(mean_errors, 3)),
            "sigma error (%)": list(np.round(sigma_errors, 2)),
        },
        title="Fig. 3(a): modeling error vs. number of stages (independent stages)",
    )


def error_vs_correlation() -> str:
    rhos = [0.0, 0.2, 0.4, 0.6, 0.8]
    n_stages = 10
    mean_errors = []
    sigma_errors = []
    rng = np.random.default_rng(4)
    for rho in rhos:
        stages = [StageDelayDistribution(STAGE_MEAN, STAGE_SIGMA)] * n_stages
        model = PipelineDelayModel.with_uniform_correlation(stages, rho)
        estimate = model.estimate()
        samples = model.sample(N_SAMPLES, rng)
        mean_errors.append(100.0 * abs(estimate.mean - samples.mean()) / samples.mean())
        sigma_errors.append(100.0 * abs(estimate.std - samples.std()) / samples.std())
    return format_series(
        "correlation coefficient",
        rhos,
        {
            "mean error (%)": list(np.round(mean_errors, 3)),
            "sigma error (%)": list(np.round(sigma_errors, 2)),
        },
        title=f"Fig. 3(b): modeling error vs. stage correlation ({n_stages} stages)",
    )


def test_fig3a_error_vs_stage_count(benchmark):
    report = run_once(benchmark, error_vs_stage_count)
    save_report("fig3a_error_vs_stages", report)


def test_fig3b_error_vs_correlation(benchmark):
    report = run_once(benchmark, error_vs_correlation)
    save_report("fig3b_error_vs_correlation", report)
