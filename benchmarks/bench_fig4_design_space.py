"""Figure 4: permissible (mu, sigma) design space for a target yield.

The paper's Fig. 4 plots, in the per-stage (mu, sigma) plane:

* the relaxed upper bound (eq. 11),
* equality bounds (eq. 12) for two stage counts n1 < n2,
* realizable lower / upper curves from the inverter-chain model (eq. 13),
* the minimum-mu / minimum-sigma corner from the minimum logic depth,

and shades the resulting realizable region.  This benchmark regenerates the
bound curves as data series and reports the fraction of the (mu, sigma) grid
that is feasible and realizable.  The gate-level characteristics feeding
eq. 13 are measured from the Monte-Carlo engine (minimum-size and
maximum-size inverters).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import format_series, format_table
from repro.circuit.generators import inverter_chain
from repro.core.design_space import DesignSpace, GateDelayCharacteristics
from repro.montecarlo.engine import MonteCarloEngine
from repro.process.variation import VariationModel

from bench_utils import run_once, save_report

TARGET_DELAY = 200e-12
TARGET_YIELD = 0.9
STAGE_COUNTS = (4, 10)


def measure_gate_characteristics() -> GateDelayCharacteristics:
    variation = VariationModel.combined()
    engine = MonteCarloEngine(variation, n_samples=3000, seed=7)
    minimum = engine.run_netlist(inverter_chain(1, size=1.0))
    maximum = engine.run_netlist(inverter_chain(1, size=8.0, name="inv_big"))
    return GateDelayCharacteristics(
        mu_min=minimum.mean,
        sigma_min=minimum.std,
        mu_max=maximum.mean,
        sigma_max=maximum.std,
    )


def reproduce_fig4() -> str:
    gates = measure_gate_characteristics()
    space = DesignSpace(TARGET_DELAY, TARGET_YIELD)

    sigmas = np.linspace(0.0, 40e-12, 9)
    series = {
        "relaxed bound mu_max (ps)": np.round(
            np.asarray(space.relaxed_upper_bound(sigmas)) * 1e12, 1
        ),
    }
    for count in STAGE_COUNTS:
        series[f"equality bound mu_max (ps), N={count}"] = np.round(
            np.asarray(space.equality_bound(sigmas, count)) * 1e12, 1
        )
    bounds = format_series(
        "sigma (ps)",
        list(np.round(sigmas * 1e12, 1)),
        {name: list(values) for name, values in series.items()},
        title=(
            f"Fig. 4 bounds: target delay {TARGET_DELAY*1e12:.0f} ps, "
            f"target yield {TARGET_YIELD:.0%}"
        ),
    )

    mus = np.linspace(20e-12, 200e-12, 10)
    lower, upper = space.realizable_bounds(mus, gates)
    realizable = format_series(
        "mu (ps)",
        list(np.round(mus * 1e12, 1)),
        {
            "realizable sigma lower (ps)": list(np.round(np.asarray(lower) * 1e12, 2)),
            "realizable sigma upper (ps)": list(np.round(np.asarray(upper) * 1e12, 2)),
        },
        title="Realizable band from the inverter-chain model (eq. 13)",
    )

    region = space.region(n_stages=STAGE_COUNTS[0], gates=gates, min_logic_depth=4)
    min_mu, min_sigma = space.minimum_realizable_point(gates, min_logic_depth=4)
    summary = format_table(
        ["quantity", "value"],
        [
            ["gate mu_min (ps)", round(gates.mu_min * 1e12, 2)],
            ["gate sigma_min (ps)", round(gates.sigma_min * 1e12, 2)],
            ["gate mu_max (ps)", round(gates.mu_max * 1e12, 2)],
            ["gate sigma_max (ps)", round(gates.sigma_max * 1e12, 2)],
            ["minimum-depth corner mu (ps)", round(min_mu * 1e12, 1)],
            ["minimum-depth corner sigma (ps)", round(min_sigma * 1e12, 2)],
            ["feasible fraction of grid", round(region.feasible_fraction, 3)],
            [
                "feasible AND realizable fraction",
                round(float(region.realizable_and_feasible.mean()), 3),
            ],
        ],
        title="Design-space region summary",
    )
    return bounds + "\n\n" + realizable + "\n\n" + summary


def test_fig4_design_space(benchmark):
    report = run_once(benchmark, reproduce_fig4)
    save_report("fig4_design_space", report)
