"""Figure 5: variability vs. logic depth, stage count, and their product.

Three panels (paper section 3.1):

  (a) normalised sigma/mu of a *stage* vs. its logic depth, for increasing
      inter-die strength -- the cancellation effect weakens as correlated
      variation grows,
  (b) normalised sigma/mu of the *pipeline* delay vs. the number of stages,
      for cross-stage correlations 0 / 0.2 / 0.5 -- the max-function effect
      weakens as correlation grows,
  (c) sigma/mu of the pipeline delay when N_S x N_L = 120 is held constant,
      for inter-die sigma 0 / 20 / 40 mV -- the crossover between the
      intra-dominated regime (more stages hurt) and the inter-dominated
      regime (more stages help).

Panels (a) and (c) are scenario sweeps of Monte-Carlo studies over
inverter-chain pipelines (the paper's workload), run through the Study API's
sweep runner with a fixed per-point seed so every point matches a standalone
run; panel (b) uses the analytical pipeline model directly, as the paper
does.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import format_series
from repro.api import ScenarioSweep, StudySpec, VariationSpec
from repro.core.stage_delay import StageDelayDistribution
from repro.core.variability import normalized_series, pipeline_variability_vs_stages

from bench_utils import (
    inverter_chain_spec,
    run_once,
    save_report,
    study_session,
    study_spec,
)

N_SAMPLES = 3000

INTER_SWEEP = {
    "intra only": VariationSpec.combined(sigma_vth_inter=0.0),
    "inter 20mV + intra": VariationSpec.combined(sigma_vth_inter=0.020),
    "inter 40mV + intra": VariationSpec.combined(sigma_vth_inter=0.040),
    "inter 40mV only": VariationSpec.inter_only(0.040),
}


def _sweep_reports(base: StudySpec, axes: dict) -> list:
    """Zip-sweep a study, fixed seed per point, on the shared session."""
    sweep = ScenarioSweep(base, axes, mode="zip", seed_policy="fixed")
    return sweep.run(session=study_session()).reports()


def fig5a_stage_variability() -> str:
    depths = [5, 10, 20, 40]
    series = {}
    for label, variation in INTER_SWEEP.items():
        base = study_spec(
            inverter_chain_spec(1, depths[0]), variation, N_SAMPLES, seed=51
        )
        reports = _sweep_reports(base, {"pipeline.logic_depth": depths})
        values = [report.stage_variabilities()[0] for report in reports]
        series[label] = list(np.round(normalized_series(np.array(values)), 3))
    return format_series(
        "stage logic depth",
        depths,
        series,
        title="Fig. 5(a): normalised stage sigma/mu vs. logic depth",
    )


def fig5b_pipeline_variability_vs_stages() -> str:
    counts = [4, 8, 12, 16, 24, 32, 40]
    stage = StageDelayDistribution(200e-12, 8e-12)
    series = {
        f"correlation {rho}": list(
            np.round(
                normalized_series(pipeline_variability_vs_stages(stage, counts, rho)), 3
            )
        )
        for rho in (0.0, 0.2, 0.5)
    }
    return format_series(
        "number of stages",
        counts,
        series,
        title="Fig. 5(b): normalised pipeline sigma/mu vs. number of stages",
    )


def fig5c_fixed_total_depth() -> str:
    total_depth = 120
    counts = [4, 6, 8, 12, 24]
    sweeps = {
        "sigmaVth_inter = 0mV": VariationSpec.combined(sigma_vth_inter=0.0),
        "sigmaVth_inter = 20mV": VariationSpec.combined(sigma_vth_inter=0.020),
        "sigmaVth_inter = 40mV": VariationSpec.combined(sigma_vth_inter=0.040),
    }
    series = {}
    for label, variation in sweeps.items():
        base = study_spec(
            inverter_chain_spec(counts[0], total_depth // counts[0]),
            variation,
            N_SAMPLES,
            seed=53,
        )
        reports = _sweep_reports(
            base,
            {
                "pipeline.n_stages": counts,
                "pipeline.logic_depth": [total_depth // count for count in counts],
            },
        )
        values = [report.variability for report in reports]
        series[label] = list(np.round(np.array(values), 4))
    return format_series(
        "number of stages (N_S, with N_S x N_L = 120)",
        counts,
        series,
        title="Fig. 5(c): pipeline sigma/mu at constant total logic depth",
    )


def test_fig5a_stage_variability_vs_logic_depth(benchmark):
    report = run_once(benchmark, fig5a_stage_variability)
    save_report("fig5a_stage_variability", report)


def test_fig5b_pipeline_variability_vs_stage_count(benchmark):
    report = run_once(benchmark, fig5b_pipeline_variability_vs_stages)
    save_report("fig5b_pipeline_variability", report)


def test_fig5c_fixed_total_logic_depth(benchmark):
    report = run_once(benchmark, fig5c_fixed_total_depth)
    save_report("fig5c_fixed_total_depth", report)
