"""Figure 7: effect of deliberate stage-delay imbalance at constant area.

The paper's experiment (section 3.2, Figs. 6-8): a 3-stage ALU / Decoder /
ALU pipeline is first balanced -- every stage independently optimised for the
same delay target with a per-stage yield budget of (0.80)^(1/3) = 0.9283 --
and then imbalance is introduced by moving area between stages at constant
total area, following the eq. 14 heuristic ("best") or its inverse ("worst").

  Fig. 7(a): the unbalanced design's delay distribution shifts to a lower
             mean (with slightly larger spread) than the balanced one.
  Fig. 7(b): achieved yield vs. target yield for balanced / best-unbalanced /
             worst-unbalanced at (approximately) equal area -- the heuristic
             imbalance wins, the inverted one loses.

All three designs are verified with the Monte-Carlo engine.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import format_table
from repro.core.yield_model import stage_yield_budget
from repro.montecarlo.engine import MonteCarloEngine
from repro.optimize.area_delay import characterize_stage
from repro.optimize.balance import design_balanced_pipeline
from repro.optimize.lagrangian import LagrangianSizer
from repro.optimize.redistribute import redistribute_area
from repro.pipeline.builder import alu_decoder_pipeline
from repro.process.technology import default_technology
from repro.process.variation import VariationModel

from bench_utils import run_once, save_report

PIPELINE_YIELD_TARGET = 0.80
TARGET_YIELD_SWEEP = (0.70, 0.75, 0.80)
FRACTION = 0.10
N_SAMPLES = 3000


def reproduce_fig7() -> str:
    pipeline = alu_decoder_pipeline(width=8, n_address=4)
    variation = VariationModel.combined()
    sizer = LagrangianSizer(default_technology(), variation)
    stage_yield = stage_yield_budget(PIPELINE_YIELD_TARGET, pipeline.n_stages)

    fastest = min(
        sizer.stage_distribution(stage).delay_at_yield(stage_yield)
        for stage in pipeline.stages
    )
    target_delay = 0.85 * fastest

    balanced = design_balanced_pipeline(pipeline, sizer, target_delay, PIPELINE_YIELD_TARGET)
    curves = {
        stage.name: characterize_stage(stage, sizer, stage_yield, n_points=5)
        for stage in balanced.pipeline.stages
    }
    best = redistribute_area(
        balanced.pipeline, curves, sizer, target_delay, stage_yield,
        fraction=FRACTION, mode="best",
    )
    worst = redistribute_area(
        balanced.pipeline, curves, sizer, target_delay, stage_yield,
        fraction=FRACTION, mode="worst",
    )

    engine = MonteCarloEngine(variation, n_samples=N_SAMPLES, seed=77)
    designs = {
        "balanced": balanced.pipeline,
        "unbalanced (best, eq.14)": best.pipeline,
        "unbalanced (worst, inverted)": worst.pipeline,
    }
    monte_carlo = {name: engine.run_pipeline(design) for name, design in designs.items()}

    # ------------------------------------------------------------------
    # Fig. 7(a): delay distribution summary
    # ------------------------------------------------------------------
    distribution_rows = []
    for name, design in designs.items():
        result = monte_carlo[name].pipeline_result()
        distribution_rows.append([
            name,
            round(design.total_area(), 1),
            round(result.mean * 1e12, 1),
            round(result.std * 1e12, 2),
            round(100.0 * monte_carlo[name].yield_at(target_delay), 1),
        ])
    panel_a = format_table(
        ["design", "total area (um^2)", "MC mean (ps)", "MC sigma (ps)",
         f"MC yield @ {target_delay*1e12:.1f} ps (%)"],
        distribution_rows,
        title="Fig. 7(a): pipeline delay distribution, balanced vs. unbalanced (constant area)",
    )

    # ------------------------------------------------------------------
    # Fig. 7(b): achieved yield vs. target yield
    # ------------------------------------------------------------------
    yield_rows = []
    for target_yield in TARGET_YIELD_SWEEP:
        # Each target yield corresponds to the clock period the *balanced*
        # design would need for that yield; all designs are evaluated at it.
        period = monte_carlo["balanced"].pipeline_result().delay_at_yield(target_yield)
        yield_rows.append([
            round(100.0 * target_yield, 0),
            round(period * 1e12, 1),
            *[
                round(100.0 * monte_carlo[name].yield_at(period), 1)
                for name in designs
            ],
        ])
    panel_b = format_table(
        ["target yield (%)", "clock period (ps)",
         "balanced (%)", "unbalanced best (%)", "unbalanced worst (%)"],
        yield_rows,
        title="Fig. 7(b): achieved yield at (approximately) constant area",
    )

    roles = format_table(
        ["quantity", "value"],
        [
            ["area moved (fraction of donor logic)", FRACTION],
            ["donor stages (best mode)", ", ".join(best.donor_stages)],
            ["receiver stages (best mode)", ", ".join(best.receiver_stages)],
            ["balanced per-stage yield budget", round(stage_yield, 4)],
            ["pipeline delay target (ps)", round(target_delay * 1e12, 1)],
        ],
        title="Experiment setup",
    )
    return roles + "\n\n" + panel_a + "\n\n" + panel_b


def test_fig7_balanced_vs_unbalanced(benchmark):
    report = run_once(benchmark, reproduce_fig7)
    save_report("fig7_unbalancing", report)
