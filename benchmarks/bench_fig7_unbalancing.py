"""Figure 7: effect of deliberate stage-delay imbalance at constant area.

The paper's experiment (section 3.2, Figs. 6-8): a 3-stage ALU / Decoder /
ALU pipeline is first balanced -- every stage independently optimised for the
same delay target with a per-stage yield budget of (0.80)^(1/3) = 0.9283 --
and then imbalance is introduced by moving area between stages at constant
total area, following the eq. 14 heuristic ("best") or its inverse ("worst").

  Fig. 7(a): the unbalanced design's delay distribution shifts to a lower
             mean (with slightly larger spread) than the balanced one.
  Fig. 7(b): achieved yield vs. target yield for balanced / best-unbalanced /
             worst-unbalanced at (approximately) equal area -- the heuristic
             imbalance wins, the inverted one loses.

Through the Design API this is three ``DesignStudySpec``s on one session --
``balanced`` plus ``redistribute`` in both modes -- so the balanced baseline
is sized once and the per-stage area--delay curves are characterised once
and shared between the two redistribution modes.  All three designs carry a
Monte-Carlo validation block.
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.api import DesignSpec, PipelineSpec, VariationSpec

from bench_utils import design_study, run_design, run_once, save_report

PIPELINE_YIELD_TARGET = 0.80
TARGET_YIELD_SWEEP = (0.70, 0.75, 0.80)
FRACTION = 0.10
N_SAMPLES = 3000


def reproduce_fig7() -> str:
    pipeline = PipelineSpec(kind="alu_decoder", width=8, n_address=4)
    variation = VariationSpec.combined()
    design_knobs = dict(
        sizer="lagrangian",
        yield_target=PIPELINE_YIELD_TARGET,
        delay_policy="stage_min",
        delay_scale=0.85,
        curve_points=5,
    )

    def spec(optimizer: str, **knobs):
        return design_study(
            pipeline,
            variation,
            DesignSpec(optimizer=optimizer, **design_knobs, **knobs),
            n_samples=N_SAMPLES,
            seed=77,
        )

    reports = {
        "balanced": run_design(spec("balanced")),
        "unbalanced (best, eq.14)": run_design(
            spec("redistribute", fraction=FRACTION, mode="best")
        ),
        "unbalanced (worst, inverted)": run_design(
            spec("redistribute", fraction=FRACTION, mode="worst")
        ),
    }
    balanced = reports["balanced"]
    best = reports["unbalanced (best, eq.14)"]
    target_delay = balanced.target_delay
    stage_yield = balanced.stage_yield_target

    # ------------------------------------------------------------------
    # Fig. 7(a): delay distribution summary
    # ------------------------------------------------------------------
    distribution_rows = []
    for name, report in reports.items():
        distribution_rows.append([
            name,
            round(report.total_area, 1),
            round(report.validation.pipeline_mean * 1e12, 1),
            round(report.validation.pipeline_std * 1e12, 2),
            round(100.0 * report.validation.yield_at(target_delay), 1),
        ])
    panel_a = format_table(
        ["design", "total area (um^2)", "MC mean (ps)", "MC sigma (ps)",
         f"MC yield @ {target_delay*1e12:.1f} ps (%)"],
        distribution_rows,
        title="Fig. 7(a): pipeline delay distribution, balanced vs. unbalanced (constant area)",
    )

    # ------------------------------------------------------------------
    # Fig. 7(b): achieved yield vs. target yield
    # ------------------------------------------------------------------
    yield_rows = []
    for target_yield in TARGET_YIELD_SWEEP:
        # Each target yield corresponds to the clock period the *balanced*
        # design would need for that yield; all designs are evaluated at it.
        period = balanced.validation.delay_at_yield(target_yield)
        yield_rows.append([
            round(100.0 * target_yield, 0),
            round(period * 1e12, 1),
            *[
                round(100.0 * report.validation.yield_at(period), 1)
                for report in reports.values()
            ],
        ])
    panel_b = format_table(
        ["target yield (%)", "clock period (ps)",
         "balanced (%)", "unbalanced best (%)", "unbalanced worst (%)"],
        yield_rows,
        title="Fig. 7(b): achieved yield at (approximately) constant area",
    )

    roles = format_table(
        ["quantity", "value"],
        [
            ["area moved (fraction of donor logic)", FRACTION],
            ["donor stages (best mode)", ", ".join(best.donor_stages)],
            ["receiver stages (best mode)", ", ".join(best.receiver_stages)],
            ["balanced per-stage yield budget", round(stage_yield, 4)],
            ["pipeline delay target (ps)", round(target_delay * 1e12, 1)],
        ],
        title="Experiment setup",
    )
    return roles + "\n\n" + panel_a + "\n\n" + panel_b


def test_fig7_balanced_vs_unbalanced(benchmark):
    report = run_once(benchmark, reproduce_fig7)
    save_report("fig7_unbalancing", report)
