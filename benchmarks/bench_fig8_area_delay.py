"""Figure 8: area-vs-delay curves of the three ALU-Decoder pipeline stages.

The paper characterises the area-vs-delay trade-off of each stage of the
3-stage ALU / Decoder / ALU pipeline and uses the local slopes (eq. 14
sensitivity ratio R_i) to decide which stages donate area and which receive
it.  This benchmark regenerates the three curves with the statistical sizer
and reports the R_i values evaluated at the Fig. 7 operating point.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import format_series, format_table
from repro.core.yield_model import stage_yield_budget
from repro.optimize.area_delay import characterize_stage
from repro.optimize.lagrangian import LagrangianSizer
from repro.pipeline.builder import alu_decoder_pipeline
from repro.process.technology import default_technology
from repro.process.variation import VariationModel

from bench_utils import run_once, save_report

PIPELINE_YIELD_TARGET = 0.80
CURVE_POINTS = 6


def reproduce_fig8() -> str:
    pipeline = alu_decoder_pipeline(width=8, n_address=4)
    sizer = LagrangianSizer(default_technology(), VariationModel.combined())
    stage_yield = stage_yield_budget(PIPELINE_YIELD_TARGET, pipeline.n_stages)

    # The Fig. 7 operating point: every stage must reach the pipeline target,
    # which sits just below the fastest stage's minimum-size delay.
    fastest = min(
        sizer.stage_distribution(stage).delay_at_yield(stage_yield)
        for stage in pipeline.stages
    )
    target_delay = 0.85 * fastest

    sections = []
    ratio_rows = []
    for stage in pipeline.stages:
        curve = characterize_stage(stage, sizer, stage_yield, n_points=CURVE_POINTS)
        normalised_delay = curve.delays() / target_delay
        sections.append(
            format_series(
                "normalised delay (vs. pipeline target)",
                list(np.round(normalised_delay, 3)),
                {
                    "area (um^2)": list(np.round(curve.areas(), 1)),
                    "delay (ps)": list(np.round(curve.delays() * 1e12, 1)),
                },
                title=f"Area vs. delay: stage {stage.name}",
            )
        )
        ratio_rows.append(
            [stage.name, round(curve.sensitivity_ratio(target_delay), 2),
             "shrink (donor)" if curve.sensitivity_ratio(target_delay) > 1.0 else "grow (receiver)"]
        )
    ratios = format_table(
        ["stage", "R_i at operating point", "eq. 14 action"],
        ratio_rows,
        title=f"Eq. 14 sensitivity ratios at target delay {target_delay*1e12:.1f} ps",
    )
    return "\n\n".join(sections) + "\n\n" + ratios


def test_fig8_area_delay_curves(benchmark):
    report = run_once(benchmark, reproduce_fig8)
    save_report("fig8_area_delay_curves", report)
