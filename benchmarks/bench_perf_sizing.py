"""Micro-benchmark: optimizer hot paths through the Design API.

Times the statistical sizers on ISCAS stages, the incremental-STA sizer
inner loop against full per-move recomputation on a 20k-gate generated
block, and the Design API's cached design flow (balanced baseline reuse
across optimizers, per-(stage, sizer) area--delay curve reuse, memoized
design reports), and writes the timings to
``benchmarks/results/perf_sizing.json`` so optimizer hot-path numbers join
the performance trajectory started by ``bench_perf_timing.py``.

Run directly::

    PYTHONPATH=src python benchmarks/bench_perf_sizing.py

or through pytest (the assertions enforce the caching floors)::

    PYTHONPATH=src python -m pytest benchmarks/bench_perf_sizing.py -q
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from bench_utils import timed_seconds

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

STAGE_YIELD = 0.95
SPEEDUP = 0.85

#: The large generated block for the incremental-STA sizer floor.
LARGE_GATES = 20_000
LARGE_DEPTH = 48
#: Sizer options sized so the full-recompute baseline stays affordable in
#: CI while still iterating enough for the per-move cost to dominate.
LARGE_SIZER_RUNS = (
    ("lagrangian", {"max_outer": 40, "sweeps_per_outer": 1, "sigma_refresh": 1000}),
    ("greedy", {"max_moves": 150, "sigma_refresh": 1000}),
)


def run_benchmark() -> dict:
    from repro.api import (
        AnalysisSpec,
        DesignSpec,
        DesignStudySpec,
        PipelineSpec,
        Session,
        VariationSpec,
    )
    from repro.circuit.iscas import iscas_benchmark
    from repro.optimize.sizers import make_sizer
    from repro.pipeline.stage import PipelineStage
    from repro.process.technology import default_technology
    from repro.process.variation import VariationModel

    technology = default_technology()
    variation = VariationModel.combined()

    report: dict = {"stage_yield": STAGE_YIELD, "sizers": {}, "design_api": {}}

    # ------------------------------------------------------------------
    # Raw sizer hot path: one statistical sizing run per (stage, sizer).
    # ------------------------------------------------------------------
    for sizer_name, options in (
        ("lagrangian", {"max_outer": 30}),
        ("greedy", {"max_moves": 2500}),
    ):
        sizer = make_sizer(sizer_name, technology, variation, **options)
        stages = {}
        for benchmark_name in ("c432", "c1908"):
            stage = PipelineStage(benchmark_name, iscas_benchmark(benchmark_name))
            target = SPEEDUP * sizer.stage_distribution(stage).delay_at_yield(
                STAGE_YIELD
            )
            seconds, result = timed_seconds(
                sizer.size_stage, stage, target, STAGE_YIELD, apply=False
            )
            stages[benchmark_name] = {
                "seconds": seconds,
                "iterations": result.iterations,
                "met_target": result.met_target,
                "gates_per_second": stage.n_gates * result.iterations / max(seconds, 1e-9),
            }
        report["sizers"][sizer_name] = stages

    # ------------------------------------------------------------------
    # Incremental STA floor: both sizers on a 20k-gate generated block,
    # incremental=True vs incremental=False, identical results required.
    # ------------------------------------------------------------------
    from repro.circuit.generators import random_logic_block

    large = random_logic_block(
        "large",
        n_gates=LARGE_GATES,
        depth=LARGE_DEPTH,
        n_inputs=64,
        n_outputs=32,
        seed=7,
    )
    large.timing_schedule()  # compile once; shared by every run below
    large_stage = PipelineStage("large", large)
    report["large_block"] = {
        "n_gates": LARGE_GATES,
        "depth": LARGE_DEPTH,
        "sizers": {},
    }
    for sizer_name, options in LARGE_SIZER_RUNS:
        reference_sizer = make_sizer(sizer_name, technology, variation, **options)
        target = SPEEDUP * reference_sizer.stage_distribution(
            large_stage
        ).delay_at_yield(STAGE_YIELD)
        runs = {}
        results = {}
        for mode in ("incremental", "full"):
            sizer = make_sizer(
                sizer_name,
                technology,
                variation,
                incremental=(mode == "incremental"),
                **options,
            )
            seconds, result = timed_seconds(
                sizer.size_stage, large_stage, target, STAGE_YIELD, apply=False
            )
            results[mode] = result
            runs[mode] = {
                "seconds": seconds,
                "iterations": result.iterations,
                "gates_per_second": LARGE_GATES * result.iterations / max(seconds, 1e-9),
            }
        # The incremental path must be a pure optimisation: bit-identical
        # sizes, same trajectory length, same area.
        assert np.array_equal(
            results["incremental"].sizes, results["full"].sizes
        ), sizer_name
        assert results["incremental"].iterations == results["full"].iterations
        assert results["incremental"].area == results["full"].area
        runs["speedup"] = runs["full"]["seconds"] / max(
            runs["incremental"]["seconds"], 1e-9
        )
        report["large_block"]["sizers"][sizer_name] = runs

    # ------------------------------------------------------------------
    # Design-API hot path: session caching across optimizers and repeats.
    # ------------------------------------------------------------------
    session = Session()
    base = DesignStudySpec(
        pipeline=PipelineSpec(kind="iscas", benchmarks=("c432", "c1908")),
        variation=VariationSpec.combined(),
        design=DesignSpec(
            optimizer="balanced",
            sizer="lagrangian",
            sizer_options={"max_outer": 30},
            yield_target=0.80,
            delay_policy="stage_max",
            delay_scale=0.9,
            curve_points=3,
        ),
        validation=AnalysisSpec(n_samples=500, seed=17),
    )

    t_balanced, _ = timed_seconds(session.design, base)
    # Reuses the cached balanced baseline; pays for curves + redistribution.
    t_redistribute, _ = timed_seconds(session.design, base, "redistribute")
    # Reuses the balanced baseline AND the area-delay curves (stage_yield is
    # the equal split, which is also the global optimizer's curve yield).
    t_global, _ = timed_seconds(session.design, base, "global")
    # Memoized report: a pure cache fetch.
    t_cached, _ = timed_seconds(session.design, base)

    report["design_api"] = {
        "balanced_first_s": t_balanced,
        "redistribute_with_cached_baseline_s": t_redistribute,
        "global_with_cached_baseline_and_curves_s": t_global,
        "balanced_cached_s": t_cached,
        "cached_report_speedup": t_balanced / max(t_cached, 1e-9),
        "session_cache_hits": session.cache_hits,
        "session_cache_misses": session.cache_misses,
    }

    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    out = RESULTS_DIR / "perf_sizing.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_perf_sizing():
    """Caching and incremental-STA floors.

    Memoized reports are effectively free, caches hit, and on the 20k-gate
    block both sizers' inner loops must run at least 3x faster through the
    incremental engine than through per-move full recomputation (the
    results themselves are asserted bit-identical inside the benchmark;
    the large block is a speed probe, so no met_target floor applies).
    """
    report = run_benchmark()
    api = report["design_api"]
    assert api["cached_report_speedup"] >= 50.0, api
    # The redistribute/global runs must have found the balanced baseline in
    # the cache (hits > 0) instead of re-deriving targets and re-sizing.
    assert api["session_cache_hits"] >= 2, api
    for sizer_name, stages in report["sizers"].items():
        for stage_name, stats in stages.items():
            assert stats["met_target"], (sizer_name, stage_name, stats)
    for sizer_name, runs in report["large_block"]["sizers"].items():
        assert runs["speedup"] >= 3.0, (sizer_name, runs)


if __name__ == "__main__":
    result = run_benchmark()
    print(json.dumps(result, indent=2))
