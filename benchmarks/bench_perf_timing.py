"""Micro-benchmark: compiled-schedule timing kernels vs the naive reference.

Times the vectorized STA/SSTA propagation kernels on a 2000-gate random
block (10k Monte-Carlo samples for the 2-D STA case) against the retained
seed implementations in :mod:`repro.timing.reference`, and writes the
timings plus speedups to ``benchmarks/results/perf_timing.json`` so future
PRs have a performance trajectory to compare against.

Run directly::

    PYTHONPATH=src python benchmarks/bench_perf_timing.py

or through pytest (the assertions enforce the PR's speedup floor)::

    PYTHONPATH=src python -m pytest benchmarks/bench_perf_timing.py -q
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from bench_utils import best_of_seconds

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

N_GATES = 2000
DEPTH = 40
N_SAMPLES = 10_000
SSTA_GATES = 2000


def run_benchmark() -> dict:
    from repro.circuit.generators import random_logic_block
    from repro.process.technology import default_technology
    from repro.process.variation import VariationModel
    from repro.timing.delay_model import GateDelayModel
    from repro.timing.reference import (
        arrival_components_reference,
        arrival_times_reference,
    )
    from repro.timing.ssta import StatisticalTimingAnalyzer
    from repro.timing.sta import arrival_times

    technology = default_technology()
    block = random_logic_block(
        "bench", n_gates=N_GATES, depth=DEPTH, n_inputs=32, n_outputs=16, seed=2005
    )
    nominal = GateDelayModel(technology).nominal_delays(block)
    rng = np.random.default_rng(0)
    sampled = nominal[None, :] * rng.lognormal(0.0, 0.1, size=(N_SAMPLES, N_GATES))

    # Warm the compiled schedule so its one-time build cost is not billed to
    # the first timed kernel call (in production it is amortised over every
    # sizing move / MC chunk anyway).
    block.timing_schedule()

    report: dict = {
        "netlist": {"n_gates": N_GATES, "depth": DEPTH, "n_samples": N_SAMPLES},
        "kernels": {},
    }

    t_vec_1d, a_vec = best_of_seconds(3, arrival_times, block, nominal)
    t_ref_1d, a_ref = best_of_seconds(3, arrival_times_reference, block, nominal)
    assert np.array_equal(a_vec, a_ref)
    report["kernels"]["arrival_times_1d"] = {
        "vectorized_s": t_vec_1d,
        "reference_s": t_ref_1d,
        "speedup": t_ref_1d / t_vec_1d,
    }

    t_ref_2d, a2_ref = best_of_seconds(3, arrival_times_reference, block, sampled)
    # Cold configuration: every call allocates its 160 MB result afresh, as
    # the seed implementation must.
    t_cold_2d, a2_vec = best_of_seconds(3, arrival_times, block, sampled)
    assert np.array_equal(a2_vec, a2_ref)
    # Streaming configuration: the production path (chunked Monte-Carlo,
    # sizer loops) reuses an arrival workspace across calls via out=, which
    # removes the page-fault cost of the fresh allocation.
    workspace = np.empty_like(sampled)
    t_vec_2d, a2_vec = best_of_seconds(4, arrival_times, block, sampled, workspace)
    assert np.array_equal(a2_vec, a2_ref)
    report["kernels"]["arrival_times_2d"] = {
        "vectorized_s": t_vec_2d,
        "vectorized_cold_alloc_s": t_cold_2d,
        "reference_s": t_ref_2d,
        "speedup": t_ref_2d / t_vec_2d,
        "speedup_cold_alloc": t_ref_2d / t_cold_2d,
    }

    analyzer = StatisticalTimingAnalyzer(technology, VariationModel.combined())
    ssta_block = (
        block
        if SSTA_GATES == N_GATES
        else random_logic_block(
            "bench_ssta", n_gates=SSTA_GATES, depth=DEPTH, n_inputs=32,
            n_outputs=16, seed=2005,
        )
    )
    ssta_block.timing_schedule()
    t_vec_ssta, (m_vec, s_vec, r_vec) = best_of_seconds(
        2, analyzer.arrival_components, ssta_block
    )
    t_ref_ssta, (m_ref, s_ref, r_ref) = best_of_seconds(
        1, arrival_components_reference, analyzer, ssta_block
    )
    # All three components share the arrival-time unit; anchor the absolute
    # tolerance to the mean arrival scale (the random part is a sqrt of a
    # cancelling residual, so its own scale is not a meaningful yardstick).
    scale = float(np.abs(m_ref).max())
    assert np.allclose(m_vec, m_ref, rtol=1e-12, atol=1e-12 * scale)
    assert np.allclose(s_vec, s_ref, rtol=1e-12, atol=1e-12 * scale)
    assert np.allclose(r_vec, r_ref, rtol=1e-12, atol=1e-12 * scale)
    report["kernels"]["ssta_arrival_components"] = {
        "vectorized_s": t_vec_ssta,
        "reference_s": t_ref_ssta,
        "speedup": t_ref_ssta / t_vec_ssta,
    }

    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    out = RESULTS_DIR / "perf_timing.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_perf_timing():
    """The PR's acceptance floor: >=5x on sampled STA, >=3x on SSTA."""
    report = run_benchmark()
    kernels = report["kernels"]
    assert kernels["arrival_times_2d"]["speedup"] >= 5.0, kernels
    assert kernels["ssta_arrival_components"]["speedup"] >= 3.0, kernels


if __name__ == "__main__":
    result = run_benchmark()
    print(json.dumps(result, indent=2))
