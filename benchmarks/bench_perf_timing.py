"""Micro-benchmark: compiled-schedule timing kernels vs the naive reference.

Times the vectorized STA/SSTA propagation kernels on a 2000-gate random
block (10k Monte-Carlo samples for the 2-D STA case) against the retained
seed implementations in :mod:`repro.timing.reference`, the incremental
dirty-cone engine (:mod:`repro.timing.incremental`) against per-move full
recomputation, and the threaded kernel tier against the single-threaded
vectorized kernels, and writes the timings plus speedups to
``benchmarks/results/perf_timing.json`` so future PRs have a performance
trajectory to compare against.

Run directly::

    PYTHONPATH=src python benchmarks/bench_perf_timing.py

or through pytest (the assertions enforce the PR's speedup floor)::

    PYTHONPATH=src python -m pytest benchmarks/bench_perf_timing.py -q
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import numpy as np

from bench_utils import best_of_seconds

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

N_GATES = 2000
DEPTH = 40
N_SAMPLES = 10_000
SSTA_GATES = 2000
RESIZE_MOVES = 200
#: Threaded floors only apply on runners with enough cores to matter.
THREADED_FLOOR_CORES = 4


def run_benchmark() -> dict:
    from repro.circuit.generators import random_logic_block
    from repro.process.technology import default_technology
    from repro.process.variation import VariationModel
    from repro.timing.delay_model import GateDelayModel
    from repro.timing.reference import (
        arrival_components_reference,
        arrival_times_reference,
    )
    from repro.timing.ssta import StatisticalTimingAnalyzer
    from repro.timing.sta import arrival_times

    technology = default_technology()
    block = random_logic_block(
        "bench", n_gates=N_GATES, depth=DEPTH, n_inputs=32, n_outputs=16, seed=2005
    )
    nominal = GateDelayModel(technology).nominal_delays(block)
    rng = np.random.default_rng(0)
    sampled = nominal[None, :] * rng.lognormal(0.0, 0.1, size=(N_SAMPLES, N_GATES))

    # Warm the compiled schedule so its one-time build cost is not billed to
    # the first timed kernel call (in production it is amortised over every
    # sizing move / MC chunk anyway).
    block.timing_schedule()

    report: dict = {
        "netlist": {"n_gates": N_GATES, "depth": DEPTH, "n_samples": N_SAMPLES},
        "kernels": {},
    }

    t_vec_1d, a_vec = best_of_seconds(3, arrival_times, block, nominal)
    t_ref_1d, a_ref = best_of_seconds(3, arrival_times_reference, block, nominal)
    assert np.array_equal(a_vec, a_ref)
    report["kernels"]["arrival_times_1d"] = {
        "vectorized_s": t_vec_1d,
        "reference_s": t_ref_1d,
        "speedup": t_ref_1d / t_vec_1d,
    }

    t_ref_2d, a2_ref = best_of_seconds(3, arrival_times_reference, block, sampled)
    # Cold configuration: every call allocates its 160 MB result afresh, as
    # the seed implementation must.
    t_cold_2d, a2_vec = best_of_seconds(3, arrival_times, block, sampled)
    assert np.array_equal(a2_vec, a2_ref)
    # Streaming configuration: the production path (chunked Monte-Carlo,
    # sizer loops) reuses an arrival workspace across calls via out=, which
    # removes the page-fault cost of the fresh allocation.
    workspace = np.empty_like(sampled)
    t_vec_2d, a2_vec = best_of_seconds(4, arrival_times, block, sampled, workspace)
    assert np.array_equal(a2_vec, a2_ref)
    report["kernels"]["arrival_times_2d"] = {
        "vectorized_s": t_vec_2d,
        "vectorized_cold_alloc_s": t_cold_2d,
        "reference_s": t_ref_2d,
        "speedup": t_ref_2d / t_vec_2d,
        "speedup_cold_alloc": t_ref_2d / t_cold_2d,
    }

    analyzer = StatisticalTimingAnalyzer(technology, VariationModel.combined())
    ssta_block = (
        block
        if SSTA_GATES == N_GATES
        else random_logic_block(
            "bench_ssta", n_gates=SSTA_GATES, depth=DEPTH, n_inputs=32,
            n_outputs=16, seed=2005,
        )
    )
    ssta_block.timing_schedule()
    t_vec_ssta, (m_vec, s_vec, r_vec) = best_of_seconds(
        2, analyzer.arrival_components, ssta_block
    )
    t_ref_ssta, (m_ref, s_ref, r_ref) = best_of_seconds(
        1, arrival_components_reference, analyzer, ssta_block
    )
    # All three components share the arrival-time unit; anchor the absolute
    # tolerance to the mean arrival scale (the random part is a sqrt of a
    # cancelling residual, so its own scale is not a meaningful yardstick).
    scale = float(np.abs(m_ref).max())
    assert np.allclose(m_vec, m_ref, rtol=1e-12, atol=1e-12 * scale)
    assert np.allclose(s_vec, s_ref, rtol=1e-12, atol=1e-12 * scale)
    assert np.allclose(r_vec, r_ref, rtol=1e-12, atol=1e-12 * scale)
    report["kernels"]["ssta_arrival_components"] = {
        "vectorized_s": t_vec_ssta,
        "reference_s": t_ref_ssta,
        "speedup": t_ref_ssta / t_vec_ssta,
    }

    # ------------------------------------------------------------------
    # Incremental resize loop: SizingState vs per-move full recomputation.
    # ------------------------------------------------------------------
    from repro.timing.delay_model import GateDelayModel as _GateDelayModel
    from repro.timing.incremental import SizingState

    model = _GateDelayModel(technology)
    rng = np.random.default_rng(7)
    moves = [
        (int(position), float(factor))
        for position, factor in zip(
            rng.integers(0, N_GATES, size=RESIZE_MOVES),
            rng.uniform(1.05, 2.5, size=RESIZE_MOVES),
        )
    ]

    start = time.perf_counter()
    sizes = block.sizes()
    for position, factor in moves:
        sizes[position] = min(sizes[position] * factor, 16.0)
        full_delays = model.nominal_delays(block, sizes)
        full_arrivals = arrival_times(block, full_delays)
        full_worst = float(full_arrivals.max())
    t_full_resize = time.perf_counter() - start

    # Construction (coefficient caching + the single full propagation) is
    # paid once per sizing run, so it is not billed to the per-move loop.
    state = SizingState(block, technology)
    start = time.perf_counter()
    for position, factor in moves:
        state.resize(position, min(float(state.sizes[position]) * factor, 16.0))
        incremental_worst = state.worst_arrival()
    t_incremental_resize = time.perf_counter() - start

    assert np.array_equal(state.arrivals(), full_arrivals)
    assert np.array_equal(state.delays, full_delays)
    report["kernels"]["incremental_resize"] = {
        "moves": RESIZE_MOVES,
        "incremental_s": t_incremental_resize,
        "full_recompute_s": t_full_resize,
        "speedup": t_full_resize / max(t_incremental_resize, 1e-9),
        "gates_recomputed": int(state.timer.gates_recomputed),
        "full_equivalent_gates": RESIZE_MOVES * N_GATES,
    }

    # ------------------------------------------------------------------
    # Threaded kernel tier: forced two+ workers vs the vectorized kernels.
    # ------------------------------------------------------------------
    from repro.timing.kernels import KernelConfig

    cpu_count = os.cpu_count() or 1
    threaded = KernelConfig(
        kernel="threaded",
        threads=min(4, max(2, cpu_count)),
        min_bytes=1,
        min_rows=1,
    )
    t_thr_2d, a2_thr = best_of_seconds(
        4, arrival_times, block, sampled, workspace, kernel=threaded
    )
    assert np.array_equal(a2_thr, a2_ref)
    report["kernels"]["arrival_times_2d_threaded"] = {
        "cpu_count": cpu_count,
        "workers": threaded.resolved_threads(),
        "threaded_s": t_thr_2d,
        "vectorized_s": t_vec_2d,
        "speedup_vs_vectorized": t_vec_2d / max(t_thr_2d, 1e-9),
    }

    threaded_analyzer = StatisticalTimingAnalyzer(
        technology, VariationModel.combined(), kernel=threaded
    )
    t_thr_ssta, (m_thr, s_thr, r_thr) = best_of_seconds(
        2, threaded_analyzer.arrival_components, ssta_block
    )
    assert np.array_equal(m_thr, m_vec)
    assert np.array_equal(s_thr, s_vec)
    assert np.array_equal(r_thr, r_vec)
    report["kernels"]["ssta_arrival_components_threaded"] = {
        "cpu_count": cpu_count,
        "workers": threaded.resolved_threads(),
        "threaded_s": t_thr_ssta,
        "vectorized_s": t_vec_ssta,
        "speedup_vs_vectorized": t_vec_ssta / max(t_thr_ssta, 1e-9),
    }

    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    out = RESULTS_DIR / "perf_timing.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_perf_timing():
    """The PR's acceptance floors.

    >=5x on sampled STA and >=3x on SSTA (vectorized vs seed reference),
    >=3x on the incremental resize loop (dirty-cone vs per-move full
    recomputation), and >=2x on the threaded 2-D tier -- the last only on
    runners with at least ``THREADED_FLOOR_CORES`` cores, since threading
    cannot speed anything up on the starved CI shapes (correctness of the
    chunked paths is still asserted inside the benchmark on any machine).
    """
    report = run_benchmark()
    kernels = report["kernels"]
    assert kernels["arrival_times_2d"]["speedup"] >= 5.0, kernels
    assert kernels["ssta_arrival_components"]["speedup"] >= 3.0, kernels
    assert kernels["incremental_resize"]["speedup"] >= 3.0, kernels
    threaded = kernels["arrival_times_2d_threaded"]
    if threaded["cpu_count"] >= THREADED_FLOOR_CORES:
        assert threaded["speedup_vs_vectorized"] >= 2.0, kernels


if __name__ == "__main__":
    result = run_benchmark()
    print(json.dumps(result, indent=2))
