"""Resilience benchmark: robust-executor overhead and kill-recovery latency.

Measures what the fault-tolerant sweep path (``repro.robust``) costs when
nothing goes wrong -- the retry/timeout/trace bookkeeping wrapped around a
clean 200-point sweep, serial and parallel -- and what it buys when
something does: the wall-clock penalty of losing a worker process mid-sweep
(kill fault -> ``BrokenProcessPool`` -> pool respawn -> retry) versus the
same sweep undisturbed.  Results go to
``benchmarks/results/perf_resilience.json`` so future PRs can track the
overhead trajectory.

Run directly::

    PYTHONPATH=src python benchmarks/bench_resilience.py

or through pytest (the assertions enforce the PR's overhead ceiling)::

    PYTHONPATH=src python -m pytest benchmarks/bench_resilience.py -q
"""

from __future__ import annotations

import functools
import json
import pathlib

from bench_utils import best_of_seconds, timed_seconds

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

# 4 x 5 x 10 grid = 200 clean points, each cheap enough that executor
# bookkeeping would show up in the total if it cost anything per point.
CLEAN_AXES = {
    "pipeline.n_stages": [2, 3, 4, 5],
    "pipeline.logic_depth": [2, 3, 4, 5, 6],
    "variation.sigma_scale": [round(0.5 + 0.1 * i, 1) for i in range(10)],
}
N_SAMPLES = 120
RECOVERY_POINTS = 8
N_JOBS = 2


def _base_spec():
    from repro.api import AnalysisSpec, PipelineSpec, StudySpec, VariationSpec

    return StudySpec(
        pipeline=PipelineSpec(n_stages=2, logic_depth=3),
        variation=VariationSpec.combined(),
        analysis=AnalysisSpec(backend="montecarlo", n_samples=N_SAMPLES, seed=2005),
    )


def _tasks(axes):
    """Resolved sweep tasks on a throwaway session (seeds are concrete)."""
    from repro.api import Session
    from repro.api.sweep import ScenarioSweep

    return ScenarioSweep(_base_spec(), axes).tasks(Session())


def _bare_serial(tasks):
    """The minimal serial evaluation: a loop of ``session.run`` calls."""
    from repro.api import Session

    session = Session()
    return [session.run(task.spec) for task in tasks]


def _robust_serial(tasks, policy):
    from repro.api import Session
    from repro.robust import execute_tasks

    points, failures, trace = execute_tasks(tasks, Session(), policy=policy)
    assert not failures, failures
    return points


def _bare_pool_map(tasks):
    """The pre-robust parallel path: ``pool.map`` over evaluation payloads."""
    from repro.api import Session
    from repro.api.sweep import _evaluate_point, _make_pool

    session = Session()
    payloads = [
        (task.index, task.coords, task.spec, session.technology, session.root_seed)
        for task in tasks
    ]
    pool = _make_pool(N_JOBS)
    if pool is None:  # no pool support on this platform -> serial map
        return [_evaluate_point(payload) for payload in payloads]
    with pool:
        return list(pool.map(_evaluate_point, payloads))


def _robust_parallel(tasks, policy, fault_plan=None):
    from repro.api import Session
    from repro.robust import execute_tasks

    return execute_tasks(
        tasks, Session(), policy=policy, n_jobs=N_JOBS, fault_plan=fault_plan
    )


@functools.lru_cache(maxsize=1)
def run_benchmark() -> dict:
    from repro.robust import ExecutionPolicy, FaultPlan, FaultSpec

    policy = ExecutionPolicy(max_retries=2, backoff_base=0.0)
    clean_tasks = _tasks(CLEAN_AXES)
    report: dict = {
        "sweep": {
            "n_points": len(clean_tasks),
            "n_samples": N_SAMPLES,
            "n_jobs": N_JOBS,
        },
    }

    # -- clean-path overhead, serial ----------------------------------
    # Fresh sessions per run keep the characterisation cache from turning
    # the second contender's sweep into a no-op.
    t_bare, bare_reports = best_of_seconds(3, _bare_serial, clean_tasks)
    t_robust, robust_points = best_of_seconds(3, _robust_serial, clean_tasks, policy)
    assert [p.report for p in robust_points] == bare_reports
    report["clean_serial"] = {
        "bare_s": t_bare,
        "robust_s": t_robust,
        "overhead_fraction": t_robust / t_bare - 1.0,
    }

    # -- clean-path overhead, parallel (vs bare pool.map) -------------
    # Pool spin-up dominates and is paid by both sides, so this number is
    # informational; the enforced ceiling is the serial one above.
    t_map, mapped = best_of_seconds(2, _bare_pool_map, clean_tasks)
    t_rpar, (par_points, par_failures, _) = best_of_seconds(
        2, _robust_parallel, clean_tasks, policy
    )
    assert not par_failures, par_failures
    assert [p.report for p in par_points] == [p.report for p in mapped]
    report["clean_parallel"] = {
        "bare_map_s": t_map,
        "robust_s": t_rpar,
        "overhead_fraction": t_rpar / t_map - 1.0,
    }

    # -- recovery latency under an injected worker kill ---------------
    recovery_tasks = _tasks(
        {"pipeline.n_stages": [2], "variation.sigma_scale":
         [round(0.6 + 0.1 * i, 1) for i in range(RECOVERY_POINTS)]}
    )
    kill_plan = FaultPlan((FaultSpec(point=0, kind="kill", attempts=1),))
    t_clean, (clean_points, clean_failures, _) = timed_seconds(
        _robust_parallel, recovery_tasks, policy
    )
    assert not clean_failures, clean_failures
    t_faulted, (faulted_points, faulted_failures, trace) = timed_seconds(
        _robust_parallel, recovery_tasks, policy, kill_plan
    )
    assert not faulted_failures, faulted_failures
    assert [p.report for p in faulted_points] == [p.report for p in clean_points]
    report["recovery"] = {
        "n_points": len(recovery_tasks),
        "clean_s": t_clean,
        "faulted_s": t_faulted,
        "recovery_latency_s": t_faulted - t_clean,
        "n_worker_respawns": trace.n_worker_respawns,
        "n_retries": trace.n_retries,
        "n_failures": len(faulted_failures),
    }

    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    out = RESULTS_DIR / "perf_resilience.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_clean_overhead_is_under_five_percent():
    """The PR's acceptance ceiling: robust serial path costs <5% on a
    clean 200-point sweep."""
    clean = run_benchmark()["clean_serial"]
    assert clean["overhead_fraction"] < 0.05, clean


def test_kill_recovery_loses_no_points():
    """A killed worker costs one pool respawn, never a result."""
    recovery = run_benchmark()["recovery"]
    assert recovery["n_failures"] == 0, recovery
    assert recovery["n_worker_respawns"] >= 1, recovery
    assert recovery["recovery_latency_s"] < 30.0, recovery


if __name__ == "__main__":
    result = run_benchmark()
    print(json.dumps(result, indent=2))
