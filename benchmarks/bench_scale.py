"""Scale benchmark: the ingestion path at 100k-1M gates.

Measures, for each point of the Rent's-rule scale generator
(:func:`repro.circuit.ingest.scale_logic_block`):

* ``generate_s`` -- wall time to synthesise the netlist,
* ``compile_s``  -- wall time to compile its :class:`TimingSchedule`
  (the one-time cost every STA/SSTA/Monte-Carlo run amortises),
* ``mc_samples_per_s`` -- Monte-Carlo throughput of the compiled
  schedule under the combined variation model,
* ``peak_rss_mb`` -- the point's peak resident set, measured in a fresh
  subprocess so one size's allocations cannot pollute the next.

Results go to ``benchmarks/results/perf_scale.json``.  The default run
covers 100k and 300k gates; pass ``--full`` for the 1M point (a few
minutes and several GB of RSS).

Run directly::

    PYTHONPATH=src python benchmarks/bench_scale.py [--full]

or through pytest (asserts the 100k point's CI budgets)::

    PYTHONPATH=src python -m pytest benchmarks/bench_scale.py -q
"""

from __future__ import annotations

import json
import pathlib
import subprocess
import sys
import time

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
SRC_DIR = pathlib.Path(__file__).resolve().parent.parent / "src"

DEFAULT_SIZES = (100_000, 300_000)
FULL_SIZES = (100_000, 300_000, 1_000_000)
MC_SAMPLES = 24
SEED = 2005

#: CI budgets for the 100k point, ~5x above the measured times on a
#: developer container (generate ~2.5 s, compile ~0.8 s, RSS ~600 MB) so
#: starved CI runners pass while a 5x regression still fails loudly.
BUDGET_100K_GENERATE_S = 15.0
BUDGET_100K_COMPILE_S = 6.0
BUDGET_100K_PEAK_RSS_MB = 2048.0

_POINT_SCRIPT = r"""
import json, resource, sys, time

n_gates = int(sys.argv[1])
mc_samples = int(sys.argv[2])
seed = int(sys.argv[3])

from repro.circuit.ingest import scale_logic_block
from repro.montecarlo.engine import MonteCarloEngine
from repro.process.variation import VariationModel

start = time.perf_counter()
netlist = scale_logic_block(f"scale{n_gates}", n_gates, seed=seed)
generate_s = time.perf_counter() - start

start = time.perf_counter()
schedule = netlist.timing_schedule()
compile_s = time.perf_counter() - start

engine = MonteCarloEngine(
    VariationModel.combined(), n_samples=mc_samples, seed=seed,
    chunk_size=max(4, mc_samples // 4),
)
start = time.perf_counter()
result = engine.run_netlist(netlist)
mc_s = time.perf_counter() - start

print(json.dumps({
    "n_gates": netlist.n_gates,
    "depth": netlist.logic_depth(),
    "n_inputs": len(netlist.primary_inputs),
    "n_outputs": len(netlist.primary_outputs),
    "generate_s": generate_s,
    "compile_s": compile_s,
    "mc_samples": mc_samples,
    "mc_s": mc_s,
    "mc_samples_per_s": mc_samples / mc_s,
    "mc_mean_delay_s": float(result.samples.mean()),
    # ru_maxrss is KB on Linux.
    "peak_rss_mb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0,
}))
"""


def measure_point(n_gates: int) -> dict:
    """One scale point in a fresh interpreter (clean peak-RSS accounting)."""
    completed = subprocess.run(
        [sys.executable, "-c", _POINT_SCRIPT, str(n_gates), str(MC_SAMPLES), str(SEED)],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(SRC_DIR), "PATH": "/usr/bin:/bin:/usr/local/bin"},
        check=False,
    )
    if completed.returncode != 0:
        raise RuntimeError(
            f"scale point {n_gates} failed:\n{completed.stderr}"
        )
    return json.loads(completed.stdout.splitlines()[-1])


def run_benchmark(sizes=DEFAULT_SIZES) -> dict:
    report = {"mc_samples": MC_SAMPLES, "seed": SEED, "points": []}
    for n_gates in sizes:
        start = time.perf_counter()
        point = measure_point(n_gates)
        point["subprocess_total_s"] = time.perf_counter() - start
        report["points"].append(point)
        print(
            f"{n_gates:>9} gates: generate {point['generate_s']:.2f} s, "
            f"compile {point['compile_s']:.2f} s, "
            f"{point['mc_samples_per_s']:.2f} MC samples/s, "
            f"peak RSS {point['peak_rss_mb']:.0f} MB"
        )
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    out = RESULTS_DIR / "perf_scale.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_scale_100k_within_budget():
    """The acceptance budget on the 100k-gate point (CI ingestion smoke)."""
    report = run_benchmark(sizes=(100_000,))
    point = report["points"][0]
    assert point["n_gates"] == 100_000
    assert point["generate_s"] <= BUDGET_100K_GENERATE_S, point
    assert point["compile_s"] <= BUDGET_100K_COMPILE_S, point
    assert point["peak_rss_mb"] <= BUDGET_100K_PEAK_RSS_MB, point
    assert point["mc_samples_per_s"] > 0.0, point


if __name__ == "__main__":
    sizes = FULL_SIZES if "--full" in sys.argv[1:] else DEFAULT_SIZES
    result = run_benchmark(sizes=sizes)
    print(json.dumps(result, indent=2))
