"""Serving benchmark: latency, throughput and coalescing under concurrency.

Boots a :class:`~repro.serve.server.BackgroundServer` on an ephemeral port
and fires thousands of concurrent ``POST /v1/study`` submissions at it from
an asyncio load generator, in two mixes:

* **duplicate-heavy** -- 1000 submissions over 8 unique specs, the
  "everyone asks the dashboard the same question" shape that request
  coalescing and the shared session cache exist for; the benchmark asserts
  the server characterised each unique spec exactly once.
* **unique-heavy** -- 1000 submissions, every spec distinct, the worst case
  for coalescing and the honest measure of raw request throughput.

Per-mix results (p50/p99 latency, wall-clock throughput, coalescing
hit-rate, server/session counter deltas) go to
``benchmarks/results/perf_serve.json`` so future PRs can track the serving
path's trajectory.

Run directly::

    PYTHONPATH=src python benchmarks/bench_serve.py

or through pytest (the assertions enforce the PR's perf floor)::

    PYTHONPATH=src python -m pytest benchmarks/bench_serve.py -q
"""

from __future__ import annotations

import asyncio
import functools
import json
import pathlib
import time

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

N_SUBMISSIONS = 1000
N_UNIQUE_DUPLICATE_HEAVY = 8
MAX_SOCKETS = 200  # concurrent connections the load generator holds open


def _spec_body(seed: int) -> bytes:
    """A tiny, fully analytical study spec: distinct per seed, cheap to run."""
    from repro.api import AnalysisSpec, PipelineSpec, StudySpec

    spec = StudySpec(
        pipeline=PipelineSpec(n_stages=2, logic_depth=3),
        analysis=AnalysisSpec(backend="ssta", n_samples=64, seed=seed),
    )
    return json.dumps(spec.to_dict()).encode("utf-8")


async def _post_study(host: str, port: int, body: bytes) -> int:
    """One raw async POST (Connection: close); returns the HTTP status."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(
            (
                f"POST /v1/study HTTP/1.1\r\n"
                f"Host: {host}:{port}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n"
            ).encode("latin-1")
            + body
        )
        await writer.drain()
        status_line = await reader.readline()
        status = int(status_line.split(b" ", 2)[1])
        await reader.read()  # drain headers + body to EOF (connection closes)
        return status
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


async def _fire(host: str, port: int, bodies: list[bytes]) -> tuple[list[float], list[int], float]:
    """All submissions at once, socket-bounded; per-request latencies + wall."""
    semaphore = asyncio.Semaphore(MAX_SOCKETS)

    async def one(body: bytes) -> tuple[float, int]:
        t0 = time.monotonic()  # latency includes queueing behind the semaphore
        async with semaphore:
            status = await _post_study(host, port, body)
        return time.monotonic() - t0, status

    t_start = time.monotonic()
    outcomes = await asyncio.gather(*(one(body) for body in bodies))
    wall = time.monotonic() - t_start
    latencies = [latency for latency, _ in outcomes]
    statuses = [status for _, status in outcomes]
    return latencies, statuses, wall


def _percentile(sorted_values: list[float], q: float) -> float:
    index = min(len(sorted_values) - 1, round(q * (len(sorted_values) - 1)))
    return sorted_values[index]


def _run_mix(server, bodies: list[bytes], label: str) -> dict:
    stats_before = server.server.stats.to_dict()
    latencies, statuses, wall = asyncio.run(
        _fire(server.host, server.port, bodies)
    )
    stats_after = server.server.stats.to_dict()
    delta = {k: stats_after[k] - stats_before[k] for k in stats_after}
    ordered = sorted(latencies)
    n_ok = sum(1 for status in statuses if status == 200)
    return {
        "mix": label,
        "n_submissions": len(bodies),
        "n_ok": n_ok,
        "n_rejected": len(bodies) - n_ok,
        "wall_s": wall,
        "throughput_rps": len(bodies) / wall,
        "latency_p50_s": _percentile(ordered, 0.50),
        "latency_p99_s": _percentile(ordered, 0.99),
        "latency_max_s": ordered[-1],
        "coalesced": delta["coalesced"],
        "computed": delta["computed"],
        "coalescing_hit_rate": delta["coalesced"] / len(bodies),
        "server_delta": delta,
    }


@functools.lru_cache(maxsize=1)
def run_benchmark() -> dict:
    from repro.serve import BackgroundServer, ServeBudgets, ServeConfig

    config = ServeConfig(
        workers=8, budgets=ServeBudgets(max_in_flight=4096)
    )
    report: dict = {
        "load": {
            "n_submissions": N_SUBMISSIONS,
            "max_sockets": MAX_SOCKETS,
            "n_unique_duplicate_heavy": N_UNIQUE_DUPLICATE_HEAVY,
        },
    }

    # Separate servers per mix: clean counters, cold session caches.
    duplicate_bodies = [
        _spec_body(seed % N_UNIQUE_DUPLICATE_HEAVY)
        for seed in range(N_SUBMISSIONS)
    ]
    with BackgroundServer(config=config) as server:
        report["duplicate_heavy"] = _run_mix(
            server, duplicate_bodies, "duplicate_heavy"
        )
        report["duplicate_heavy"]["unique_specs"] = N_UNIQUE_DUPLICATE_HEAVY
        report["duplicate_heavy"]["session_reports_cached"] = (
            server.session.stats()["cached"]["reports"]
        )

    unique_bodies = [_spec_body(seed) for seed in range(N_SUBMISSIONS)]
    with BackgroundServer(config=config) as server:
        report["unique_heavy"] = _run_mix(server, unique_bodies, "unique_heavy")
        report["unique_heavy"]["unique_specs"] = N_SUBMISSIONS
        report["unique_heavy"]["session_reports_cached"] = (
            server.session.stats()["cached"]["reports"]
        )

    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    out = RESULTS_DIR / "perf_serve.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_every_submission_is_answered():
    """4096 in-flight budget >= 200 sockets: nothing should be rejected."""
    report = run_benchmark()
    for mix in ("duplicate_heavy", "unique_heavy"):
        assert report[mix]["n_ok"] == report[mix]["n_submissions"], report[mix]


def test_duplicate_heavy_mix_characterises_each_spec_once():
    """1000 duplicate-heavy submissions -> exactly 8 cached characterisations,
    with in-flight duplicates visibly coalesced."""
    mix = run_benchmark()["duplicate_heavy"]
    assert mix["session_reports_cached"] == N_UNIQUE_DUPLICATE_HEAVY, mix
    assert mix["coalesced"] >= 1, mix
    assert mix["coalesced"] + mix["computed"] == mix["n_submissions"], mix


def test_throughput_floor():
    """The PR's perf floor: >= 100 submissions/s on the duplicate-heavy mix
    and >= 25/s on the all-unique mix (conservative for CI machines)."""
    report = run_benchmark()
    assert report["duplicate_heavy"]["throughput_rps"] >= 100.0, (
        report["duplicate_heavy"]
    )
    assert report["unique_heavy"]["throughput_rps"] >= 25.0, (
        report["unique_heavy"]
    )


def test_tail_latency_is_bounded():
    """p99 stays under 10 s even with every submission in flight at once."""
    report = run_benchmark()
    for mix in ("duplicate_heavy", "unique_heavy"):
        assert report[mix]["latency_p99_s"] < 10.0, report[mix]


if __name__ == "__main__":
    result = run_benchmark()
    print(json.dumps(result, indent=2))
