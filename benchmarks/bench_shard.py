"""Shard-runner benchmark: throughput scaling and exact-resume cost.

Measures what splitting one Monte-Carlo-heavy sweep across shard worker
processes buys (wall-clock speedup of 2 shards over the serial engine on
identical tasks) and what exact resume costs (a second sharded run over the
same checkpoint store must recompute *zero* points and finish in store-read
time).  Bit-identity of the merged result against the serial reference is
asserted on every run -- a shard runner that is fast but wrong is worthless.
Results go to ``benchmarks/results/perf_shard.json`` so future PRs can
track the scaling trajectory.

The >= 1.8x two-shard floor is enforced only on runners with at least
``SHARD_FLOOR_CORES`` cores; on smaller hosts (CI containers are often
1-2 cores) the number is recorded but not gated, since two shard processes
time-slicing one core cannot beat the serial engine.

Run directly::

    PYTHONPATH=src python benchmarks/bench_shard.py

or through pytest (the assertions enforce the PR's floors)::

    PYTHONPATH=src python -m pytest benchmarks/bench_shard.py -q
"""

from __future__ import annotations

import functools
import json
import os
import pathlib
import shutil
import tempfile

from bench_utils import timed_seconds

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

SHARD_FLOOR_CORES = 4
SHARD_FLOOR_SPEEDUP = 1.8
N_SHARDS = 2

# 4 x 4 grid = 16 points, each heavy enough (40k Monte-Carlo samples) that
# per-point work dwarfs shard process spin-up and store traffic.
AXES = {
    "pipeline.n_stages": [2, 3, 4, 5],
    "variation.sigma_scale": [0.5, 0.75, 1.0, 1.25],
}
N_SAMPLES = 40_000


def _base_spec():
    from repro.api import AnalysisSpec, PipelineSpec, StudySpec, VariationSpec

    return StudySpec(
        pipeline=PipelineSpec(n_stages=3, logic_depth=6),
        variation=VariationSpec.combined(),
        analysis=AnalysisSpec(backend="montecarlo", n_samples=N_SAMPLES, seed=2005),
    )


def _tasks():
    from repro.api import Session
    from repro.api.sweep import ScenarioSweep

    return ScenarioSweep(_base_spec(), AXES).tasks(Session())


def _serial(tasks):
    from repro.api import Session
    from repro.robust import execute_tasks

    points, failures, trace = execute_tasks(tasks, Session())
    assert not failures, failures
    return points, trace


def _sharded(tasks, checkpoint_dir=None):
    from repro.api import Session
    from repro.robust import ExecutionPolicy
    from repro.robust.shard import run_sharded

    policy = (
        ExecutionPolicy(checkpoint_dir=checkpoint_dir)
        if checkpoint_dir is not None
        else None
    )
    points, failures, trace = run_sharded(
        tasks, Session(), shards=N_SHARDS, policy=policy
    )
    assert not failures, failures
    return points, trace


def _identity(points):
    return [(p.index, p.coords, p.spec, p.report) for p in points]


@functools.lru_cache(maxsize=1)
def run_benchmark() -> dict:
    cpu_count = os.cpu_count() or 1
    tasks = _tasks()
    report: dict = {
        "sweep": {
            "n_points": len(tasks),
            "n_samples": N_SAMPLES,
            "n_shards": N_SHARDS,
            "cpu_count": cpu_count,
        },
    }

    # -- throughput: serial engine vs 2 shards on identical tasks ------
    t_serial, (serial_points, _) = timed_seconds(_serial, tasks)
    t_sharded, (sharded_points, sharded_trace) = timed_seconds(_sharded, tasks)
    assert _identity(sharded_points) == _identity(serial_points)
    report["throughput"] = {
        "serial_s": t_serial,
        "sharded_s": t_sharded,
        "speedup": t_serial / t_sharded,
        "pool_kind": sharded_trace.pool_kind,
        "fallback_reason": sharded_trace.fallback_reason,
        "floor_enforced": cpu_count >= SHARD_FLOOR_CORES,
    }

    # -- exact resume: a second run over the same store computes nothing
    store_dir = tempfile.mkdtemp(prefix="bench-shard-store-")
    try:
        t_cold, (cold_points, cold_trace) = timed_seconds(
            _sharded, tasks, store_dir
        )
        t_resume, (resume_points, resume_trace) = timed_seconds(
            _sharded, tasks, store_dir
        )
        assert _identity(resume_points) == _identity(serial_points)
        report["resume"] = {
            "cold_s": t_cold,
            "resume_s": t_resume,
            "cold_checkpoint_writes": cold_trace.checkpoint_writes,
            "resume_checkpoint_hits": resume_trace.checkpoint_hits,
            "resume_checkpoint_writes": resume_trace.checkpoint_writes,
            "points_recomputed_on_resume": resume_trace.checkpoint_writes,
        }
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)

    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    out = RESULTS_DIR / "perf_shard.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_two_shards_meet_throughput_floor_on_big_runners():
    """The PR's acceptance floor: >= 1.8x at 2 shards, on >= 4-core hosts.

    Smaller hosts still run the benchmark (the merged-result identity
    assertions inside ``run_benchmark`` always hold) but skip the floor:
    two processes on one core cannot and should not beat one.
    """
    throughput = run_benchmark()["throughput"]
    if not throughput["floor_enforced"]:
        import pytest

        pytest.skip(
            f"host has {run_benchmark()['sweep']['cpu_count']} cores; the "
            f"{SHARD_FLOOR_SPEEDUP}x floor needs >= {SHARD_FLOOR_CORES}"
        )
    assert throughput["speedup"] >= SHARD_FLOOR_SPEEDUP, throughput


def test_resume_after_restart_recomputes_zero_points():
    """Exact resume: every point of the rerun is a store hit, none recompute."""
    resume = run_benchmark()["resume"]
    n_points = run_benchmark()["sweep"]["n_points"]
    assert resume["cold_checkpoint_writes"] == n_points, resume
    assert resume["resume_checkpoint_hits"] == n_points, resume
    assert resume["points_recomputed_on_resume"] == 0, resume


if __name__ == "__main__":
    print(json.dumps(run_benchmark(), indent=2))
