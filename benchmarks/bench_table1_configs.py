"""Table I: delay distribution and yield for different pipeline configurations.

The paper's Table I compares Monte-Carlo and analytical mu_T / sigma_T /
yield for five inverter-chain pipeline configurations (stages x logic depth):

    8 x 5, 5 x 8, 5 x variable, 5 x 8 (inter-die only), 5 x 8 (inter + intra).

Absolute picoseconds differ from the paper (synthetic technology instead of
BPTM SPICE), so each row's target delay is chosen at the same *relative*
position the paper's targets occupy (a few sigma above the Monte-Carlo mean);
the comparison of interest is model vs. Monte-Carlo on the same row.  Each
row is one Study: the ``montecarlo`` / ``analytic`` backend pair shares a
single cached characterisation per configuration.
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.api import VariationSpec

from bench_utils import characterize, inverter_chain_spec, run_once, save_report

N_SAMPLES = 4000

CONFIGURATIONS = [
    # (label, n_stages, logic_depth(s), variation, target quantile)
    ("8 x 5 (intra)", 8, 5, VariationSpec.intra_random_only(), 0.96),
    ("5 x 8 (intra)", 5, 8, VariationSpec.intra_random_only(), 0.78),
    ("5 x var (intra)", 5, (6, 8, 10, 8, 6), VariationSpec.intra_random_only(), 0.92),
    ("5 x 8 (inter)", 5, 8, VariationSpec.inter_only(0.040), 0.88),
    ("5 x 8 (inter+intra)", 5, 8,
     VariationSpec.combined(sigma_vth_inter=0.040), 0.90),
]


def reproduce_table1() -> str:
    rows = []
    for label, n_stages, depth, variation, quantile in CONFIGURATIONS:
        mc, model = characterize(
            inverter_chain_spec(n_stages, depth), variation, N_SAMPLES, seed=20050307
        )
        target = mc.delay_at_yield(quantile)

        rows.append([
            label,
            round(target * 1e12, 1),
            round(mc.pipeline_mean * 1e12, 1),
            round(mc.pipeline_std * 1e12, 2),
            round(100.0 * mc.yield_at(target), 1),
            round(model.pipeline_mean * 1e12, 1),
            round(model.pipeline_std * 1e12, 2),
            round(100.0 * model.yield_at(target), 1),
        ])
    return format_table(
        [
            "configuration",
            "target (ps)",
            "MC mu (ps)",
            "MC sigma (ps)",
            "MC yield (%)",
            "model mu (ps)",
            "model sigma (ps)",
            "model yield (%)",
        ],
        rows,
        title="Table I: Monte-Carlo vs. analytical model for pipeline configurations",
    )


def test_table1_pipeline_configurations(benchmark):
    report = run_once(benchmark, reproduce_table1)
    save_report("table1_configurations", report)
