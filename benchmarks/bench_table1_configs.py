"""Table I: delay distribution and yield for different pipeline configurations.

The paper's Table I compares Monte-Carlo and analytical mu_T / sigma_T /
yield for five inverter-chain pipeline configurations (stages x logic depth):

    8 x 5, 5 x 8, 5 x variable, 5 x 8 (inter-die only), 5 x 8 (inter + intra).

Absolute picoseconds differ from the paper (synthetic technology instead of
BPTM SPICE), so each row's target delay is chosen at the same *relative*
position the paper's targets occupy (a few sigma above the Monte-Carlo mean);
the comparison of interest is model vs. Monte-Carlo on the same row.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import format_table
from repro.core.pipeline_delay import PipelineDelayModel
from repro.montecarlo.engine import MonteCarloEngine
from repro.pipeline.builder import inverter_chain_pipeline
from repro.process.variation import VariationModel

from bench_utils import run_once, save_report

N_SAMPLES = 4000

CONFIGURATIONS = [
    # (label, n_stages, logic_depth(s), variation, target quantile)
    ("8 x 5 (intra)", 8, 5, VariationModel.intra_random_only(), 0.96),
    ("5 x 8 (intra)", 5, 8, VariationModel.intra_random_only(), 0.78),
    ("5 x var (intra)", 5, [6, 8, 10, 8, 6], VariationModel.intra_random_only(), 0.92),
    ("5 x 8 (inter)", 5, 8, VariationModel.inter_only(0.040), 0.88),
    ("5 x 8 (inter+intra)", 5, 8,
     VariationModel.combined(sigma_vth_inter=0.040), 0.90),
]


def reproduce_table1() -> str:
    rows = []
    for label, n_stages, depth, variation, quantile in CONFIGURATIONS:
        pipeline = inverter_chain_pipeline(n_stages, depth)
        engine = MonteCarloEngine(variation, n_samples=N_SAMPLES, seed=20050307)
        mc = engine.run_pipeline(pipeline)
        pipeline_mc = mc.pipeline_result()
        target = float(np.quantile(mc.pipeline_samples, quantile))

        model = PipelineDelayModel(mc.stage_distributions(), mc.correlation_matrix())
        estimate = model.estimate()

        rows.append([
            label,
            round(target * 1e12, 1),
            round(pipeline_mc.mean * 1e12, 1),
            round(pipeline_mc.std * 1e12, 2),
            round(100.0 * mc.yield_at(target), 1),
            round(estimate.mean * 1e12, 1),
            round(estimate.std * 1e12, 2),
            round(100.0 * estimate.yield_at(target), 1),
        ])
    return format_table(
        [
            "configuration",
            "target (ps)",
            "MC mu (ps)",
            "MC sigma (ps)",
            "MC yield (%)",
            "model mu (ps)",
            "model sigma (ps)",
            "model yield (%)",
        ],
        rows,
        title="Table I: Monte-Carlo vs. analytical model for pipeline configurations",
    )


def test_table1_pipeline_configurations(benchmark):
    report = run_once(benchmark, reproduce_table1)
    save_report("table1_configurations", report)
