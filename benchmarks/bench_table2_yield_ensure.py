"""Table II: ensuring the target pipeline yield with a small area penalty.

The paper's Table II: a 4-stage pipeline whose stages are the ISCAS85
circuits c3540, c2670, c1908 (the paper's "c1980") and c432 is first designed
conventionally -- every stage individually optimised for a 95 % stage yield
at the pipeline delay target -- which leaves the pipeline yield well short of
the 80 % goal (73.9 % in the paper) because the hardest stage cannot reach
its budget.  The proposed global optimization (Fig. 9) then re-sizes one
stage at a time, ordered by the eq. 14 sensitivity ratio, raising the cheap
stages' yields to compensate and reaching the 80 % pipeline target with only
a ~2 % area increase.

The pipeline delay target here is chosen the same way the paper's scenario
implies: just below what the hardest stage can reach at a 95 % stage yield
within the allowed size range, so the baseline under-achieves the pipeline
target and the optimizer must make up the difference.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import format_table
from repro.montecarlo.engine import MonteCarloEngine
from repro.optimize.balance import design_balanced_pipeline
from repro.optimize.global_opt import GlobalPipelineOptimizer
from repro.optimize.lagrangian import LagrangianSizer
from repro.pipeline.builder import iscas_pipeline
from repro.process.technology import default_technology
from repro.process.variation import VariationModel

from bench_utils import run_once, save_report

PIPELINE_YIELD_TARGET = 0.80
STAGE_YIELD_BASELINE = 0.95
N_SAMPLES = 1500


def build_report(before, after, optimizer_result, mc_before, mc_after, target_delay) -> str:
    names = list(before.stage_names)
    total_before = before.total_area
    rows = []
    for index, name in enumerate(names):
        rows.append([
            name,
            round(100.0 * before.stage_areas[index] / total_before, 1),
            round(100.0 * before.stage_yields[index], 1),
            round(100.0 * after.stage_areas[index] / total_before, 1),
            round(100.0 * after.stage_yields[index], 1),
        ])
    rows.append([
        "Pipeline",
        round(100.0 * before.total_area / total_before, 1),
        round(100.0 * before.pipeline_yield, 1),
        round(100.0 * after.total_area / total_before, 1),
        round(100.0 * after.pipeline_yield, 1),
    ])
    table = format_table(
        ["stage", "area before (%)", "yield before (%)", "area after (%)", "yield after (%)"],
        rows,
        title=(
            "Table II: ensuring the pipeline yield target "
            f"({PIPELINE_YIELD_TARGET:.0%}) at T_target = {target_delay*1e12:.0f} ps "
            "(areas relative to the baseline design)"
        ),
    )
    checks = format_table(
        ["quantity", "value"],
        [
            ["stage processing order (by R_i)", " -> ".join(optimizer_result.stage_order)],
            ["pipeline yield improvement (points)", round(optimizer_result.yield_improvement, 1)],
            ["area change (%)", round(optimizer_result.area_change_percent, 1)],
            ["Monte-Carlo yield before (%)", round(100.0 * mc_before, 1)],
            ["Monte-Carlo yield after (%)", round(100.0 * mc_after, 1)],
        ],
        title="Cross-checks",
    )
    return table + "\n\n" + checks


def reproduce_table2() -> str:
    pipeline = iscas_pipeline()
    variation = VariationModel.combined()
    sizer = LagrangianSizer(default_technology(), variation, max_outer=30)

    # Delay target: just below what the hardest stage can reach at the 95 %
    # stage-yield budget, so the conventional flow falls short of the
    # pipeline yield target (the Table II scenario).
    achievable = []
    for stage in pipeline.stages:
        result = sizer.size_stage(
            stage, 0.6 * sizer.stage_distribution(stage).delay_at_yield(STAGE_YIELD_BASELINE),
            STAGE_YIELD_BASELINE, apply=False,
        )
        achievable.append(result.stage_delay.delay_at_yield(STAGE_YIELD_BASELINE))
    # Clearly below the hardest stage's best: that stage cannot reach its 95 %
    # budget, so the conventional pipeline misses the 80 % goal (the paper's
    # 73.9 % situation) and the optimizer has to compensate elsewhere.
    target_delay = 0.92 * max(achievable)

    balanced = design_balanced_pipeline(
        pipeline, sizer, target_delay, PIPELINE_YIELD_TARGET,
        stage_yield_target=STAGE_YIELD_BASELINE,
    )

    optimizer = GlobalPipelineOptimizer(sizer, curve_points=4, ordering="ri_ascending")
    result = optimizer.optimize(balanced.pipeline, target_delay, PIPELINE_YIELD_TARGET)

    engine = MonteCarloEngine(variation, n_samples=N_SAMPLES, seed=2)
    mc_before = engine.run_pipeline(balanced.pipeline).yield_at(target_delay)
    mc_after = engine.run_pipeline(result.pipeline).yield_at(target_delay)

    return build_report(result.before, result.after, result, mc_before, mc_after, target_delay)


def test_table2_ensure_yield(benchmark):
    report = run_once(benchmark, reproduce_table2)
    save_report("table2_ensure_yield", report)
