"""Table II: ensuring the target pipeline yield with a small area penalty.

The paper's Table II: a 4-stage pipeline whose stages are the ISCAS85
circuits c3540, c2670, c1908 (the paper's "c1980") and c432 is first designed
conventionally -- every stage individually optimised for a 95 % stage yield
at the pipeline delay target -- which leaves the pipeline yield well short of
the 80 % goal (73.9 % in the paper) because the hardest stage cannot reach
its budget.  The proposed global optimization (Fig. 9) then re-sizes one
stage at a time, ordered by the eq. 14 sensitivity ratio, raising the cheap
stages' yields to compensate and reaching the 80 % pipeline target with only
a ~2 % area increase.

The whole experiment is one declarative ``DesignStudySpec`` answered by the
``global`` optimizer through the Design API: the ``"sized"`` delay policy
reproduces the paper's target choice (just below what the hardest stage can
reach at a 95 % stage yield within the allowed size range, so the baseline
under-achieves the pipeline target and the optimizer must make up the
difference), and the validation block cross-checks both designs with the
Monte-Carlo engine.
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.api import DesignReport, DesignSpec, PipelineSpec, VariationSpec

from bench_utils import (
    design_area_yield_table,
    design_study,
    run_design,
    run_once,
    save_report,
)

PIPELINE_YIELD_TARGET = 0.80
STAGE_YIELD_BASELINE = 0.95
N_SAMPLES = 1500


def build_report(report: DesignReport) -> str:
    table = design_area_yield_table(
        report,
        title=(
            "Table II: ensuring the pipeline yield target "
            f"({PIPELINE_YIELD_TARGET:.0%}) at T_target = {report.target_delay*1e12:.0f} ps "
            "(areas relative to the baseline design)"
        ),
    )
    checks = format_table(
        ["quantity", "value"],
        [
            ["stage processing order (by R_i)", " -> ".join(report.stage_order)],
            ["pipeline yield improvement (points)", round(report.yield_improvement, 1)],
            ["area change (%)", round(report.area_change_percent, 1)],
            ["Monte-Carlo yield before (%)", round(100.0 * report.mc_yield_baseline, 1)],
            ["Monte-Carlo yield after (%)", round(100.0 * report.mc_yield, 1)],
        ],
        title="Cross-checks",
    )
    return table + "\n\n" + checks


def reproduce_table2() -> str:
    spec = design_study(
        PipelineSpec(kind="iscas"),
        VariationSpec.combined(),
        DesignSpec(
            optimizer="global",
            sizer="lagrangian",
            sizer_options={"max_outer": 30},
            yield_target=PIPELINE_YIELD_TARGET,
            stage_yield=STAGE_YIELD_BASELINE,
            delay_policy="sized",
            delay_probe=0.6,
            delay_scale=0.92,
            curve_points=4,
            ordering="ri_ascending",
        ),
        n_samples=N_SAMPLES,
        seed=2,
    )
    return build_report(run_design(spec))


def test_table2_ensure_yield(benchmark):
    report = run_once(benchmark, reproduce_table2)
    save_report("table2_ensure_yield", report)
