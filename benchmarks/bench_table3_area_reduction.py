"""Table III: area reduction at a fixed pipeline yield target.

The paper's Table III starts from a conventionally designed 4-stage ISCAS85
pipeline that comfortably exceeds the 80 % pipeline yield target (every stage
individually at ~94-95 %) and uses the global optimization to *recover area*:
stages whose area-vs-delay curve is steep are relaxed (their area shrinks,
their yield drops toward what the pipeline target actually requires) while
cheap stages are kept fast, ending with ~8.4 % less area at the same 80 %
pipeline yield.

Here the pipeline delay target is set comfortably above what every stage can
reach, so the baseline over-achieves the pipeline yield and the optimizer's
job is pure area recovery.
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.montecarlo.engine import MonteCarloEngine
from repro.optimize.balance import design_balanced_pipeline
from repro.optimize.global_opt import GlobalPipelineOptimizer
from repro.optimize.lagrangian import LagrangianSizer
from repro.pipeline.builder import iscas_pipeline
from repro.process.technology import default_technology
from repro.process.variation import VariationModel

from bench_utils import run_once, save_report

PIPELINE_YIELD_TARGET = 0.80
STAGE_YIELD_BASELINE = 0.95
N_SAMPLES = 1500


def reproduce_table3() -> str:
    pipeline = iscas_pipeline()
    variation = VariationModel.combined()
    sizer = LagrangianSizer(default_technology(), variation, max_outer=30)

    # A reachable but aggressive delay target: well below the hardest stage's
    # minimum-size delay, so every stage needs genuine sizing investment to
    # meet its 95 % budget.  The baseline then over-achieves the 80 % pipeline
    # goal and carries recoverable area -- the Table III scenario.
    hardest = max(
        sizer.stage_distribution(stage).delay_at_yield(STAGE_YIELD_BASELINE)
        for stage in pipeline.stages
    )
    target_delay = 0.78 * hardest

    balanced = design_balanced_pipeline(
        pipeline, sizer, target_delay, PIPELINE_YIELD_TARGET,
        stage_yield_target=STAGE_YIELD_BASELINE,
    )

    optimizer = GlobalPipelineOptimizer(sizer, curve_points=4, ordering="ri_ascending")
    result = optimizer.optimize(balanced.pipeline, target_delay, PIPELINE_YIELD_TARGET)

    engine = MonteCarloEngine(variation, n_samples=N_SAMPLES, seed=3)
    mc_before = engine.run_pipeline(balanced.pipeline).yield_at(target_delay)
    mc_after = engine.run_pipeline(result.pipeline).yield_at(target_delay)

    names = list(result.before.stage_names)
    total_before = result.before.total_area
    rows = []
    for index, name in enumerate(names):
        rows.append([
            name,
            round(100.0 * result.before.stage_areas[index] / total_before, 1),
            round(100.0 * result.before.stage_yields[index], 1),
            round(100.0 * result.after.stage_areas[index] / total_before, 1),
            round(100.0 * result.after.stage_yields[index], 1),
        ])
    rows.append([
        "Pipeline",
        100.0,
        round(100.0 * result.before.pipeline_yield, 1),
        round(100.0 * result.after.total_area / total_before, 1),
        round(100.0 * result.after.pipeline_yield, 1),
    ])
    table = format_table(
        ["stage", "area before (%)", "yield before (%)", "area after (%)", "yield after (%)"],
        rows,
        title=(
            "Table III: area recovery at a fixed pipeline yield target "
            f"({PIPELINE_YIELD_TARGET:.0%}) at T_target = {target_delay*1e12:.0f} ps"
        ),
    )
    checks = format_table(
        ["quantity", "value"],
        [
            ["stage processing order (by R_i)", " -> ".join(result.stage_order)],
            ["area change (%)", round(result.area_change_percent, 1)],
            ["pipeline yield before / after (%)",
             f"{100.0 * result.before.pipeline_yield:.1f} / {100.0 * result.after.pipeline_yield:.1f}"],
            ["Monte-Carlo yield before / after (%)",
             f"{100.0 * mc_before:.1f} / {100.0 * mc_after:.1f}"],
        ],
        title="Cross-checks",
    )
    return table + "\n\n" + checks


def test_table3_area_reduction(benchmark):
    report = run_once(benchmark, reproduce_table3)
    save_report("table3_area_reduction", report)
