"""Table III: area reduction at a fixed pipeline yield target.

The paper's Table III starts from a conventionally designed 4-stage ISCAS85
pipeline that comfortably exceeds the 80 % pipeline yield target (every stage
individually at ~94-95 %) and uses the global optimization to *recover area*:
stages whose area-vs-delay curve is steep are relaxed (their area shrinks,
their yield drops toward what the pipeline target actually requires) while
cheap stages are kept fast, ending with ~8.4 % less area at the same 80 %
pipeline yield.

Expressed through the Design API, this is the same ``global``-optimizer
``DesignStudySpec`` as Table II with a different delay policy: the
``"stage_max"`` policy sets the pipeline delay target comfortably above what
every stage can reach (0.78x the hardest stage's minimum-size delay), so the
baseline over-achieves the pipeline yield and the optimizer's job is pure
area recovery.
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.api import DesignReport, DesignSpec, PipelineSpec, VariationSpec

from bench_utils import (
    design_area_yield_table,
    design_study,
    run_design,
    run_once,
    save_report,
)

PIPELINE_YIELD_TARGET = 0.80
STAGE_YIELD_BASELINE = 0.95
N_SAMPLES = 1500


def build_report(report: DesignReport) -> str:
    # The shared pipeline row computes area-before as a (trivially 100%)
    # fraction of itself, which renders identically to the literal this
    # report used before the dedupe -- the golden snapshot pins that.
    table = design_area_yield_table(
        report,
        title=(
            "Table III: area recovery at a fixed pipeline yield target "
            f"({PIPELINE_YIELD_TARGET:.0%}) at T_target = {report.target_delay*1e12:.0f} ps"
        ),
    )
    checks = format_table(
        ["quantity", "value"],
        [
            ["stage processing order (by R_i)", " -> ".join(report.stage_order)],
            ["area change (%)", round(report.area_change_percent, 1)],
            ["pipeline yield before / after (%)",
             f"{100.0 * report.baseline.pipeline_yield:.1f}"
             f" / {100.0 * report.predicted_yield:.1f}"],
            ["Monte-Carlo yield before / after (%)",
             f"{100.0 * report.mc_yield_baseline:.1f} / {100.0 * report.mc_yield:.1f}"],
        ],
        title="Cross-checks",
    )
    return table + "\n\n" + checks


def reproduce_table3() -> str:
    spec = design_study(
        PipelineSpec(kind="iscas"),
        VariationSpec.combined(),
        DesignSpec(
            optimizer="global",
            sizer="lagrangian",
            sizer_options={"max_outer": 30},
            yield_target=PIPELINE_YIELD_TARGET,
            stage_yield=STAGE_YIELD_BASELINE,
            delay_policy="stage_max",
            delay_scale=0.78,
            curve_points=4,
            ordering="ri_ascending",
        ),
        n_samples=N_SAMPLES,
        seed=3,
    )
    return build_report(run_design(spec))


def test_table3_area_reduction(benchmark):
    report = run_once(benchmark, reproduce_table3)
    save_report("table3_area_reduction", report)
