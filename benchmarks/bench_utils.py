"""Shared helpers for the benchmark harness.

Every benchmark module reproduces one table or figure of the paper.  The
convention is:

* the workload runs exactly once per benchmark (``run_once``) -- these are
  experiments, not micro-benchmarks, so repeating them only wastes time,
* the reproduced rows/series are written to ``benchmarks/results/<name>.txt``
  (and echoed to stdout), so they survive pytest's output capturing and can
  be diffed against EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def run_once(benchmark, workload):
    """Run ``workload`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(workload, rounds=1, iterations=1, warmup_rounds=0)


def save_report(name: str, text: str) -> pathlib.Path:
    """Write a reproduced table/series to the results directory and stdout."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n===== {name} =====")
    print(text)
    return path
