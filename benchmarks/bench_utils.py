"""Shared helpers for the benchmark harness.

Every benchmark module reproduces one table or figure of the paper.  The
convention is:

* the workload runs exactly once per benchmark (``run_once``) -- these are
  experiments, not micro-benchmarks, so repeating them only wastes time,
* the reproduced rows/series are written to ``benchmarks/results/<name>.txt``
  (and echoed to stdout), so they survive pytest's output capturing and can
  be diffed against EXPERIMENTS.md,
* characterisation goes through the Study API (:mod:`repro.api`) on one
  module-shared :class:`~repro.api.session.Session`, so benchmarks that ask
  for both the Monte-Carlo truth and the analytical model of the same
  configuration sample the circuit exactly once.
"""

from __future__ import annotations

import pathlib
import time

from repro.analysis.reporting import format_table
from repro.api import (
    AnalysisSpec,
    DelayReport,
    DesignReport,
    DesignSpec,
    DesignStudySpec,
    PipelineSpec,
    Session,
    Study,
    StudySpec,
    VariationSpec,
)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

_SESSION: Session | None = None


def run_once(benchmark, workload):
    """Run ``workload`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(workload, rounds=1, iterations=1, warmup_rounds=0)


def timed_seconds(fn, *args, **kwargs):
    """(wall seconds, result) of one call -- the perf benches' stopwatch."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return time.perf_counter() - start, result


def best_of_seconds(repeats, fn, *args, **kwargs):
    """Best wall-clock of ``repeats`` calls (the first pays cache compile)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        seconds, result = timed_seconds(fn, *args, **kwargs)
        best = min(best, seconds)
    return best, result


def save_report(name: str, text: str) -> pathlib.Path:
    """Write a reproduced table/series to the results directory and stdout."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n===== {name} =====")
    print(text)
    return path


# ----------------------------------------------------------------------
# Study-API helpers (the boilerplate formerly copy-pasted per benchmark)
# ----------------------------------------------------------------------
def study_session() -> Session:
    """The session shared by every benchmark of one pytest run."""
    global _SESSION
    if _SESSION is None:
        _SESSION = Session()
    return _SESSION


def inverter_chain_spec(
    n_stages: int, logic_depth, size: float = 1.0
) -> PipelineSpec:
    """Spec for the paper's ``N_S x N_L`` inverter-chain pipelines."""
    return PipelineSpec(
        kind="inverter_chain", n_stages=n_stages, logic_depth=logic_depth, size=size
    )


def study_spec(
    pipeline: PipelineSpec,
    variation: VariationSpec,
    n_samples: int,
    seed: int,
    **spec_kwargs,
) -> StudySpec:
    """A Monte-Carlo study spec for one pipeline configuration."""
    return StudySpec(
        pipeline=pipeline,
        variation=variation,
        analysis=AnalysisSpec(backend="montecarlo", n_samples=n_samples, seed=seed),
        **spec_kwargs,
    )


def pipeline_study(
    pipeline: PipelineSpec,
    variation: VariationSpec,
    n_samples: int,
    seed: int,
    **spec_kwargs,
) -> Study:
    """A Monte-Carlo study of one configuration on the shared session."""
    return Study(
        study_spec(pipeline, variation, n_samples, seed, **spec_kwargs),
        session=study_session(),
    )


def characterize(
    pipeline: PipelineSpec,
    variation: VariationSpec,
    n_samples: int,
    seed: int,
) -> tuple[DelayReport, DelayReport]:
    """(Monte-Carlo, analytical-model) report pair from one sampling run.

    This is the comparison every model-verification benchmark makes: the
    two reports share the cached characterisation, so the analytical
    columns are Clark's method applied to exactly the samples the
    Monte-Carlo columns summarise -- the paper's Table I / Fig. 2 setup.
    """
    study = pipeline_study(pipeline, variation, n_samples, seed)
    return study.run(), study.run(backend="analytic")


# ----------------------------------------------------------------------
# Design-API helpers (the design-flow mirror of the study helpers)
# ----------------------------------------------------------------------
def design_study(
    pipeline: PipelineSpec,
    variation: VariationSpec,
    design: DesignSpec,
    n_samples: int | None = None,
    seed: int | None = None,
    **spec_kwargs,
) -> DesignStudySpec:
    """A design study spec, with Monte-Carlo validation when sampled."""
    validation = (
        None
        if n_samples is None
        else AnalysisSpec(backend="montecarlo", n_samples=n_samples, seed=seed)
    )
    return DesignStudySpec(
        pipeline=pipeline,
        variation=variation,
        design=design,
        validation=validation,
        **spec_kwargs,
    )


def run_design(spec: DesignStudySpec) -> DesignReport:
    """Run a design study on the shared session (cached baselines/curves)."""
    return study_session().design(spec)


def design_area_yield_table(report: DesignReport, title: str) -> str:
    """The Tables II/III before/after area-and-yield table of one report.

    Per-stage rows show area (as a percentage of the baseline total) and
    model stage yield before and after the optimization, followed by the
    pipeline totals row.  The rendering is shared by ``bench_table2`` and
    ``bench_table3`` and is pinned byte for byte by the golden snapshots.
    """
    before = report.baseline
    after = report.after
    total_before = before.total_area
    rows = []
    for index, name in enumerate(before.stage_names):
        rows.append([
            name,
            round(100.0 * before.stage_areas[index] / total_before, 1),
            round(100.0 * before.stage_yields[index], 1),
            round(100.0 * after.stage_areas[index] / total_before, 1),
            round(100.0 * after.stage_yields[index], 1),
        ])
    rows.append([
        "Pipeline",
        round(100.0 * before.total_area / total_before, 1),
        round(100.0 * before.pipeline_yield, 1),
        round(100.0 * after.total_area / total_before, 1),
        round(100.0 * after.pipeline_yield, 1),
    ])
    return format_table(
        ["stage", "area before (%)", "yield before (%)", "area after (%)", "yield after (%)"],
        rows,
        title=title,
    )
