"""Pytest configuration for the benchmark harness."""

import importlib.util
import pathlib
import sys

# Make the local helper module importable regardless of how pytest sets up
# rootdir / sys.path for the benchmarks directory.
sys.path.insert(0, str(pathlib.Path(__file__).parent))

# The figure/table reproductions need the pytest-benchmark plugin for their
# ``benchmark`` fixture; without it, collecting them imports every bench
# script only to error on fixture lookup.  Skip collecting those modules
# when the plugin is absent.  The two perf micro-benchmarks use their own
# stopwatch (bench_utils.timed_seconds) and always collect.
_PLUGIN_FREE = {
    "bench_perf_timing.py",
    "bench_perf_sizing.py",
    "bench_resilience.py",
    "bench_utils.py",
}

if importlib.util.find_spec("pytest_benchmark") is None:
    import pytest

    collect_ignore = sorted(
        path.name
        for path in pathlib.Path(__file__).parent.glob("bench_*.py")
        if path.name not in _PLUGIN_FREE
    )

    @pytest.fixture
    def benchmark():
        # Explicitly named bench files bypass collect_ignore; give their
        # ``benchmark`` fixture requests a clean skip instead of an error.
        pytest.skip("pytest-benchmark is not installed")
