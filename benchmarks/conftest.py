"""Pytest configuration for the benchmark harness."""

import sys
import pathlib

# Make the local helper module importable regardless of how pytest sets up
# rootdir / sys.path for the benchmarks directory.
sys.path.insert(0, str(pathlib.Path(__file__).parent))
