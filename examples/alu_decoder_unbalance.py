#!/usr/bin/env python3
"""Balanced vs. deliberately unbalanced pipeline design (paper section 3.2).

Reproduces the paper's Fig. 6-8 story at example scale on the 3-stage
ALU / Decoder / ALU pipeline:

1. design the balanced baseline: every stage independently sized for the same
   delay target with the per-stage yield budget (0.80)^(1/3),
2. characterise each stage's area-vs-delay curve and classify the stages with
   the eq. 14 sensitivity heuristic,
3. move area from the "cheap to slow down" stages to the "cheap to speed up"
   ones at constant total area (and do the inverse as the cautionary "worst"
   case),
4. verify all three designs with Monte-Carlo and compare their yields.

Run:  python examples/alu_decoder_unbalance.py
"""

from __future__ import annotations

from repro import MonteCarloEngine, VariationModel, alu_decoder_pipeline
from repro.analysis.reporting import format_table
from repro.core.yield_model import stage_yield_budget
from repro.optimize.area_delay import characterize_stage
from repro.optimize.balance import design_balanced_pipeline
from repro.optimize.lagrangian import LagrangianSizer
from repro.optimize.redistribute import redistribute_area
from repro.process.technology import default_technology

PIPELINE_YIELD_TARGET = 0.80


def main() -> None:
    pipeline = alu_decoder_pipeline(width=8, n_address=4)
    variation = VariationModel.combined()
    sizer = LagrangianSizer(default_technology(), variation)
    stage_yield = stage_yield_budget(PIPELINE_YIELD_TARGET, pipeline.n_stages)

    # Delay target: tight enough that every stage needs real sizing effort.
    fastest = min(
        sizer.stage_distribution(stage).delay_at_yield(stage_yield)
        for stage in pipeline.stages
    )
    target_delay = 0.85 * fastest
    print(f"Pipeline delay target: {target_delay * 1e12:.1f} ps, "
          f"per-stage yield budget {stage_yield:.4f}\n")

    # --- balanced baseline --------------------------------------------------
    balanced = design_balanced_pipeline(pipeline, sizer, target_delay, PIPELINE_YIELD_TARGET)
    print(format_table(
        ["stage", "area (um^2)", "stage yield (%)"],
        [
            [name, round(area, 1), round(100.0 * y, 1)]
            for name, area, y in zip(
                balanced.pipeline.stage_names,
                balanced.stage_areas(),
                balanced.stage_yields(),
            )
        ],
        title="Balanced design (every stage at the same delay target)",
    ))
    print()

    # --- eq. 14 classification ----------------------------------------------
    curves = {
        stage.name: characterize_stage(stage, sizer, stage_yield, n_points=5)
        for stage in balanced.pipeline.stages
    }
    print(format_table(
        ["stage", "R_i", "eq. 14 action"],
        [
            [name, round(curve.sensitivity_ratio(target_delay), 2),
             "shrink (donate area)" if curve.sensitivity_ratio(target_delay) > 1 else "grow (receive area)"]
            for name, curve in curves.items()
        ],
        title="Area-delay sensitivity (eq. 14)",
    ))
    print()

    # --- constant-area redistribution ---------------------------------------
    designs = {"balanced": balanced.pipeline}
    for mode in ("best", "worst"):
        redistribution = redistribute_area(
            balanced.pipeline, curves, sizer, target_delay, stage_yield,
            fraction=0.10, mode=mode,
        )
        designs[f"unbalanced ({mode})"] = redistribution.pipeline

    engine = MonteCarloEngine(variation, n_samples=3000, seed=8)
    rows = []
    for label, design in designs.items():
        mc = engine.run_pipeline(design)
        rows.append([
            label,
            round(design.total_area(), 1),
            round(mc.pipeline_result().mean * 1e12, 1),
            round(100.0 * mc.yield_at(target_delay), 1),
        ])
    print(format_table(
        ["design", "total area (um^2)", "MC mean delay (ps)",
         f"MC yield @ {target_delay*1e12:.0f} ps (%)"],
        rows,
        title="Balanced vs. unbalanced at (approximately) constant area (Monte-Carlo)",
    ))


if __name__ == "__main__":
    main()
