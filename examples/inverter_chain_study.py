#!/usr/bin/env python3
"""Logic depth vs. number of stages under process variation (paper section 3.1).

Reproduces the paper's Fig. 5 analysis at example scale:

* variability (sigma/mu) of a single stage as a function of its logic depth,
  under purely random intra-die variation and with inter-die variation added,
* variability of the whole pipeline as a function of the number of stages,
  for several cross-stage correlation values,
* the Fig. 5(c) experiment: hold ``N_S x N_L = 120`` constant and sweep the
  split, showing the crossover between the intra-die-dominated regime (more
  stages hurt) and the inter-die-dominated regime (more stages help).

Run:  python examples/inverter_chain_study.py
"""

from __future__ import annotations

import numpy as np

from repro import MonteCarloEngine, VariationModel, inverter_chain_pipeline
from repro.analysis.reporting import format_series
from repro.core.stage_delay import StageDelayDistribution
from repro.core.variability import (
    GateVariability,
    normalized_series,
    pipeline_variability_fixed_total_depth,
    pipeline_variability_vs_stages,
    stage_variability_vs_logic_depth,
)


def gate_variability_from_monte_carlo(variation: VariationModel) -> GateVariability:
    """Calibrate the closed-form gate variance decomposition against the engine."""
    single_gate = inverter_chain_pipeline(1, 1)
    engine = MonteCarloEngine(variation, n_samples=4000, seed=3)
    result = engine.run_pipeline(single_gate).stage_result(0)
    # Split the measured sigma between the die-wide and the per-gate part
    # according to the variation model's sigma ratios (good enough for the
    # qualitative study; the benchmarks do the full Monte-Carlo version).
    total = result.std
    inter_fraction = variation.sigma_vth_inter / max(
        variation.sigma_vth_inter + variation.sigma_vth_random, 1e-12
    )
    return GateVariability(
        mu=result.mean,
        sigma_random=total * (1.0 - inter_fraction),
        sigma_die=total * inter_fraction,
    )


def main() -> None:
    depths = [5, 10, 20, 40]
    print("--- Stage variability vs. logic depth (Fig. 5(a)) ---")
    series = {}
    for label, variation in [
        ("random intra only", VariationModel.intra_random_only()),
        ("intra + inter (20mV)", VariationModel.combined(sigma_vth_inter=0.020)),
        ("intra + inter (40mV)", VariationModel.combined(sigma_vth_inter=0.040)),
    ]:
        gate = gate_variability_from_monte_carlo(variation)
        values = stage_variability_vs_logic_depth(gate, depths)
        series[label] = np.round(normalized_series(values), 3)
    print(format_series("logic depth", depths, series))
    print()

    print("--- Pipeline variability vs. number of stages (Fig. 5(b)) ---")
    counts = [4, 8, 16, 32]
    stage = StageDelayDistribution(200e-12, 8e-12)
    series = {
        f"rho = {rho}": np.round(
            normalized_series(pipeline_variability_vs_stages(stage, counts, rho)), 3
        )
        for rho in (0.0, 0.2, 0.5)
    }
    print(format_series("number of stages", counts, series))
    print()

    print("--- Fixed total depth N_S x N_L = 120 (Fig. 5(c)) ---")
    counts = [4, 6, 8, 12, 24]
    series = {}
    for label, gate in [
        ("intra only", GateVariability(mu=10e-12, sigma_random=1.5e-12)),
        ("inter 20mV", GateVariability(mu=10e-12, sigma_random=1.5e-12, sigma_die=0.8e-12)),
        ("inter 40mV", GateVariability(mu=10e-12, sigma_random=1.5e-12, sigma_die=1.6e-12)),
    ]:
        values = pipeline_variability_fixed_total_depth(gate, 120, counts)
        series[label] = np.round(values, 4)
    print(format_series("number of stages", counts, series))
    print()
    print(
        "Note the crossover: with only intra-die variation the sigma/mu ratio\n"
        "rises with the stage count, while with strong inter-die variation it\n"
        "falls -- the paper's Fig. 5(c) observation."
    )


if __name__ == "__main__":
    main()
