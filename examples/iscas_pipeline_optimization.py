#!/usr/bin/env python3
"""Global pipeline optimization under a yield constraint (paper section 4).

Runs the Fig. 9 flow on a 2-stage ISCAS85 pipeline (c432 + c1908 stand-ins;
the benchmark harness runs the paper's full 4-stage version) through the
Design API: the whole experiment is one declarative ``DesignStudySpec``,

1. conventional baseline: each stage individually sized for a 95 % stage
   yield at the pipeline delay target (the ``balanced`` flow every optimizer
   starts from),
2. global optimization: one stage at a time, ordered by the eq. 14
   sensitivity ratio, re-sized against the *pipeline* yield target using the
   statistical pipeline model with SSTA-derived correlations,
3. Monte-Carlo verification of both designs (the spec's validation block).

Run:  python examples/iscas_pipeline_optimization.py
"""

from __future__ import annotations

from repro import (
    AnalysisSpec,
    DesignSpec,
    DesignStudySpec,
    PipelineSpec,
    VariationSpec,
    run_study,
)
from repro.analysis.reporting import format_table

PIPELINE_YIELD_TARGET = 0.80
STAGE_YIELD_BASELINE = 0.95


def main() -> None:
    spec = DesignStudySpec(
        pipeline=PipelineSpec(
            kind="iscas", benchmarks=("c432", "c1908"), name="iscas_2stage"
        ),
        variation=VariationSpec.combined(),
        design=DesignSpec(
            optimizer="global",
            sizer="lagrangian",
            sizer_options={"max_outer": 30},
            yield_target=PIPELINE_YIELD_TARGET,
            stage_yield=STAGE_YIELD_BASELINE,
            # A delay target that the harder stage can only just reach at
            # 95 %: aggressively size each stage (0.6x its baseline delay)
            # and take 0.99x the slowest achieved delay.
            delay_policy="sized",
            delay_probe=0.6,
            delay_scale=0.99,
            curve_points=4,
        ),
        validation=AnalysisSpec(n_samples=1500, seed=4),
    )
    report = run_study(spec)

    print(f"Pipeline delay target: {report.target_delay * 1e12:.0f} ps, "
          f"pipeline yield target {PIPELINE_YIELD_TARGET:.0%}\n")

    before = report.baseline
    after = report.after
    rows = []
    for index, name in enumerate(report.stage_names):
        rows.append([
            name,
            round(before.stage_areas[index], 1),
            round(100.0 * before.stage_yields[index], 1),
            round(after.stage_areas[index], 1),
            round(100.0 * after.stage_yields[index], 1),
        ])
    rows.append([
        "Pipeline",
        round(before.total_area, 1),
        round(100.0 * before.pipeline_yield, 1),
        round(after.total_area, 1),
        round(100.0 * after.pipeline_yield, 1),
    ])
    print(format_table(
        ["stage", "area before", "yield before (%)", "area after", "yield after (%)"],
        rows,
        title="Individually optimized baseline vs. global optimization (Fig. 9 flow)",
    ))
    print()
    print(f"Stage processing order (ascending R_i): {' -> '.join(report.stage_order)}")
    print(f"Monte-Carlo pipeline yield: before {100*report.mc_yield_baseline:.1f} %, "
          f"after {100*report.mc_yield:.1f} %")


if __name__ == "__main__":
    main()
