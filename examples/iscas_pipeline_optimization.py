#!/usr/bin/env python3
"""Global pipeline optimization under a yield constraint (paper section 4).

Runs the Fig. 9 flow on a 2-stage ISCAS85 pipeline (c432 + c1908 stand-ins;
the benchmark harness runs the paper's full 4-stage version):

1. conventional baseline: each stage individually sized for a 95 % stage
   yield at the pipeline delay target,
2. global optimization: one stage at a time, ordered by the eq. 14
   sensitivity ratio, re-sized against the *pipeline* yield target using the
   statistical pipeline model with SSTA-derived correlations,
3. Monte-Carlo verification of both designs.

Run:  python examples/iscas_pipeline_optimization.py
"""

from __future__ import annotations

from repro import MonteCarloEngine, VariationModel, iscas_pipeline
from repro.analysis.reporting import format_table
from repro.optimize.balance import design_balanced_pipeline
from repro.optimize.global_opt import GlobalPipelineOptimizer
from repro.optimize.lagrangian import LagrangianSizer
from repro.process.technology import default_technology

PIPELINE_YIELD_TARGET = 0.80
STAGE_YIELD_BASELINE = 0.95


def main() -> None:
    pipeline = iscas_pipeline(["c432", "c1908"], name="iscas_2stage")
    variation = VariationModel.combined()
    sizer = LagrangianSizer(default_technology(), variation, max_outer=30)

    # A delay target that the harder stage can only just reach at 95 %.
    achievable = []
    for stage in pipeline.stages:
        aggressive = sizer.size_stage(
            stage,
            0.6 * sizer.stage_distribution(stage).delay_at_yield(STAGE_YIELD_BASELINE),
            STAGE_YIELD_BASELINE,
            apply=False,
        )
        achievable.append(aggressive.stage_delay.delay_at_yield(STAGE_YIELD_BASELINE))
    target_delay = 0.99 * max(achievable)
    print(f"Pipeline delay target: {target_delay * 1e12:.0f} ps, "
          f"pipeline yield target {PIPELINE_YIELD_TARGET:.0%}\n")

    baseline = design_balanced_pipeline(
        pipeline, sizer, target_delay, PIPELINE_YIELD_TARGET,
        stage_yield_target=STAGE_YIELD_BASELINE,
    )

    optimizer = GlobalPipelineOptimizer(sizer, curve_points=4)
    result = optimizer.optimize(baseline.pipeline, target_delay, PIPELINE_YIELD_TARGET)

    rows = []
    for index, name in enumerate(result.before.stage_names):
        rows.append([
            name,
            round(result.before.stage_areas[index], 1),
            round(100.0 * result.before.stage_yields[index], 1),
            round(result.after.stage_areas[index], 1),
            round(100.0 * result.after.stage_yields[index], 1),
        ])
    rows.append([
        "Pipeline",
        round(result.before.total_area, 1),
        round(100.0 * result.before.pipeline_yield, 1),
        round(result.after.total_area, 1),
        round(100.0 * result.after.pipeline_yield, 1),
    ])
    print(format_table(
        ["stage", "area before", "yield before (%)", "area after", "yield after (%)"],
        rows,
        title="Individually optimized baseline vs. global optimization (Fig. 9 flow)",
    ))
    print()
    print(f"Stage processing order (ascending R_i): {' -> '.join(result.stage_order)}")

    engine = MonteCarloEngine(variation, n_samples=1500, seed=4)
    mc_before = engine.run_pipeline(baseline.pipeline).yield_at(target_delay)
    mc_after = engine.run_pipeline(result.pipeline).yield_at(target_delay)
    print(f"Monte-Carlo pipeline yield: before {100*mc_before:.1f} %, "
          f"after {100*mc_after:.1f} %")


if __name__ == "__main__":
    main()
