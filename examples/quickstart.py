#!/usr/bin/env python3
"""Quickstart: estimate the delay distribution and yield of a simple pipeline.

This walks the core loop of the paper on the Fig. 1 example shape (a 5-stage
pipeline) through the Study API -- the single entrypoint that every figure
and table of the reproduction uses:

1. declare the experiment: a pipeline of inverter-chain stages in the
   synthetic 70 nm node under inter- + intra-die variation (a ``StudySpec``
   -- pure data, JSON-round-trippable),
2. run it through the ``montecarlo`` backend (the SPICE stand-in),
3. ask the *same* question of the ``analytic`` backend (the paper's Clark
   model, section 2.2, fed by the cached characterisation) and of the
   ``ssta`` backend (canonical-form SSTA, no sampling at all),
4. compare the three backends' yield estimates at one target clock period
   (paper section 2.3) -- one session, one query, three interchangeable
   engines.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import AnalysisSpec, PipelineSpec, Study, VariationSpec
from repro.analysis.reporting import format_table


def main() -> None:
    # A 5-stage pipeline, each stage an 8-deep inverter chain (the paper's
    # "5 x 8" model-verification configuration), under inter-die + intra-die
    # (random and spatially correlated) variation.
    study = Study(
        pipeline=PipelineSpec(kind="inverter_chain", n_stages=5, logic_depth=8),
        variation=VariationSpec.combined(),
        analysis=AnalysisSpec(backend="montecarlo", n_samples=5000, seed=1),
    )

    # --- 1. Monte-Carlo characterisation (the SPICE stand-in) -------------
    mc = study.run()
    rows = [
        [name, mean * 1e12, std * 1e12, std / mean]
        for name, mean, std in zip(mc.stage_names, mc.stage_means, mc.stage_stds)
    ]
    print(format_table(
        ["stage", "mean (ps)", "sigma (ps)", "sigma/mu"],
        rows,
        title="Per-stage delay distributions (Monte-Carlo)",
    ))
    print()

    # --- 2. The same question through the model backends -------------------
    # "analytic" = the paper's model: Clark's max over the (cached)
    # Monte-Carlo-characterised stages.  "ssta" = canonical-form SSTA,
    # no sampling anywhere.  Both return the same typed DelayReport.
    model = study.run(backend="analytic")
    ssta = study.run(backend="ssta")

    print(format_table(
        ["quantity", "Monte-Carlo", "analytical model", "SSTA"],
        [
            ["pipeline mean (ps)", mc.pipeline_mean * 1e12,
             model.pipeline_mean * 1e12, ssta.pipeline_mean * 1e12],
            ["pipeline sigma (ps)", mc.pipeline_std * 1e12,
             model.pipeline_std * 1e12, ssta.pipeline_std * 1e12],
            ["sigma/mu", mc.variability, model.variability, ssta.variability],
        ],
        title="Pipeline delay: T_P = max_i SD_i",
    ))
    print()

    # --- 3. Yield at a target clock period ---------------------------------
    target = mc.delay_at_yield(0.85)
    rows = [
        ["Monte-Carlo", 100.0 * mc.yield_at(target)],
        ["Gaussian T_P approximation (eq. 9)", 100.0 * model.yield_at(target)],
        ["canonical-form SSTA", 100.0 * ssta.yield_at(target)],
    ]
    print(format_table(
        ["estimator", f"yield @ {target * 1e12:.1f} ps (%)"],
        rows,
        title="Yield estimation",
    ))
    print()
    print(
        "The clock period this pipeline can run at with 90 % yield is "
        f"{model.delay_at_yield(0.90) * 1e12:.1f} ps."
    )


if __name__ == "__main__":
    main()
