#!/usr/bin/env python3
"""Quickstart: estimate the delay distribution and yield of a simple pipeline.

This walks the core loop of the paper on the Fig. 1 example shape (a 5-stage
pipeline):

1. build a pipeline of inverter-chain stages in the synthetic 70 nm node,
2. characterise the per-stage delay distributions with the Monte-Carlo
   engine (the SPICE stand-in),
3. feed the stage means / sigmas / correlations into the analytical pipeline
   delay model (Clark's max approximation, paper section 2.2),
4. compare the analytical yield estimate with the Monte-Carlo yield
   (paper section 2.3).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import MonteCarloEngine, PipelineDelayModel, VariationModel, inverter_chain_pipeline
from repro.analysis.reporting import format_table
from repro.core.yield_model import yield_correlated


def main() -> None:
    # A 5-stage pipeline, each stage an 8-deep inverter chain (the paper's
    # "5 x 8" model-verification configuration).
    pipeline = inverter_chain_pipeline(n_stages=5, logic_depth=8)

    # Inter-die + intra-die (random and spatially correlated) variation.
    variation = VariationModel.combined()

    # --- 1. Monte-Carlo characterisation (the SPICE stand-in) -------------
    engine = MonteCarloEngine(variation, n_samples=5000, seed=1)
    mc = engine.run_pipeline(pipeline)

    rows = []
    for name in mc.stage_names:
        stage = mc.stage_result(name)
        rows.append([name, stage.mean * 1e12, stage.std * 1e12, stage.variability])
    print(format_table(
        ["stage", "mean (ps)", "sigma (ps)", "sigma/mu"],
        rows,
        title="Per-stage delay distributions (Monte-Carlo)",
    ))
    print()

    # --- 2. Analytical pipeline delay distribution -------------------------
    stages = mc.stage_distributions()
    correlations = mc.correlation_matrix()
    model = PipelineDelayModel(stages, correlations)
    estimate = model.estimate()
    pipeline_mc = mc.pipeline_result()

    print(format_table(
        ["quantity", "Monte-Carlo", "analytical model"],
        [
            ["pipeline mean (ps)", pipeline_mc.mean * 1e12, estimate.mean * 1e12],
            ["pipeline sigma (ps)", pipeline_mc.std * 1e12, estimate.std * 1e12],
            ["sigma/mu", pipeline_mc.variability, estimate.variability],
        ],
        title="Pipeline delay: T_P = max_i SD_i",
    ))
    print()

    # --- 3. Yield at a target clock period ---------------------------------
    target = float(np.quantile(mc.pipeline_samples, 0.85))
    rows = [
        ["Monte-Carlo", 100.0 * mc.yield_at(target)],
        ["Gaussian T_P approximation (eq. 9)", 100.0 * yield_correlated(stages, target, correlations)],
    ]
    print(format_table(
        ["estimator", f"yield @ {target * 1e12:.1f} ps (%)"],
        rows,
        title="Yield estimation",
    ))
    print()
    print(
        "The clock period this pipeline can run at with 90 % yield is "
        f"{estimate.delay_at_yield(0.90) * 1e12:.1f} ps."
    )


if __name__ == "__main__":
    main()
