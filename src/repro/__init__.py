"""repro: statistical pipeline delay modeling and yield-driven pipeline design.

Reproduction of Datta, Bhunia, Mukhopadhyay, Banerjee and Roy,
"Statistical Modeling of Pipeline Delay and Design of Pipeline under Process
Variation to Enhance Yield in sub-100nm Technologies", DATE 2005.

Subpackages
-----------
core
    The paper's analytical contribution: Clark-based pipeline delay
    distribution estimation, yield models, design-space bounds, variability
    and imbalance analyses.
process
    Technology constants and the inter-die / intra-die random / intra-die
    systematic variation model with spatial correlation.
circuit
    Cell library, netlist DAG, sequential-element timing, circuit generators
    and synthetic ISCAS85 stand-ins.
timing
    Gate delay model, deterministic STA and canonical-form SSTA.
montecarlo
    The SPICE-Monte-Carlo stand-in: vectorised sampling of stage and pipeline
    delays.
pipeline
    Pipeline stages, floorplanning and builders for the paper's designs.
optimize
    Statistical gate sizing (Lagrangian-relaxation and greedy), balanced
    design, imbalance redistribution and the Fig. 9 global pipeline
    optimization flow.
analysis
    Histogram, error-metric and report-formatting helpers shared by the
    benchmark harness.
api
    The unified Study/Design API: declarative experiment specs, pluggable
    delay-analysis backends behind one :class:`DelayReport`, pluggable
    pipeline optimizers behind one :class:`DesignReport`, cached sessions
    and the scenario-sweep runner.  This facade is the preferred
    entrypoint; the subpackages above remain the building blocks.
serve
    The study API as a service: a stdlib-only asyncio HTTP server
    (:class:`StudyServer`) routing study/design/sweep submissions through
    one shared cached :class:`Session`, coalescing identical concurrent
    requests by content digest, streaming sweep points as NDJSON and
    enforcing per-tier request budgets; plus the typed :class:`Client`
    and the ``python -m repro.serve`` entrypoint.
verify
    The differential verification subsystem: a registry of oracles pairing
    every vectorized kernel with its retained naive reference (and every
    analytical model with its Monte-Carlo ground truth), a seeded scenario
    fuzzer, report invariants, a committed scenario corpus and the
    :func:`run_conformance` harness every perf/refactor PR leans on.
"""

from repro.api.backends import DelayReport, available_backends, register_backend
from repro.circuit.ingest import (  # registers the bench/yosys_json/scale_logic kinds
    CellMapping,
    ParseError,
    load_bench,
    load_yosys_json,
    parse_bench,
    parse_yosys_json,
    scale_logic_block,
    write_bench,
    write_yosys_json,
)
from repro.circuit.netlist import NetlistError, NetlistLookupError
from repro.api.canonical import spec_digest
from repro.api.design import (
    DesignReport,
    available_optimizers,
    register_optimizer,
)
from repro.api.session import Session, Study, run_study
from repro.api.spec import (
    AnalysisSpec,
    DesignSpec,
    DesignStudySpec,
    PipelineSpec,
    StudySpec,
    VariationSpec,
)
from repro.api.sweep import ScenarioSweep, SweepResult, run_sweep
from repro.optimize.sizers import available_sizers, register_sizer
from repro.robust import (
    CheckpointStore,
    ExecutionPolicy,
    ExecutionTrace,
    FaultPlan,
    FaultSpec,
    PointFailure,
    SweepExecutionError,
)
from repro.core.pipeline_delay import PipelineDelayEstimate, PipelineDelayModel
from repro.core.stage_delay import StageDelayDistribution
from repro.core.yield_model import (
    yield_correlated,
    yield_from_samples,
    yield_independent,
)
from repro.montecarlo.engine import MonteCarloEngine
from repro.pipeline.builder import (
    alu_decoder_pipeline,
    inverter_chain_pipeline,
    iscas_pipeline,
)
from repro.pipeline.pipeline import Pipeline
from repro.pipeline.stage import PipelineStage
from repro.process.technology import Technology, default_technology
from repro.serve import (
    BackgroundServer,
    Client,
    ServeBudgets,
    ServeConfig,
    ServerError,
    StudyServer,
)
from repro.process.variation import VariationModel
from repro.timing.incremental import IncrementalTimer, SizingState
from repro.timing.kernels import KernelConfig
from repro.timing.ssta import StatisticalTimingAnalyzer
from repro.verify import ConformanceReport, Scenario, ScenarioFuzzer, run_conformance

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "AnalysisSpec",
    "BackgroundServer",
    "CheckpointStore",
    "Client",
    "DelayReport",
    "DesignReport",
    "DesignSpec",
    "DesignStudySpec",
    "ExecutionPolicy",
    "ExecutionTrace",
    "FaultPlan",
    "FaultSpec",
    "PipelineSpec",
    "PointFailure",
    "ScenarioSweep",
    "ServeBudgets",
    "ServeConfig",
    "ServerError",
    "Session",
    "Study",
    "StudyServer",
    "StudySpec",
    "SweepExecutionError",
    "SweepResult",
    "VariationSpec",
    "available_backends",
    "available_optimizers",
    "available_sizers",
    "register_backend",
    "register_optimizer",
    "register_sizer",
    "run_study",
    "run_sweep",
    "spec_digest",
    "StageDelayDistribution",
    "PipelineDelayModel",
    "PipelineDelayEstimate",
    "yield_independent",
    "yield_correlated",
    "yield_from_samples",
    "MonteCarloEngine",
    "Pipeline",
    "PipelineStage",
    "inverter_chain_pipeline",
    "iscas_pipeline",
    "alu_decoder_pipeline",
    "Technology",
    "default_technology",
    "VariationModel",
    "StatisticalTimingAnalyzer",
    "IncrementalTimer",
    "KernelConfig",
    "SizingState",
    "ConformanceReport",
    "Scenario",
    "ScenarioFuzzer",
    "run_conformance",
    "CellMapping",
    "NetlistError",
    "NetlistLookupError",
    "ParseError",
    "load_bench",
    "load_yosys_json",
    "parse_bench",
    "parse_yosys_json",
    "scale_logic_block",
    "write_bench",
    "write_yosys_json",
]
