"""Experiment-level analysis utilities.

Shared helpers for the benchmark harness and examples:

* :mod:`repro.analysis.histogram` -- normalised histograms and
  distribution-overlay series (the Fig. 2 / Fig. 7(a) plots as data tables),
* :mod:`repro.analysis.error_metrics` -- model-vs-Monte-Carlo error metrics
  (percent error in mean / sigma / yield),
* :mod:`repro.analysis.reporting` -- plain-text tables and series renderers
  so every benchmark prints the same rows/series the paper's tables and
  figures report.
"""

from repro.analysis.error_metrics import ModelErrorReport, compare_model_to_samples, percent_error
from repro.analysis.histogram import distribution_series, histogram_series
from repro.analysis.reporting import format_series, format_table

__all__ = [
    "percent_error",
    "compare_model_to_samples",
    "ModelErrorReport",
    "histogram_series",
    "distribution_series",
    "format_table",
    "format_series",
]
