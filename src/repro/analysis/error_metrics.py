"""Model-vs-Monte-Carlo error metrics.

The paper validates its analytical models by comparing the predicted mean,
standard deviation and yield against SPICE Monte-Carlo (Table I, Fig. 3).
These helpers compute the same comparisons against this repo's Monte-Carlo
engine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def percent_error(estimate: float, reference: float) -> float:
    """Percent error of an estimate against a reference value.

    Returns 0 when both values are zero; raises if only the reference is zero
    (the error would be undefined).
    """
    if reference == 0.0:
        if estimate == 0.0:
            return 0.0
        raise ValueError("percent error undefined for a zero reference value")
    return 100.0 * abs(estimate - reference) / abs(reference)


@dataclass(frozen=True)
class ModelErrorReport:
    """Comparison of an analytical estimate against Monte-Carlo samples."""

    model_mean: float
    model_std: float
    mc_mean: float
    mc_std: float
    mean_error_percent: float
    std_error_percent: float
    model_yield: float | None = None
    mc_yield: float | None = None

    @property
    def yield_error_points(self) -> float | None:
        """Absolute yield error in percentage points (None when not computed)."""
        if self.model_yield is None or self.mc_yield is None:
            return None
        return abs(self.model_yield - self.mc_yield) * 100.0


def compare_model_to_samples(
    model_mean: float,
    model_std: float,
    samples: np.ndarray,
    target_delay: float | None = None,
    model_yield: float | None = None,
) -> ModelErrorReport:
    """Build a :class:`ModelErrorReport` from model moments and MC samples."""
    samples = np.asarray(samples, dtype=float)
    if samples.ndim != 1 or samples.size < 2:
        raise ValueError("need a 1-D array of at least two samples")
    mc_mean = float(samples.mean())
    mc_std = float(samples.std(ddof=1))
    mc_yield = None
    if target_delay is not None:
        mc_yield = float((samples <= target_delay).mean())
    return ModelErrorReport(
        model_mean=model_mean,
        model_std=model_std,
        mc_mean=mc_mean,
        mc_std=mc_std,
        mean_error_percent=percent_error(model_mean, mc_mean),
        std_error_percent=percent_error(model_std, mc_std),
        model_yield=model_yield,
        mc_yield=mc_yield,
    )
