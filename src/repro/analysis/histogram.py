"""Histogram and distribution-overlay helpers.

The paper's Figs. 2 and 7(a) overlay Monte-Carlo histograms with the
analytically predicted Gaussian.  The benchmarks reproduce those figures as
data series; these helpers produce the series.
"""

from __future__ import annotations

import numpy as np
from scipy.stats import norm


def histogram_series(
    samples: np.ndarray, bins: int = 30, density: bool = True
) -> tuple[np.ndarray, np.ndarray]:
    """Histogram of delay samples.

    Returns ``(bin_centres, values)``; values are a probability density when
    ``density`` is true, raw counts otherwise.
    """
    samples = np.asarray(samples, dtype=float)
    if samples.ndim != 1 or samples.size < 2:
        raise ValueError("need a 1-D array of at least two samples")
    counts, edges = np.histogram(samples, bins=bins, density=density)
    centres = 0.5 * (edges[:-1] + edges[1:])
    return centres, counts


def distribution_series(
    mean: float, std: float, delays: np.ndarray
) -> np.ndarray:
    """Gaussian density evaluated on a delay grid (the model overlay curve)."""
    delays = np.asarray(delays, dtype=float)
    if std <= 0.0:
        raise ValueError(f"std must be positive, got {std}")
    return norm.pdf(delays, loc=mean, scale=std)


def overlay_series(
    samples: np.ndarray, mean: float, std: float, bins: int = 30
) -> dict[str, np.ndarray]:
    """Monte-Carlo histogram plus the analytical Gaussian on the same grid.

    Returns a dict with ``delay`` (bin centres), ``monte_carlo`` (density)
    and ``analytical`` (density) arrays -- one Fig. 2 panel as data.
    """
    centres, density = histogram_series(samples, bins=bins, density=True)
    return {
        "delay": centres,
        "monte_carlo": density,
        "analytical": distribution_series(mean, std, centres),
    }
