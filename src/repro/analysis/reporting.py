"""Plain-text table and series rendering for the benchmark harness.

Every benchmark prints the rows of its paper table (or the series of its
paper figure) through these helpers so the output format is uniform and easy
to diff against EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np


def _format_cell(value) -> str:
    if isinstance(value, float) or isinstance(value, np.floating):
        if value == 0.0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000.0 or magnitude < 0.01:
            return f"{value:.3e}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as a fixed-width plain-text table."""
    string_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in string_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(render_row(row) for row in string_rows)
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[object]],
    title: str | None = None,
) -> str:
    """Render one figure's data as a table with the x axis in the first column."""
    headers = [x_label, *series.keys()]
    columns = [list(values) for values in series.values()]
    for name, column in zip(series.keys(), columns):
        if len(column) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(column)} values for {len(x_values)} x points"
            )
    rows = [
        [x, *[column[index] for column in columns]] for index, x in enumerate(x_values)
    ]
    return format_table(headers, rows, title=title)
