"""Unified Study API: declarative specs, pluggable backends, cached sessions.

This package is the one entrypoint for "analyse a pipeline under process
variation and query delay/yield" -- the loop every figure and table of the
paper runs.  It is organised as four layers:

:mod:`repro.api.spec`
    Frozen, validated, JSON-round-trippable experiment descriptions
    (:class:`PipelineSpec`, :class:`VariationSpec`, :class:`AnalysisSpec`,
    :class:`StudySpec`).
:mod:`repro.api.backends`
    The :class:`DelayAnalysisBackend` protocol, the backend registry
    (``montecarlo`` / ``analytic`` / ``ssta``) and the common typed
    :class:`DelayReport` every backend returns.
:mod:`repro.api.design`
    The :class:`PipelineOptimizer` protocol, the optimizer registry
    (``balanced`` / ``redistribute`` / ``global``) and the common typed
    :class:`DesignReport` every optimizer returns.
:mod:`repro.api.session`
    :class:`Session` (caches pipelines, timing schedules, Monte-Carlo
    characterisations and SSTA engines across queries, with
    ``SeedSequence``-based RNG streams), :class:`Study` and
    :func:`run_study`.
:mod:`repro.api.sweep`
    :class:`ScenarioSweep` / :func:`run_sweep`: grid and zip sweeps over
    spec axes with streaming results and optional process-parallel fan-out.
:mod:`repro.api.canonical`
    Canonical spec JSON, SHA-256 content digests (:func:`spec_digest` --
    shared by the checkpoint store and the study server's request
    coalescing) and the tagged wire envelopes specs/reports travel in.
"""

from repro.api.canonical import (
    canonical_spec_json,
    report_from_wire,
    report_to_wire,
    resolved_store_spec,
    spec_digest,
    spec_from_wire,
    spec_store_payload,
    spec_to_wire,
)
from repro.api.backends import (
    AnalyticBackend,
    DelayAnalysisBackend,
    DelayReport,
    MonteCarloBackend,
    SSTABackend,
    available_backends,
    get_backend,
    register_backend,
)
from repro.api.design import (
    BalancedDesigner,
    DesignReport,
    DesignSnapshot,
    GlobalDesigner,
    PipelineOptimizer,
    RedistributeDesigner,
    SizingTrace,
    available_optimizers,
    get_optimizer,
    register_optimizer,
)
from repro.api.session import Session, Study, derive_seed, run_study
from repro.api.spec import (
    AnalysisSpec,
    DesignSpec,
    DesignStudySpec,
    ExecutionPolicy,
    PipelineSpec,
    StudySpec,
    VariationSpec,
    pipeline_kinds,
    register_pipeline_kind,
)
from repro.api.sweep import ScenarioSweep, SweepPoint, SweepResult, run_sweep
from repro.robust.failures import (
    ExecutionTrace,
    PointFailure,
    SweepExecutionError,
)
from repro.robust.faults import FaultPlan, FaultSpec

__all__ = [
    "AnalysisSpec",
    "AnalyticBackend",
    "BalancedDesigner",
    "DelayAnalysisBackend",
    "DelayReport",
    "DesignReport",
    "DesignSnapshot",
    "DesignSpec",
    "DesignStudySpec",
    "ExecutionPolicy",
    "ExecutionTrace",
    "FaultPlan",
    "FaultSpec",
    "GlobalDesigner",
    "MonteCarloBackend",
    "PipelineOptimizer",
    "PipelineSpec",
    "PointFailure",
    "RedistributeDesigner",
    "SSTABackend",
    "ScenarioSweep",
    "Session",
    "SizingTrace",
    "Study",
    "StudySpec",
    "SweepExecutionError",
    "SweepPoint",
    "SweepResult",
    "VariationSpec",
    "available_backends",
    "available_optimizers",
    "canonical_spec_json",
    "derive_seed",
    "get_backend",
    "get_optimizer",
    "pipeline_kinds",
    "register_backend",
    "register_optimizer",
    "register_pipeline_kind",
    "report_from_wire",
    "report_to_wire",
    "resolved_store_spec",
    "run_study",
    "run_sweep",
    "spec_digest",
    "spec_from_wire",
    "spec_store_payload",
    "spec_to_wire",
]
