"""Pluggable delay-analysis backends and the common :class:`DelayReport`.

Every backend answers the same question -- *what is the delay distribution
and yield of this pipeline under this variation model?* -- and returns the
same typed report, so callers query delay and yield without knowing (or
importing) the machinery that produced the numbers:

``montecarlo``
    The SPICE stand-in: sampled ground truth.  Stage statistics, stage
    correlations and the pipeline delay are all empirical; the report keeps
    the pipeline delay samples so yield/quantile queries stay empirical too.
``analytic``
    The paper's model: stage distributions and correlations are measured
    with the (cached) Monte-Carlo characterisation, then the pipeline delay
    ``T_P = max_i SD_i`` is estimated with Clark's method (section 2.2) and
    yield queries use the Gaussian approximation (eq. 9).
``ssta``
    No sampling at all: per-stage canonical-form SSTA provides the stage
    means/sigmas and correlations analytically, and the pipeline level again
    uses Clark's method.

New backends register with :func:`register_backend` and become addressable
from any :class:`~repro.api.spec.AnalysisSpec` by name.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Any, Mapping, Protocol, runtime_checkable

import numpy as np
from scipy.stats import norm

from repro.api.spec import StudySpec
from repro.core.pipeline_delay import PipelineDelayModel
from repro.core.stage_delay import StageDelayDistribution

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.api.session import Session


# ----------------------------------------------------------------------
# The common report type
# ----------------------------------------------------------------------
@dataclass(frozen=True, eq=False)
class DelayReport:
    """Backend-agnostic delay/yield answer for one pipeline study.

    All delays are in seconds.  Scalar fields are plain tuples/floats (and
    ``samples`` a read-only float array), so reports compare equal after a
    JSON round trip and are cheap to pickle across process boundaries in
    parallel sweeps.

    Attributes
    ----------
    backend:
        Name of the backend that produced the report.
    stage_names / stage_means / stage_stds:
        Per-stage Gaussian delay statistics, in pipeline order.
    correlation:
        Cross-stage delay correlation matrix as nested tuples.
    pipeline_mean / pipeline_std:
        This backend's estimate of the pipeline delay distribution
        (empirical max statistics for Monte-Carlo, Clark's estimate for the
        model backends).
    jensen_lower_bound:
        ``max_i mu_i`` lower bound on the mean (eq. 3); model backends only.
    samples:
        Pipeline delay samples (Monte-Carlo backend only), stored as a
        read-only float64 array; when present, yield and quantile queries
        are empirical instead of Gaussian.
    """

    backend: str
    stage_names: tuple[str, ...]
    stage_means: tuple[float, ...]
    stage_stds: tuple[float, ...]
    correlation: tuple[tuple[float, ...], ...]
    pipeline_mean: float
    pipeline_std: float
    jensen_lower_bound: float | None = None
    samples: np.ndarray | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "stage_names", tuple(str(n) for n in self.stage_names))
        object.__setattr__(
            self, "stage_means", tuple(float(m) for m in self.stage_means)
        )
        object.__setattr__(self, "stage_stds", tuple(float(s) for s in self.stage_stds))
        object.__setattr__(
            self,
            "correlation",
            tuple(tuple(float(c) for c in row) for row in self.correlation),
        )
        object.__setattr__(self, "pipeline_mean", float(self.pipeline_mean))
        object.__setattr__(self, "pipeline_std", float(self.pipeline_std))
        if self.jensen_lower_bound is not None:
            object.__setattr__(
                self, "jensen_lower_bound", float(self.jensen_lower_bound)
            )
        if self.samples is not None:
            samples = np.array(self.samples, dtype=float)
            if samples.ndim != 1:
                raise ValueError(f"samples must be 1-D, got shape {samples.shape}")
            samples.setflags(write=False)
            object.__setattr__(self, "samples", samples)
        n = len(self.stage_names)
        if len(self.stage_means) != n or len(self.stage_stds) != n:
            raise ValueError(
                f"{n} stage names but {len(self.stage_means)} means / "
                f"{len(self.stage_stds)} stds"
            )
        if len(self.correlation) != n or any(len(row) != n for row in self.correlation):
            raise ValueError(f"correlation matrix must be {n}x{n}")

    def __eq__(self, other: object) -> bool:
        """Field equality; sample arrays compare elementwise (exact)."""
        if not isinstance(other, DelayReport):
            return NotImplemented
        if (self.samples is None) != (other.samples is None):
            return False
        if self.samples is not None and not np.array_equal(
            self.samples, other.samples
        ):
            return False
        return (
            self.backend,
            self.stage_names,
            self.stage_means,
            self.stage_stds,
            self.correlation,
            self.pipeline_mean,
            self.pipeline_std,
            self.jensen_lower_bound,
        ) == (
            other.backend,
            other.stage_names,
            other.stage_means,
            other.stage_stds,
            other.correlation,
            other.pipeline_mean,
            other.pipeline_std,
            other.jensen_lower_bound,
        )

    # -- shapes and basic statistics ------------------------------------
    @property
    def n_stages(self) -> int:
        """Number of pipeline stages."""
        return len(self.stage_names)

    @property
    def variability(self) -> float:
        """sigma/mu of the pipeline delay."""
        if self.pipeline_mean == 0.0:
            return 0.0
        return self.pipeline_std / self.pipeline_mean

    def stage_variabilities(self) -> np.ndarray:
        """Per-stage sigma/mu, in pipeline order."""
        means = np.asarray(self.stage_means)
        stds = np.asarray(self.stage_stds)
        return np.divide(stds, means, out=np.zeros_like(stds), where=means > 0.0)

    def stage_distributions(self) -> list[StageDelayDistribution]:
        """Per-stage Gaussian delay distributions (the paper's SD_i)."""
        return [
            StageDelayDistribution(mean, std, name=name)
            for name, mean, std in zip(
                self.stage_names, self.stage_means, self.stage_stds
            )
        ]

    def correlation_matrix(self) -> np.ndarray:
        """Cross-stage correlation matrix as a NumPy array."""
        return np.asarray(self.correlation, dtype=float)

    def mean_stage_correlation(self) -> float:
        """Average off-diagonal stage correlation (1.0 for a single stage)."""
        if self.n_stages < 2:
            return 1.0
        matrix = self.correlation_matrix()
        return float(np.mean(matrix[np.triu_indices(self.n_stages, 1)]))

    @property
    def pipeline_samples(self) -> np.ndarray | None:
        """Pipeline delay samples (read-only), when the backend kept them."""
        return self.samples

    # -- yield / quantile queries ---------------------------------------
    def yield_at(self, target_delay: float) -> float:
        """Probability the pipeline meets ``target_delay`` (paper eq. 2).

        Empirical when the backend kept samples, otherwise the Gaussian
        approximation (eq. 9).
        """
        if self.samples is not None:
            return float((self.pipeline_samples <= target_delay).mean())
        if self.pipeline_std == 0.0:
            return 1.0 if self.pipeline_mean <= target_delay else 0.0
        z = (target_delay - self.pipeline_mean) / self.pipeline_std
        return float(norm.cdf(z))

    def delay_at_yield(self, target_yield: float) -> float:
        """Clock period the pipeline achieves ``target_yield`` at."""
        if not 0.0 < target_yield < 1.0:
            raise ValueError(f"target_yield must be in (0, 1), got {target_yield}")
        if self.samples is not None:
            return float(np.quantile(self.pipeline_samples, target_yield))
        return self.pipeline_mean + self.pipeline_std * float(norm.ppf(target_yield))

    def summary(self) -> dict[str, float]:
        """Scalar summary used by reports and sweep tables (times in ps)."""
        return {
            "pipeline_mean_ps": self.pipeline_mean * 1e12,
            "pipeline_std_ps": self.pipeline_std * 1e12,
            "variability": self.variability,
            "mean_stage_correlation": self.mean_stage_correlation(),
        }

    # -- serialisation --------------------------------------------------
    def to_dict(self, include_samples: bool = True) -> dict[str, Any]:
        data: dict[str, Any] = {
            "backend": self.backend,
            "stage_names": list(self.stage_names),
            "stage_means": list(self.stage_means),
            "stage_stds": list(self.stage_stds),
            "correlation": [list(row) for row in self.correlation],
            "pipeline_mean": self.pipeline_mean,
            "pipeline_std": self.pipeline_std,
            "jensen_lower_bound": self.jensen_lower_bound,
            "samples": self.samples.tolist()
            if include_samples and self.samples is not None
            else None,
        }
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DelayReport":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown DelayReport field(s): {sorted(unknown)}")
        return cls(**dict(data))

    def to_json(self, indent: int | None = None, include_samples: bool = True) -> str:
        return json.dumps(self.to_dict(include_samples=include_samples), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "DelayReport":
        return cls.from_dict(json.loads(text))


# ----------------------------------------------------------------------
# Backend protocol and registry
# ----------------------------------------------------------------------
@runtime_checkable
class DelayAnalysisBackend(Protocol):
    """Anything that can turn a study spec into a :class:`DelayReport`.

    Backends receive the session so they can share its caches (built
    pipelines, Monte-Carlo characterisations, SSTA engines) with every
    other query made through the same session.
    """

    name: str

    def analyze(self, session: "Session", study: StudySpec) -> DelayReport:
        """Produce the delay report for ``study`` using ``session`` caches."""
        ...  # pragma: no cover - protocol signature


_BACKENDS: dict[str, DelayAnalysisBackend] = {}


def register_backend(backend: DelayAnalysisBackend, *, replace: bool = False) -> None:
    """Register a backend instance under its ``name``."""
    name = getattr(backend, "name", None)
    if not name or not isinstance(name, str):
        raise ValueError(f"backend must expose a non-empty string name, got {name!r}")
    if name in _BACKENDS and not replace:
        raise ValueError(f"backend {name!r} is already registered")
    _BACKENDS[name] = backend


def get_backend(name: str) -> DelayAnalysisBackend:
    """Look up a registered backend by name."""
    try:
        return _BACKENDS[name]
    except KeyError:
        raise KeyError(
            f"no delay-analysis backend named {name!r}; "
            f"available: {available_backends()}"
        ) from None


def available_backends() -> tuple[str, ...]:
    """Names of all registered backends, sorted."""
    return tuple(sorted(_BACKENDS))


# ----------------------------------------------------------------------
# Built-in backends
# ----------------------------------------------------------------------
def delay_report_from_pipeline_run(run, backend: str = "montecarlo") -> DelayReport:
    """Summarise a :class:`~repro.montecarlo.results.PipelineMonteCarloResult`.

    Shared by the Monte-Carlo analysis backend and the Design API's
    Monte-Carlo validation runs, so both speak the same empirical
    :class:`DelayReport`.
    """
    pipe = run.pipeline_result()
    return DelayReport(
        backend=backend,
        stage_names=run.stage_names,
        stage_means=run.stage_means(),
        stage_stds=run.stage_stds(),
        correlation=run.correlation_matrix(),
        pipeline_mean=pipe.mean,
        pipeline_std=pipe.std,
        samples=run.pipeline_samples,
    )


class MonteCarloBackend:
    """Sampled ground truth (the HSPICE Monte-Carlo stand-in)."""

    name = "montecarlo"

    def analyze(self, session: "Session", study: StudySpec) -> DelayReport:
        run = session.montecarlo_run(study.pipeline, study.variation, study.analysis)
        return delay_report_from_pipeline_run(run, backend=self.name)


class AnalyticBackend:
    """The paper's analytical model: Clark's max over MC-characterised stages.

    Shares the Monte-Carlo characterisation cache with
    :class:`MonteCarloBackend`, so asking both backends the same question
    through one session samples the circuit exactly once -- the report pair
    is the paper's "Monte-Carlo vs. model" comparison.
    """

    name = "analytic"

    def analyze(self, session: "Session", study: StudySpec) -> DelayReport:
        run = session.montecarlo_run(study.pipeline, study.variation, study.analysis)
        stages = run.stage_distributions()
        correlations = run.correlation_matrix()
        model = PipelineDelayModel(
            stages, correlations, ordering=study.analysis.ordering
        )
        estimate = model.estimate()
        return DelayReport(
            backend=self.name,
            stage_names=run.stage_names,
            stage_means=[stage.mean for stage in stages],
            stage_stds=[stage.std for stage in stages],
            correlation=correlations,
            pipeline_mean=estimate.mean,
            pipeline_std=estimate.std,
            jensen_lower_bound=estimate.jensen_lower_bound,
        )


class SSTABackend:
    """Fully analytical: canonical-form SSTA stages + Clark pipeline max."""

    name = "ssta"

    def analyze(self, session: "Session", study: StudySpec) -> DelayReport:
        pipeline = session.pipeline(study.pipeline)
        analyzer = session.analyzer(study.variation, study.analysis)
        forms = analyzer.pipeline_stage_forms(pipeline)
        correlations = analyzer.correlation_matrix(forms)
        stages = [
            StageDelayDistribution.from_canonical(form, name=stage.name)
            for form, stage in zip(forms, pipeline.stages)
        ]
        model = PipelineDelayModel(
            stages, correlations, ordering=study.analysis.ordering
        )
        estimate = model.estimate()
        return DelayReport(
            backend=self.name,
            stage_names=[stage.name for stage in pipeline.stages],
            stage_means=[stage.mean for stage in stages],
            stage_stds=[stage.std for stage in stages],
            correlation=correlations,
            pipeline_mean=estimate.mean,
            pipeline_std=estimate.std,
            jensen_lower_bound=estimate.jensen_lower_bound,
        )


register_backend(MonteCarloBackend())
register_backend(AnalyticBackend())
register_backend(SSTABackend())
