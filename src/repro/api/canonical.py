"""Canonical spec JSON, content digests and tagged wire forms.

One question keeps coming up across the persistence and serving layers:
*"are these two study specs the same computation?"*.  This module owns the
single answer -- a canonical JSON payload covering exactly the fields that
determine the computation, and its SHA-256 digest:

* :func:`spec_store_payload` -- the canonical, computation-determining
  dictionary of a :class:`~repro.api.spec.StudySpec` /
  :class:`~repro.api.spec.DesignStudySpec` (presentation-only fields such
  as ``name`` and the yield/quantile query targets are excluded);
* :func:`canonical_spec_json` -- that payload as key-sorted, separator-
  normalised JSON text (the byte string that gets hashed);
* :func:`spec_digest` -- the SHA-256 content address.

The digest is used as **both** the on-disk checkpoint key
(:class:`~repro.robust.checkpoint.CheckpointStore`) and the in-flight
request-coalescing key of the study server (:mod:`repro.serve`), so the two
layers can never disagree about spec identity.  The byte layout of the
canonical JSON is therefore an on-disk compatibility contract: changing it
orphans every existing checkpoint store (see the pinned-digest regression
test in ``tests/test_canonical.py``).

:func:`resolved_store_spec` resolves a deferred (``None``) sampling seed
against the executing session *before* keying -- a ``None`` seed means "use
the session's root seed", so two sessions with different root seeds must
not collide on one digest.

The module also carries the *tagged wire forms* used whenever a spec or
report crosses a process/network boundary without the endpoint implying its
type: ``{"kind": ..., "data": ...}`` envelopes with loss-free round trips
(:func:`spec_to_wire` / :func:`spec_from_wire`, :func:`report_to_wire` /
:func:`report_from_wire`).

Everything here imports the spec/report classes lazily so the module can be
imported from anywhere (including ``repro.robust`` during package
initialisation) without cycles.
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING, Any, Mapping, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.backends import DelayReport
    from repro.api.design import DesignReport
    from repro.api.session import Session
    from repro.api.spec import DesignStudySpec, StudySpec

    AnySpec = Union[StudySpec, DesignStudySpec]
    AnyReport = Union[DelayReport, DesignReport]


# ----------------------------------------------------------------------
# Canonical payloads and digests
# ----------------------------------------------------------------------
def spec_store_payload(spec: "AnySpec") -> dict[str, Any]:
    """The canonical, computation-determining payload of a study spec.

    Excludes presentation-only fields (``name``, yield/quantile query
    targets) so equal experiments share one content address regardless of
    how they are labelled or queried.
    """
    from repro.api.spec import DesignStudySpec, StudySpec

    if isinstance(spec, DesignStudySpec):
        return {
            "kind": "design",
            "pipeline": spec.pipeline.to_dict(),
            "variation": spec.variation.to_dict(),
            "design": spec.design.to_dict(),
            "validation": None
            if spec.validation is None
            else spec.validation.to_dict(),
        }
    if isinstance(spec, StudySpec):
        return {
            "kind": "study",
            "pipeline": spec.pipeline.to_dict(),
            "variation": spec.variation.to_dict(),
            "analysis": spec.analysis.to_dict(),
        }
    raise TypeError(
        f"checkpointable specs are StudySpec/DesignStudySpec, got {type(spec).__name__}"
    )


def canonical_spec_json(spec: "AnySpec") -> str:
    """The canonical JSON text of a spec (key-sorted, no whitespace).

    This exact byte layout is what :func:`spec_digest` hashes; it is an
    on-disk compatibility contract shared by the checkpoint store and the
    serving layer.
    """
    return json.dumps(spec_store_payload(spec), sort_keys=True, separators=(",", ":"))


def spec_digest(spec: "AnySpec") -> str:
    """SHA-256 content address of a spec's canonical JSON."""
    return hashlib.sha256(canonical_spec_json(spec).encode("utf-8")).hexdigest()


def resolved_store_spec(spec: "AnySpec", session: "Session") -> "AnySpec":
    """``spec`` with any deferred (``None``) sampling seed made concrete.

    A ``None`` seed means "use the session's root seed", so a content
    address must bake the resolved value in -- otherwise sessions with
    different root seeds would collide on one digest while computing
    different numbers.
    """
    from repro.api.spec import DesignStudySpec

    if isinstance(spec, DesignStudySpec):
        if spec.validation is None or spec.validation.seed is not None:
            return spec
        return spec.replace(
            validation=spec.validation.with_seed(session.resolve_seed(spec.validation))
        )
    if spec.analysis.seed is not None:
        return spec
    return spec.replace(
        analysis=spec.analysis.with_seed(session.resolve_seed(spec.analysis))
    )


# ----------------------------------------------------------------------
# Tagged wire forms
# ----------------------------------------------------------------------
def spec_to_wire(spec: "AnySpec") -> dict[str, Any]:
    """``{"kind": "study"|"design", "data": spec.to_dict()}`` envelope."""
    payload_kind = spec_store_payload(spec)["kind"]
    return {"kind": payload_kind, "data": spec.to_dict()}


def spec_from_wire(data: Mapping[str, Any]) -> "AnySpec":
    """Rehydrate a spec from its tagged wire envelope."""
    from repro.api.spec import DesignStudySpec, StudySpec

    kind = data.get("kind")
    if kind == "study":
        return StudySpec.from_dict(data["data"])
    if kind == "design":
        return DesignStudySpec.from_dict(data["data"])
    raise ValueError(f"unknown spec wire kind {kind!r}; expected 'study' or 'design'")


def report_to_wire(report: "AnyReport") -> dict[str, Any]:
    """``{"kind": "delay"|"design", "data": report.to_dict()}`` envelope."""
    from repro.api.backends import DelayReport
    from repro.api.design import DesignReport

    if isinstance(report, DesignReport):
        return {"kind": "design", "data": report.to_dict()}
    if isinstance(report, DelayReport):
        return {"kind": "delay", "data": report.to_dict()}
    raise TypeError(
        f"wire reports are DelayReport/DesignReport, got {type(report).__name__}"
    )


def report_from_wire(data: Mapping[str, Any]) -> "AnyReport":
    """Rehydrate a report from its tagged wire envelope."""
    from repro.api.backends import DelayReport
    from repro.api.design import DesignReport

    kind = data.get("kind")
    if kind == "delay":
        return DelayReport.from_dict(data["data"])
    if kind == "design":
        return DesignReport.from_dict(data["data"])
    raise ValueError(f"unknown report wire kind {kind!r}; expected 'delay' or 'design'")
