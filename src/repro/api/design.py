"""Pluggable pipeline optimizers and the common :class:`DesignReport`.

This is the design-flow mirror of :mod:`repro.api.backends`: every optimizer
answers the same question -- *size this pipeline so it meets a yield target
at a delay target, and tell me what that cost* -- and returns the same typed
report, so callers run and sweep design experiments without knowing (or
importing) the sizing machinery that produced the numbers:

``balanced``
    The paper's conventional baseline (section 4 / eq. 12): every stage is
    sized independently for the common delay target with the pipeline yield
    budget split equally (``Y ** (1/N)``), or an explicit per-stage budget.
``redistribute``
    The Fig. 7 experiment: start from the balanced design and move area
    between stages at (approximately) constant total area, following the
    eq. 14 sensitivity heuristic (``mode="best"``) or its inverse
    (``mode="worst"``).
``global``
    The Fig. 9 flow: one stage at a time in sensitivity-ratio order, each
    re-sized against the *pipeline* yield target using the statistical
    pipeline model with SSTA-derived correlations.

Optimizers receive the :class:`~repro.api.session.Session` so they share its
caches -- the balanced baseline, per-(stage, sizer) area--delay curves and
sizer instances are computed once per session and reused across optimizers,
modes and sweep points.  Crucially, every design run operates on an
automatic :meth:`~repro.pipeline.pipeline.Pipeline.copy` of the session's
cached pipeline, so a design can never perturb a later analysis query.

New optimizers register with :func:`register_optimizer` and become
addressable from any :class:`~repro.api.spec.DesignSpec` by name.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Any, Mapping, Protocol, runtime_checkable

from scipy.stats import norm

from repro.api.backends import DelayReport
from repro.api.spec import DesignSpec, DesignStudySpec
from repro.core.pipeline_delay import PipelineDelayModel
from repro.core.yield_model import stage_yield_budget
from repro.optimize.global_opt import (
    GlobalPipelineOptimizer,
    pipeline_stage_statistics,
)
from repro.optimize.redistribute import redistribute_area
from repro.optimize.result import SizingResult
from repro.optimize.sizers import StageSizer
from repro.pipeline.pipeline import Pipeline

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.api.session import Session


# ----------------------------------------------------------------------
# Report building blocks
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SizingTrace:
    """One sizing step of a design run (the iteration trace of a report)."""

    stage: str
    target_delay: float
    target_yield: float
    achieved_yield: float
    area: float
    iterations: int
    met_target: bool
    seconds: float = 0.0

    @classmethod
    def from_result(cls, stage: str, result: SizingResult) -> "SizingTrace":
        return cls(
            stage=stage,
            target_delay=float(result.target_delay),
            target_yield=float(result.target_yield),
            achieved_yield=float(result.achieved_yield),
            area=float(result.area),
            iterations=int(result.iterations),
            met_target=bool(result.met_target),
            seconds=float(result.seconds),
        )

    def to_dict(self) -> dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SizingTrace":
        return cls(**dict(data))


@dataclass(frozen=True)
class DesignSnapshot:
    """Areas and model yields of one pipeline design at a target delay."""

    stage_names: tuple[str, ...]
    stage_areas: tuple[float, ...]
    stage_logic_areas: tuple[float, ...]
    stage_yields: tuple[float, ...]
    total_area: float
    pipeline_yield: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "stage_names", tuple(str(n) for n in self.stage_names))
        for name in ("stage_areas", "stage_logic_areas", "stage_yields"):
            object.__setattr__(
                self, name, tuple(float(v) for v in getattr(self, name))
            )
        object.__setattr__(self, "total_area", float(self.total_area))
        object.__setattr__(self, "pipeline_yield", float(self.pipeline_yield))

    def to_dict(self) -> dict[str, Any]:
        return {
            "stage_names": list(self.stage_names),
            "stage_areas": list(self.stage_areas),
            "stage_logic_areas": list(self.stage_logic_areas),
            "stage_yields": list(self.stage_yields),
            "total_area": self.total_area,
            "pipeline_yield": self.pipeline_yield,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DesignSnapshot":
        return cls(**dict(data))


@dataclass(frozen=True, eq=False)
class DesignReport:
    """Optimizer-agnostic outcome of one yield-driven design run.

    All delays are in seconds and areas in square micrometres.  Every field
    is a plain tuple/float (nested reports are themselves JSON-serialisable
    dataclasses), so reports compare equal after a JSON round trip and are
    cheap to pickle across process boundaries in parallel sweeps.

    Attributes
    ----------
    optimizer / sizer:
        Registry names of the optimizer and stage-sizer strategy used.
    stage_names:
        Stage names in pipeline order; every per-stage tuple below follows
        this order.
    target_delay / target_yield / stage_yield_target:
        The design targets: pipeline delay, pipeline yield, and the
        per-stage yield budget of the balanced baseline.
    stage_targets:
        Per-stage delay targets (all equal except under the
        ``"stage_relative"`` policy).
    stage_sizes / stage_areas / stage_logic_areas:
        Final gate sizes (topological order within each stage) and stage
        areas with and without registers.
    stage_means / stage_stds / stage_yields:
        Post-design per-stage SSTA delay forms and model stage yields at
        ``target_delay``.
    total_area / total_logic_area:
        Area totals of the designed pipeline.
    pipeline_mean / pipeline_std / predicted_yield:
        The statistical pipeline model's estimate (Clark's method over the
        SSTA-correlated stages) and its yield at ``target_delay``.
    baseline:
        Snapshot of the design the optimizer started from (the balanced
        baseline for ``redistribute``/``global``, the unsized pipeline for
        ``balanced``).
    stage_order / sensitivity_ratios:
        Global-optimizer stage processing order and eq. 14 ratios (in
        ``stage_names`` order); ``None`` for other optimizers.
    donor_stages / receiver_stages:
        Redistribution roles; ``None`` for other optimizers.
    trace:
        Per-stage sizing steps in execution order.
    validation / validation_baseline:
        Monte-Carlo cross-checks of the designed (and baseline) pipeline,
        as full :class:`~repro.api.backends.DelayReport` objects so
        empirical yield/quantile queries stay available.
    """

    optimizer: str
    sizer: str
    stage_names: tuple[str, ...]
    target_delay: float
    target_yield: float
    stage_yield_target: float
    stage_targets: tuple[float, ...]
    stage_sizes: tuple[tuple[float, ...], ...]
    stage_areas: tuple[float, ...]
    stage_logic_areas: tuple[float, ...]
    stage_means: tuple[float, ...]
    stage_stds: tuple[float, ...]
    stage_yields: tuple[float, ...]
    total_area: float
    total_logic_area: float
    pipeline_mean: float
    pipeline_std: float
    predicted_yield: float
    baseline: DesignSnapshot | None = None
    stage_order: tuple[str, ...] | None = None
    sensitivity_ratios: tuple[float, ...] | None = None
    donor_stages: tuple[str, ...] | None = None
    receiver_stages: tuple[str, ...] | None = None
    trace: tuple[SizingTrace, ...] = ()
    validation: DelayReport | None = None
    validation_baseline: DelayReport | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "stage_names", tuple(str(n) for n in self.stage_names))
        for name in (
            "stage_targets",
            "stage_areas",
            "stage_logic_areas",
            "stage_means",
            "stage_stds",
            "stage_yields",
        ):
            object.__setattr__(
                self, name, tuple(float(v) for v in getattr(self, name))
            )
        object.__setattr__(
            self,
            "stage_sizes",
            tuple(tuple(float(s) for s in sizes) for sizes in self.stage_sizes),
        )
        for name in ("target_delay", "target_yield", "stage_yield_target",
                     "total_area", "total_logic_area", "pipeline_mean",
                     "pipeline_std", "predicted_yield"):
            object.__setattr__(self, name, float(getattr(self, name)))
        for name in ("stage_order", "donor_stages", "receiver_stages"):
            value = getattr(self, name)
            if value is not None:
                object.__setattr__(self, name, tuple(str(v) for v in value))
        if self.sensitivity_ratios is not None:
            object.__setattr__(
                self,
                "sensitivity_ratios",
                tuple(float(r) for r in self.sensitivity_ratios),
            )
        object.__setattr__(self, "trace", tuple(self.trace))
        n = len(self.stage_names)
        for name in ("stage_targets", "stage_sizes", "stage_areas",
                     "stage_logic_areas", "stage_means", "stage_stds",
                     "stage_yields"):
            if len(getattr(self, name)) != n:
                raise ValueError(
                    f"{name} has {len(getattr(self, name))} entries for {n} stages"
                )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DesignReport):
            return NotImplemented
        return all(
            getattr(self, f.name) == getattr(other, f.name) for f in fields(self)
        )

    # -- shapes and derived quantities -----------------------------------
    @property
    def n_stages(self) -> int:
        """Number of pipeline stages."""
        return len(self.stage_names)

    @property
    def after(self) -> DesignSnapshot:
        """The designed pipeline's snapshot (symmetric with ``baseline``)."""
        return DesignSnapshot(
            stage_names=self.stage_names,
            stage_areas=self.stage_areas,
            stage_logic_areas=self.stage_logic_areas,
            stage_yields=self.stage_yields,
            total_area=self.total_area,
            pipeline_yield=self.predicted_yield,
        )

    @property
    def yield_improvement(self) -> float:
        """Model pipeline-yield change vs. the baseline, in percentage points."""
        if self.baseline is None:
            return 0.0
        return (self.predicted_yield - self.baseline.pipeline_yield) * 100.0

    @property
    def area_change_percent(self) -> float:
        """Total-area change vs. the baseline, in percent of the baseline."""
        if self.baseline is None or self.baseline.total_area == 0.0:
            return 0.0
        return 100.0 * (self.total_area - self.baseline.total_area) / self.baseline.total_area

    @property
    def met_all_targets(self) -> bool:
        """Whether every sizing step met its statistical constraint."""
        return all(entry.met_target for entry in self.trace)

    # -- yield queries ----------------------------------------------------
    def predicted_yield_at(self, target_delay: float) -> float:
        """Model pipeline yield at an arbitrary delay (Gaussian, eq. 9)."""
        if self.pipeline_std == 0.0:
            return 1.0 if self.pipeline_mean <= target_delay else 0.0
        z = (target_delay - self.pipeline_mean) / self.pipeline_std
        return float(norm.cdf(z))

    @property
    def mc_yield(self) -> float | None:
        """Monte-Carlo validated yield at the target delay, when validated."""
        if self.validation is None:
            return None
        return self.validation.yield_at(self.target_delay)

    @property
    def mc_yield_baseline(self) -> float | None:
        """Monte-Carlo yield of the baseline design, when validated."""
        if self.validation_baseline is None:
            return None
        return self.validation_baseline.yield_at(self.target_delay)

    def summary(self) -> dict[str, Any]:
        """Scalar summary used by reports and sweep tables (times in ps)."""
        row: dict[str, Any] = {
            "optimizer": self.optimizer,
            "sizer": self.sizer,
            "target_delay_ps": self.target_delay * 1e12,
            "total_area_um2": self.total_area,
            "predicted_yield": self.predicted_yield,
            "met_all_targets": self.met_all_targets,
        }
        if self.baseline is not None:
            row["area_change_percent"] = self.area_change_percent
        if self.validation is not None:
            row["mc_yield"] = self.mc_yield
        return row

    # -- serialisation --------------------------------------------------
    def to_dict(self, include_samples: bool = True) -> dict[str, Any]:
        data: dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, DesignSnapshot):
                value = value.to_dict()
            elif isinstance(value, DelayReport):
                value = value.to_dict(include_samples=include_samples)
            elif f.name == "trace":
                value = [entry.to_dict() for entry in value]
            elif f.name == "stage_sizes":
                value = [list(sizes) for sizes in value]
            elif isinstance(value, tuple):
                value = list(value)
            data[f.name] = value
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DesignReport":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown DesignReport field(s): {sorted(unknown)}")
        data = dict(data)
        if isinstance(data.get("baseline"), Mapping):
            data["baseline"] = DesignSnapshot.from_dict(data["baseline"])
        for name in ("validation", "validation_baseline"):
            if isinstance(data.get(name), Mapping):
                data[name] = DelayReport.from_dict(data[name])
        if "trace" in data:
            data["trace"] = tuple(
                entry if isinstance(entry, SizingTrace) else SizingTrace.from_dict(entry)
                for entry in data["trace"]
            )
        return cls(**data)

    def to_json(self, indent: int | None = None, include_samples: bool = True) -> str:
        return json.dumps(self.to_dict(include_samples=include_samples), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "DesignReport":
        return cls.from_dict(json.loads(text))


# ----------------------------------------------------------------------
# Optimizer protocol and registry
# ----------------------------------------------------------------------
@runtime_checkable
class PipelineOptimizer(Protocol):
    """Anything that can turn a design study spec into a :class:`DesignReport`.

    Optimizers receive the session so they can share its caches (pipelines,
    balanced baselines, area--delay curves, sizers, validations) with every
    other design run made through the same session.
    """

    name: str

    def design(self, session: "Session", spec: DesignStudySpec) -> DesignReport:
        """Produce the design report for ``spec`` using ``session`` caches."""
        ...  # pragma: no cover - protocol signature


_OPTIMIZERS: dict[str, PipelineOptimizer] = {}


def register_optimizer(optimizer: PipelineOptimizer, *, replace: bool = False) -> None:
    """Register an optimizer instance under its ``name``."""
    name = getattr(optimizer, "name", None)
    if not name or not isinstance(name, str):
        raise ValueError(
            f"optimizer must expose a non-empty string name, got {name!r}"
        )
    if name in _OPTIMIZERS and not replace:
        raise ValueError(f"optimizer {name!r} is already registered")
    _OPTIMIZERS[name] = optimizer


def get_optimizer(name: str) -> PipelineOptimizer:
    """Look up a registered optimizer by name."""
    try:
        return _OPTIMIZERS[name]
    except KeyError:
        raise KeyError(
            f"no pipeline optimizer named {name!r}; "
            f"available: {available_optimizers()}"
        ) from None


def available_optimizers() -> tuple[str, ...]:
    """Names of all registered optimizers, sorted."""
    return tuple(sorted(_OPTIMIZERS))


# ----------------------------------------------------------------------
# Shared design-flow helpers
# ----------------------------------------------------------------------
def snapshot_pipeline(
    sizer: StageSizer, pipeline: Pipeline, target_delay: float
) -> DesignSnapshot:
    """Snapshot a pipeline's areas and model yields at a target delay."""
    distributions, correlations = pipeline_stage_statistics(sizer, pipeline)
    model = PipelineDelayModel(distributions, correlations)
    return DesignSnapshot(
        stage_names=tuple(pipeline.stage_names),
        stage_areas=tuple(pipeline.stage_areas()),
        stage_logic_areas=tuple(
            stage.logic_area() for stage in pipeline.stages
        ),
        stage_yields=tuple(
            distribution.yield_at(target_delay) for distribution in distributions
        ),
        total_area=pipeline.total_area(),
        pipeline_yield=model.estimate().yield_at(target_delay),
    )


def derive_design_targets(
    pipeline: Pipeline, sizer: StageSizer, design: DesignSpec
) -> tuple[float | dict[str, float], float]:
    """Resolve a design spec's delay policy into concrete targets.

    Returns ``(target_delay, stage_yield_target)`` where ``target_delay``
    is a per-stage mapping under the ``"stage_relative"`` policy and a
    single common target otherwise.  ``pipeline`` is only read (the
    ``"sized"`` policy's probe runs use ``apply=False``).
    """
    stage_yield = (
        design.stage_yield
        if design.stage_yield is not None
        else stage_yield_budget(design.yield_target, pipeline.n_stages)
    )
    if design.delay_target is not None:
        return float(design.delay_target), stage_yield
    if design.delay_policy == "stage_relative":
        targets = {
            stage.name: design.delay_scale
            * sizer.stage_distribution(stage).delay_at_yield(stage_yield)
            for stage in pipeline.stages
        }
        return targets, stage_yield
    if design.delay_policy == "sized":
        achievable = []
        for stage in pipeline.stages:
            probe = design.delay_probe * sizer.stage_distribution(stage).delay_at_yield(
                stage_yield
            )
            result = sizer.size_stage(stage, probe, stage_yield, apply=False)
            achievable.append(result.stage_delay.delay_at_yield(stage_yield))
        reference = max(achievable)
    else:
        delays = [
            sizer.stage_distribution(stage).delay_at_yield(stage_yield)
            for stage in pipeline.stages
        ]
        reference = max(delays) if design.delay_policy == "stage_max" else min(delays)
    return design.delay_scale * reference, stage_yield


def _require_uniform_target(
    optimizer_name: str, target_delay: float | Mapping[str, float]
) -> float:
    if isinstance(target_delay, Mapping):
        raise ValueError(
            f"the {optimizer_name!r} optimizer needs a single pipeline delay "
            "target; the 'stage_relative' delay policy is only meaningful for "
            "the 'balanced' optimizer"
        )
    return float(target_delay)


def _assemble_report(
    session: "Session",
    spec: DesignStudySpec,
    designed: Pipeline,
    *,
    target_delay: float,
    stage_yield: float,
    stage_targets: Mapping[str, float],
    trace: tuple[SizingTrace, ...],
    baseline: DesignSnapshot | None,
    stage_order: tuple[str, ...] | None = None,
    sensitivity_ratios: tuple[float, ...] | None = None,
    donor_stages: tuple[str, ...] | None = None,
    receiver_stages: tuple[str, ...] | None = None,
    validation_baseline: DelayReport | None = None,
    validation_cache_key: tuple | None = None,
) -> DesignReport:
    """Build the common report from a designed pipeline + flow metadata."""
    design = spec.design
    sizer = session.sizer(spec.variation, design)
    distributions, correlations = pipeline_stage_statistics(sizer, designed)
    estimate = PipelineDelayModel(distributions, correlations).estimate()
    validation = (
        session.validate_design(spec, designed, cache_key=validation_cache_key)
        if spec.validation is not None
        else None
    )
    return DesignReport(
        optimizer=design.optimizer,
        sizer=design.sizer,
        stage_names=tuple(designed.stage_names),
        target_delay=target_delay,
        target_yield=design.yield_target,
        stage_yield_target=stage_yield,
        stage_targets=tuple(stage_targets[name] for name in designed.stage_names),
        stage_sizes=tuple(
            tuple(stage.netlist.sizes()) for stage in designed.stages
        ),
        stage_areas=tuple(designed.stage_areas()),
        stage_logic_areas=tuple(stage.logic_area() for stage in designed.stages),
        stage_means=tuple(d.mean for d in distributions),
        stage_stds=tuple(d.std for d in distributions),
        stage_yields=tuple(d.yield_at(target_delay) for d in distributions),
        total_area=designed.total_area(),
        total_logic_area=designed.logic_area(),
        pipeline_mean=estimate.mean,
        pipeline_std=estimate.std,
        predicted_yield=estimate.yield_at(target_delay),
        baseline=baseline,
        stage_order=stage_order,
        sensitivity_ratios=sensitivity_ratios,
        donor_stages=donor_stages,
        receiver_stages=receiver_stages,
        trace=trace,
        validation=validation,
        validation_baseline=validation_baseline,
    )


# ----------------------------------------------------------------------
# Built-in optimizers
# ----------------------------------------------------------------------
class BalancedDesigner:
    """The conventional flow: every stage sized independently (eq. 12)."""

    name = "balanced"

    def design(self, session: "Session", spec: DesignStudySpec) -> DesignReport:
        balanced, _, stage_yield, stage_targets = session.balanced_design(spec)
        # Under the "stage_relative" policy the report's headline target is
        # the loosest per-stage target; otherwise it is the common target.
        target_delay = balanced.target_delay
        sizer = session.sizer(spec.variation, spec.design)
        baseline = snapshot_pipeline(
            sizer, session.pipeline(spec.pipeline), target_delay
        )
        trace = tuple(
            SizingTrace.from_result(name, balanced.stage_results[name])
            for name in balanced.pipeline.stage_names
        )
        return _assemble_report(
            session,
            spec,
            balanced.pipeline,
            target_delay=target_delay,
            stage_yield=stage_yield,
            stage_targets=stage_targets,
            trace=trace,
            baseline=baseline,
            # The balanced pipeline is also the baseline other optimizers
            # validate; share one MC run through the keyed cache.
            validation_cache_key=(
                spec.pipeline, spec.variation, spec.design.balance_key(),
            ),
        )


class RedistributeDesigner:
    """Constant-area eq. 14 imbalance redistribution (the Fig. 7 flow)."""

    name = "redistribute"

    def design(self, session: "Session", spec: DesignStudySpec) -> DesignReport:
        design = spec.design
        balanced, target_delay, stage_yield, _ = session.balanced_design(spec)
        target_delay = _require_uniform_target(self.name, target_delay)
        sizer = session.sizer(spec.variation, design)
        curves = session.area_delay_curves(spec, stage_yield)
        result = redistribute_area(
            balanced.pipeline,
            curves,
            sizer,
            target_delay,
            stage_yield,
            fraction=design.fraction,
            mode=design.mode,
        )
        baseline = snapshot_pipeline(sizer, balanced.pipeline, target_delay)
        trace = tuple(
            SizingTrace.from_result(name, result.stage_results[name])
            for name in result.pipeline.stage_names
        )
        return _assemble_report(
            session,
            spec,
            result.pipeline,
            target_delay=target_delay,
            stage_yield=stage_yield,
            stage_targets={
                name: result.stage_results[name].target_delay
                for name in result.pipeline.stage_names
            },
            trace=trace,
            baseline=baseline,
            donor_stages=result.donor_stages,
            receiver_stages=result.receiver_stages,
        )


class GlobalDesigner:
    """The Fig. 9 R_i-ordered global statistical optimization."""

    name = "global"

    def design(self, session: "Session", spec: DesignStudySpec) -> DesignReport:
        design = spec.design
        balanced, target_delay, stage_yield, _ = session.balanced_design(spec)
        target_delay = _require_uniform_target(self.name, target_delay)
        sizer = session.sizer(spec.variation, design)
        curve_yield = design.yield_target ** (1.0 / balanced.pipeline.n_stages)
        curves = session.area_delay_curves(spec, curve_yield)
        optimizer = GlobalPipelineOptimizer(
            sizer,
            curve_points=design.curve_points,
            rounds=design.rounds,
            ordering=design.ordering,
            max_stage_yield=design.max_stage_yield,
        )
        result = optimizer.optimize(
            balanced.pipeline, target_delay, design.yield_target, curves=curves
        )
        baseline = snapshot_pipeline(sizer, balanced.pipeline, target_delay)
        validation_baseline = (
            session.validate_design(
                spec,
                balanced.pipeline,
                cache_key=(spec.pipeline, spec.variation, design.balance_key()),
            )
            if spec.validation is not None
            else None
        )
        trace = tuple(
            SizingTrace.from_result(name, result.sizing_results[name])
            for name in result.stage_order
            if name in result.sizing_results
        )
        return _assemble_report(
            session,
            spec,
            result.pipeline,
            target_delay=target_delay,
            stage_yield=stage_yield,
            stage_targets={name: target_delay for name in result.pipeline.stage_names},
            trace=trace,
            baseline=baseline,
            stage_order=result.stage_order,
            sensitivity_ratios=tuple(
                result.sensitivity_ratios[name]
                for name in result.pipeline.stage_names
            ),
            validation_baseline=validation_baseline,
        )


register_optimizer(BalancedDesigner())
register_optimizer(RedistributeDesigner())
register_optimizer(GlobalDesigner())
