"""Sessions and studies: the cached entrypoint of the Study API.

A :class:`Session` owns every expensive intermediate the backends need --
built pipelines (whose netlists carry their compiled
:class:`~repro.circuit.schedule.TimingSchedule`), Monte-Carlo
characterisations and SSTA engines -- keyed by the frozen specs that
describe them, so repeated queries (or many sweep points differing only in
one axis) reuse structure instead of rebuilding it.

A :class:`Study` binds one :class:`~repro.api.spec.StudySpec` to a session
and is the object most callers touch::

    from repro import Study, PipelineSpec, VariationSpec, AnalysisSpec

    study = Study(
        pipeline=PipelineSpec(n_stages=5, logic_depth=8),
        variation=VariationSpec.combined(),
        analysis=AnalysisSpec(backend="montecarlo", n_samples=5000, seed=1),
    )
    report = study.run()                       # DelayReport
    ssta = study.with_backend("ssta").run()    # same question, no sampling
    clock = report.delay_at_yield(0.90)

RNG hygiene: every sampled run derives its generator from a
:class:`numpy.random.SeedSequence`, and :func:`derive_seed` spawns
independent child streams per sweep point, so results are reproducible and
statistically independent regardless of execution order or process-level
parallelism.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING

import numpy as np

from repro.api.backends import (
    DelayReport,
    available_backends,
    delay_report_from_pipeline_run,
    get_backend,
)
from repro.api.spec import (
    AnalysisSpec,
    DesignSpec,
    DesignStudySpec,
    PipelineSpec,
    StudySpec,
    VariationSpec,
)
from repro.montecarlo.engine import MonteCarloEngine
from repro.montecarlo.results import PipelineMonteCarloResult
from repro.optimize.sizers import StageSizer, make_sizer
from repro.pipeline.pipeline import Pipeline
from repro.process.technology import Technology, default_technology
from repro.process.variation import VariationModel
from repro.timing.kernels import KernelConfig, resolve_config
from repro.timing.ssta import StatisticalTimingAnalyzer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.design import DesignReport
    from repro.optimize.area_delay import AreaDelayCurve
    from repro.optimize.balance import BalancedDesignResult
    from repro.robust.checkpoint import CheckpointStore

DEFAULT_ROOT_SEED = 2005


def derive_seed(root_seed: int, *branch: int) -> int:
    """Derive an independent child seed from a root seed and a branch path.

    Uses ``numpy.random.SeedSequence`` spawning, so two distinct branch
    paths yield statistically independent streams and the mapping depends
    only on ``(root_seed, branch)`` -- never on execution order, thread or
    process id.
    """
    sequence = np.random.SeedSequence(int(root_seed), spawn_key=tuple(int(b) for b in branch))
    return int(sequence.generate_state(1, dtype=np.uint64)[0])


class Session:
    """Caches built pipelines, characterisations and engines across queries.

    Parameters
    ----------
    technology:
        Technology node shared by every query (defaults to the synthetic
        70 nm node).
    root_seed:
        Seed used when an :class:`AnalysisSpec` leaves ``seed=None``.
    store:
        Optional :class:`~repro.robust.checkpoint.CheckpointStore` used as
        a persistent read-through layer under the in-memory report caches:
        :meth:`analyze` and :meth:`design` consult it before computing and
        write every freshly computed report back, so reports survive across
        sessions and processes.  ``store_hits`` / ``store_writes`` count the
        traffic.
    kernel:
        Propagation kernel tier (:class:`~repro.timing.kernels.KernelConfig`,
        a kernel name, or ``None`` for the environment default) handed to
        every Monte-Carlo engine and SSTA analyzer the session builds.
        Purely an execution knob -- the threaded tier is bit-identical to
        the vectorized one -- so it is deliberately excluded from every
        cache key.

    Notes
    -----
    Cached pipelines are shared between queries and are read-only.  Design
    runs (:meth:`design`) never touch them: every flow reached through the
    session operates on an automatic :meth:`~repro.pipeline.pipeline.Pipeline.copy`
    (see :meth:`pipeline_copy`), so sizing one spec can never perturb a
    later analysis query of the same spec.
    """

    def __init__(
        self,
        technology: Technology | None = None,
        root_seed: int = DEFAULT_ROOT_SEED,
        store: "CheckpointStore | None" = None,
        kernel: "KernelConfig | str | None" = None,
    ) -> None:
        self.technology = technology if technology is not None else default_technology()
        self.root_seed = int(root_seed)
        self.store = store
        # Execution-side knob only: the threaded tier is bit-identical to the
        # vectorized one, so the kernel choice never enters any cache key.
        self.kernel_config = resolve_config(kernel)
        self.store_hits = 0
        self.store_writes = 0
        self.store_io_seconds = 0.0
        # Counters are read-modify-write; the serve thread bridge (and any
        # embedder sharing a session across threads) would otherwise
        # undercount under load.  Plain reads of the ints stay lock-free.
        self._counter_lock = threading.Lock()
        self._pipelines: dict[PipelineSpec, Pipeline] = {}
        self._variations: dict[VariationSpec, VariationModel] = {}
        self._mc_runs: dict[tuple, PipelineMonteCarloResult] = {}
        self._analyzers: dict[tuple, StatisticalTimingAnalyzer] = {}
        self._reports: dict[tuple, DelayReport] = {}
        self._sizers: dict[tuple, StageSizer] = {}
        self._balanced: dict[tuple, tuple] = {}
        self._curves: dict[tuple, dict[str, "AreaDelayCurve"]] = {}
        self._design_reports: dict[tuple, "DesignReport"] = {}
        self._design_validations: dict[tuple, DelayReport] = {}
        self.cache_hits = 0
        self.cache_misses = 0

    def _count(self, name: str, amount: float = 1) -> None:
        """Thread-safe counter bump (``stats()`` counters are shared state)."""
        with self._counter_lock:
            setattr(self, name, getattr(self, name) + amount)

    # ------------------------------------------------------------------
    # Cached intermediates
    # ------------------------------------------------------------------
    def pipeline(self, spec: PipelineSpec) -> Pipeline:
        """Build (or fetch) the pipeline described by ``spec``.

        Building compiles every stage netlist's levelized timing schedule
        once, so later STA/SSTA/Monte-Carlo queries over the same spec skip
        straight to propagation.
        """
        pipeline = self._pipelines.get(spec)
        if pipeline is None:
            pipeline = spec.build(self.technology)
            for stage in pipeline.stages:
                stage.netlist.timing_schedule()
            self._pipelines[spec] = pipeline
        return pipeline

    def variation(self, spec: VariationSpec) -> VariationModel:
        """Build (or fetch) the variation model described by ``spec``."""
        model = self._variations.get(spec)
        if model is None:
            model = spec.build()
            self._variations[spec] = model
        return model

    def resolve_seed(self, analysis: AnalysisSpec) -> int:
        """The concrete seed a sampled run uses for this analysis spec."""
        return self.root_seed if analysis.seed is None else int(analysis.seed)

    def montecarlo_run(
        self,
        pipeline_spec: PipelineSpec,
        variation_spec: VariationSpec,
        analysis: AnalysisSpec,
    ) -> PipelineMonteCarloResult:
        """Monte-Carlo characterisation, cached by everything that affects it.

        The cache key deliberately excludes ``analysis.backend`` (and the
        Clark ordering), so the ``montecarlo`` and ``analytic`` backends
        share one characterisation -- the paper's model-vs-simulation
        comparison out of a single sampling run.
        """
        seed = self.resolve_seed(analysis)
        key = (
            pipeline_spec,
            variation_spec,
            analysis.n_samples,
            seed,
            analysis.grid_size,
            analysis.chunk_size,
        )
        run = self._mc_runs.get(key)
        if run is None:
            self._count("cache_misses")
            engine = MonteCarloEngine(
                self.variation(variation_spec),
                technology=self.technology,
                n_samples=analysis.n_samples,
                seed=seed,
                grid_size=analysis.grid_size,
                chunk_size=analysis.chunk_size,
                kernel=self.kernel_config,
            )
            run = engine.run_pipeline(self.pipeline(pipeline_spec))
            self._mc_runs[key] = run
        else:
            self._count("cache_hits")
        return run

    def analyzer(
        self, variation_spec: VariationSpec, analysis: AnalysisSpec
    ) -> StatisticalTimingAnalyzer:
        """SSTA engine for a variation model, cached by its factor basis."""
        key = (variation_spec, analysis.grid_size, analysis.variance_coverage)
        analyzer = self._analyzers.get(key)
        if analyzer is None:
            analyzer = StatisticalTimingAnalyzer(
                self.technology,
                self.variation(variation_spec),
                grid_size=analysis.grid_size,
                variance_coverage=analysis.variance_coverage,
                kernel=self.kernel_config,
            )
            self._analyzers[key] = analyzer
        return analyzer

    # ------------------------------------------------------------------
    # Cached design intermediates
    # ------------------------------------------------------------------
    def pipeline_copy(self, spec: PipelineSpec) -> Pipeline:
        """A fresh, mutation-safe copy of the cached pipeline for ``spec``.

        This is the only way design flows obtain pipelines: optimizers
        resize gates in place, so handing out the cached (shared) pipeline
        would corrupt every later analysis query.  The copy is cheap next to
        a single sizing run.
        """
        return self.pipeline(spec).copy()

    def sizer(self, variation_spec: VariationSpec, design: DesignSpec) -> StageSizer:
        """Named stage sizer for a variation model, cached per strategy.

        Caching shares the sizer's embedded SSTA engine (and its spatial
        factor basis) across every design run of the same process setup.
        """
        key = (variation_spec, design.sizer_key())
        sizer = self._sizers.get(key)
        if sizer is None:
            sizer = make_sizer(
                design.sizer,
                self.technology,
                self.variation(variation_spec),
                **dict(design.sizer_options),
            )
            self._sizers[key] = sizer
        return sizer

    def balanced_design(self, spec: DesignStudySpec):
        """Balanced baseline + resolved targets, cached by the balance key.

        Returns ``(balanced, target_delay, stage_yield_target,
        stage_targets)`` where ``balanced`` is the
        :class:`~repro.optimize.balance.BalancedDesignResult` every
        optimizer starts from, ``target_delay`` is a float (or per-stage
        mapping under the ``"stage_relative"`` policy) and ``stage_targets``
        always maps stage name to its concrete delay target.  Two design
        specs differing only in optimizer/redistribution/ordering knobs
        share one cached baseline, which is what lets optimizer-axis sweep
        points reuse the expensive sizing work.
        """
        from repro.api.design import derive_design_targets
        from repro.optimize.balance import design_balanced_pipeline

        design = spec.design
        key = (spec.pipeline, spec.variation, design.balance_key())
        cached = self._balanced.get(key)
        if cached is None:
            self._count("cache_misses")
            base = self.pipeline_copy(spec.pipeline)
            sizer = self.sizer(spec.variation, design)
            target_delay, stage_yield = derive_design_targets(base, sizer, design)
            balanced = design_balanced_pipeline(
                base,
                sizer,
                target_delay,
                design.yield_target,
                stage_yield_target=stage_yield,
            )
            stage_targets = {
                name: balanced.stage_results[name].target_delay
                for name in balanced.pipeline.stage_names
            }
            cached = (balanced, target_delay, stage_yield, stage_targets)
            self._balanced[key] = cached
        else:
            self._count("cache_hits")
        return cached

    def area_delay_curves(
        self, spec: DesignStudySpec, curve_yield: float
    ) -> dict[str, "AreaDelayCurve"]:
        """Per-stage area-vs-delay curves (Fig. 8), cached per (stage, sizer).

        Characterisation sweeps always start from the all-minimum-size
        design, so the curves are independent of any current sizing; they
        are characterised on a private pipeline copy and shared by every
        optimizer, mode and sweep point with the same sizer strategy.
        """
        from repro.optimize.area_delay import characterize_stage

        design = spec.design
        key = (
            spec.pipeline,
            spec.variation,
            design.sizer_key(),
            float(curve_yield),
            design.curve_points,
        )
        curves = self._curves.get(key)
        if curves is None:
            self._count("cache_misses")
            base = self.pipeline_copy(spec.pipeline)
            sizer = self.sizer(spec.variation, design)
            curves = {
                stage.name: characterize_stage(
                    stage, sizer, curve_yield, n_points=design.curve_points
                )
                for stage in base.stages
            }
            self._curves[key] = curves
        else:
            self._count("cache_hits")
        return curves

    def validate_design(
        self,
        spec: DesignStudySpec,
        pipeline: Pipeline,
        cache_key: tuple | None = None,
    ) -> DelayReport:
        """Monte-Carlo validation of a designed pipeline.

        ``cache_key`` identifies pipelines that several reports validate
        (the balanced baseline); per-design pipelines are unique, so their
        validations are cached with the report itself.
        """
        analysis = spec.validation
        if analysis is None:
            raise ValueError("spec has no validation AnalysisSpec")
        seed = self.resolve_seed(analysis)
        key = None
        if cache_key is not None:
            key = cache_key + (
                analysis.n_samples, seed, analysis.grid_size, analysis.chunk_size,
            )
            cached = self._design_validations.get(key)
            if cached is not None:
                self._count("cache_hits")
                return cached
        engine = MonteCarloEngine(
            self.variation(spec.variation),
            technology=self.technology,
            n_samples=analysis.n_samples,
            seed=seed,
            grid_size=analysis.grid_size,
            chunk_size=analysis.chunk_size,
            kernel=self.kernel_config,
        )
        report = delay_report_from_pipeline_run(engine.run_pipeline(pipeline))
        if key is not None:
            self._count("cache_misses")
            self._design_validations[key] = report
        return report

    # ------------------------------------------------------------------
    # Persistent read-through (optional checkpoint store)
    # ------------------------------------------------------------------
    def _store_get(self, spec):
        """Fetch a report from the persistent store, if one is attached.

        Wall-clock spent inside the store is accumulated in
        ``store_io_seconds`` so execution layers can charge per-point
        timeouts to the evaluation alone, never to persistence I/O.
        """
        if self.store is None:
            return None
        from repro.robust.checkpoint import resolved_store_spec

        started = time.monotonic()
        try:
            report = self.store.get(resolved_store_spec(spec, self))
        finally:
            self._count("store_io_seconds", time.monotonic() - started)
        if report is not None:
            self._count("store_hits")
        return report

    def _store_put(self, spec, report) -> None:
        """Persist a freshly computed report, if a store is attached."""
        if self.store is None:
            return
        from repro.robust.checkpoint import resolved_store_spec

        started = time.monotonic()
        try:
            self.store.put(resolved_store_spec(spec, self), report)
        finally:
            self._count("store_io_seconds", time.monotonic() - started)
        self._count("store_writes")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def analyze(self, study: StudySpec, backend: str | None = None) -> DelayReport:
        """Answer a study spec with its (or an overridden) backend."""
        if backend is not None:
            study = study.with_backend(backend)
        key = (study.pipeline, study.variation, study.analysis)
        report = self._reports.get(key)
        if report is None:
            report = self._store_get(study)
            if report is None:
                report = get_backend(study.analysis.backend).analyze(self, study)
                self._store_put(study, report)
            self._reports[key] = report
        return report

    def yield_at(
        self, study: StudySpec, target_delay: float, backend: str | None = None
    ) -> float:
        """Yield at a target clock period through any registered backend."""
        return self.analyze(study, backend=backend).yield_at(target_delay)

    def delay_at_yield(
        self, study: StudySpec, target_yield: float, backend: str | None = None
    ) -> float:
        """Clock period achieving a target yield through any backend."""
        return self.analyze(study, backend=backend).delay_at_yield(target_yield)

    def design(
        self, spec: DesignStudySpec, optimizer: str | None = None
    ) -> "DesignReport":
        """Run a design study through its (or an overridden) optimizer.

        The optimizer operates on an automatic copy of the cached pipeline,
        so the session's analysis caches stay valid; the balanced baseline,
        area--delay curves, sizers and baseline validations are all reused
        from the session across optimizers and sweep points.
        """
        from repro.api.design import get_optimizer

        if optimizer is not None:
            spec = spec.with_optimizer(optimizer)
        key = (spec.pipeline, spec.variation, spec.design, spec.validation)
        report = self._design_reports.get(key)
        if report is None:
            report = self._store_get(spec)
            if report is None:
                report = get_optimizer(spec.design.optimizer).design(self, spec)
                self._store_put(spec, report)
            self._design_reports[key] = report
        return report

    def run(self, spec: StudySpec | DesignStudySpec):
        """Answer either kind of study: analysis or design.

        Dispatches on the spec type, so sweeps and one-shot facades treat
        :class:`~repro.api.spec.StudySpec` and
        :class:`~repro.api.spec.DesignStudySpec` uniformly.
        """
        if isinstance(spec, DesignStudySpec):
            return self.design(spec)
        return self.analyze(spec)

    def stats(self) -> dict:
        """Counters and cache sizes, as one JSON-safe dictionary.

        ``cache_hits`` / ``cache_misses`` count the expensive intermediates
        (Monte-Carlo characterisations, balanced baselines, area--delay
        curves, cached validations); ``store_hits`` / ``store_writes``
        count persistent read-through traffic; ``cached`` maps every
        internal cache to its current entry count.  This is what the study
        server's ``/v1/stats`` endpoint reports.
        """
        return {
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "store_hits": self.store_hits,
            "store_writes": self.store_writes,
            "store_io_seconds": self.store_io_seconds,
            "root_seed": self.root_seed,
            "has_store": self.store is not None,
            "cached": {
                "pipelines": len(self._pipelines),
                "variations": len(self._variations),
                "mc_runs": len(self._mc_runs),
                "analyzers": len(self._analyzers),
                "reports": len(self._reports),
                "sizers": len(self._sizers),
                "balanced": len(self._balanced),
                "curves": len(self._curves),
                "design_reports": len(self._design_reports),
                "design_validations": len(self._design_validations),
            },
        }

    def clear(self) -> None:
        """Drop every cached intermediate and report."""
        self._pipelines.clear()
        self._variations.clear()
        self._mc_runs.clear()
        self._analyzers.clear()
        self._reports.clear()
        self._sizers.clear()
        self._balanced.clear()
        self._curves.clear()
        self._design_reports.clear()
        self._design_validations.clear()
        with self._counter_lock:
            self.cache_hits = 0
            self.cache_misses = 0
            self.store_hits = 0
            self.store_writes = 0
            self.store_io_seconds = 0.0


class Study:
    """One declarative experiment bound to a (possibly shared) session.

    Construct from a full :class:`StudySpec` or from its parts::

        Study(pipeline=PipelineSpec(n_stages=12, logic_depth=10),
              variation=VariationSpec.combined(),
              analysis=AnalysisSpec(n_samples=4000, seed=2005))
    """

    def __init__(
        self,
        spec: StudySpec | None = None,
        *,
        pipeline: PipelineSpec | None = None,
        variation: VariationSpec | None = None,
        analysis: AnalysisSpec | None = None,
        target_yield: float | None = None,
        target_quantile: float | None = None,
        name: str | None = None,
        session: Session | None = None,
    ) -> None:
        if spec is None:
            spec = StudySpec(
                pipeline=pipeline if pipeline is not None else PipelineSpec(),
                variation=variation if variation is not None else VariationSpec(),
                analysis=analysis if analysis is not None else AnalysisSpec(),
                target_yield=target_yield,
                target_quantile=target_quantile,
                name=name if name is not None else "",
            )
        elif any(
            part is not None
            for part in (
                pipeline, variation, analysis, target_yield, target_quantile, name,
            )
        ):
            raise ValueError("pass either a full spec or its parts, not both")
        self.spec = spec
        self.session = session if session is not None else Session()

    # -- construction helpers -------------------------------------------
    @classmethod
    def from_json(cls, text: str, session: Session | None = None) -> "Study":
        """Rehydrate a study from a :meth:`StudySpec.to_json` payload."""
        return cls(StudySpec.from_json(text), session=session)

    def to_json(self, indent: int | None = None) -> str:
        """Serialise the underlying spec."""
        return self.spec.to_json(indent=indent)

    def with_backend(self, backend: str) -> "Study":
        """Same experiment through a different backend, sharing the session."""
        return Study(self.spec.with_backend(backend), session=self.session)

    def replace(self, **changes) -> "Study":
        """New study with top-level spec fields replaced, sharing the session."""
        return Study(self.spec.replace(**changes), session=self.session)

    # -- queries ---------------------------------------------------------
    def run(self, backend: str | None = None) -> DelayReport:
        """Run (or fetch from the session cache) this study's report."""
        return self.session.analyze(self.spec, backend=backend)

    def reports(
        self, backends: tuple[str, ...] | None = None
    ) -> dict[str, DelayReport]:
        """Reports from several backends answering the same question."""
        names = backends if backends is not None else available_backends()
        return {name: self.run(backend=name) for name in names}

    def yield_at(self, target_delay: float, backend: str | None = None) -> float:
        """Yield at a target clock period."""
        return self.run(backend=backend).yield_at(target_delay)

    def delay_at_yield(self, target_yield: float, backend: str | None = None) -> float:
        """Clock period achieving a target yield."""
        return self.run(backend=backend).delay_at_yield(target_yield)

    def sweep(self, axes, mode: str = "grid", seed_policy: str = "spawn"):
        """A :class:`~repro.api.sweep.ScenarioSweep` over this study's spec.

        The sweep is bound to this study's session, so points that coincide
        with already-answered queries reuse the cached structure.
        """
        from repro.api.sweep import ScenarioSweep

        return ScenarioSweep(
            self.spec, axes, mode=mode, seed_policy=seed_policy, session=self.session
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        spec = self.spec
        return (
            f"Study({spec.pipeline.kind!r}, backend={spec.analysis.backend!r}, "
            f"name={spec.name!r})"
        )


def run_study(
    study: StudySpec | DesignStudySpec | Study,
    session: Session | None = None,
    backend: str | None = None,
):
    """One-shot facade: run a study spec (or Study) and return its report.

    Accepts analysis studies (returning a :class:`DelayReport`) and design
    studies (returning a :class:`~repro.api.design.DesignReport`); for a
    design study ``backend`` overrides the spec's optimizer name.
    """
    if isinstance(study, Study):
        if session is not None and session is not study.session:
            return session.analyze(study.spec, backend=backend)
        return study.run(backend=backend)
    if session is None:
        session = Session()
    if isinstance(study, DesignStudySpec):
        return session.design(study, optimizer=backend)
    return session.analyze(study, backend=backend)
