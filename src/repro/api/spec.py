"""Declarative experiment specifications for the Study API.

The paper's experiments all reduce to one sentence: *build this pipeline,
characterise it under this variation model with this analysis method, then
query delay and yield*.  The spec classes in this module say exactly that --
**what** to analyse, never **how** -- as frozen, validated, hashable
dataclasses that round-trip through JSON:

* :class:`PipelineSpec` -- which pipeline topology to build (inverter
  chains, the ALU/decoder pipeline, the ISCAS85 pipeline, or any registered
  custom kind),
* :class:`VariationSpec` -- the three-component process-variation
  configuration, plus a global ``sigma_scale`` knob for sensitivity sweeps,
* :class:`AnalysisSpec` -- which analysis backend answers the query
  (``"montecarlo"``, ``"ssta"``, ``"analytic"``) and its sampling/seeding
  parameters,
* :class:`StudySpec` -- the full experiment: pipeline + variation +
  analysis + optional yield/quantile targets,
* :class:`DesignSpec` -- which pipeline optimizer designs the circuit
  (``"balanced"``, ``"redistribute"``, ``"global"``), with which stage-sizer
  strategy (``"lagrangian"``, ``"greedy"``), toward which yield/delay
  targets,
* :class:`DesignStudySpec` -- the full design experiment: pipeline +
  variation + design + optional Monte-Carlo validation.

:class:`ExecutionPolicy` (defined in :mod:`repro.robust.policy`,
re-exported here) is the same idea pointed at execution instead of
experiment content: a frozen, validated, JSON-round-trippable description
of *how* sweep points run -- retries, backoff, timeouts, deadline,
checkpointing -- kept strictly separate from *what* they compute, so a
policy never participates in cache keys or result identity.

Because every spec is frozen and hashable it doubles as a cache key: the
:class:`repro.api.session.Session` memoises built pipelines, Monte-Carlo
characterisations and SSTA engines by spec, and the sweep runner
(:mod:`repro.api.sweep`) derives new specs from a base spec axis by axis.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.process.variation import VariationModel
from repro.robust.policy import ExecutionPolicy  # noqa: F401  (re-export)

_ORDERINGS = ("increasing", "decreasing", "given")
_STAGE_ORDERINGS = ("ri_ascending", "ri_descending", "pipeline")
_DELAY_POLICIES = ("stage_max", "stage_min", "sized", "stage_relative")
_REDISTRIBUTION_MODES = ("best", "worst")


# ----------------------------------------------------------------------
# JSON helpers shared by every spec class
# ----------------------------------------------------------------------
def _jsonable(value: Any) -> Any:
    """Convert a spec field value to plain JSON types (tuples -> lists)."""
    if isinstance(value, tuple):
        return [_jsonable(item) for item in value]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return value.to_dict() if hasattr(value, "to_dict") else dataclasses.asdict(value)
    return value


def _spec_to_dict(spec: Any) -> dict[str, Any]:
    """Field dictionary of a spec instance with JSON-safe values."""
    return {
        f.name: _jsonable(getattr(spec, f.name)) for f in dataclasses.fields(spec)
    }


def _check_fields(cls: type, data: Mapping[str, Any]) -> None:
    known = {f.name for f in dataclasses.fields(cls)}
    unknown = set(data) - known
    if unknown:
        raise ValueError(
            f"unknown {cls.__name__} field(s): {sorted(unknown)}; known: {sorted(known)}"
        )


def _as_depth(value: Any) -> int | tuple[int, ...]:
    """Coerce a logic-depth field (int or sequence of ints) to hashable form."""
    if isinstance(value, (list, tuple)):
        return tuple(int(v) for v in value)
    return int(value)


def _as_options(value: Any) -> tuple[tuple[str, Any], ...]:
    """Coerce option knobs (mapping or pair sequence) to hashable form.

    Pairs are sorted by key so two specs with the same options written in a
    different order compare (and hash) equal -- they are cache keys.
    """
    if isinstance(value, Mapping):
        items = value.items()
    else:
        items = [(k, v) for k, v in value]
    return tuple(sorted((str(k), v) for k, v in items))


# ----------------------------------------------------------------------
# Pipeline specification
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PipelineSpec:
    """What pipeline to build, independent of how it is built.

    Parameters
    ----------
    kind:
        Registered pipeline family.  Built in: ``"inverter_chain"`` (the
        ``N_S x N_L`` model-verification pipelines), ``"alu_decoder"``
        (Fig. 6) and ``"iscas"`` (Tables II/III).  New kinds can be added
        with :func:`register_pipeline_kind`.
    n_stages / logic_depth / size:
        Inverter-chain parameters; ``logic_depth`` is either one depth for
        every stage or a per-stage tuple (the Table I "5 x var" row).
    width / n_address:
        ALU-decoder parameters.
    benchmarks:
        ISCAS85 stage names in pipeline order (``None`` for the paper's
        default c3540/c2670/c1908/c432).
    options:
        Extra keyword knobs for registered custom pipeline kinds (built-in
        kinds ignore them), stored as a key-sorted tuple of ``(name, value)``
        pairs so the spec stays frozen, hashable and order-insensitive; a
        plain dict is accepted and coerced.  The verification subsystem's
        ``"random_logic"`` kind uses these for its gate/input/output counts
        and structural seed.
    name:
        Optional pipeline name override.
    """

    kind: str = "inverter_chain"
    n_stages: int = 5
    logic_depth: int | tuple[int, ...] = 8
    size: float = 1.0
    width: int = 8
    n_address: int = 4
    benchmarks: tuple[str, ...] | None = None
    options: tuple[tuple[str, Any], ...] = ()
    name: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in _PIPELINE_KINDS:
            raise ValueError(
                f"unknown pipeline kind {self.kind!r}; "
                f"registered kinds: {sorted(_PIPELINE_KINDS)}"
            )
        object.__setattr__(self, "logic_depth", _as_depth(self.logic_depth))
        object.__setattr__(self, "options", _as_options(self.options))
        if self.benchmarks is not None:
            object.__setattr__(
                self, "benchmarks", tuple(str(b) for b in self.benchmarks)
            )
            if not self.benchmarks:
                raise ValueError("benchmarks must be None or a non-empty tuple")
        if self.n_stages < 1:
            raise ValueError(f"n_stages must be at least 1, got {self.n_stages}")
        depths = (
            self.logic_depth
            if isinstance(self.logic_depth, tuple)
            else (self.logic_depth,)
        )
        if any(depth < 1 for depth in depths):
            raise ValueError(f"logic depths must be at least 1, got {self.logic_depth}")
        if isinstance(self.logic_depth, tuple) and len(self.logic_depth) != self.n_stages:
            raise ValueError(
                f"got {len(self.logic_depth)} logic depths for {self.n_stages} stages"
            )
        if self.size <= 0.0:
            raise ValueError(f"size must be positive, got {self.size}")
        if self.width < 1 or self.n_address < 1:
            raise ValueError(
                f"width and n_address must be at least 1, got "
                f"{self.width} / {self.n_address}"
            )

    def build(self, technology=None):
        """Construct the described :class:`repro.pipeline.pipeline.Pipeline`."""
        return _PIPELINE_KINDS[self.kind](self, technology)

    # -- serialisation --------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        data = _spec_to_dict(self)
        data["options"] = {name: value for name, value in self.options}
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PipelineSpec":
        _check_fields(cls, data)
        data = dict(data)
        if "benchmarks" in data and data["benchmarks"] is not None:
            data["benchmarks"] = tuple(data["benchmarks"])
        return cls(**data)

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "PipelineSpec":
        return cls.from_dict(json.loads(text))


def _build_inverter_chain(spec: PipelineSpec, technology):
    from repro.pipeline.builder import inverter_chain_pipeline

    depth = (
        list(spec.logic_depth)
        if isinstance(spec.logic_depth, tuple)
        else spec.logic_depth
    )
    return inverter_chain_pipeline(
        spec.n_stages, depth, name=spec.name, size=spec.size, technology=technology
    )


def _build_alu_decoder(spec: PipelineSpec, technology):
    from repro.pipeline.builder import alu_decoder_pipeline

    kwargs = {} if spec.name is None else {"name": spec.name}
    return alu_decoder_pipeline(
        width=spec.width, n_address=spec.n_address, technology=technology, **kwargs
    )


def _build_iscas(spec: PipelineSpec, technology):
    from repro.pipeline.builder import iscas_pipeline

    kwargs = {} if spec.name is None else {"name": spec.name}
    return iscas_pipeline(
        benchmarks=list(spec.benchmarks) if spec.benchmarks is not None else None,
        technology=technology,
        **kwargs,
    )


_PIPELINE_KINDS: dict[str, Callable[[PipelineSpec, Any], Any]] = {
    "inverter_chain": _build_inverter_chain,
    "alu_decoder": _build_alu_decoder,
    "iscas": _build_iscas,
}


def register_pipeline_kind(
    kind: str, factory: Callable[[PipelineSpec, Any], Any], *, replace: bool = False
) -> None:
    """Register a custom pipeline family for :class:`PipelineSpec`.

    ``factory(spec, technology)`` must return a built ``Pipeline``.
    Re-registering the *same* factory under the same kind is a no-op, so
    modules that register kinds at import time survive re-import (serve
    workers, pytest); a *different* factory still requires ``replace=True``.
    """
    if not kind or not isinstance(kind, str):
        raise ValueError(f"kind must be a non-empty string, got {kind!r}")
    existing = _PIPELINE_KINDS.get(kind)
    if existing is not None and not replace:
        if existing is factory:
            return
        raise ValueError(
            f"pipeline kind {kind!r} is already registered with a different "
            f"factory ({existing!r}); pass replace=True to override"
        )
    _PIPELINE_KINDS[kind] = factory


def pipeline_kinds() -> tuple[str, ...]:
    """Names of all registered pipeline kinds."""
    return tuple(sorted(_PIPELINE_KINDS))


# ----------------------------------------------------------------------
# Variation specification
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class VariationSpec:
    """Declarative mirror of :class:`repro.process.variation.VariationModel`.

    Field meanings match the model one to one; ``sigma_scale`` additionally
    multiplies every sigma (but not the correlation length), which turns
    "how does everything degrade as variation grows 0.5x..2x" into a single
    sweepable axis.
    """

    sigma_vth_inter: float = 0.020
    sigma_vth_random: float = 0.025
    sigma_vth_systematic: float = 0.012
    correlation_length: float = 0.5
    sigma_l_inter: float = 0.02
    sigma_l_systematic: float = 0.01
    sigma_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.sigma_scale < 0.0:
            raise ValueError(f"sigma_scale must be non-negative, got {self.sigma_scale}")
        # Delegate range validation of the raw sigmas to the model itself.
        self.build()

    # -- named configurations (mirror the VariationModel presets) -------
    @classmethod
    def from_model(cls, model: VariationModel, sigma_scale: float = 1.0) -> "VariationSpec":
        """Capture an existing :class:`VariationModel` as a spec."""
        return cls(
            sigma_vth_inter=model.sigma_vth_inter,
            sigma_vth_random=model.sigma_vth_random,
            sigma_vth_systematic=model.sigma_vth_systematic,
            correlation_length=model.correlation_length,
            sigma_l_inter=model.sigma_l_inter,
            sigma_l_systematic=model.sigma_l_systematic,
            sigma_scale=sigma_scale,
        )

    @classmethod
    def intra_random_only(cls, sigma_vth_random: float = 0.025) -> "VariationSpec":
        """Only random intra-die variation (independent stages)."""
        return cls.from_model(VariationModel.intra_random_only(sigma_vth_random))

    @classmethod
    def inter_only(cls, sigma_vth_inter: float = 0.040) -> "VariationSpec":
        """Only inter-die variation (perfectly correlated stages)."""
        return cls.from_model(VariationModel.inter_only(sigma_vth_inter))

    @classmethod
    def combined(cls, **kwargs: float) -> "VariationSpec":
        """Inter- plus intra-die variation (partially correlated stages)."""
        return cls.from_model(VariationModel.combined(**kwargs))

    # -- construction ----------------------------------------------------
    def build(self) -> VariationModel:
        """Construct the concrete :class:`VariationModel` (sigmas scaled)."""
        s = self.sigma_scale
        return VariationModel(
            sigma_vth_inter=self.sigma_vth_inter * s,
            sigma_vth_random=self.sigma_vth_random * s,
            sigma_vth_systematic=self.sigma_vth_systematic * s,
            correlation_length=self.correlation_length,
            sigma_l_inter=self.sigma_l_inter * s,
            sigma_l_systematic=self.sigma_l_systematic * s,
        )

    def scaled(self, sigma_scale: float) -> "VariationSpec":
        """Copy of this spec with a different global sigma scale."""
        return dataclasses.replace(self, sigma_scale=sigma_scale)

    # -- serialisation --------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return _spec_to_dict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "VariationSpec":
        _check_fields(cls, data)
        return cls(**data)

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "VariationSpec":
        return cls.from_dict(json.loads(text))


# ----------------------------------------------------------------------
# Analysis specification
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AnalysisSpec:
    """Which backend answers the delay/yield query, and with what knobs.

    Parameters
    ----------
    backend:
        Registered backend name.  Built in: ``"montecarlo"`` (sampled ground
        truth), ``"analytic"`` (the paper's model: Clark's max over
        Monte-Carlo-characterised stages) and ``"ssta"`` (canonical-form
        SSTA, no sampling at all).  Validated against the registry when the
        backend is resolved, so third-party backends registered via
        :func:`repro.api.backends.register_backend` work transparently.
    n_samples / seed / chunk_size:
        Monte-Carlo sampling parameters (ignored by ``"ssta"``).  ``seed``
        may be ``None``, in which case the session's root seed is used.
    grid_size:
        Spatial-correlation grid resolution (all backends).
    variance_coverage:
        Fraction of spatial variance the SSTA factor basis must explain.
    ordering:
        Clark pairwise-reduction ordering for the model backends.
    """

    backend: str = "montecarlo"
    n_samples: int = 2000
    seed: int | None = 2005
    grid_size: int = 8
    chunk_size: int | None = None
    variance_coverage: float = 0.995
    ordering: str = "increasing"

    def __post_init__(self) -> None:
        if not self.backend or not isinstance(self.backend, str):
            raise ValueError(f"backend must be a non-empty string, got {self.backend!r}")
        if self.n_samples < 2:
            raise ValueError(f"n_samples must be at least 2, got {self.n_samples}")
        if self.seed is not None and self.seed < 0:
            raise ValueError(f"seed must be None or non-negative, got {self.seed}")
        if self.grid_size < 1:
            raise ValueError(f"grid_size must be at least 1, got {self.grid_size}")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError(f"chunk_size must be None or >= 1, got {self.chunk_size}")
        if not 0.0 < self.variance_coverage <= 1.0:
            raise ValueError(
                f"variance_coverage must be in (0, 1], got {self.variance_coverage}"
            )
        if self.ordering not in _ORDERINGS:
            raise ValueError(
                f"ordering must be one of {_ORDERINGS}, got {self.ordering!r}"
            )

    def with_backend(self, backend: str) -> "AnalysisSpec":
        """Copy of this spec pointed at a different backend."""
        return dataclasses.replace(self, backend=backend)

    def with_seed(self, seed: int | None) -> "AnalysisSpec":
        """Copy of this spec with a different RNG seed."""
        return dataclasses.replace(self, seed=seed)

    # -- serialisation --------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return _spec_to_dict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AnalysisSpec":
        _check_fields(cls, data)
        return cls(**data)

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "AnalysisSpec":
        return cls.from_dict(json.loads(text))


# ----------------------------------------------------------------------
# Study specification
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StudySpec:
    """One complete experiment: pipeline + variation + analysis + targets.

    ``target_yield`` (a probability) and ``target_quantile`` (a position in
    the delay distribution used to pick a clock-period target, as the
    Table I rows do) are optional query parameters carried with the spec so
    a sweep can vary them like any other axis.
    """

    pipeline: PipelineSpec = field(default_factory=PipelineSpec)
    variation: VariationSpec = field(default_factory=VariationSpec)
    analysis: AnalysisSpec = field(default_factory=AnalysisSpec)
    target_yield: float | None = None
    target_quantile: float | None = None
    name: str = ""

    def __post_init__(self) -> None:
        for label, value in (
            ("target_yield", self.target_yield),
            ("target_quantile", self.target_quantile),
        ):
            if value is not None and not 0.0 < value < 1.0:
                raise ValueError(f"{label} must be in (0, 1), got {value}")

    def with_backend(self, backend: str) -> "StudySpec":
        """Copy of this study pointed at a different analysis backend."""
        return dataclasses.replace(self, analysis=self.analysis.with_backend(backend))

    def replace(self, **changes: Any) -> "StudySpec":
        """``dataclasses.replace`` convenience for sweep/axis code."""
        return dataclasses.replace(self, **changes)

    # -- serialisation --------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return _spec_to_dict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StudySpec":
        _check_fields(cls, data)
        data = dict(data)
        if "pipeline" in data and isinstance(data["pipeline"], Mapping):
            data["pipeline"] = PipelineSpec.from_dict(data["pipeline"])
        if "variation" in data and isinstance(data["variation"], Mapping):
            data["variation"] = VariationSpec.from_dict(data["variation"])
        if "analysis" in data and isinstance(data["analysis"], Mapping):
            data["analysis"] = AnalysisSpec.from_dict(data["analysis"])
        return cls(**data)

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "StudySpec":
        return cls.from_dict(json.loads(text))


# ----------------------------------------------------------------------
# Design specification
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DesignSpec:
    """Which optimizer designs the pipeline, toward which targets.

    Parameters
    ----------
    optimizer:
        Registered pipeline-optimizer name.  Built in: ``"balanced"`` (the
        paper's conventional flow, eq. 12 yield split), ``"redistribute"``
        (constant-area eq. 14 imbalance, Fig. 7) and ``"global"`` (the
        Fig. 9 R_i-ordered global statistical sizing).  Validated against
        the registry when the optimizer is resolved, so optimizers
        registered via :func:`repro.api.design.register_optimizer` work
        transparently.
    sizer:
        Stage-sizer strategy name (``"lagrangian"``, ``"greedy"``, or any
        name registered with :func:`repro.optimize.sizers.register_sizer`).
    sizer_options:
        Keyword knobs forwarded to the sizer factory (``max_outer``,
        ``max_moves``, ``min_size``...), stored as a key-sorted tuple of
        ``(name, value)`` pairs so the spec stays frozen, hashable and
        order-insensitive; a plain dict is accepted and coerced.
    yield_target:
        Pipeline yield target ``Y``.
    stage_yield:
        Optional explicit per-stage yield budget for the balanced baseline
        (Tables II/III use 0.95); ``None`` applies the equal split
        ``Y ** (1/N)`` (eq. 12).
    delay_target:
        Explicit pipeline delay target ``T_TARGET`` in seconds; ``None``
        derives it from ``delay_policy``.
    delay_policy:
        How to derive the delay target when ``delay_target`` is ``None``,
        always scaled by ``delay_scale``:

        * ``"stage_max"`` -- the slowest stage's current delay at the stage
          yield budget (Table III's comfortably reachable target),
        * ``"stage_min"`` -- the fastest stage's current delay (Fig. 7's
          aggressive common target),
        * ``"sized"`` -- aggressively size every stage (target
          ``delay_probe`` x its current delay) and take the slowest
          *achieved* delay (Table II's "just below what the hardest stage
          can reach"),
        * ``"stage_relative"`` -- per-stage targets, each stage at
          ``delay_scale`` x its own current delay (sizer-ablation style;
          ``balanced`` optimizer only).
    delay_scale / delay_probe:
        Scale factor applied to the policy's reference delay, and the
        aggressiveness of the ``"sized"`` policy's probe sizing runs.
    curve_points:
        Points per stage in area-vs-delay characterisations (Fig. 8).
    ordering:
        Stage processing order of the global optimizer (``"ri_ascending"``
        is the paper's choice).
    rounds:
        Passes of the global optimizer over the stages.
    max_stage_yield:
        Cap on per-stage yield requirements in the global optimizer.
    fraction / mode:
        Redistribution knobs (Fig. 7): fraction of donor area moved, and
        whether the eq. 14 assignment is followed (``"best"``) or inverted
        (``"worst"``).
    """

    optimizer: str = "global"
    sizer: str = "lagrangian"
    sizer_options: tuple[tuple[str, Any], ...] = ()
    yield_target: float = 0.80
    stage_yield: float | None = None
    delay_target: float | None = None
    delay_policy: str = "stage_max"
    delay_scale: float = 1.0
    delay_probe: float = 0.6
    curve_points: int = 4
    ordering: str = "ri_ascending"
    rounds: int = 1
    max_stage_yield: float = 0.9995
    fraction: float = 0.15
    mode: str = "best"

    def __post_init__(self) -> None:
        if not self.optimizer or not isinstance(self.optimizer, str):
            raise ValueError(
                f"optimizer must be a non-empty string, got {self.optimizer!r}"
            )
        if not self.sizer or not isinstance(self.sizer, str):
            raise ValueError(f"sizer must be a non-empty string, got {self.sizer!r}")
        object.__setattr__(self, "sizer_options", _as_options(self.sizer_options))
        if not 0.0 < self.yield_target < 1.0:
            raise ValueError(
                f"yield_target must be in (0, 1), got {self.yield_target}"
            )
        if self.stage_yield is not None and not 0.0 < self.stage_yield < 1.0:
            raise ValueError(
                f"stage_yield must be None or in (0, 1), got {self.stage_yield}"
            )
        if self.delay_target is not None and self.delay_target <= 0.0:
            raise ValueError(
                f"delay_target must be None or positive, got {self.delay_target}"
            )
        if self.delay_policy not in _DELAY_POLICIES:
            raise ValueError(
                f"delay_policy must be one of {_DELAY_POLICIES}, "
                f"got {self.delay_policy!r}"
            )
        if self.delay_scale <= 0.0:
            raise ValueError(f"delay_scale must be positive, got {self.delay_scale}")
        if not 0.0 < self.delay_probe <= 1.0:
            raise ValueError(
                f"delay_probe must be in (0, 1], got {self.delay_probe}"
            )
        if self.curve_points < 1:
            raise ValueError(f"curve_points must be at least 1, got {self.curve_points}")
        if self.ordering not in _STAGE_ORDERINGS:
            raise ValueError(
                f"ordering must be one of {_STAGE_ORDERINGS}, got {self.ordering!r}"
            )
        if self.rounds < 1:
            raise ValueError(f"rounds must be at least 1, got {self.rounds}")
        if not 0.5 < self.max_stage_yield < 1.0:
            raise ValueError(
                f"max_stage_yield must be in (0.5, 1), got {self.max_stage_yield}"
            )
        if not 0.0 < self.fraction < 0.9:
            raise ValueError(f"fraction must be in (0, 0.9), got {self.fraction}")
        if self.mode not in _REDISTRIBUTION_MODES:
            raise ValueError(
                f"mode must be one of {_REDISTRIBUTION_MODES}, got {self.mode!r}"
            )

    # -- derived keys ----------------------------------------------------
    def balance_key(self) -> tuple:
        """The fields that determine the balanced baseline (and its targets).

        Two design specs with equal balance keys share the session-cached
        balanced design and target-delay derivation regardless of which
        optimizer, redistribution mode or characterisation depth they use.
        """
        return (
            self.sizer,
            self.sizer_options,
            self.yield_target,
            self.stage_yield,
            self.delay_target,
            self.delay_policy,
            self.delay_scale,
            self.delay_probe,
        )

    def sizer_key(self) -> tuple:
        """The fields that determine the sizer instance."""
        return (self.sizer, self.sizer_options)

    def with_optimizer(self, optimizer: str) -> "DesignSpec":
        """Copy of this spec handled by a different optimizer."""
        return dataclasses.replace(self, optimizer=optimizer)

    # -- serialisation --------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        data = _spec_to_dict(self)
        data["sizer_options"] = {name: value for name, value in self.sizer_options}
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DesignSpec":
        _check_fields(cls, data)
        return cls(**dict(data))

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "DesignSpec":
        return cls.from_dict(json.loads(text))


# ----------------------------------------------------------------------
# Design-study specification
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DesignStudySpec:
    """One complete design experiment: pipeline + variation + design (+ MC).

    ``validation`` describes the Monte-Carlo run that cross-checks the
    designed pipeline's yield (its ``backend`` field is ignored -- the
    validation is always sampled); ``None`` skips validation, leaving the
    report with model-predicted yields only.
    """

    pipeline: PipelineSpec = field(default_factory=PipelineSpec)
    variation: VariationSpec = field(default_factory=VariationSpec)
    design: DesignSpec = field(default_factory=DesignSpec)
    validation: AnalysisSpec | None = None
    name: str = ""

    def with_optimizer(self, optimizer: str) -> "DesignStudySpec":
        """Copy of this study handled by a different optimizer."""
        return dataclasses.replace(self, design=self.design.with_optimizer(optimizer))

    def replace(self, **changes: Any) -> "DesignStudySpec":
        """``dataclasses.replace`` convenience for sweep/axis code."""
        return dataclasses.replace(self, **changes)

    # -- serialisation --------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return _spec_to_dict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DesignStudySpec":
        _check_fields(cls, data)
        data = dict(data)
        if "pipeline" in data and isinstance(data["pipeline"], Mapping):
            data["pipeline"] = PipelineSpec.from_dict(data["pipeline"])
        if "variation" in data and isinstance(data["variation"], Mapping):
            data["variation"] = VariationSpec.from_dict(data["variation"])
        if "design" in data and isinstance(data["design"], Mapping):
            data["design"] = DesignSpec.from_dict(data["design"])
        if "validation" in data and isinstance(data["validation"], Mapping):
            data["validation"] = AnalysisSpec.from_dict(data["validation"])
        return cls(**data)

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "DesignStudySpec":
        return cls.from_dict(json.loads(text))
