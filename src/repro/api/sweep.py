"""Vectorized scenario sweeps over study-spec axes.

A sweep is "this base study, but vary these knobs": stage count, logic
depth, variation mix, sigma scaling, sample count, backend, yield target --
any field of the nested :class:`~repro.api.spec.StudySpec` or
:class:`~repro.api.spec.DesignStudySpec` addressed by a dotted path::

    sweep = ScenarioSweep(
        base_spec,
        axes={
            "pipeline.n_stages": [4, 8, 12, 16],
            "variation.sigma_vth_inter": [0.0, 0.020, 0.040],
        },
    )
    for point in sweep.iter_results():          # streams as computed
        print(point.coords, point.report.variability)
    result = sweep.run(n_jobs=4)                # optional process fan-out

Design axes compose with analysis axes the same way: a
``DesignStudySpec`` base sweeps over ``design.yield_target``,
``design.optimizer``, ``variation.sigma_scale``... and each point returns a
:class:`~repro.api.design.DesignReport`.

``mode="grid"`` takes the Cartesian product of the axes (the default);
``mode="zip"`` pairs them elementwise like :func:`zip`.  Points reuse the
session's cached pipelines, schedules, engines, balanced baselines and
area--delay curves wherever specs coincide, and each sampled point gets an
independent child seed via ``numpy.random.SeedSequence`` spawning (see
:func:`repro.api.session.derive_seed`) unless ``seed_policy="fixed"`` pins
the base seed everywhere -- reproducible either way, independent of
execution order and parallelism.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
from dataclasses import dataclass
from typing import Any, Iterator, Mapping, Sequence, Union

from repro.analysis.reporting import format_table
from repro.api.backends import DelayReport
from repro.api.canonical import (
    report_from_wire,
    report_to_wire,
    spec_from_wire,
    spec_to_wire,
)
from repro.api.session import Session, derive_seed
from repro.api.spec import AnalysisSpec, DesignStudySpec, StudySpec
from repro.robust.executor import SweepTask, create_pool, execute_tasks
from repro.robust.failures import (
    ExecutionTrace,
    PointFailure,
    SweepExecutionError,
)
from repro.robust.faults import FaultPlan
from repro.robust.policy import ExecutionPolicy

_SECTIONS = {
    StudySpec: ("pipeline", "variation", "analysis"),
    DesignStudySpec: ("pipeline", "variation", "design", "validation"),
}
_SEED_POLICIES = ("spawn", "fixed")
# Axes that compare engines rather than change the experiment: points
# differing only along these keep one RNG stream, so backend comparisons
# reuse the cached characterisation and optimizer/sizer comparisons reuse
# the cached balanced baseline and area-delay curves.  ``sizer_options``
# rides along with ``sizer`` so zip-mode sizer sweeps (which pair the two)
# validate every sizer on the same sample stream.
_COMPARISON_AXES = frozenset(
    {"analysis.backend", "analysis.seed", "validation.seed",
     "design.optimizer", "design.sizer", "design.sizer_options"}
)

AnySpec = Union[StudySpec, DesignStudySpec]


def apply_axis(spec: AnySpec, path: str, value: Any) -> AnySpec:
    """Return ``spec`` with the field addressed by ``path`` set to ``value``.

    Paths are ``"section.field"`` for the nested specs (``pipeline.n_stages``,
    ``variation.sigma_scale``, ``analysis.backend``, ``design.yield_target``,
    ``validation.n_samples``...) or a bare top-level spec field name
    (``target_yield``, ``name``).
    """
    sections = _SECTIONS[type(spec)]
    section, _, field_name = path.partition(".")
    if not field_name:
        return spec.replace(**{section: value})
    if section == "study":
        return spec.replace(**{field_name: value})
    if section not in sections:
        raise ValueError(
            f"axis path {path!r} must start with one of {sections + ('study',)} "
            f"or name a top-level {type(spec).__name__} field"
        )
    part = getattr(spec, section)
    if part is None and section == "validation":
        part = AnalysisSpec()
    part = dataclasses.replace(part, **{field_name: value})
    return spec.replace(**{section: part})


def _point_seed(spec: AnySpec) -> int | None:
    """The seed field a sweep point's sampling derives from, if any."""
    if isinstance(spec, DesignStudySpec):
        return spec.validation.seed if spec.validation is not None else None
    return spec.analysis.seed


def _with_point_seed(spec: AnySpec, seed: int) -> AnySpec:
    """Copy of ``spec`` with its sampling seed replaced."""
    if isinstance(spec, DesignStudySpec):
        if spec.validation is None:
            return spec
        return spec.replace(validation=spec.validation.with_seed(seed))
    return spec.replace(analysis=spec.analysis.with_seed(seed))


def _seed_axis(spec: AnySpec) -> str:
    """The dotted path of the spec's sampling-seed field."""
    return "validation.seed" if isinstance(spec, DesignStudySpec) else "analysis.seed"


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated sweep point: its coordinates, derived spec and report.

    ``report`` is a :class:`~repro.api.backends.DelayReport` for analysis
    sweeps and a :class:`~repro.api.design.DesignReport` for design sweeps.
    """

    index: int
    coords: tuple[tuple[str, Any], ...]
    spec: AnySpec
    report: Any

    def coord(self, path: str) -> Any:
        """Value of one axis at this point."""
        for key, value in self.coords:
            if key == path:
                return value
        raise KeyError(f"no axis {path!r} at this point; axes: "
                       f"{tuple(key for key, _ in self.coords)}")

    def record(self) -> dict[str, Any]:
        """Flat dict of coordinates plus the report's scalar summary."""
        row = {key: value for key, value in self.coords}
        row.update(self.report.summary())
        target_yield = getattr(self.spec, "target_yield", None)
        if target_yield is not None and isinstance(self.report, DelayReport):
            row["delay_at_target_yield"] = self.report.delay_at_yield(target_yield)
        return row

    # -- serialisation --------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Loss-free JSON-safe view: coords, tagged spec and tagged report.

        This is the unit the study server streams over the wire (one NDJSON
        line per point); ``from_dict(to_dict())`` compares equal, report
        samples included.
        """
        return {
            "index": self.index,
            "coords": [[path, value] for path, value in self.coords],
            "spec": spec_to_wire(self.spec),
            "report": report_to_wire(self.report),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepPoint":
        """Rehydrate a point (spec and report rebuilt from tagged envelopes)."""
        return cls(
            index=int(data["index"]),
            coords=tuple((str(path), value) for path, value in data["coords"]),
            spec=spec_from_wire(data["spec"]),
            report=report_from_wire(data["report"]),
        )


class SweepResult:
    """Ordered collection of sweep points with tabular conveniences.

    A result may be *partial*: points that exhausted their attempts under
    the executing :class:`~repro.robust.policy.ExecutionPolicy` appear as
    structured :class:`~repro.robust.failures.PointFailure` records in
    :attr:`failures` rather than aborting the sweep, and :attr:`trace`
    records what the execution layer actually did (pool kind, serial
    fallback and its reason, retries, worker respawns, checkpoint traffic).
    Iteration, indexing and the tabular views cover the successful points
    only; call :meth:`raise_on_failure` to get all-or-nothing semantics.
    """

    def __init__(
        self,
        points: Sequence[SweepPoint],
        failures: Sequence[PointFailure] = (),
        trace: ExecutionTrace | None = None,
    ) -> None:
        self.points = sorted(points, key=lambda point: point.index)
        self.failures = tuple(
            sorted(failures, key=lambda failure: failure.index)
        )
        self.trace = trace if trace is not None else ExecutionTrace(
            n_points=len(self.points) + len(self.failures),
            n_completed=len(self.points),
            n_failed=len(self.failures),
        )

    def __iter__(self) -> Iterator[SweepPoint]:
        return iter(self.points)

    def __len__(self) -> int:
        return len(self.points)

    def __getitem__(self, index: int) -> SweepPoint:
        return self.points[index]

    @property
    def ok(self) -> list[SweepPoint]:
        """The successful points, in sweep order (alias of ``list(self)``)."""
        return list(self.points)

    def raise_on_failure(self) -> "SweepResult":
        """Return ``self`` if fully successful, else raise.

        Raises :class:`~repro.robust.failures.SweepExecutionError` carrying
        the structured failure list; when an original exception object is
        available (serial execution) it becomes the ``__cause__`` so the
        underlying traceback stays visible.
        """
        if not self.failures:
            return self
        error = SweepExecutionError(self.failures)
        cause = next(
            (f.exception for f in self.failures if f.exception is not None),
            None,
        )
        if cause is not None:
            raise error from cause
        raise error

    def reports(self) -> list[DelayReport]:
        """The per-point reports in sweep order."""
        return [point.report for point in self.points]

    def to_records(self) -> list[dict[str, Any]]:
        """Flat records (coords + summary stats), one per point."""
        return [point.record() for point in self.points]

    # -- serialisation --------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Loss-free JSON-safe view of the (possibly partial) result.

        Successful points, structured failures and the execution trace all
        round-trip; the live exception objects inside failures are the only
        thing dropped (they never serialise, and are excluded from
        equality).
        """
        return {
            "points": [point.to_dict() for point in self.points],
            "failures": [failure.to_dict() for failure in self.failures],
            "trace": self.trace.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepResult":
        """Rehydrate a result from :meth:`to_dict` output."""
        return cls(
            [SweepPoint.from_dict(point) for point in data.get("points", [])],
            failures=[
                PointFailure.from_dict(failure)
                for failure in data.get("failures", [])
            ],
            trace=ExecutionTrace.from_dict(data["trace"])
            if data.get("trace") is not None
            else None,
        )

    def to_json(self, indent: int | None = None) -> str:
        """Serialise the full (partial) result, report samples included."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "SweepResult":
        return cls.from_dict(json.loads(text))

    def format(self, title: str | None = None) -> str:
        """Plain-text table of the sweep, via the shared report formatter."""
        records = self.to_records()
        if not records:
            return "(empty sweep)"
        headers: list[str] = []
        for record in records:
            headers.extend(key for key in record if key not in headers)
        rows = [[record.get(h, "-") for h in headers] for record in records]
        return format_table(headers, rows, title=title)


class ScenarioSweep:
    """Grid or zip sweep of a base study spec over named axes.

    Parameters
    ----------
    base:
        The study every point derives from.
    axes:
        Mapping of dotted field path -> values (insertion order defines the
        grid's axis order).
    mode:
        ``"grid"`` for the Cartesian product, ``"zip"`` for elementwise
        pairing (all axes must then have equal length).
    seed_policy:
        ``"spawn"`` (default) derives an independent seed per point from the
        base seed via ``SeedSequence`` spawning, branching on the point's
        position along every *non-backend* axis -- so points that differ
        only in ``analysis.backend`` keep the same seed and share one cached
        characterisation (the model-vs-Monte-Carlo comparison), while every
        other point gets its own stream.  ``"fixed"`` keeps the base
        analysis seed everywhere, which is what paper-reproduction sweeps
        use so a point's samples match a standalone run.  An explicit
        ``analysis.seed`` axis always wins over either policy.
    session:
        Default session for :meth:`run` / :meth:`iter_results`; a sweep
        created via :meth:`Study.sweep` is bound to the study's session.
    """

    def __init__(
        self,
        base: AnySpec,
        axes: Mapping[str, Sequence[Any]],
        mode: str = "grid",
        seed_policy: str = "spawn",
        session: Session | None = None,
    ) -> None:
        if not axes:
            raise ValueError("a sweep needs at least one axis")
        if mode not in ("grid", "zip"):
            raise ValueError(f"mode must be 'grid' or 'zip', got {mode!r}")
        if seed_policy not in _SEED_POLICIES:
            raise ValueError(
                f"seed_policy must be one of {_SEED_POLICIES}, got {seed_policy!r}"
            )
        self.base = base
        self.axes = {str(path): list(values) for path, values in axes.items()}
        for path, values in self.axes.items():
            if not values:
                raise ValueError(f"axis {path!r} has no values")
        if mode == "zip":
            lengths = {len(values) for values in self.axes.values()}
            if len(lengths) > 1:
                raise ValueError(
                    f"zip mode needs equal-length axes, got lengths "
                    f"{ {p: len(v) for p, v in self.axes.items()} }"
                )
        self.mode = mode
        self.seed_policy = seed_policy
        self.session = session
        self._points = self._build_specs()

    # ------------------------------------------------------------------
    # Spec derivation
    # ------------------------------------------------------------------
    def _combinations(self) -> Iterator[tuple[tuple[int, Any], ...]]:
        """Per-point combinations of ``(value_index, value)`` per axis."""
        indexed = [list(enumerate(values)) for values in self.axes.values()]
        if self.mode == "zip":
            return iter(zip(*indexed))
        return itertools.product(*indexed)

    def _build_specs(
        self,
    ) -> list[tuple[tuple[tuple[str, Any], ...], AnySpec, tuple[int, ...]]]:
        paths = list(self.axes)
        points = []
        for combo in self._combinations():
            coords = tuple(
                (path, value) for path, (_, value) in zip(paths, combo)
            )
            branch = tuple(
                value_index
                for path, (value_index, _) in zip(paths, combo)
                if path not in _COMPARISON_AXES
            )
            spec = self.base
            for path, value in coords:
                spec = apply_axis(spec, path, value)
            spec = self._reseed(spec, branch)
            points.append((coords, spec, branch))
        return points

    def _spawning(self, spec: AnySpec) -> bool:
        return self.seed_policy == "spawn" and _seed_axis(spec) not in self.axes

    def _reseed(self, spec: AnySpec, branch: tuple[int, ...]) -> AnySpec:
        """Spawn this point's seed from the base seed (construction time).

        The branch path excludes the comparison axes (backend, optimizer,
        sizer), so points differing only along those share a seed -- and
        therefore the cached Monte-Carlo characterisation or design
        baseline.  A ``None`` base seed means "let the session choose" and
        is resolved against the executing session's root seed in
        :meth:`_final_spec` instead.
        """
        if not self._spawning(spec) or _point_seed(spec) is None:
            return spec
        return _with_point_seed(spec, derive_seed(_point_seed(spec), *branch))

    def _final_spec(
        self, spec: AnySpec, branch: tuple[int, ...], root_seed: int
    ) -> AnySpec:
        """Resolve a deferred (None-seed) spawn against the executing session."""
        if not self._spawning(spec) or _point_seed(spec) is not None:
            return spec
        if isinstance(spec, DesignStudySpec) and spec.validation is None:
            return spec
        return _with_point_seed(spec, derive_seed(root_seed, *branch))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._points)

    def specs(self) -> list[AnySpec]:
        """The derived per-point study specs, in sweep order.

        Points whose base seed is ``None`` still show ``seed=None`` here;
        their concrete seed is spawned from the executing session's root
        seed when the sweep runs (see the finalized ``SweepPoint.spec``).
        """
        return [spec for _, spec, _ in self._points]

    def coords(self) -> list[tuple[tuple[str, Any], ...]]:
        """The per-point axis coordinates, in sweep order."""
        return [coords for coords, _, _ in self._points]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def iter_results(self, session: Session | None = None) -> Iterator[SweepPoint]:
        """Stream sweep points as they are computed (serial, cache-shared).

        Uses the sweep's bound session (``Study.sweep`` binds the study's)
        when ``session`` is omitted, so points reuse previously cached
        structure; a fresh session is created only if neither is set.
        """
        if session is None:
            session = self.session if self.session is not None else Session()
        for index, (coords, spec, branch) in enumerate(self._points):
            spec = self._final_spec(spec, branch, session.root_seed)
            yield SweepPoint(index, coords, spec, session.run(spec))

    def tasks(self, session: Session) -> list[SweepTask]:
        """The sweep as resolved execution tasks (seeds made concrete)."""
        return [
            SweepTask(
                index=index,
                coords=coords,
                spec=self._final_spec(spec, branch, session.root_seed),
            )
            for index, (coords, spec, branch) in enumerate(self._points)
        ]

    def run(
        self,
        session: Session | None = None,
        n_jobs: int | None = None,
        policy: ExecutionPolicy | None = None,
        fault_plan: FaultPlan | None = None,
        shards: int | None = None,
    ) -> SweepResult:
        """Evaluate every point; ``n_jobs > 1`` fans out across processes.

        Parallel workers each hold their own session, constructed with the
        caller session's technology and root seed so serial and parallel
        runs compute identical numbers (caches do not cross process
        boundaries); results always come back in sweep order.  If a process
        pool cannot be created the sweep falls back to the serial path and
        records why in ``result.trace.fallback_reason``.

        ``policy`` opts into resilient execution (retries with
        deterministic backoff, per-point timeouts, a sweep deadline,
        checkpoint/resume -- see
        :class:`~repro.robust.policy.ExecutionPolicy`) and switches the
        failure contract to *partial results*: failing points come back as
        ``result.failures`` instead of raising.  Without a policy the
        legacy contract holds -- any point failure raises (a
        :class:`~repro.robust.failures.SweepExecutionError` wrapping the
        structured failures, with the original exception as its cause).
        ``fault_plan`` injects deterministic faults for chaos testing (and
        implies the partial-result contract).

        ``shards > 1`` switches to the shard runner
        (:func:`repro.robust.shard.run_sharded`): tasks are partitioned
        across worker processes by content-addressed cache key and the
        shards rendezvous only through a shared checkpoint store, merging
        to a result bit-identical to a serial run.  ``shards`` and
        ``n_jobs`` are mutually exclusive (a shard already runs its tasks
        through a full engine).
        """
        # Default the session before branching so serial and parallel runs
        # resolve ``self.session`` identically.
        if session is None:
            session = self.session if self.session is not None else Session()
        strict = policy is None and fault_plan is None
        if shards is not None and shards > 1:
            if n_jobs is not None and n_jobs > 1:
                raise ValueError(
                    "shards and n_jobs are mutually exclusive; each shard "
                    "already runs its tasks through a full engine"
                )
            from repro.robust.shard import run_sharded

            points, failures, trace = run_sharded(
                self.tasks(session),
                session,
                shards=shards,
                policy=policy,
                fault_plan=fault_plan,
            )
        else:
            points, failures, trace = execute_tasks(
                self.tasks(session),
                session,
                policy=policy,
                n_jobs=n_jobs,
                fault_plan=fault_plan,
            )
        result = SweepResult(points, failures=failures, trace=trace)
        if strict:
            result.raise_on_failure()
        return result


def _make_pool(n_jobs: int):
    """A verified-working process pool, or ``None`` if this platform has none.

    Thin compatibility wrapper over
    :func:`repro.robust.executor.create_pool`, which probes the pool (and
    reaps the probe's workers with ``wait=True`` on failure) and reports
    *why* a pool is unavailable; the sweep runner records that reason in
    the result's :class:`~repro.robust.failures.ExecutionTrace` instead of
    falling back silently.
    """
    pool, _ = create_pool(n_jobs)
    return pool


_WORKER_SESSION: Session | None = None


def _worker_session(technology, root_seed: int) -> Session:
    """The per-worker-process session, rebuilt only when its parameters change.

    The worker session mirrors the dispatching session's technology and
    root seed (shipped with each payload), so parallel runs return the same
    numbers as serial ones; reuse across payloads is what lets one worker
    share cached pipelines and characterisations over many sweep points.
    """
    global _WORKER_SESSION
    if (
        _WORKER_SESSION is None
        or _WORKER_SESSION.technology != technology
        or _WORKER_SESSION.root_seed != root_seed
    ):
        _WORKER_SESSION = Session(technology=technology, root_seed=root_seed)
    return _WORKER_SESSION


def _evaluate_point(payload: tuple) -> SweepPoint:
    """Process-pool entrypoint: evaluate one point on a per-worker session."""
    index, coords, spec, technology, root_seed = payload
    session = _worker_session(technology, root_seed)
    return SweepPoint(index, coords, spec, session.run(spec))


def run_sweep(
    base: AnySpec,
    axes: Mapping[str, Sequence[Any]],
    mode: str = "grid",
    session: Session | None = None,
    n_jobs: int | None = None,
    seed_policy: str = "spawn",
    policy: ExecutionPolicy | None = None,
    fault_plan: FaultPlan | None = None,
    shards: int | None = None,
) -> SweepResult:
    """One-shot facade: build a :class:`ScenarioSweep` and run it."""
    return ScenarioSweep(base, axes, mode=mode, seed_policy=seed_policy).run(
        session=session,
        n_jobs=n_jobs,
        policy=policy,
        fault_plan=fault_plan,
        shards=shards,
    )
