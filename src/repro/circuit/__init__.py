"""Gate-level circuit substrate.

The paper's pipelines are built from transistor-level SPICE netlists
(inverter chains for model verification, ISCAS85 benchmark circuits and an
ALU/decoder design for the optimization experiments).  This subpackage is
the gate-level stand-in:

* :mod:`repro.circuit.cell_library` -- a logical-effort-style standard-cell
  library (INV, NAND, NOR, AOI/OAI, XOR, BUF) with size-dependent area,
  input capacitance and drive strength.
* :mod:`repro.circuit.netlist` -- the :class:`Netlist` DAG of sized,
  placed gates, plus topological traversal, load computation and area
  accounting.
* :mod:`repro.circuit.flipflop` -- timing model of the sequential elements
  (clock-to-Q plus setup), expressed as an equivalent inverter chain so it
  participates in process variation like any other logic.
* :mod:`repro.circuit.generators` -- deterministic circuit generators:
  inverter chains, depth-controlled random logic, ALU and decoder blocks.
* :mod:`repro.circuit.iscas` -- synthetic stand-ins for the ISCAS85
  benchmarks (c432, c1908, c2670, c3540) matched in gate count, depth and
  I/O count to the published circuits.
* :mod:`repro.circuit.ingest` -- external netlist ingestion (ISCAS-style
  ``.bench`` and Yosys mapped JSON), bit-exact emitters, and the
  Rent's-rule scale generator for 100k-1M gate workloads.
"""

from repro.circuit.cell_library import Cell, CellLibrary, standard_cell_library
from repro.circuit.netlist import Gate, Netlist, NetlistError, NetlistLookupError
from repro.circuit.schedule import TimingSchedule, compile_schedule
from repro.circuit.flipflop import FlipFlopTiming
from repro.circuit.generators import (
    alu_block,
    decoder_block,
    inverter_chain,
    random_logic_block,
)
from repro.circuit.iscas import ISCAS_PROFILES, iscas_benchmark
from repro.circuit.ingest import (
    CellMapping,
    ParseError,
    load_bench,
    load_yosys_json,
    parse_bench,
    parse_yosys_json,
    scale_logic_block,
    write_bench,
    write_yosys_json,
)

__all__ = [
    "Cell",
    "CellLibrary",
    "standard_cell_library",
    "Gate",
    "Netlist",
    "NetlistError",
    "NetlistLookupError",
    "TimingSchedule",
    "compile_schedule",
    "FlipFlopTiming",
    "inverter_chain",
    "random_logic_block",
    "alu_block",
    "decoder_block",
    "iscas_benchmark",
    "ISCAS_PROFILES",
    "CellMapping",
    "ParseError",
    "load_bench",
    "load_yosys_json",
    "parse_bench",
    "parse_yosys_json",
    "scale_logic_block",
    "write_bench",
    "write_yosys_json",
]
