"""Logical-effort-style standard-cell library.

Each cell is characterised by three dimensionless coefficients relative to a
minimum-size inverter in the target technology:

* ``logical_effort`` (g): how much more input capacitance the cell presents
  than an inverter with the same drive strength,
* ``parasitic_delay`` (p): the cell's self-loading delay in units of the
  technology time constant tau,
* ``area_factor``: layout area per unit of drive size, in multiples of the
  minimum inverter area.

A cell instance also has a *size* (drive strength in multiples of minimum),
which scales input capacitance, parasitic capacitance and area linearly and
scales drive resistance as ``1/size``.  This is the standard logical-effort
parameterisation; it captures exactly the area/delay trade-off that the
paper's sizing experiments exercise.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.process.technology import Technology


@dataclass(frozen=True)
class Cell:
    """A standard-cell type.

    Parameters
    ----------
    name:
        Cell name, e.g. ``"NAND2"``.
    n_inputs:
        Number of logic inputs the cell accepts.
    logical_effort:
        Logical effort g: ratio of the cell's input capacitance to that of
        an inverter delivering the same output current.
    parasitic_delay:
        Parasitic delay p in units of the technology time constant.
    area_factor:
        Layout area per unit size in multiples of the minimum inverter area.
    """

    name: str
    n_inputs: int
    logical_effort: float
    parasitic_delay: float
    area_factor: float

    def __post_init__(self) -> None:
        if self.n_inputs < 1:
            raise ValueError(f"cell {self.name}: n_inputs must be >= 1")
        if self.logical_effort <= 0.0:
            raise ValueError(f"cell {self.name}: logical_effort must be positive")
        if self.parasitic_delay < 0.0:
            raise ValueError(f"cell {self.name}: parasitic_delay must be non-negative")
        if self.area_factor <= 0.0:
            raise ValueError(f"cell {self.name}: area_factor must be positive")

    # ------------------------------------------------------------------
    # Physical quantities for a sized instance
    # ------------------------------------------------------------------
    def input_capacitance(self, size: float, technology: Technology) -> float:
        """Capacitance presented at each input pin, in farads."""
        return self.logical_effort * technology.c_unit * size

    def parasitic_capacitance(self, size: float, technology: Technology) -> float:
        """Self-load capacitance at the output, in farads."""
        return self.parasitic_delay * technology.c_par_unit * size

    def drive_resistance(self, size: float, technology: Technology) -> float:
        """Nominal output drive resistance, in ohms."""
        if size <= 0.0:
            raise ValueError(f"cell {self.name}: size must be positive, got {size}")
        return technology.r_unit / size

    def area(self, size: float, technology: Technology) -> float:
        """Layout area in square micrometres."""
        return self.area_factor * technology.area_unit * size


class CellLibrary:
    """A named collection of :class:`Cell` types."""

    def __init__(self, cells: list[Cell]) -> None:
        self._cells: dict[str, Cell] = {}
        for cell in cells:
            if cell.name in self._cells:
                raise ValueError(f"duplicate cell name {cell.name!r}")
            self._cells[cell.name] = cell

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def __getitem__(self, name: str) -> Cell:
        try:
            return self._cells[name]
        except KeyError:
            raise KeyError(
                f"unknown cell {name!r}; available cells: {sorted(self._cells)}"
            ) from None

    def __iter__(self):
        return iter(self._cells.values())

    def __len__(self) -> int:
        return len(self._cells)

    @property
    def names(self) -> list[str]:
        """Sorted list of cell names in the library."""
        return sorted(self._cells)

    def cells_with_inputs(self, n_inputs: int) -> list[Cell]:
        """All cells with exactly ``n_inputs`` logic inputs."""
        return [cell for cell in self._cells.values() if cell.n_inputs == n_inputs]


def standard_cell_library() -> CellLibrary:
    """The default cell library used throughout the reproduction.

    Logical effort and parasitic delay values follow the classic
    Sutherland/Sproull/Harris numbers; area factors grow with transistor
    count.  The exact values only need to be internally consistent -- they
    set the shape of the area-vs-delay curves the optimization experiments
    explore.
    """
    return CellLibrary(
        [
            Cell("INV", 1, 1.0, 1.0, 1.0),
            Cell("BUF", 1, 1.0, 2.0, 1.6),
            Cell("NAND2", 2, 4.0 / 3.0, 2.0, 1.4),
            Cell("NAND3", 3, 5.0 / 3.0, 3.0, 1.9),
            Cell("NAND4", 4, 6.0 / 3.0, 4.0, 2.4),
            Cell("NOR2", 2, 5.0 / 3.0, 2.0, 1.5),
            Cell("NOR3", 3, 7.0 / 3.0, 3.0, 2.1),
            Cell("AOI21", 3, 2.0, 3.0, 2.2),
            Cell("OAI21", 3, 2.0, 3.0, 2.2),
            Cell("XOR2", 2, 4.0, 4.0, 3.0),
            Cell("XNOR2", 2, 4.0, 4.0, 3.0),
        ]
    )
