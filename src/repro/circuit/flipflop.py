"""Sequential-element (flip-flop) timing model.

Every pipeline stage delay in the paper is

    SD_i = T_C-Q + T_comb + T_setup

where ``T_C-Q`` and ``T_setup`` come from the transmission-gate master-slave
flip-flops used in the SPICE experiments.  We model the sequential overhead
as an *equivalent inverter chain*: the clock-to-Q path behaves like a few
inverter delays and the setup window like a couple more.  Because the
overhead is expressed in equivalent gate delays, it automatically scales
with the technology time constant and participates in process variation
exactly like the combinational logic does (its Vth deviation is sampled per
stage boundary).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.process.technology import Technology


@dataclass(frozen=True)
class FlipFlopTiming:
    """Timing model of the pipeline's sequential elements.

    Parameters
    ----------
    clk_to_q_stages:
        Number of equivalent fanout-of-4 inverter delays that make up the
        clock-to-Q delay.
    setup_stages:
        Number of equivalent fanout-of-4 inverter delays in the setup window.
    size:
        Drive size of the equivalent devices (affects the random variation
        component through the RDF 1/sqrt(size) scaling).
    fanout:
        Electrical fanout assumed for each equivalent inverter delay.
    """

    clk_to_q_stages: float = 2.0
    setup_stages: float = 1.25
    size: float = 2.0
    fanout: float = 3.0

    def __post_init__(self) -> None:
        if self.clk_to_q_stages < 0.0 or self.setup_stages < 0.0:
            raise ValueError("equivalent stage counts must be non-negative")
        if self.size <= 0.0:
            raise ValueError(f"size must be positive, got {self.size}")
        if self.fanout <= 0.0:
            raise ValueError(f"fanout must be positive, got {self.fanout}")

    @property
    def total_stages(self) -> float:
        """Total equivalent inverter delays (C-Q plus setup)."""
        return self.clk_to_q_stages + self.setup_stages

    def _unit_delay(self, technology: Technology) -> float:
        """Delay of one equivalent inverter at the configured fanout, seconds."""
        r = technology.r_unit / self.size
        c_par = technology.c_par_unit * self.size
        c_load = technology.c_unit * self.size * self.fanout
        return r * (c_par + c_load)

    def nominal_overhead(self, technology: Technology) -> float:
        """Nominal ``T_C-Q + T_setup`` in seconds at nominal process."""
        return self.total_stages * self._unit_delay(technology)

    def nominal_clk_to_q(self, technology: Technology) -> float:
        """Nominal clock-to-Q delay in seconds."""
        return self.clk_to_q_stages * self._unit_delay(technology)

    def nominal_setup(self, technology: Technology) -> float:
        """Nominal setup time in seconds."""
        return self.setup_stages * self._unit_delay(technology)

    def overhead_samples(
        self,
        technology: Technology,
        vth_samples: np.ndarray,
        length_samples: np.ndarray | None = None,
    ) -> np.ndarray:
        """Sequential overhead under sampled process parameters.

        Parameters
        ----------
        technology:
            Technology node.
        vth_samples:
            Threshold-voltage samples for the flip-flop's equivalent device,
            any shape (typically ``(n_samples,)``).
        length_samples:
            Optional channel-length samples (same shape); defaults to the
            nominal length.

        Returns
        -------
        numpy.ndarray
            Overhead delays in seconds, same shape as ``vth_samples``.
        """
        vth_samples = np.asarray(vth_samples, dtype=float)
        if length_samples is None:
            length_ratio = 1.0
        else:
            length_ratio = np.asarray(length_samples, dtype=float) / technology.lmin
        overdrive_ratio = technology.gate_overdrive / (technology.vdd - vth_samples)
        drive_factor = overdrive_ratio**technology.alpha * length_ratio
        return self.nominal_overhead(technology) * drive_factor

    def area(self, technology: Technology) -> float:
        """Approximate layout area of one flip-flop in square micrometres.

        A master-slave flip-flop is roughly the area of six to eight
        inverters of its drive size; we use seven.
        """
        return 7.0 * technology.area_unit * self.size
