"""Deterministic circuit generators.

The paper uses three families of combinational blocks:

* **inverter chains** for model verification (Figs. 2, 3, 5 and Table I),
* an **ALU / decoder** three-stage pipeline for the balanced-vs-unbalanced
  study (Figs. 6-8),
* **ISCAS85 benchmarks** for the optimization experiments (Tables II, III);
  synthetic stand-ins for those live in :mod:`repro.circuit.iscas` and are
  built on the random-logic generator defined here.

All generators are deterministic for a given seed, so experiments are
reproducible run to run.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.cell_library import CellLibrary, standard_cell_library
from repro.circuit.netlist import Netlist
from repro.process.technology import Technology, default_technology


def inverter_chain(
    depth: int,
    name: str = "inv_chain",
    size: float = 1.0,
    library: CellLibrary | None = None,
    technology: Technology | None = None,
) -> Netlist:
    """Build a chain of ``depth`` inverters.

    This is the paper's model-verification workload: a pipeline stage whose
    combinational logic is a straight chain of ``N_L`` inverters, so the
    stage delay is the sum of ``N_L`` gate delays and its variability scales
    as ``1/sqrt(N_L)`` under independent per-gate variation.

    Parameters
    ----------
    depth:
        Number of inverters in the chain (the stage logic depth ``N_L``).
    name:
        Netlist name.
    size:
        Drive size of every inverter.
    """
    if depth < 1:
        raise ValueError(f"depth must be at least 1, got {depth}")
    netlist = Netlist(name, library=library, technology=technology)
    netlist.add_primary_input("in")
    previous = "in"
    for position in range(depth):
        gate_name = f"inv{position}"
        netlist.add_gate(gate_name, "INV", [previous], size=size)
        previous = gate_name
    netlist.mark_primary_output(previous)
    netlist.auto_place()
    return netlist


def random_logic_block(
    name: str,
    n_gates: int,
    depth: int,
    n_inputs: int,
    n_outputs: int,
    seed: int,
    library: CellLibrary | None = None,
    technology: Technology | None = None,
) -> Netlist:
    """Build a depth-controlled random-logic block.

    The generator produces a levelised DAG: gates are assigned to logic
    levels 1..depth, each gate takes its first fanin from the previous level
    (which pins the block's logic depth to the requested value) and its
    remaining fanins from earlier levels or primary inputs.  Cell types are
    drawn with weights that favour 2-input gates, matching the composition
    of typical mapped random logic.

    Parameters
    ----------
    name:
        Netlist name.
    n_gates:
        Total number of gates.
    depth:
        Target logic depth (levels of gates on the longest path).
    n_inputs, n_outputs:
        Primary input / output counts.
    seed:
        Seed for the deterministic pseudo-random structure.
    """
    if n_gates < depth:
        raise ValueError(
            f"n_gates ({n_gates}) must be at least the requested depth ({depth})"
        )
    if depth < 1:
        raise ValueError(f"depth must be at least 1, got {depth}")
    if n_inputs < 1:
        raise ValueError(f"n_inputs must be at least 1, got {n_inputs}")
    if n_outputs < 1:
        raise ValueError(f"n_outputs must be at least 1, got {n_outputs}")

    rng = np.random.default_rng(seed)
    netlist = Netlist(name, library=library, technology=technology)
    for position in range(n_inputs):
        netlist.add_primary_input(f"pi{position}")

    # Distribute gates over levels: every level gets at least one gate, the
    # remainder is spread with a mild bias towards the middle of the cone,
    # which is what mapped benchmark circuits tend to look like.
    base = np.ones(depth, dtype=int)
    remaining = n_gates - depth
    if remaining > 0:
        weights = 1.0 + 0.5 * np.sin(np.linspace(0.0, np.pi, depth))
        weights /= weights.sum()
        extra = rng.multinomial(remaining, weights)
        level_sizes = base + extra
    else:
        level_sizes = base

    cell_names = ["INV", "NAND2", "NOR2", "NAND3", "NOR3", "AOI21", "OAI21", "XOR2"]
    cell_weights = np.array([0.18, 0.28, 0.22, 0.08, 0.06, 0.07, 0.07, 0.04])
    cell_weights /= cell_weights.sum()
    lib = netlist.library

    previous_level: list[str] = []
    all_earlier: list[str] = list(netlist.primary_inputs)
    gate_counter = 0
    for level in range(1, depth + 1):
        current_level: list[str] = []
        for _ in range(int(level_sizes[level - 1])):
            cell_name = str(rng.choice(cell_names, p=cell_weights))
            cell = lib[cell_name]
            fanins: list[str] = []
            if level == 1:
                pool = netlist.primary_inputs
                fanins.append(pool[int(rng.integers(len(pool)))])
            else:
                fanins.append(previous_level[int(rng.integers(len(previous_level)))])
            while len(fanins) < cell.n_inputs:
                # Remaining fanins: mostly from the recent past, occasionally
                # a primary input (long "through" connections exist in real
                # benchmarks too).
                if rng.random() < 0.15 or not all_earlier:
                    pool = netlist.primary_inputs
                else:
                    window = min(len(all_earlier), 4 * max(1, int(level_sizes.max())))
                    pool = all_earlier[-window:]
                candidate = pool[int(rng.integers(len(pool)))]
                if candidate not in fanins:
                    fanins.append(candidate)
                elif len(pool) == 1:
                    # Only one possible driver; accept the duplicate pin
                    # rather than loop forever on a tiny block.
                    fanins.append(candidate)
            gate_name = f"g{gate_counter}"
            gate_counter += 1
            netlist.add_gate(gate_name, cell_name, fanins)
            current_level.append(gate_name)
        all_earlier.extend(current_level)
        previous_level = current_level

    # Primary outputs: prefer the deepest gates, then walk backwards until we
    # have enough.
    outputs_needed = min(n_outputs, n_gates)
    chosen: list[str] = []
    for name_candidate in reversed(all_earlier):
        if name_candidate in netlist.primary_inputs:
            continue
        chosen.append(name_candidate)
        if len(chosen) == outputs_needed:
            break
    for output_name in chosen:
        netlist.mark_primary_output(output_name)

    netlist.auto_place()
    return netlist


def alu_block(
    width: int = 8,
    name: str = "alu",
    part: str = "full",
    library: CellLibrary | None = None,
    technology: Technology | None = None,
) -> Netlist:
    """Build a bit-sliced ALU-like block (add/logic datapath slice).

    Each bit slice computes propagate/generate terms with XOR/NAND gates and
    chains the carry through alternating AOI/OAI cells, which is how mapped
    ripple-carry ALUs actually look.  ``part`` selects the paper's Fig. 6
    split of the ALU into two pipeline stages:

    * ``"lower"`` -- propagate/generate plus the first half of the carry chain,
    * ``"upper"`` -- the second half of the carry chain plus the sum XORs,
    * ``"full"``  -- the whole datapath in one block.

    Parameters
    ----------
    width:
        Number of bit slices.
    """
    if width < 2:
        raise ValueError(f"width must be at least 2, got {width}")
    if part not in {"full", "lower", "upper"}:
        raise ValueError(f"part must be 'full', 'lower' or 'upper', got {part!r}")

    netlist = Netlist(name, library=library, technology=technology)
    for bit in range(width):
        netlist.add_primary_input(f"a{bit}")
        netlist.add_primary_input(f"b{bit}")
    netlist.add_primary_input("cin")

    include_lower = part in {"full", "lower"}
    include_upper = part in {"full", "upper"}
    split = width // 2

    carry = "cin"
    if not include_lower:
        # Upper half alone: the incoming carry and the lower propagate terms
        # arrive from the previous pipeline stage as primary inputs.
        for bit in range(split):
            netlist.add_primary_input(f"p_in{bit}")

    for bit in range(width):
        in_lower_half = bit < split
        if in_lower_half and not include_lower:
            continue
        if not in_lower_half and not include_upper:
            continue
        a, b = f"a{bit}", f"b{bit}"
        netlist.add_gate(f"p{bit}", "XOR2", [a, b])
        netlist.add_gate(f"gn{bit}", "NAND2", [a, b])
        netlist.add_gate(f"g{bit}", "INV", [f"gn{bit}"])
        if carry == "cin" and not include_lower:
            carry_source = "p_in0"
        else:
            carry_source = carry
        # Carry-out = g | (p & c): one AOI21 plus an inverter.
        netlist.add_gate(f"c_aoi{bit}", "AOI21", [f"p{bit}", carry_source, f"g{bit}"])
        netlist.add_gate(f"c{bit}", "INV", [f"c_aoi{bit}"])
        netlist.add_gate(f"sum{bit}", "XOR2", [f"p{bit}", carry_source])
        carry = f"c{bit}"
        if include_upper and not in_lower_half:
            netlist.mark_primary_output(f"sum{bit}")
        elif include_lower and part == "lower":
            netlist.mark_primary_output(f"sum{bit}")
    netlist.mark_primary_output(carry)

    netlist.auto_place()
    return netlist


def decoder_block(
    n_address: int = 4,
    name: str = "decoder",
    library: CellLibrary | None = None,
    technology: Technology | None = None,
) -> Netlist:
    """Build an ``n``-to-``2**n`` address decoder with buffered outputs.

    The structure is the classic two-level decoder: address complements,
    predecoded pairs, then one NAND per output word line followed by an
    inverting driver.  Logic depth is four, matching the per-stage depth the
    paper quotes for its Fig. 6 pipeline.
    """
    if not 2 <= n_address <= 6:
        raise ValueError(f"n_address must be between 2 and 6, got {n_address}")
    netlist = Netlist(name, library=library, technology=technology)
    for bit in range(n_address):
        netlist.add_primary_input(f"addr{bit}")
        netlist.add_gate(f"addr_n{bit}", "INV", [f"addr{bit}"])
        netlist.add_gate(f"addr_b{bit}", "INV", [f"addr_n{bit}"])

    n_words = 2**n_address
    for word in range(n_words):
        terms = []
        for bit in range(n_address):
            if (word >> bit) & 1:
                terms.append(f"addr_b{bit}")
            else:
                terms.append(f"addr_n{bit}")
        # Combine the address terms pairwise with NAND/NOR so the depth stays
        # at two levels regardless of the address width.
        level = terms
        stage_index = 0
        while len(level) > 1:
            next_level = []
            for position in range(0, len(level) - 1, 2):
                gate_name = f"w{word}_s{stage_index}_{position // 2}"
                if stage_index % 2 == 0:
                    netlist.add_gate(
                        gate_name, "NAND2", [level[position], level[position + 1]]
                    )
                else:
                    netlist.add_gate(
                        gate_name, "NOR2", [level[position], level[position + 1]]
                    )
                next_level.append(gate_name)
            if len(level) % 2 == 1:
                next_level.append(level[-1])
            level = next_level
            stage_index += 1
        driver = f"word{word}"
        netlist.add_gate(driver, "INV", [level[0]], size=2.0)
        netlist.mark_primary_output(driver)

    netlist.auto_place()
    return netlist
