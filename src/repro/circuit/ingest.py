"""External netlist ingestion and a Rent's-rule scale generator.

Everything the rest of the stack analyses is a :class:`repro.circuit.Netlist`;
until now every one of them came from a built-in generator.  This module
opens the front door:

* :func:`parse_bench` / :func:`load_bench` -- ISCAS85-style ``.bench``
  netlists, in both the classic ``y = NAND(a, b)`` statement form and the
  ``NAND2_17 (out, in...)`` instance form used by gate-sizing tools.
* :func:`parse_yosys_json` / :func:`load_yosys_json` -- Yosys ``write_json``
  output for a mapped design (``modules`` -> ``ports``/``cells`` with
  ``connections`` bit vectors), e.g. a sky130-mapped synthesis result.
* :func:`write_bench` / :func:`write_yosys_json` -- the emitters.  Both
  carry ``float.hex()`` pragmas for sizes/placement, so *emit -> parse* is a
  bit-exact round trip: the reconstructed netlist produces byte-identical
  timing schedules and arrival times (the ``parser-round-trip`` conformance
  oracle holds this contract).
* :func:`scale_logic_block` -- a Rent's-rule-flavoured synthetic generator
  with realistic fanout/depth distributions, usable at 100k-1M gates
  (``benchmarks/bench_scale.py`` tracks compile time / peak RSS / MC
  throughput against it).

Cell mapping policy
-------------------
External cell types are normalised (library prefixes such as
``sky130_fd_sc_hd__`` and drive-strength suffixes such as ``_2``/``x4`` are
stripped; Yosys internal ``$_NAND_`` forms are unwrapped) and resolved
against the logical-effort library through :class:`CellMapping`.  Gate
functions the library lacks are *structurally* approximated -- ``AND``/``OR``
map to ``NAND``/``NOR`` (the timing substrate only consumes topology, loads
and drive strengths, never Boolean values), and functions wider than the
library's widest cell are decomposed into balanced trees of library cells
(helper gates are named ``<gate>__t<i>``).  Sequential cells (DFFs,
latches) are cut at the register boundary exactly like the pipeline model
assumes: the D-pin driver becomes a primary output and the Q net becomes a
primary input of the combinational block.  Unknown cell types follow an
explicit policy: ``unknown_cell="error"`` (the default) raises a located
:class:`ParseError`; ``unknown_cell="fallback"`` substitutes the arity-
matched NAND/INV and records the substitution on the mapping.

Parsed designs enter the Study/Design stack through three registered
:class:`~repro.api.spec.PipelineSpec` kinds -- ``"bench"``, ``"yosys_json"``
and ``"scale_logic"`` -- so an external netlist is just another frozen,
JSON-round-trippable spec flowing through ``Session``/``run_sweep``/
``run_conformance``/``repro.serve`` unchanged.
"""

from __future__ import annotations

import json
import pathlib
import re
from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from repro.circuit.cell_library import CellLibrary
from repro.circuit.netlist import Netlist
from repro.process.technology import Technology

#: Committed example netlists, shipped with the package so specs can refer
#: to them portably (``options={"fixture": "c17"}``) without absolute paths.
FIXTURE_DIR = pathlib.Path(__file__).resolve().parent / "fixtures"


class ParseError(ValueError):
    """A malformed external netlist, located at its source line.

    ``source`` is the file name (or ``"<string>"``), ``line`` the 1-based
    line number when known.
    """

    def __init__(
        self,
        message: str,
        *,
        source: str = "<string>",
        line: int | None = None,
    ) -> None:
        where = source if line is None else f"{source}:{line}"
        super().__init__(f"{where}: {message}")
        self.message = message
        self.source = source
        self.line = line


# ----------------------------------------------------------------------
# Cell-type mapping
# ----------------------------------------------------------------------
#: Gate families the library can realise, by arity.  ``AND``/``OR`` map to
#: their inverting counterparts: the timing substrate never evaluates
#: Boolean functions, so only topology/arity/drive matter.
_FAMILIES: dict[str, dict[int, str]] = {
    "inv": {1: "INV"},
    "not": {1: "INV"},
    "buf": {1: "BUF"},
    "buff": {1: "BUF"},
    "nand": {2: "NAND2", 3: "NAND3", 4: "NAND4"},
    "and": {2: "NAND2", 3: "NAND3", 4: "NAND4"},
    "nor": {2: "NOR2", 3: "NOR3"},
    "or": {2: "NOR2", 3: "NOR3"},
    "xor": {2: "XOR2"},
    "xnor": {2: "XNOR2"},
    "aoi21": {3: "AOI21"},
    "a21oi": {3: "AOI21"},
    "oai21": {3: "OAI21"},
    "o21ai": {3: "OAI21"},
    "nand2": {2: "NAND2"},
    "nand3": {3: "NAND3"},
    "nand4": {4: "NAND4"},
    "and2": {2: "NAND2"},
    "and3": {3: "NAND3"},
    "and4": {4: "NAND4"},
    "nor2": {2: "NOR2"},
    "nor3": {3: "NOR3"},
    "or2": {2: "NOR2"},
    "or3": {3: "NOR3"},
    "xor2": {2: "XOR2"},
    "xnor2": {2: "XNOR2"},
}

#: Normalised cell types treated as sequential elements (register cut).
_REGISTER_RE = re.compile(r"^(s?dff|dfxtp|dfrtp|dfstp|dfbbp|dlxtp|.?latch)")

#: Clock/scan/enable pins of *sequential* cells (never combinational data).
_SEQUENTIAL_CONTROL_PINS = frozenset(
    {"CLK", "CLK_N", "C", "G", "GATE", "GATE_N", "E", "EN", "SET_B", "RESET_B",
     "SCD", "SCE", "SLEEP", "NOTIFIER"}
)

#: Power/bulk pins, ignored on every cell.
_POWER_PINS = frozenset({"VGND", "VNB", "VPB", "VPWR", "VDD", "VSS", "GND"})

#: Output pin names used by common mapped libraries (sky130 XOR uses ``X``).
_OUTPUT_PINS = ("Y", "X", "Z", "Q", "OUT", "ZN")

_YOSYS_INTERNAL_RE = re.compile(r"^\$_([A-Za-z0-9]+?)(?:_[PNpn01]+)*_$")
_DRIVE_SUFFIX_RE = re.compile(r"_(?:\d+|x\d+|m\d+|lp\d*|hv\d*)$")


def normalise_cell_type(raw: str) -> str:
    """Reduce an external cell-type name to its gate-family key.

    ``sky130_fd_sc_hd__nand2_4`` -> ``nand2``; ``$_DFF_P_`` -> ``dff``;
    ``NAND`` -> ``nand``.
    """
    text = raw.strip()
    match = _YOSYS_INTERNAL_RE.match(text)
    if match:
        text = match.group(1)
    text = text.lower()
    if "__" in text:
        text = text.rsplit("__", 1)[1]
    text = _DRIVE_SUFFIX_RE.sub("", text)
    return text


@dataclass
class CellMapping:
    """Policy for resolving external cell types onto the library.

    Parameters
    ----------
    table:
        Extra ``normalised type -> family`` entries layered over the
        built-in family table (values must be keys of the built-in table or
        library cell names).
    unknown_cell:
        ``"error"`` (default) raises :class:`ParseError` on a cell type with
        no mapping; ``"fallback"`` substitutes the arity-matched inverting
        gate (1 input -> INV, 2 -> NAND2, 3 -> NAND3, 4 -> NAND4) and
        records the substitution in :attr:`fallbacks`.
    """

    table: Mapping[str, str] = field(default_factory=dict)
    unknown_cell: str = "error"
    fallbacks: dict[str, str] = field(default_factory=dict)

    _ARITY_FALLBACK = {1: "INV", 2: "NAND2", 3: "NAND3", 4: "NAND4"}

    def __post_init__(self) -> None:
        if self.unknown_cell not in ("error", "fallback"):
            raise ValueError(
                f"unknown_cell must be 'error' or 'fallback', "
                f"got {self.unknown_cell!r}"
            )

    def is_register(self, raw: str) -> bool:
        """Whether a cell type is a sequential element (register cut)."""
        return _REGISTER_RE.match(normalise_cell_type(raw)) is not None

    def family(
        self,
        raw: str,
        library: CellLibrary,
        *,
        source: str = "<string>",
        line: int | None = None,
    ) -> dict[int, str]:
        """Arity -> library-cell map for an external cell type."""
        key = normalise_cell_type(raw)
        mapped = self.table.get(key, key)
        if mapped in _FAMILIES:
            return _FAMILIES[mapped]
        if mapped.upper() in library:
            cell = library[mapped.upper()]
            return {cell.n_inputs: mapped.upper()}
        if self.unknown_cell == "fallback":
            self.fallbacks[raw] = "arity-matched NAND/INV"
            return dict(self._ARITY_FALLBACK)
        raise ParseError(
            f"unknown cell type {raw!r} (normalised {key!r}); known families: "
            f"{sorted(_FAMILIES)}; pass CellMapping(unknown_cell='fallback') "
            f"to substitute arity-matched gates, or extend CellMapping.table",
            source=source,
            line=line,
        )


def _add_mapped_gate(
    netlist: Netlist,
    mapping: CellMapping,
    name: str,
    raw_type: str,
    fanins: list[str],
    *,
    size: float = 1.0,
    x: float = 0.5,
    y: float = 0.5,
    source: str = "<string>",
    line: int | None = None,
) -> None:
    """Add one external gate, decomposing wide functions into cell trees."""
    family = mapping.family(raw_type, netlist.library, source=source, line=line)
    if not fanins:
        raise ParseError(
            f"gate {name!r} ({raw_type}) has no fanins", source=source, line=line
        )
    if len(fanins) == 1 and 1 not in family:
        # A 1-input AND/OR/... degenerates to a buffer.
        family = {1: "BUF"}
    widest = max(family)
    if min(family) > len(fanins) > 1:
        raise ParseError(
            f"gate {name!r}: cell {raw_type!r} needs at least {min(family)} "
            f"fanins, got {len(fanins)}",
            source=source,
            line=line,
        )
    # Balanced tree reduction: chunk the pending signals into groups of at
    # most `widest`, realise each group as one library gate, repeat.  Only
    # the final gate keeps `name`; helpers are `name__t<i>`.
    pending = list(fanins)
    helper = 0
    while True:
        if len(pending) <= widest:
            cell = family.get(len(pending))
            if cell is None:
                # e.g. 3 signals left but the family only has arity 2 (or
                # only arity 3, like AOI21): peel one pair off with the
                # family's pair cell -- NAND2 when it has none -- and come
                # around again.
                chunk, pending = pending[:2], pending[2:]
                helper_name = f"{name}__t{helper}"
                helper += 1
                netlist.add_gate(
                    helper_name, family.get(2, "NAND2"), chunk, size=size,
                    x=x, y=y, allow_forward=True,
                )
                pending.insert(0, helper_name)
                continue
            netlist.add_gate(
                name, cell, pending, size=size, x=x, y=y, allow_forward=True
            )
            return
        chunk, pending = pending[:widest], pending[widest:]
        helper_name = f"{name}__t{helper}"
        helper += 1
        netlist.add_gate(
            helper_name, family[widest], chunk, size=size, x=x, y=y,
            allow_forward=True,
        )
        pending.append(helper_name)


# ----------------------------------------------------------------------
# .bench parsing / emission
# ----------------------------------------------------------------------
_BENCH_ASSIGN_RE = re.compile(
    r"^(?P<out>[\w.\[\]$]+)\s*=\s*(?P<func>[\w$]+)\s*\((?P<args>[^)]*)\)$"
)
_BENCH_INSTANCE_RE = re.compile(
    r"^(?P<type>[A-Za-z]+\d*)_(?P<index>\w+)\s*\((?P<args>[^)]*)\)$"
)
_BENCH_IO_RE = re.compile(r"^(?P<dir>INPUT|OUTPUT)\s*\((?P<net>[^)]+)\)$", re.I)
_PRAGMA_RE = re.compile(r"@(?P<key>\w+)=(?P<value>\S+)")


def _parse_pragmas(comment: str) -> dict[str, float]:
    return {
        m.group("key"): float.fromhex(m.group("value"))
        for m in _PRAGMA_RE.finditer(comment)
    }


def parse_bench(
    text: str,
    name: str = "bench",
    *,
    library: CellLibrary | None = None,
    technology: Technology | None = None,
    cell_mapping: CellMapping | None = None,
    source: str = "<string>",
) -> Netlist:
    """Parse an ISCAS85-style ``.bench`` netlist into a :class:`Netlist`.

    Two statement forms are accepted (they may be mixed):

    * classic: ``y = NAND(a, b)`` with ``INPUT(x)`` / ``OUTPUT(y)``
      declarations -- function arity selects the library cell;
    * instance: ``NAND2_17 (out, in1, in2)`` as used by gate-sizing tools
      (the first parenthesised net is the output).

    ``# @size=<hex> @x=<hex> @y=<hex>`` pragmas on a gate line restore
    bit-exact sizes/placement (what :func:`write_bench` emits); ``DFF``
    statements are cut at the register boundary.  Structural problems raise
    :class:`ParseError` (format level) or a located
    :class:`~repro.circuit.netlist.NetlistError` (dangling nets, duplicate
    gates, cycles -- checked eagerly at end of parse).
    """
    mapping = cell_mapping if cell_mapping is not None else CellMapping()
    netlist = Netlist(name, library=library, technology=technology)
    outputs: list[tuple[str, int]] = []
    register_q: list[tuple[str, str, int]] = []  # (q net, d net, line)
    for line_no, raw_line in enumerate(text.splitlines(), start=1):
        line, _, comment = raw_line.partition("#")
        line = line.strip()
        if not line:
            continue
        pragmas = _parse_pragmas(comment)
        io_match = _BENCH_IO_RE.match(line)
        if io_match:
            net = io_match.group("net").strip()
            if io_match.group("dir").upper() == "INPUT":
                netlist.add_primary_input(net)
            else:
                outputs.append((net, line_no))
            continue
        assign = _BENCH_ASSIGN_RE.match(line)
        if assign:
            out = assign.group("out").strip()
            func = assign.group("func")
            fanins = [a.strip() for a in assign.group("args").split(",") if a.strip()]
        else:
            instance = _BENCH_INSTANCE_RE.match(line)
            if instance is None:
                raise ParseError(
                    f"unrecognised statement {line!r}", source=source, line=line_no
                )
            func = instance.group("type")
            nets = [a.strip() for a in instance.group("args").split(",") if a.strip()]
            if len(nets) < 2:
                raise ParseError(
                    f"instance {line!r} needs an output and at least one input",
                    source=source,
                    line=line_no,
                )
            out, fanins = nets[0], nets[1:]
        if mapping.is_register(func):
            if len(fanins) != 1:
                raise ParseError(
                    f"register {out!r} must have exactly one data fanin, "
                    f"got {fanins}",
                    source=source,
                    line=line_no,
                )
            register_q.append((out, fanins[0], line_no))
            continue
        _add_mapped_gate(
            netlist,
            mapping,
            out,
            func,
            fanins,
            size=pragmas.get("size", 1.0),
            x=pragmas.get("x", 0.5),
            y=pragmas.get("y", 0.5),
            source=source,
            line=line_no,
        )
    _finish_parsed(netlist, outputs, register_q, source=source)
    return netlist


def _finish_parsed(
    netlist: Netlist,
    outputs: list[tuple[str, int]],
    register_q: list[tuple[str, str, int]],
    *,
    source: str,
) -> None:
    """Apply register cuts and output marks, then validate structure."""
    # Register cut: the Q net becomes a primary input of the combinational
    # block; the D driver becomes a primary output (if it is a gate).
    for q_net, d_net, line_no in register_q:
        if q_net in netlist.gates or q_net in netlist.primary_inputs:
            raise ParseError(
                f"register output {q_net!r} collides with an existing node",
                source=source,
                line=line_no,
            )
        netlist.add_primary_input(q_net)
    cut_nets = {q_net for q_net, _, _ in register_q}
    for _, d_net, _ in register_q:
        if d_net in netlist.gates:
            netlist.mark_primary_output(d_net)
    for net, line_no in outputs:
        if net in netlist.gates:
            netlist.mark_primary_output(net)
        elif net in cut_nets:
            # An output port driven by a register Q: the port belongs to the
            # next pipeline stage; the D driver is already a primary output.
            continue
        elif net in netlist.primary_inputs:
            # A primary input wired straight to an output pin: model the
            # output driver explicitly so the PO is a gate, as the timing
            # substrate expects.
            netlist.add_gate(f"{net}__po", "BUF", [net])
            netlist.mark_primary_output(f"{net}__po")
        else:
            raise ParseError(
                f"OUTPUT({net}) references an undefined net",
                source=source,
                line=line_no,
            )
    if not netlist.primary_outputs:
        # No OUTPUT declarations (common in instance-form files): every gate
        # nothing reads is an implicit primary output.
        fanout_counts: dict[str, int] = {g: 0 for g in netlist.gates}
        for gate in netlist.gates.values():
            for fanin in gate.fanins:
                if fanin in fanout_counts:
                    fanout_counts[fanin] += 1
        for gate_name, count in fanout_counts.items():
            if count == 0:
                netlist.mark_primary_output(gate_name)
    netlist.validate()


def load_bench(
    path: str | pathlib.Path,
    name: str | None = None,
    **kwargs: Any,
) -> Netlist:
    """Parse a ``.bench`` file from disk (see :func:`parse_bench`)."""
    path = pathlib.Path(path)
    return parse_bench(
        path.read_text(),
        name if name is not None else path.stem,
        source=str(path),
        **kwargs,
    )


def write_bench(netlist: Netlist, *, pragmas: bool = True) -> str:
    """Emit a netlist as ``.bench`` text.

    With ``pragmas=True`` (default) each gate line carries
    ``# @size/@x/@y`` ``float.hex()`` pragmas, making
    ``parse_bench(write_bench(n))`` a bit-exact structural round trip.
    Gates are emitted in *insertion* order, not topological order: the
    topological tie-break (and with it the floating-point summation order
    of fanout loads) depends on insertion order, so preserving it is what
    makes the round trip byte-identical rather than merely equivalent.
    """
    lines = [f"# {netlist.name} ({netlist.n_gates} gates)"]
    for pi in netlist.primary_inputs:
        lines.append(f"INPUT({pi})")
    for po in netlist.primary_outputs:
        lines.append(f"OUTPUT({po})")
    for gate in netlist.gates.values():
        args = ", ".join(gate.fanins)
        tail = ""
        if pragmas:
            tail = (
                f"  # @size={float(gate.size).hex()}"
                f" @x={float(gate.x).hex()} @y={float(gate.y).hex()}"
            )
        lines.append(f"{gate.name} = {gate.cell}({args}){tail}")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Yosys JSON parsing / emission
# ----------------------------------------------------------------------
def parse_yosys_json(
    data: str | Mapping[str, Any],
    module: str | None = None,
    *,
    library: CellLibrary | None = None,
    technology: Technology | None = None,
    cell_mapping: CellMapping | None = None,
    source: str = "<string>",
) -> Netlist:
    """Parse Yosys ``write_json`` output for a mapped design.

    ``data`` is the JSON text or the already-decoded document.  ``module``
    selects the module to ingest; by default the single non-blackbox module
    (an error lists the candidates when there are several).  Net bits become
    net names (port names where a port drives them, ``n<bit>`` otherwise),
    each cell becomes the gate driving its output net, DFF/latch cells are
    cut at the register boundary, and constant bits (``"0"``/``"1"``/
    ``"x"``) become synthetic ``const0``/``const1``/``constx`` primary
    inputs.  ``repro_size``/``repro_x``/``repro_y`` cell attributes (emitted
    by :func:`write_yosys_json` as ``float.hex()``) restore exact
    sizes/placement.
    """
    if isinstance(data, str):
        try:
            document = json.loads(data)
        except json.JSONDecodeError as exc:
            raise ParseError(f"invalid JSON: {exc}", source=source) from exc
    else:
        document = data
    modules = document.get("modules")
    if not isinstance(modules, Mapping) or not modules:
        raise ParseError("document has no 'modules'", source=source)
    if module is None:
        candidates = [
            name
            for name, body in modules.items()
            if not body.get("attributes", {}).get("blackbox")
        ]
        if len(candidates) != 1:
            raise ParseError(
                f"document has {len(candidates)} candidate modules "
                f"({sorted(candidates)}); pass module=...",
                source=source,
            )
        module = candidates[0]
    if module not in modules:
        raise ParseError(
            f"no module {module!r}; available: {sorted(modules)}", source=source
        )
    body = modules[module]
    mapping = cell_mapping if cell_mapping is not None else CellMapping()
    netlist = Netlist(module, library=library, technology=technology)

    # Friendly names for bits: ports first, then named nets; anonymous bits
    # fall back to n<bit>.
    bit_names: dict[int, str] = {}
    ports = body.get("ports", {})
    for section in (ports, body.get("netnames", {})):
        for entry_name, entry in section.items():
            bits = entry.get("bits", [])
            for position, bit in enumerate(bits):
                if isinstance(bit, int) and bit not in bit_names:
                    suffix = "" if len(bits) == 1 else f"{position}"
                    bit_names[bit] = f"{entry_name}{suffix}"

    constants: dict[str, str] = {}

    def net_of(bit: Any) -> str:
        if isinstance(bit, str):  # constant bit "0" / "1" / "x"
            name = f"const{bit}"
            if name not in constants:
                constants[name] = name
                netlist.add_primary_input(name)
            return name
        return bit_names.get(bit, f"n{bit}")

    for port_name, port in ports.items():
        if port.get("direction") == "input":
            for bit in port.get("bits", []):
                pi = net_of(bit)
                if pi not in netlist.primary_inputs:
                    netlist.add_primary_input(pi)

    register_q: list[tuple[str, str]] = []  # (q net, d net)
    output_bits: list[str] = []
    for port_name, port in ports.items():
        if port.get("direction") == "output":
            output_bits.extend(net_of(bit) for bit in port.get("bits", []))

    for cell_name, cell in body.get("cells", {}).items():
        cell_type = cell.get("type", "")
        connections = cell.get("connections", {})
        directions = cell.get("port_directions", {})
        attributes = cell.get("attributes", {})
        is_register = mapping.is_register(cell_type)
        out_nets: list[str] = []
        in_pins: list[tuple[str, list[str]]] = []
        for pin, bits in connections.items():
            pin_upper = pin.upper()
            if directions:
                is_output = directions.get(pin) == "output"
            else:
                is_output = pin_upper in _OUTPUT_PINS
            if pin_upper in _POWER_PINS:
                continue
            nets = [net_of(bit) for bit in bits]
            if is_output:
                out_nets.extend(nets)
            else:
                in_pins.append((pin_upper, nets))
        if is_register:
            d_nets = [
                net
                for pin, nets in in_pins
                for net in nets
                if pin not in _SEQUENTIAL_CONTROL_PINS
            ]
            if len(out_nets) != 1 or len(d_nets) != 1:
                raise ParseError(
                    f"register cell {cell_name!r} ({cell_type}) must have one "
                    f"data input and one output, got D={d_nets} Q={out_nets}",
                    source=source,
                )
            register_q.append((out_nets[0], d_nets[0]))
            continue
        in_nets = [net for _, nets in in_pins for net in nets]
        if len(out_nets) != 1:
            raise ParseError(
                f"cell {cell_name!r} ({cell_type}) must drive exactly one "
                f"output net, got {out_nets} (multi-output cells are not "
                f"supported)",
                source=source,
            )
        size = attributes.get("repro_size")
        x = attributes.get("repro_x")
        y = attributes.get("repro_y")
        _add_mapped_gate(
            netlist,
            mapping,
            out_nets[0],
            cell_type,
            in_nets,
            size=float.fromhex(size) if isinstance(size, str) else 1.0,
            x=float.fromhex(x) if isinstance(x, str) else 0.5,
            y=float.fromhex(y) if isinstance(y, str) else 0.5,
            source=source,
        )

    outputs = [(net, 0) for net in output_bits]
    _finish_parsed(
        netlist, outputs, [(q, d, 0) for q, d in register_q], source=source
    )
    return netlist


def load_yosys_json(
    path: str | pathlib.Path,
    module: str | None = None,
    **kwargs: Any,
) -> Netlist:
    """Parse a Yosys JSON file from disk (see :func:`parse_yosys_json`)."""
    path = pathlib.Path(path)
    return parse_yosys_json(
        path.read_text(), module, source=str(path), **kwargs
    )


def write_yosys_json(netlist: Netlist, *, indent: int | None = None) -> str:
    """Emit a netlist as a Yosys-style JSON document.

    Cells carry ``repro_size``/``repro_x``/``repro_y`` ``float.hex()``
    attributes so ``parse_yosys_json(write_yosys_json(n))`` reconstructs
    sizes and placement bit-exactly.
    """
    bit_of: dict[str, int] = {}
    next_bit = 2  # Yosys reserves 0/1 for constants.
    for name in list(netlist.primary_inputs) + list(netlist.gates):
        bit_of[name] = next_bit
        next_bit += 1
    ports: dict[str, Any] = {}
    for pi in netlist.primary_inputs:
        ports[pi] = {"direction": "input", "bits": [bit_of[pi]]}
    for po in netlist.primary_outputs:
        ports[po] = {"direction": "output", "bits": [bit_of[po]]}
    # Every net keeps its name (Yosys `netnames`), so the reparsed gates are
    # named identically; cells are emitted in insertion order for the same
    # reason write_bench is (the topological tie-break depends on it).
    netnames = {
        name: {"bits": [bit], "hide_name": 0} for name, bit in bit_of.items()
    }
    cells: dict[str, Any] = {}
    for name, gate in netlist.gates.items():
        connections: dict[str, list[int]] = {}
        directions: dict[str, str] = {}
        for position, fanin in enumerate(gate.fanins):
            pin = chr(ord("A") + position)
            connections[pin] = [bit_of[fanin]]
            directions[pin] = "input"
        connections["Y"] = [bit_of[name]]
        directions["Y"] = "output"
        cells[name] = {
            "type": gate.cell,
            "port_directions": directions,
            "connections": connections,
            "attributes": {
                "repro_size": float(gate.size).hex(),
                "repro_x": float(gate.x).hex(),
                "repro_y": float(gate.y).hex(),
            },
        }
    document = {
        "creator": "repro.circuit.ingest",
        "modules": {
            netlist.name: {
                "attributes": {},
                "ports": ports,
                "cells": cells,
                "netnames": netnames,
            }
        },
    }
    return json.dumps(document, indent=indent)


# ----------------------------------------------------------------------
# Rent's-rule scale generator
# ----------------------------------------------------------------------
def scale_logic_block(
    name: str,
    n_gates: int,
    seed: int,
    *,
    rent_exponent: float = 0.6,
    rent_coefficient: float = 2.5,
    depth: int | None = None,
    locality: float = 0.35,
    hub_fraction: float = 0.05,
    hub_bias: float = 0.15,
    library: CellLibrary | None = None,
    technology: Technology | None = None,
) -> Netlist:
    """Generate a large levelised random-logic block with realistic shape.

    Designed for the 100k-1M gate range where the hand-tuned
    :func:`~repro.circuit.generators.random_logic_block` becomes both slow
    and structurally unrealistic:

    * **I/O counts follow Rent's rule**: external pins
      ``T = t * G^p`` (``t = rent_coefficient``, ``p = rent_exponent``),
      split 60/40 into primary inputs/outputs -- the empirical law mapped
      netlists obey.
    * **Depth grows sublinearly** with gate count
      (``~2.6 * G^0.22`` by default, overridable via ``depth``), matching
      placed-and-routed block profiles.
    * **Fanout has a heavy tail**: a ``hub_fraction`` of each level's gates
      joins a hub pool that non-local fanins prefer with probability
      ``hub_bias``, producing the few-high-fanout-drivers distribution real
      netlists show, instead of the near-uniform fanout of the small
      generator.
    * **Connections are local**: non-first fanins reach back a
      geometrically distributed number of levels (success probability
      ``locality``), so most wiring is short with occasional long hops.

    Deterministic per ``(name, n_gates, seed, knobs)``; per-level draws are
    vectorised so a 1M-gate block generates in seconds.  Placement is
    assigned directly from (level, position) during generation -- identical
    to :meth:`Netlist.auto_place` -- to avoid a second full pass.
    """
    if n_gates < 16:
        raise ValueError(f"scale_logic_block needs n_gates >= 16, got {n_gates}")
    if not 0.0 < rent_exponent < 1.0:
        raise ValueError(f"rent_exponent must be in (0, 1), got {rent_exponent}")
    if rent_coefficient <= 0.0:
        raise ValueError(
            f"rent_coefficient must be positive, got {rent_coefficient}"
        )
    external = rent_coefficient * n_gates**rent_exponent
    n_inputs = max(4, int(round(0.6 * external)))
    n_outputs = max(2, int(round(0.4 * external)))
    if depth is None:
        depth = max(8, int(round(2.6 * n_gates**0.22)))
    if depth < 2:
        raise ValueError(f"depth must be at least 2, got {depth}")
    if n_gates < depth:
        raise ValueError(f"n_gates ({n_gates}) must be >= depth ({depth})")

    rng = np.random.default_rng(seed)
    netlist = Netlist(name, library=library, technology=technology)
    pis = [f"pi{i}" for i in range(n_inputs)]
    for pi in pis:
        netlist.add_primary_input(pi)

    # Level-size profile: fast ramp-in, long plateau, taper-out -- the
    # "barrel" shape placed netlist level histograms show.
    positions = np.linspace(0.0, 1.0, depth)
    weights = np.minimum(positions / 0.15, 1.0) * np.minimum(
        (1.0 - positions) / 0.25 + 1e-9, 1.0
    ) + 0.05
    weights /= weights.sum()
    level_sizes = np.ones(depth, dtype=np.int64)
    level_sizes += rng.multinomial(n_gates - depth, weights)

    cell_names = ["INV", "NAND2", "NOR2", "NAND3", "NOR3", "AOI21", "OAI21", "XOR2"]
    cell_inputs = np.array([1, 2, 2, 3, 3, 3, 3, 2])
    cell_weights = np.array([0.18, 0.28, 0.22, 0.08, 0.06, 0.07, 0.07, 0.04])
    cell_weights /= cell_weights.sum()

    add_gate = netlist.add_gate
    level_names: list[list[str]] = []  # gate names per level
    hub_pool: list[str] = []
    gate_counter = 0
    for level in range(depth):
        k = int(level_sizes[level])
        cell_idx = rng.choice(len(cell_names), size=k, p=cell_weights)
        n_extra = int(cell_inputs[cell_idx].sum()) - k
        # Vectorised draws for the whole level, consumed sequentially.
        prev = level_names[-1] if level_names else pis
        first_pick = rng.integers(0, len(prev), size=k)
        back_levels = rng.geometric(locality, size=max(n_extra, 1))
        from_hub = rng.random(size=max(n_extra, 1)) < hub_bias
        within = rng.random(size=max(n_extra, 1))
        xs = (level + 0.5) / depth
        ys = (np.arange(k) + 0.5) / k
        extra_cursor = 0
        names_this_level: list[str] = []
        for position in range(k):
            cell = int(cell_idx[position])
            fanins = [prev[int(first_pick[position])]] if level > 0 else [
                pis[int(first_pick[position])]
            ]
            for _ in range(int(cell_inputs[cell]) - 1):
                if from_hub[extra_cursor] and hub_pool:
                    pool = hub_pool
                else:
                    back = int(back_levels[extra_cursor])
                    source_level = level - 1 - back
                    if source_level < 0 or not level_names:
                        pool = pis
                    else:
                        pool = level_names[max(source_level, 0)]
                fanins.append(pool[int(within[extra_cursor] * len(pool))])
                extra_cursor += 1
            gate_name = f"g{gate_counter}"
            gate_counter += 1
            add_gate(
                gate_name,
                cell_names[cell],
                fanins,
                x=float(xs),
                y=float(ys[position]),
            )
            names_this_level.append(gate_name)
        level_names.append(names_this_level)
        n_hubs = max(1, int(hub_fraction * k))
        hub_pool.extend(names_this_level[:n_hubs])
        # Keep the hub pool bounded and biased to recent levels.
        if len(hub_pool) > 4096:
            hub_pool = hub_pool[-4096:]

    # Primary outputs from the deepest levels.
    chosen: list[str] = []
    for level in reversed(level_names):
        for gate_name in level:
            chosen.append(gate_name)
            if len(chosen) == n_outputs:
                break
        if len(chosen) == n_outputs:
            break
    for gate_name in chosen:
        netlist.mark_primary_output(gate_name)
    return netlist


# ----------------------------------------------------------------------
# Pipeline-spec kinds
# ----------------------------------------------------------------------
def _single_option(spec, *keys: str) -> str | None:
    options = dict(spec.options)
    for key in keys:
        value = options.get(key)
        if value is not None:
            return str(value)
    return None


def _resolve_path(spec, kind: str) -> pathlib.Path:
    """Resolve a spec's ``path``/``fixture`` option to a file on disk."""
    fixture = _single_option(spec, "fixture")
    explicit = _single_option(spec, "path")
    if (fixture is None) == (explicit is None):
        raise ValueError(
            f"pipeline kind {kind!r} needs exactly one of options "
            f"'path' (a filesystem path) or 'fixture' (a name under "
            f"{FIXTURE_DIR}), got options={dict(spec.options)!r}"
        )
    if explicit is not None:
        return pathlib.Path(explicit)
    stem = fixture
    for suffix in ("", ".bench", ".json"):
        candidate = FIXTURE_DIR / f"{stem}{suffix}"
        if candidate.exists():
            return candidate
    available = sorted(p.name for p in FIXTURE_DIR.glob("*")) if FIXTURE_DIR.exists() else []
    raise ValueError(
        f"no committed fixture named {fixture!r}; available: {available}"
    )


def _stages_from_netlist(spec, netlist: Netlist):
    """Replicate a parsed block into ``spec.n_stages`` pipeline stages."""
    from repro.circuit.flipflop import FlipFlopTiming
    from repro.pipeline.pipeline import Pipeline
    from repro.pipeline.stage import PipelineStage

    flipflop = FlipFlopTiming()
    name = spec.name if spec.name is not None else netlist.name
    stages = []
    for index in range(spec.n_stages):
        stage_netlist = (
            netlist if index == 0 else netlist.copy(f"{netlist.name}_s{index}")
        )
        stages.append(
            PipelineStage(
                name=f"stage{index}", netlist=stage_netlist, flipflop=flipflop
            )
        )
    return Pipeline(name, stages)


def _build_bench(spec, technology):
    """Pipeline of ``n_stages`` copies of a parsed ``.bench`` netlist.

    Options: exactly one of ``path`` / ``fixture``; optional
    ``unknown_cell`` (``"error"``/``"fallback"``).
    """
    mapping = CellMapping(
        unknown_cell=_single_option(spec, "unknown_cell") or "error"
    )
    netlist = load_bench(
        _resolve_path(spec, "bench"), technology=technology, cell_mapping=mapping
    )
    return _stages_from_netlist(spec, netlist)


def _build_yosys_json(spec, technology):
    """Pipeline of ``n_stages`` copies of a parsed Yosys-JSON netlist.

    Options: exactly one of ``path`` / ``fixture``; optional ``module`` and
    ``unknown_cell``.
    """
    mapping = CellMapping(
        unknown_cell=_single_option(spec, "unknown_cell") or "error"
    )
    netlist = load_yosys_json(
        _resolve_path(spec, "yosys_json"),
        _single_option(spec, "module"),
        technology=technology,
        cell_mapping=mapping,
    )
    return _stages_from_netlist(spec, netlist)


def _build_scale_logic(spec, technology):
    """Pipeline of Rent's-rule scale-generator stages.

    Options: ``n_gates`` (per stage, default 1000), ``seed`` (per-stage
    seeds are ``seed + index``), plus the :func:`scale_logic_block` knobs
    ``rent_exponent`` / ``rent_coefficient`` / ``depth`` / ``locality`` /
    ``hub_fraction`` / ``hub_bias``.
    """
    from repro.circuit.flipflop import FlipFlopTiming
    from repro.pipeline.pipeline import Pipeline
    from repro.pipeline.stage import PipelineStage

    options = dict(spec.options)
    n_gates = int(options.get("n_gates", 1000))
    seed = int(options.get("seed", 0))
    knobs = {
        key: type_(options[key])
        for key, type_ in (
            ("rent_exponent", float),
            ("rent_coefficient", float),
            ("depth", int),
            ("locality", float),
            ("hub_fraction", float),
            ("hub_bias", float),
        )
        if key in options
    }
    name = (
        spec.name if spec.name is not None else f"scale_{spec.n_stages}x{n_gates}"
    )
    flipflop = FlipFlopTiming()
    stages = []
    for index in range(spec.n_stages):
        netlist = scale_logic_block(
            f"{name}_s{index}",
            n_gates,
            seed + index,
            technology=technology,
            **knobs,
        )
        stages.append(
            PipelineStage(name=f"stage{index}", netlist=netlist, flipflop=flipflop)
        )
    return Pipeline(name, stages)


def _register_kinds() -> None:
    from repro.api.spec import register_pipeline_kind

    register_pipeline_kind("bench", _build_bench)
    register_pipeline_kind("yosys_json", _build_yosys_json)
    register_pipeline_kind("scale_logic", _build_scale_logic)


_register_kinds()
