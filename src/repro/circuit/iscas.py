"""Synthetic stand-ins for the ISCAS85 benchmark circuits.

The paper's Tables II and III build a 4-stage pipeline whose stages are the
ISCAS85 benchmarks c3540, c2670, "c1980" (the standard suite contains c1908;
we treat the paper's c1980 as that circuit) and c432.  The original
benchmark netlists are external data we do not ship; instead this module
generates random-logic blocks matched to each benchmark's published profile
(primary inputs, primary outputs, gate count, approximate logic depth).

The optimization experiments only consume each stage's *area/delay/
criticality structure* -- how much area it takes to hit a delay target, how
steep its area-vs-delay curve is, how many near-critical paths it has -- not
the Boolean functions it computes, so matching the structural profile
preserves the behaviour the experiments measure.  The substitution is
recorded in DESIGN.md.

To run the experiments on the *real* netlists instead, obtain the ISCAS85
``.bench`` files and load them through :mod:`repro.circuit.ingest`::

    PipelineSpec(kind="bench", options={"path": "c432.bench"})

(or ``load_bench``/``parse_bench`` directly) -- a parsed benchmark is a
drop-in replacement for these stand-ins everywhere a netlist is consumed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.cell_library import CellLibrary
from repro.circuit.generators import random_logic_block
from repro.circuit.netlist import Netlist
from repro.process.technology import Technology


@dataclass(frozen=True)
class BenchmarkProfile:
    """Published structural profile of an ISCAS85 benchmark."""

    name: str
    n_inputs: int
    n_outputs: int
    n_gates: int
    depth: int
    seed: int


ISCAS_PROFILES: dict[str, BenchmarkProfile] = {
    "c432": BenchmarkProfile("c432", n_inputs=36, n_outputs=7, n_gates=160, depth=17, seed=432),
    "c499": BenchmarkProfile("c499", n_inputs=41, n_outputs=32, n_gates=202, depth=11, seed=499),
    "c880": BenchmarkProfile("c880", n_inputs=60, n_outputs=26, n_gates=383, depth=24, seed=880),
    "c1355": BenchmarkProfile("c1355", n_inputs=41, n_outputs=32, n_gates=546, depth=24, seed=1355),
    "c1908": BenchmarkProfile("c1908", n_inputs=33, n_outputs=25, n_gates=880, depth=40, seed=1908),
    "c2670": BenchmarkProfile("c2670", n_inputs=233, n_outputs=140, n_gates=1269, depth=32, seed=2670),
    "c3540": BenchmarkProfile("c3540", n_inputs=50, n_outputs=22, n_gates=1669, depth=47, seed=3540),
    "c5315": BenchmarkProfile("c5315", n_inputs=178, n_outputs=123, n_gates=2307, depth=49, seed=5315),
}

# The paper's tables list a stage called "c1980"; the ISCAS85 suite has no
# such circuit and the closest member by size is c1908, so we alias it.
_ALIASES = {"c1980": "c1908"}


def iscas_benchmark(
    name: str,
    library: CellLibrary | None = None,
    technology: Technology | None = None,
) -> Netlist:
    """Build the synthetic stand-in for the named ISCAS85 benchmark.

    Parameters
    ----------
    name:
        Benchmark name, e.g. ``"c432"``.  Lookup is case-insensitive and
        ignores surrounding whitespace; the paper's ``"c1980"`` is accepted
        as an alias for c1908.

    Returns
    -------
    Netlist
        A random-logic block with the benchmark's published input/output/
        gate counts and approximate logic depth, generated deterministically
        from a per-benchmark seed.
    """
    normalised = name.strip().lower()
    canonical = _ALIASES.get(normalised, normalised)
    if canonical not in ISCAS_PROFILES:
        raise KeyError(
            f"unknown ISCAS85 benchmark {name!r}; known benchmarks: "
            f"{sorted(ISCAS_PROFILES)}; aliases: "
            f"{ {alias: target for alias, target in sorted(_ALIASES.items())} }"
        )
    profile = ISCAS_PROFILES[canonical]
    netlist = random_logic_block(
        name=name,
        n_gates=profile.n_gates,
        depth=profile.depth,
        n_inputs=profile.n_inputs,
        n_outputs=profile.n_outputs,
        seed=profile.seed,
        library=library,
        technology=technology,
    )
    return netlist


def available_benchmarks() -> list[str]:
    """Names of all benchmarks this module can generate."""
    return sorted(ISCAS_PROFILES) + sorted(_ALIASES)
