"""Gate-level netlist representation.

A :class:`Netlist` is a directed acyclic graph of sized, placed standard
cells.  It is the object every other substrate operates on: the deterministic
and statistical timers walk it in topological order, the Monte-Carlo engine
samples one set of process parameters per gate, and the sizers mutate gate
sizes in place.

Design notes
------------
* Gates and primary inputs are identified by string names; primary inputs
  are modelled as zero-delay sources.
* The netlist caches index arrays (sizes, cell coefficients, fanin/fanout
  index lists) used by the vectorised timing code; the caches are rebuilt
  lazily whenever the structure changes and refreshed cheaply when only
  sizes change.
* Placement is in normalised die coordinates ([0, 1] x [0, 1]).  A helper
  places gates by logic level inside an arbitrary rectangular region so a
  pipeline can lay its stages side by side across the die, which is what
  gives stages *partial* spatial correlation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.circuit.cell_library import CellLibrary, standard_cell_library
from repro.circuit.schedule import TimingSchedule, compile_schedule
from repro.process.technology import Technology, default_technology


class NetlistError(ValueError):
    """A structural netlist construction error, located at its cause.

    Carries the offending ``netlist`` name plus (when applicable) the
    ``gate`` and ``net`` involved, so parsers and generators can surface
    "gate G3 references undefined net n42" instead of a deep failure inside
    the topological sort.  Subclasses :class:`ValueError` so existing
    ``except ValueError`` call sites keep working.
    """

    def __init__(
        self,
        message: str,
        *,
        netlist: str | None = None,
        gate: str | None = None,
        net: str | None = None,
    ) -> None:
        super().__init__(message)
        self.message = message
        self.netlist = netlist
        self.gate = gate
        self.net = net

    def __str__(self) -> str:
        return self.message


class NetlistLookupError(NetlistError, KeyError):
    """A failed name lookup during netlist construction.

    Also subclasses :class:`KeyError` so callers that treat unknown
    cells/fanins/gates as key errors (the historical contract) keep working.
    """

    __str__ = NetlistError.__str__


@dataclass
class Gate:
    """One sized, placed cell instance.

    Attributes
    ----------
    name:
        Unique gate name within the netlist.
    cell:
        Name of the cell type in the library (e.g. ``"NAND2"``).
    fanins:
        Names of the driving nodes (gates or primary inputs), in pin order.
    size:
        Drive strength in multiples of a minimum-size device.
    x, y:
        Placement in normalised die coordinates.
    """

    name: str
    cell: str
    fanins: tuple[str, ...]
    size: float = 1.0
    x: float = 0.5
    y: float = 0.5


class Netlist:
    """A combinational gate-level netlist (DAG of cells).

    Parameters
    ----------
    name:
        Netlist name, used in reports.
    library:
        Cell library the gates are drawn from.  Defaults to the standard
        library.
    technology:
        Technology node used for capacitance/area/delay computations.
    default_output_load:
        Capacitive load (in farads) attached to each primary output, on top
        of any internal fanout.  Defaults to the input capacitance of a
        size-2 inverter, approximating the downstream flip-flop data pin.
    """

    def __init__(
        self,
        name: str,
        library: CellLibrary | None = None,
        technology: Technology | None = None,
        default_output_load: float | None = None,
    ) -> None:
        self.name = name
        self.library = library if library is not None else standard_cell_library()
        self.technology = technology if technology is not None else default_technology()
        if default_output_load is None:
            default_output_load = 2.0 * self.technology.c_unit
        self.default_output_load = float(default_output_load)

        self._gates: dict[str, Gate] = {}
        self._primary_inputs: list[str] = []
        self._primary_outputs: list[str] = []
        self._dirty = True

        # Caches built by _rebuild()
        self._order: list[str] = []
        self._index: dict[str, int] = {}
        self._fanin_indices: list[list[int]] = []
        self._fanout_indices: list[list[int]] = []
        self._is_po: np.ndarray = np.zeros(0, dtype=bool)
        # Compiled timing schedule (levelized CSR), built lazily per
        # structural version; see timing_schedule().
        self._structure_version = 0
        self._schedule: TimingSchedule | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_primary_input(self, name: str) -> None:
        """Declare a primary input node."""
        if name in self._gates or name in self._primary_inputs:
            raise NetlistError(
                f"node {name!r} already exists in netlist {self.name!r}",
                netlist=self.name,
                gate=name,
            )
        self._primary_inputs.append(name)
        self._dirty = True

    def add_gate(
        self,
        name: str,
        cell: str,
        fanins: list[str] | tuple[str, ...],
        size: float = 1.0,
        x: float = 0.5,
        y: float = 0.5,
        allow_forward: bool = False,
    ) -> Gate:
        """Add a gate driven by the named fanin nodes and return it.

        ``allow_forward=True`` defers the fanin-existence check to the next
        structural rebuild, so file parsers can add gates in file order even
        when a fanin net is defined further down; a fanin that is *never*
        defined still raises a located :class:`NetlistError` (at
        :meth:`validate` or first structural query) rather than silently
        levelising wrong.
        """
        if name in self._gates or name in self._primary_inputs:
            raise NetlistError(
                f"duplicate gate name {name!r} in netlist {self.name!r}",
                netlist=self.name,
                gate=name,
            )
        if cell not in self.library:
            raise NetlistLookupError(
                f"gate {name!r}: cell {cell!r} not in library for netlist "
                f"{self.name!r}; available cells: {self.library.names}",
                netlist=self.name,
                gate=name,
            )
        cell_obj = self.library[cell]
        fanins = tuple(fanins)
        if len(fanins) != cell_obj.n_inputs:
            raise NetlistError(
                f"gate {name!r}: cell {cell} expects {cell_obj.n_inputs} fanins, "
                f"got {len(fanins)}",
                netlist=self.name,
                gate=name,
            )
        if not allow_forward:
            for fanin in fanins:
                if fanin not in self._gates and fanin not in self._primary_inputs:
                    raise NetlistLookupError(
                        f"gate {name!r}: fanin {fanin!r} is not a known gate or "
                        f"primary input",
                        netlist=self.name,
                        gate=name,
                        net=fanin,
                    )
        if size <= 0.0:
            raise NetlistError(
                f"gate {name!r}: size must be positive, got {size}",
                netlist=self.name,
                gate=name,
            )
        gate = Gate(name=name, cell=cell, fanins=fanins, size=float(size), x=x, y=y)
        self._gates[name] = gate
        self._dirty = True
        return gate

    def mark_primary_output(self, name: str) -> None:
        """Mark a gate as a primary output of the block."""
        if name not in self._gates:
            raise NetlistLookupError(
                f"cannot mark unknown gate {name!r} as primary output of "
                f"netlist {self.name!r}",
                netlist=self.name,
                gate=name,
            )
        if name not in self._primary_outputs:
            self._primary_outputs.append(name)
            self._dirty = True

    def validate(self) -> None:
        """Eagerly check structural integrity (dangling fanins, cycles).

        Parsers that build with ``allow_forward=True`` call this once at the
        end of the file so a gate whose fanin names a net that is never
        defined, or a combinational cycle, surfaces as a located
        :class:`NetlistError` at parse time.
        """
        self._ensure_current()

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def gates(self) -> dict[str, Gate]:
        """Mapping of gate name to :class:`Gate` (insertion ordered)."""
        return self._gates

    @property
    def primary_inputs(self) -> list[str]:
        """Names of the primary inputs."""
        return list(self._primary_inputs)

    @property
    def primary_outputs(self) -> list[str]:
        """Names of the gates marked as primary outputs."""
        return list(self._primary_outputs)

    @property
    def n_gates(self) -> int:
        """Number of gates (excluding primary inputs)."""
        return len(self._gates)

    def __len__(self) -> int:
        return len(self._gates)

    def __contains__(self, name: str) -> bool:
        return name in self._gates

    def gate(self, name: str) -> Gate:
        """Look up a gate by name."""
        try:
            return self._gates[name]
        except KeyError:
            raise KeyError(f"no gate named {name!r} in netlist {self.name!r}") from None

    # ------------------------------------------------------------------
    # Structure caches
    # ------------------------------------------------------------------
    def _rebuild(self) -> None:
        """Rebuild topological order, index maps and fanin/fanout caches."""
        order: list[str] = []
        index: dict[str, int] = {}
        in_degree: dict[str, int] = {}
        pi_set = set(self._primary_inputs)
        dangling: list[tuple[str, str]] = []
        dependents: dict[str, list[str]] = {name: [] for name in self._primary_inputs}
        for gate in self._gates.values():
            dependents.setdefault(gate.name, [])
            gate_fanin_count = 0
            for fanin in gate.fanins:
                if fanin in self._gates:
                    gate_fanin_count += 1
                elif fanin not in pi_set:
                    dangling.append((gate.name, fanin))
                dependents.setdefault(fanin, []).append(gate.name)
            in_degree[gate.name] = gate_fanin_count

        if dangling:
            gate_name, net = dangling[0]
            listing = ", ".join(
                f"{g!r} -> {n!r}" for g, n in dangling[:5]
            ) + ("..." if len(dangling) > 5 else "")
            raise NetlistError(
                f"netlist {self.name!r} has {len(dangling)} fanin reference(s) to "
                f"net(s) that are never defined (gate -> missing net): {listing}",
                netlist=self.name,
                gate=gate_name,
                net=net,
            )

        ready = [name for name, degree in in_degree.items() if degree == 0]
        ready.sort()
        position = 0
        ready_set = list(ready)
        while position < len(ready_set):
            name = ready_set[position]
            position += 1
            index[name] = len(order)
            order.append(name)
            for successor in dependents.get(name, []):
                in_degree[successor] -= 1
                if in_degree[successor] == 0:
                    ready_set.append(successor)

        if len(order) != len(self._gates):
            unresolved = set(self._gates) - set(order)
            cycle = self._find_cycle(unresolved)
            raise NetlistError(
                f"netlist {self.name!r} contains a combinational cycle: "
                f"{' -> '.join(cycle)} -> {cycle[0]}",
                netlist=self.name,
                gate=cycle[0],
            )

        fanin_indices: list[list[int]] = []
        fanout_indices: list[list[int]] = [[] for _ in order]
        for name in order:
            gate = self._gates[name]
            fanins = [index[f] for f in gate.fanins if f in self._gates]
            fanin_indices.append(fanins)
        for gate_pos, fanins in enumerate(fanin_indices):
            for fanin_pos in fanins:
                fanout_indices[fanin_pos].append(gate_pos)

        is_po = np.zeros(len(order), dtype=bool)
        for name in self._primary_outputs:
            is_po[index[name]] = True

        self._order = order
        self._index = index
        self._fanin_indices = fanin_indices
        self._fanout_indices = fanout_indices
        self._is_po = is_po
        self._structure_version += 1
        self._schedule = None
        self._dirty = False

    def _find_cycle(self, unresolved: set[str]) -> list[str]:
        """Walk the unresolved gates to extract one actual cycle path."""
        start = min(unresolved)
        path: list[str] = []
        seen: dict[str, int] = {}
        node = start
        while node not in seen:
            seen[node] = len(path)
            path.append(node)
            # Follow any fanin that is itself unresolved; one always exists,
            # otherwise the gate would have been scheduled.
            node = next(f for f in self._gates[node].fanins if f in unresolved)
        return path[seen[node]:]

    def _ensure_current(self) -> None:
        if self._dirty:
            self._rebuild()

    def topological_order(self) -> list[str]:
        """Gate names in a valid topological (fanin-before-fanout) order."""
        self._ensure_current()
        return list(self._order)

    def gate_index(self) -> dict[str, int]:
        """Mapping from gate name to its position in topological order."""
        self._ensure_current()
        return dict(self._index)

    def fanin_indices(self) -> list[list[int]]:
        """Per-gate list of fanin positions (topological indexing)."""
        self._ensure_current()
        return self._fanin_indices

    def fanout_indices(self) -> list[list[int]]:
        """Per-gate list of fanout positions (topological indexing)."""
        self._ensure_current()
        return self._fanout_indices

    def output_mask(self) -> np.ndarray:
        """Boolean mask (topological indexing) of primary-output gates."""
        self._ensure_current()
        return self._is_po.copy()

    def timing_schedule(self) -> TimingSchedule:
        """Compiled levelized CSR schedule for the current structure.

        The schedule is cached per structural version: adding gates or
        marking outputs invalidates it (through ``_ensure_current``), while
        size mutations -- the sizers' inner loop -- reuse it unchanged.
        """
        self._ensure_current()
        if self._schedule is None:
            self._schedule = compile_schedule(
                self._fanin_indices, self._fanout_indices, self._structure_version
            )
        return self._schedule

    # ------------------------------------------------------------------
    # Vectorised attribute access (topological indexing)
    # ------------------------------------------------------------------
    def sizes(self) -> np.ndarray:
        """Gate sizes as an array in topological order."""
        self._ensure_current()
        return np.array([self._gates[name].size for name in self._order])

    def set_sizes(self, sizes: np.ndarray) -> None:
        """Assign gate sizes from an array in topological order."""
        self._ensure_current()
        sizes = np.asarray(sizes, dtype=float)
        if sizes.shape != (len(self._order),):
            raise ValueError(
                f"expected {len(self._order)} sizes, got array of shape {sizes.shape}"
            )
        if np.any(sizes <= 0.0):
            raise ValueError("all gate sizes must be positive")
        for name, size in zip(self._order, sizes):
            self._gates[name].size = float(size)

    def positions(self) -> tuple[np.ndarray, np.ndarray]:
        """Gate placement coordinates (x, y) in topological order."""
        self._ensure_current()
        xs = np.array([self._gates[name].x for name in self._order])
        ys = np.array([self._gates[name].y for name in self._order])
        return xs, ys

    def cell_coefficients(self) -> dict[str, np.ndarray]:
        """Per-gate cell coefficients (topological order).

        Returns a dict with arrays ``logical_effort``, ``parasitic_delay``,
        ``area_factor`` and ``n_inputs``.
        """
        self._ensure_current()
        cells = [self.library[self._gates[name].cell] for name in self._order]
        return {
            "logical_effort": np.array([c.logical_effort for c in cells]),
            "parasitic_delay": np.array([c.parasitic_delay for c in cells]),
            "area_factor": np.array([c.area_factor for c in cells]),
            "n_inputs": np.array([c.n_inputs for c in cells]),
        }

    def load_capacitances(self, sizes: np.ndarray | None = None) -> np.ndarray:
        """Output load of every gate in farads (topological order).

        The load is the sum of the input capacitances of the fanout gates
        plus ``default_output_load`` for gates marked as primary outputs.

        Parameters
        ----------
        sizes:
            Optional size vector to evaluate loads at (without mutating the
            netlist); defaults to the current gate sizes.
        """
        self._ensure_current()
        if sizes is None:
            sizes = self.sizes()
        else:
            sizes = np.asarray(sizes, dtype=float)
        coeffs = self.cell_coefficients()
        pin_caps = coeffs["logical_effort"] * self.technology.c_unit * sizes
        schedule = self.timing_schedule()
        # Every fanin arc (source -> owner) contributes the owner's pin
        # capacitance to the source's load; one bincount sums them all.
        # (bincount returns int64 for an empty weighted input, so force the
        # dtype for edge-free netlists.)
        loads = np.bincount(
            schedule.fanin_idx,
            weights=pin_caps[schedule.edge_owner],
            minlength=schedule.n_gates,
        ).astype(float)
        loads[self._is_po] += self.default_output_load
        # Gates with no fanout and not marked as outputs still drive something
        # downstream in a real design; give them the default load so their
        # delay is finite and size-sensitive.
        dangling = (schedule.fanout_counts == 0) & ~self._is_po
        loads[dangling] += self.default_output_load
        return loads

    # ------------------------------------------------------------------
    # Aggregate properties
    # ------------------------------------------------------------------
    def total_area(self, sizes: np.ndarray | None = None) -> float:
        """Total layout area in square micrometres."""
        self._ensure_current()
        if sizes is None:
            sizes = self.sizes()
        coeffs = self.cell_coefficients()
        return float(
            (coeffs["area_factor"] * self.technology.area_unit * np.asarray(sizes)).sum()
        )

    def logic_depth(self) -> int:
        """Maximum number of gates on any input-to-output path."""
        return self.timing_schedule().n_levels

    def levels(self) -> np.ndarray:
        """Logic level of every gate (topological order), starting at 1."""
        return self.timing_schedule().levels.astype(int) + 1

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def auto_place(
        self,
        region: tuple[float, float, float, float] = (0.0, 0.0, 1.0, 1.0),
    ) -> None:
        """Place gates by logic level inside a rectangular die region.

        Gates at the same level are spread vertically; successive levels
        advance horizontally across the region.  This gives a physically
        plausible layout in which gates that are logically close are also
        spatially close, which is what couples logic structure to the
        spatially correlated variation component.

        Parameters
        ----------
        region:
            ``(x0, y0, x1, y1)`` rectangle in normalised die coordinates.
        """
        x0, y0, x1, y1 = region
        if not (0.0 <= x0 < x1 <= 1.0 and 0.0 <= y0 < y1 <= 1.0):
            raise ValueError(f"invalid placement region {region}")
        self._ensure_current()
        levels = self.levels()
        max_level = int(levels.max()) if len(levels) else 1
        counts_per_level: dict[int, int] = {}
        seen_per_level: dict[int, int] = {}
        for level in levels:
            counts_per_level[int(level)] = counts_per_level.get(int(level), 0) + 1
        for name, level in zip(self._order, levels):
            level = int(level)
            position_in_level = seen_per_level.get(level, 0)
            seen_per_level[level] = position_in_level + 1
            count = counts_per_level[level]
            gate = self._gates[name]
            gate.x = x0 + (x1 - x0) * (level - 0.5) / max_level
            gate.y = y0 + (y1 - y0) * (position_in_level + 0.5) / count

    # ------------------------------------------------------------------
    # Copying
    # ------------------------------------------------------------------
    def copy(self, name: str | None = None) -> "Netlist":
        """Deep copy of the netlist (gates, sizes, placement, outputs)."""
        clone = Netlist(
            name if name is not None else self.name,
            library=self.library,
            technology=self.technology,
            default_output_load=self.default_output_load,
        )
        for pi in self._primary_inputs:
            clone.add_primary_input(pi)
        for gate in self._gates.values():
            # Insertion order is not necessarily topological (parsers may add
            # gates in file order), so defer fanin checks to the rebuild.
            clone.add_gate(
                gate.name,
                gate.cell,
                gate.fanins,
                size=gate.size,
                x=gate.x,
                y=gate.y,
                allow_forward=True,
            )
        for po in self._primary_outputs:
            clone.mark_primary_output(po)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Netlist({self.name!r}, gates={self.n_gates}, "
            f"inputs={len(self._primary_inputs)}, outputs={len(self._primary_outputs)}, "
            f"depth={self.logic_depth()})"
        )
