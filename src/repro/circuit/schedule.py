"""Compiled timing schedule: levelized CSR view of a netlist DAG.

Every hot path in the repository -- deterministic STA over Monte-Carlo
sample blocks, canonical-form SSTA, and the inner loops of the sizers --
needs the same two pieces of structural information about a netlist:

* the fanin/fanout adjacency, and
* an evaluation order in which a gate is visited only after its fanins.

The seed implementation stored the adjacency as Python lists-of-lists and
walked the DAG one gate at a time, which made the per-gate Python overhead
the dominant cost of ``MonteCarloEngine.run_pipeline`` and of every sizing
move.  A :class:`TimingSchedule` compiles the structure once into flat
``int32`` CSR arrays plus a *levelization*: gates are grouped by logic level
(level 0 = gates with no gate fanins, level ``l`` = gates whose deepest gate
fanin sits at level ``l - 1``).  All gates within a level are mutually
independent, so a timing kernel can process an entire level -- and an entire
block of Monte-Carlo samples -- with a handful of NumPy gather/``reduceat``
operations instead of a Python loop.

The schedule is immutable and versioned.  :meth:`repro.circuit.netlist.Netlist.timing_schedule`
caches one per structural version of the netlist and rebuilds it lazily
through the existing ``_ensure_current()`` mechanism, so the sizers can
mutate sizes thousands of times without ever re-deriving structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


def _csr_from_lists(lists: list[list[int]]) -> tuple[np.ndarray, np.ndarray]:
    """Pack a list-of-lists adjacency into (ptr, idx) CSR arrays (int32)."""
    counts = np.fromiter((len(entry) for entry in lists), dtype=np.int32, count=len(lists))
    ptr = np.zeros(len(lists) + 1, dtype=np.int32)
    np.cumsum(counts, out=ptr[1:])
    if ptr[-1]:
        idx = np.concatenate([np.asarray(entry, dtype=np.int32) for entry in lists if entry])
    else:
        idx = np.zeros(0, dtype=np.int32)
    return ptr, idx


def expand_csr_rows(
    ptr: np.ndarray, idx: np.ndarray, rows: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Gather the CSR entries of a subset of rows.

    Returns ``(flat, owner)`` where ``flat`` concatenates ``idx`` entries of
    the requested rows (in row order) and ``owner[i]`` is the position in
    ``rows`` that ``flat[i]`` belongs to.  This is the building block the
    sizers use to evaluate per-move quantities over just the critical-path
    gates without a Python loop.
    """
    rows = np.asarray(rows, dtype=np.int64)
    counts = (ptr[rows + 1] - ptr[rows]).astype(np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=idx.dtype), np.zeros(0, dtype=np.int64)
    owner = np.repeat(np.arange(rows.shape[0], dtype=np.int64), counts)
    # Offsets of each flat slot inside its own row segment.
    starts = np.repeat(ptr[rows].astype(np.int64), counts)
    within = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    return idx[starts + within], owner


@dataclass(frozen=True)
class LevelMaxPlan:
    """Precompiled fanin-max plan for one logic level.

    ``gates`` lists the level's gates sorted by fanin count (descending), so
    the gates still needing their ``j``-th fanin folded in are always a
    prefix of the batch.  ``edge_cols`` concatenates the fanin indices
    rank-major -- first every gate's pin-0 fanin, then the pin-1 fanins of
    the ``rank_counts[0]`` gates that have one, and so on -- which lets the
    forward kernel gather all of a level's fanin arrivals with ONE fancy
    index and fold the ranks with plain contiguous-slice maximums.
    ``edge_cols`` is ``None`` for level 0 (source gates, no fanins).
    """

    gates: np.ndarray
    edge_cols: np.ndarray | None
    width: int
    rank_counts: tuple[int, ...]


@dataclass(frozen=True)
class TimingSchedule:
    """Flattened, levelized structure of one netlist version.

    Attributes
    ----------
    version:
        Structural version of the owning netlist this schedule was compiled
        from; ``Netlist.timing_schedule()`` discards the cache when the
        version moves on.
    n_gates, n_edges:
        Gate and timing-arc counts.
    fanin_ptr, fanin_idx:
        CSR adjacency of gate fanins: the fanins of gate ``g`` are
        ``fanin_idx[fanin_ptr[g]:fanin_ptr[g + 1]]`` in pin order.
    fanout_ptr, fanout_idx:
        CSR adjacency of gate fanouts (inverse of the fanin arcs).
    edge_owner:
        For every fanin arc, the gate that owns it (``len == n_edges``);
        combined with ``fanin_idx`` this is the full (source, destination)
        edge list.
    levels:
        0-based logic level per gate (topological indexing).
    level_gates:
        Per level, the gate positions at that level (sorted ascending).
    level_edges / level_seg:
        Per level ``l >= 1``, the concatenated fanin indices of that level's
        gates and the ``reduceat`` segment starts delimiting each gate's
        fanins.  Every gate above level 0 has at least one fanin, so the
        segments are never empty and ``np.maximum.reduceat`` applies directly.
    rev_level_gates / rev_level_edges / rev_level_seg:
        The mirror-image structures over *fanouts*, restricted to gates that
        have at least one fanout, used by the backward (required-time)
        propagation.
    level_plans:
        One :class:`LevelMaxPlan` per level: the rank-major fanin gather
        plan the forward arrival kernel uses instead of ``reduceat`` (one
        fancy gather per level, then contiguous-slice maximums).
    """

    version: int
    n_gates: int
    n_edges: int
    fanin_ptr: np.ndarray
    fanin_idx: np.ndarray
    fanout_ptr: np.ndarray
    fanout_idx: np.ndarray
    edge_owner: np.ndarray
    levels: np.ndarray
    level_gates: tuple[np.ndarray, ...]
    level_edges: tuple[np.ndarray, ...]
    level_seg: tuple[np.ndarray, ...]
    rev_level_gates: tuple[np.ndarray, ...] = field(repr=False, default=())
    rev_level_edges: tuple[np.ndarray, ...] = field(repr=False, default=())
    rev_level_seg: tuple[np.ndarray, ...] = field(repr=False, default=())
    level_plans: tuple[LevelMaxPlan, ...] = field(repr=False, default=())

    @property
    def n_levels(self) -> int:
        """Number of logic levels (0 for an empty netlist)."""
        return len(self.level_gates)

    @property
    def fanout_counts(self) -> np.ndarray:
        """Number of fanouts of every gate (topological indexing)."""
        return self.fanout_ptr[1:] - self.fanout_ptr[:-1]

    def fanins_of(self, gate_pos: int) -> np.ndarray:
        """Fanin positions of one gate as an array view."""
        return self.fanin_idx[self.fanin_ptr[gate_pos] : self.fanin_ptr[gate_pos + 1]]

    def fanouts_of(self, gate_pos: int) -> np.ndarray:
        """Fanout positions of one gate as an array view."""
        return self.fanout_idx[self.fanout_ptr[gate_pos] : self.fanout_ptr[gate_pos + 1]]


def compile_schedule(
    fanin_lists: list[list[int]],
    fanout_lists: list[list[int]],
    version: int,
) -> TimingSchedule:
    """Compile list-of-list adjacency into a :class:`TimingSchedule`.

    The input lists use topological gate indexing (fanins of a gate always
    have smaller indices), which is what ``Netlist._rebuild`` produces.
    """
    n_gates = len(fanin_lists)
    fanin_ptr, fanin_idx = _csr_from_lists(fanin_lists)
    fanout_ptr, fanout_idx = _csr_from_lists(fanout_lists)
    counts = fanin_ptr[1:] - fanin_ptr[:-1]
    edge_owner = np.repeat(np.arange(n_gates, dtype=np.int32), counts)

    # Levelization.  Gates appear in topological order, so one forward pass
    # suffices; the per-gate reduction is a cheap slice max.
    levels = np.zeros(n_gates, dtype=np.int32)
    for gate_pos, gate_fanins in enumerate(fanin_lists):
        if gate_fanins:
            deepest = levels[gate_fanins[0]]
            for fanin_pos in gate_fanins[1:]:
                if levels[fanin_pos] > deepest:
                    deepest = levels[fanin_pos]
            levels[gate_pos] = deepest + 1

    n_levels = int(levels.max()) + 1 if n_gates else 0
    level_gates: list[np.ndarray] = []
    level_edges: list[np.ndarray] = []
    level_seg: list[np.ndarray] = []
    level_plans: list[LevelMaxPlan] = []
    rev_level_gates: list[np.ndarray] = []
    rev_level_edges: list[np.ndarray] = []
    rev_level_seg: list[np.ndarray] = []
    for level in range(n_levels):
        gates = np.nonzero(levels == level)[0].astype(np.int32)
        level_gates.append(gates)
        if level == 0:
            level_edges.append(np.zeros(0, dtype=np.int32))
            level_seg.append(np.zeros(0, dtype=np.int32))
            level_plans.append(
                LevelMaxPlan(
                    gates=gates.astype(np.intp),
                    edge_cols=None,
                    width=int(gates.shape[0]),
                    rank_counts=(),
                )
            )
        else:
            flat, _ = expand_csr_rows(fanin_ptr, fanin_idx, gates)
            seg_counts = (fanin_ptr[gates + 1] - fanin_ptr[gates]).astype(np.int64)
            seg = np.zeros(gates.shape[0], dtype=np.int64)
            np.cumsum(seg_counts[:-1], out=seg[1:])
            level_edges.append(flat)
            level_seg.append(seg)
            # Rank-major max plan: sort the level's gates by fanin count
            # (descending, stable) so every rank applies to a prefix, then
            # concatenate fanin indices pin-rank by pin-rank.
            order = np.argsort(-seg_counts, kind="stable")
            plan_gates = gates[order].astype(np.intp)
            plan_counts = seg_counts[order]
            starts = fanin_ptr[plan_gates].astype(np.int64)
            columns = [fanin_idx[starts].astype(np.intp)]
            rank_counts: list[int] = []
            for rank in range(1, int(plan_counts.max())):
                k = int((plan_counts > rank).sum())
                columns.append(fanin_idx[starts[:k] + rank].astype(np.intp))
                rank_counts.append(k)
            level_plans.append(
                LevelMaxPlan(
                    gates=plan_gates,
                    edge_cols=np.concatenate(columns),
                    width=int(plan_gates.shape[0]),
                    rank_counts=tuple(rank_counts),
                )
            )
        # Backward structures: only gates with at least one fanout, so the
        # reduceat segments stay non-empty.
        out_counts = (fanout_ptr[gates + 1] - fanout_ptr[gates]).astype(np.int64)
        with_fanouts = gates[out_counts > 0]
        flat_out, _ = expand_csr_rows(fanout_ptr, fanout_idx, with_fanouts)
        out_counts = out_counts[out_counts > 0]
        seg_out = np.zeros(with_fanouts.shape[0], dtype=np.int64)
        if with_fanouts.shape[0]:
            np.cumsum(out_counts[:-1], out=seg_out[1:])
        rev_level_gates.append(with_fanouts)
        rev_level_edges.append(flat_out)
        rev_level_seg.append(seg_out)

    return TimingSchedule(
        version=version,
        n_gates=n_gates,
        n_edges=int(fanin_ptr[-1]) if n_gates else 0,
        fanin_ptr=fanin_ptr,
        fanin_idx=fanin_idx,
        fanout_ptr=fanout_ptr,
        fanout_idx=fanout_idx,
        edge_owner=edge_owner,
        levels=levels,
        level_gates=tuple(level_gates),
        level_edges=tuple(level_edges),
        level_seg=tuple(level_seg),
        rev_level_gates=tuple(rev_level_gates),
        rev_level_edges=tuple(rev_level_edges),
        rev_level_seg=tuple(rev_level_seg),
        level_plans=tuple(level_plans),
    )
