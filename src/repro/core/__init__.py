"""The paper's primary contribution: statistical pipeline delay and yield models.

* :mod:`repro.core.clark` -- Clark's moment-matching approximation for the
  maximum of (correlated) Gaussian random variables (paper eqs. 4-6),
  including the correlation-propagation step and the increasing-mean
  ordering that minimises approximation error.
* :mod:`repro.core.stage_delay` -- the per-stage delay abstraction
  ``SD_i = T_C-Q + T_comb + T_setup`` as a Gaussian distribution, with
  constructors from Monte-Carlo samples and from SSTA canonical forms.
* :mod:`repro.core.pipeline_delay` -- estimation of the overall pipeline
  delay distribution ``T_P = max_i SD_i`` (section 2.2), including the
  Jensen lower bound on the mean (eq. 3).
* :mod:`repro.core.yield_model` -- yield estimators (section 2.3, eqs. 7-9):
  exact product form for independent stages, Gaussian approximation for
  correlated stages, and empirical yield from samples.
* :mod:`repro.core.design_space` -- the permissible (mu_i, sigma_i) design
  space for a target yield (section 2.5, eqs. 10-13 and Fig. 4).
* :mod:`repro.core.variability` -- logic-depth / stage-count variability
  analyses of section 3.1 (Fig. 5).
* :mod:`repro.core.imbalance` -- balanced-vs-unbalanced pipeline analysis
  and the area-delay sensitivity heuristic R_i (section 3.2, eq. 14).
"""

from repro.core.clark import (
    MaxResult,
    correlation_with_max,
    max_of_gaussians,
    max_of_two_gaussians,
)
from repro.core.stage_delay import StageDelayDistribution
from repro.core.pipeline_delay import PipelineDelayModel, PipelineDelayEstimate
from repro.core.yield_model import (
    yield_correlated,
    yield_from_samples,
    yield_independent,
    target_delay_for_yield,
)
from repro.core.design_space import DesignSpace, DesignSpaceRegion
from repro.core.variability import (
    normalized_series,
    pipeline_variability_vs_stages,
    stage_variability_vs_logic_depth,
)
from repro.core.imbalance import (
    StageAreaDelaySensitivity,
    classify_stages,
    pipeline_yield_from_stage_yields,
    sensitivity_ratio,
)

__all__ = [
    "MaxResult",
    "max_of_two_gaussians",
    "max_of_gaussians",
    "correlation_with_max",
    "StageDelayDistribution",
    "PipelineDelayModel",
    "PipelineDelayEstimate",
    "yield_independent",
    "yield_correlated",
    "yield_from_samples",
    "target_delay_for_yield",
    "DesignSpace",
    "DesignSpaceRegion",
    "stage_variability_vs_logic_depth",
    "pipeline_variability_vs_stages",
    "normalized_series",
    "sensitivity_ratio",
    "classify_stages",
    "pipeline_yield_from_stage_yields",
    "StageAreaDelaySensitivity",
]
