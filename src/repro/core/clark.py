"""Clark's approximation for the maximum of Gaussian random variables.

This is the mathematical core of the paper's pipeline delay model
(section 2.2, eqs. 4-6), following C. E. Clark, "The Greatest of a Finite
Set of Random Variables", Operations Research 9(2), 1961.

Given two jointly Gaussian variables ``X1 ~ N(mu1, s1)`` and
``X2 ~ N(mu2, s2)`` with correlation ``rho``, define

    a^2   = s1^2 + s2^2 - 2 s1 s2 rho
    alpha = (mu1 - mu2) / a

Then the first two moments of ``max(X1, X2)`` are

    m1 = mu1 Phi(alpha) + mu2 Phi(-alpha) + a phi(alpha)
    m2 = (mu1^2 + s1^2) Phi(alpha) + (mu2^2 + s2^2) Phi(-alpha)
         + (mu1 + mu2) a phi(alpha)

and the max is *approximated* as a Gaussian with mean ``m1`` and variance
``m2 - m1^2``.  The correlation of the approximated max with any third
jointly Gaussian variable ``Y`` follows from

    Cov(Y, max(X1, X2)) = Cov(Y, X1) Phi(alpha) + Cov(Y, X2) Phi(-alpha)

(eq. 6 in the paper).  The N-variable max is computed by repeated pairwise
application; the paper (citing Ross 2003) orders the variables by
increasing mean to minimise the approximation error, and so does
:func:`max_of_gaussians` by default.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.stats import norm

# Two variables are treated as perfectly dependent (their difference is
# deterministic) when the variance of that difference is this small relative
# to the variables' own variances.  The threshold is relative so the test is
# unit-independent (delays here are of order 1e-10 s, variances 1e-21 s^2).
_DEGENERATE_RATIO = 1e-12


def _is_degenerate_spread(spread_sq: float, var1: float, var2: float) -> bool:
    """Whether max(X1, X2) degenerates to the larger-mean variable."""
    scale = var1 + var2
    if scale <= 0.0:
        return True
    return spread_sq <= _DEGENERATE_RATIO * scale


@dataclass(frozen=True)
class MaxResult:
    """Moments of the (approximately Gaussian) maximum of Gaussian variables."""

    mean: float
    std: float

    @property
    def variance(self) -> float:
        """Variance of the approximated maximum."""
        return self.std**2


def max_of_two_gaussians(
    mean1: float,
    std1: float,
    mean2: float,
    std2: float,
    correlation: float = 0.0,
) -> MaxResult:
    """Clark's approximation to ``max(X1, X2)`` for two Gaussian variables.

    Parameters
    ----------
    mean1, std1:
        Mean and standard deviation of the first variable.
    mean2, std2:
        Mean and standard deviation of the second variable.
    correlation:
        Correlation coefficient between the two variables, in [-1, 1].

    Returns
    -------
    MaxResult
        Mean and standard deviation of the approximated maximum.
    """
    if std1 < 0.0 or std2 < 0.0:
        raise ValueError("standard deviations must be non-negative")
    if not -1.0 <= correlation <= 1.0:
        raise ValueError(f"correlation must be in [-1, 1], got {correlation}")

    spread_sq = std1**2 + std2**2 - 2.0 * std1 * std2 * correlation
    if _is_degenerate_spread(spread_sq, std1**2, std2**2):
        # X1 - X2 is (numerically) deterministic: the max is simply whichever
        # variable has the larger mean.
        if mean1 >= mean2:
            return MaxResult(mean1, std1)
        return MaxResult(mean2, std2)

    spread = spread_sq**0.5
    alpha = (mean1 - mean2) / spread
    prob1 = float(norm.cdf(alpha))
    prob2 = 1.0 - prob1
    density = float(norm.pdf(alpha))

    mean_max = mean1 * prob1 + mean2 * prob2 + spread * density
    second_moment = (
        (mean1**2 + std1**2) * prob1
        + (mean2**2 + std2**2) * prob2
        + (mean1 + mean2) * spread * density
    )
    variance = max(second_moment - mean_max**2, 0.0)
    return MaxResult(mean_max, variance**0.5)


def correlation_with_max(
    mean1: float,
    std1: float,
    mean2: float,
    std2: float,
    correlation12: float,
    std_other: float,
    correlation_other_1: float,
    correlation_other_2: float,
    max_std: float | None = None,
) -> float:
    """Correlation between a third Gaussian ``Y`` and ``max(X1, X2)``.

    Implements eq. 6 of the paper (Clark's covariance identity).

    Parameters
    ----------
    mean1, std1, mean2, std2, correlation12:
        Moments of the two variables inside the max.
    std_other:
        Standard deviation of ``Y``.
    correlation_other_1, correlation_other_2:
        Correlations of ``Y`` with ``X1`` and ``X2``.
    max_std:
        Standard deviation of the approximated max; recomputed if omitted.

    Returns
    -------
    float
        Correlation coefficient between ``Y`` and the approximated max,
        clipped to [-1, 1].
    """
    if max_std is None:
        max_std = max_of_two_gaussians(mean1, std1, mean2, std2, correlation12).std
    if max_std <= 0.0 or std_other <= 0.0:
        return 0.0

    spread_sq = std1**2 + std2**2 - 2.0 * std1 * std2 * correlation12
    if _is_degenerate_spread(spread_sq, std1**2, std2**2):
        # The max degenerates to the larger-mean variable.
        if mean1 >= mean2:
            return float(np.clip(correlation_other_1 * std1 / max_std, -1.0, 1.0))
        return float(np.clip(correlation_other_2 * std2 / max_std, -1.0, 1.0))

    alpha = (mean1 - mean2) / spread_sq**0.5
    prob1 = float(norm.cdf(alpha))
    prob2 = 1.0 - prob1
    # Cov(Y, max) = sigma_Y * (s1 rho1 Phi + s2 rho2 Phi-); the sigma_Y factor
    # cancels against the denominator, so divide it out analytically rather
    # than numerically (products of very small sigmas would underflow).
    rho = (
        std1 * correlation_other_1 * prob1 + std2 * correlation_other_2 * prob2
    ) / max_std
    return float(np.clip(rho, -1.0, 1.0))


def _validated_inputs(
    means: np.ndarray, stds: np.ndarray, correlations: np.ndarray | None
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    means = np.asarray(means, dtype=float)
    stds = np.asarray(stds, dtype=float)
    if means.ndim != 1 or stds.ndim != 1:
        raise ValueError("means and stds must be 1-D arrays")
    if means.shape != stds.shape:
        raise ValueError(
            f"means and stds must have the same length, got {means.shape} and {stds.shape}"
        )
    if means.size == 0:
        raise ValueError("need at least one variable to take a maximum")
    if np.any(stds < 0.0):
        raise ValueError("standard deviations must be non-negative")
    n = means.size
    if correlations is None:
        correlations = np.eye(n)
    else:
        correlations = np.asarray(correlations, dtype=float)
        if correlations.shape != (n, n):
            raise ValueError(
                f"correlation matrix must be {n}x{n}, got {correlations.shape}"
            )
        if not np.allclose(correlations, correlations.T, atol=1e-9):
            raise ValueError("correlation matrix must be symmetric")
        if np.any(np.abs(correlations) > 1.0 + 1e-9):
            raise ValueError("correlation entries must lie in [-1, 1]")
        if not np.allclose(np.diag(correlations), 1.0, atol=1e-9):
            raise ValueError("correlation matrix must have unit diagonal")
    return means, stds, correlations


def max_of_gaussians(
    means: np.ndarray,
    stds: np.ndarray,
    correlations: np.ndarray | None = None,
    ordering: str = "increasing",
) -> MaxResult:
    """Clark's approximation to the maximum of N jointly Gaussian variables.

    The variables are combined two at a time: each pairwise max is replaced
    by a Gaussian with Clark's moments, and its correlation with every
    remaining variable is propagated with eq. 6 so the next pairwise max
    sees the right joint statistics (paper eqs. 4-6).

    Parameters
    ----------
    means, stds:
        Per-variable means and standard deviations, shape ``(n,)``.
    correlations:
        Optional ``(n, n)`` correlation matrix; identity (independent
        variables) if omitted.
    ordering:
        Order in which variables enter the pairwise reduction:

        * ``"increasing"`` (default): increasing mean -- the ordering the
          paper uses because it minimises the approximation error,
        * ``"decreasing"``: decreasing mean,
        * ``"given"``: the order the caller supplied (used by the ordering
          ablation benchmark).

    Returns
    -------
    MaxResult
        Mean and standard deviation of the approximated maximum.
    """
    means, stds, correlations = _validated_inputs(means, stds, correlations)
    if ordering == "increasing":
        order = np.argsort(means, kind="stable")
    elif ordering == "decreasing":
        order = np.argsort(-means, kind="stable")
    elif ordering == "given":
        order = np.arange(means.size)
    else:
        raise ValueError(
            f"ordering must be 'increasing', 'decreasing' or 'given', got {ordering!r}"
        )

    means = means[order]
    stds = stds[order]
    correlations = correlations[np.ix_(order, order)]

    if means.size == 1:
        return MaxResult(float(means[0]), float(stds[0]))

    # Running accumulator: the Gaussian approximation of the max so far and
    # its correlation with each not-yet-processed variable.
    acc_mean = float(means[0])
    acc_std = float(stds[0])
    acc_corr = correlations[0, :].copy()

    for index in range(1, means.size):
        current = max_of_two_gaussians(
            acc_mean, acc_std, float(means[index]), float(stds[index]), float(acc_corr[index])
        )
        if index < means.size - 1:
            new_corr = np.zeros_like(acc_corr)
            for remaining in range(index + 1, means.size):
                new_corr[remaining] = correlation_with_max(
                    acc_mean,
                    acc_std,
                    float(means[index]),
                    float(stds[index]),
                    float(acc_corr[index]),
                    float(stds[remaining]),
                    float(acc_corr[remaining]),
                    float(correlations[index, remaining]),
                    max_std=current.std,
                )
            acc_corr = new_corr
        acc_mean = current.mean
        acc_std = current.std

    return MaxResult(acc_mean, acc_std)
