"""Design-space estimation for per-stage (mu, sigma) (paper section 2.5, Fig. 4).

For a pipeline that must reach a target delay ``T_TARGET`` with yield
``P_D``, the paper derives a hierarchy of bounds on the mean and standard
deviation any individual stage may have:

* **Mean upper bound** (eq. 10): via Jensen's inequality the stage mean can
  never exceed the pipeline mean, which itself must satisfy
  ``mu_T <= T_TARGET - sigma_T * Phi^-1(P_D)``.
* **Relaxed upper bound** (eq. 11): assuming every other stage meets the
  target with probability one, a stage with
  ``mu_i + sigma_i * Phi^-1(P_D) > T_TARGET`` can never be part of any
  compliant pipeline.
* **Equality bound** (eq. 12): for ``N_S`` uncorrelated, equally budgeted
  stages each stage must satisfy
  ``mu_i + sigma_i * Phi^-1(P_D ** (1/N_S)) <= T_TARGET``; the bound tightens
  as the stage count grows.
* **Realizable bounds** (eq. 13): modelling a stage as a chain of ``N_L``
  identical gates ties sigma to mu (``mu = N_L mu_g``, ``sigma^2 = N_L
  sigma_g^2``), so only a curve ``sigma = sigma_g * sqrt(mu / mu_g)`` is
  physically realizable for a given gate size; minimum- and maximum-size
  gates give the two edges of the realizable band, and the minimum logic
  depth gives a lower-left corner.

:class:`DesignSpace` evaluates all of these and can rasterise the feasible
region of Fig. 4.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.stats import norm


@dataclass(frozen=True)
class GateDelayCharacteristics:
    """Mean/sigma of a single gate delay used for the realizable bounds.

    ``mu_min``/``sigma_min`` describe a minimum-size gate; ``mu_max``/
    ``sigma_max`` a maximum-size gate (faster but, per RDF, relatively less
    variable).  All values in seconds.
    """

    mu_min: float
    sigma_min: float
    mu_max: float
    sigma_max: float

    def __post_init__(self) -> None:
        if min(self.mu_min, self.mu_max) <= 0.0:
            raise ValueError("gate delay means must be positive")
        if min(self.sigma_min, self.sigma_max) < 0.0:
            raise ValueError("gate delay sigmas must be non-negative")
        if self.mu_max > self.mu_min:
            raise ValueError(
                "a maximum-size gate must not be slower than a minimum-size gate"
            )


@dataclass(frozen=True)
class DesignSpaceRegion:
    """Rasterised feasibility map over a (mu, sigma) grid."""

    mu_grid: np.ndarray
    sigma_grid: np.ndarray
    feasible: np.ndarray
    realizable: np.ndarray

    @property
    def feasible_fraction(self) -> float:
        """Fraction of grid points that satisfy the equality bound."""
        return float(self.feasible.mean())

    @property
    def realizable_and_feasible(self) -> np.ndarray:
        """Mask of points that are both feasible and physically realizable."""
        return self.feasible & self.realizable


class DesignSpace:
    """Permissible per-stage (mu_i, sigma_i) space for a yield target.

    Parameters
    ----------
    target_delay:
        Pipeline delay target ``T_TARGET`` in seconds.
    target_yield:
        Pipeline yield target ``P_D`` in (0, 1).
    """

    def __init__(self, target_delay: float, target_yield: float) -> None:
        if target_delay <= 0.0:
            raise ValueError(f"target_delay must be positive, got {target_delay}")
        if not 0.0 < target_yield < 1.0:
            raise ValueError(f"target_yield must be in (0, 1), got {target_yield}")
        self.target_delay = target_delay
        self.target_yield = target_yield

    # ------------------------------------------------------------------
    # Bounds (eqs. 10-12)
    # ------------------------------------------------------------------
    def mean_upper_bound(self, pipeline_sigma: float) -> float:
        """Upper bound on any stage mean given the pipeline sigma (eq. 10)."""
        if pipeline_sigma < 0.0:
            raise ValueError("pipeline_sigma must be non-negative")
        return self.target_delay - pipeline_sigma * float(norm.ppf(self.target_yield))

    def relaxed_upper_bound(self, sigma: np.ndarray | float) -> np.ndarray | float:
        """Largest stage mean allowed at the given sigma (eq. 11).

        A stage outside this bound cannot appear in *any* pipeline that meets
        the target, no matter how good the other stages are.
        """
        sigma = np.asarray(sigma, dtype=float)
        bound = self.target_delay - sigma * float(norm.ppf(self.target_yield))
        return bound if bound.ndim else float(bound)

    def equality_bound(
        self, sigma: np.ndarray | float, n_stages: int
    ) -> np.ndarray | float:
        """Largest stage mean for ``n_stages`` equal uncorrelated stages (eq. 12)."""
        if n_stages < 1:
            raise ValueError(f"n_stages must be at least 1, got {n_stages}")
        sigma = np.asarray(sigma, dtype=float)
        stage_yield = self.target_yield ** (1.0 / n_stages)
        bound = self.target_delay - sigma * float(norm.ppf(stage_yield))
        return bound if bound.ndim else float(bound)

    def satisfies_relaxed_bound(self, mu: float, sigma: float) -> bool:
        """Whether (mu, sigma) lies inside the relaxed bound (eq. 11)."""
        return mu <= self.relaxed_upper_bound(sigma) + 1e-15

    def satisfies_equality_bound(self, mu: float, sigma: float, n_stages: int) -> bool:
        """Whether (mu, sigma) lies inside the equality bound (eq. 12)."""
        return mu <= self.equality_bound(sigma, n_stages) + 1e-15

    # ------------------------------------------------------------------
    # Realizable curves (eq. 13)
    # ------------------------------------------------------------------
    @staticmethod
    def realizable_sigma(
        mu: np.ndarray | float, gate_mu: float, gate_sigma: float
    ) -> np.ndarray | float:
        """Sigma of an inverter-chain stage with mean ``mu`` (eq. 13).

        A chain of ``N_L = mu / gate_mu`` gates has
        ``sigma = gate_sigma * sqrt(N_L) = gate_sigma * sqrt(mu / gate_mu)``.
        """
        if gate_mu <= 0.0:
            raise ValueError("gate_mu must be positive")
        if gate_sigma < 0.0:
            raise ValueError("gate_sigma must be non-negative")
        mu = np.asarray(mu, dtype=float)
        sigma = gate_sigma * np.sqrt(np.clip(mu, 0.0, None) / gate_mu)
        return sigma if sigma.ndim else float(sigma)

    def realizable_bounds(
        self,
        mu: np.ndarray | float,
        gates: GateDelayCharacteristics,
    ) -> tuple[np.ndarray | float, np.ndarray | float]:
        """Lower and upper realizable sigma at a given stage mean.

        The *upper* realizable curve comes from minimum-size gates (slow and
        relatively noisy, so fewer of them are needed for a given mean and
        each contributes more sigma); the *lower* curve comes from
        maximum-size gates.
        """
        upper = self.realizable_sigma(mu, gates.mu_min, gates.sigma_min)
        lower = self.realizable_sigma(mu, gates.mu_max, gates.sigma_max)
        return lower, upper

    @staticmethod
    def minimum_realizable_point(
        gates: GateDelayCharacteristics, min_logic_depth: int
    ) -> tuple[float, float]:
        """The minimum-mu / minimum-sigma corner set by the minimum logic depth."""
        if min_logic_depth < 1:
            raise ValueError(f"min_logic_depth must be at least 1, got {min_logic_depth}")
        mu = min_logic_depth * gates.mu_max
        sigma = gates.sigma_max * min_logic_depth**0.5
        return mu, sigma

    # ------------------------------------------------------------------
    # Region rasterisation (Fig. 4)
    # ------------------------------------------------------------------
    def region(
        self,
        n_stages: int,
        gates: GateDelayCharacteristics,
        min_logic_depth: int = 1,
        n_mu: int = 80,
        n_sigma: int = 60,
        mu_max: float | None = None,
        sigma_max: float | None = None,
    ) -> DesignSpaceRegion:
        """Rasterise the feasible / realizable region of Fig. 4.

        Parameters
        ----------
        n_stages:
            Stage count used for the equality bound.
        gates:
            Gate-level delay characteristics for the realizable band.
        min_logic_depth:
            Minimum allowed logic depth per stage.
        n_mu, n_sigma:
            Grid resolution.
        mu_max, sigma_max:
            Grid extents; default to the target delay and to the sigma that
            would alone consume the whole yield margin.
        """
        if mu_max is None:
            mu_max = 1.1 * self.target_delay
        if sigma_max is None:
            sigma_max = 0.5 * self.target_delay
        mu_values = np.linspace(0.0, mu_max, n_mu)
        sigma_values = np.linspace(0.0, sigma_max, n_sigma)
        mu_grid, sigma_grid = np.meshgrid(mu_values, sigma_values, indexing="ij")

        equality_mu = self.equality_bound(sigma_grid, n_stages)
        feasible = mu_grid <= equality_mu

        lower, upper = self.realizable_bounds(mu_grid, gates)
        min_mu, _ = self.minimum_realizable_point(gates, min_logic_depth)
        realizable = (sigma_grid >= lower) & (sigma_grid <= upper) & (mu_grid >= min_mu)

        return DesignSpaceRegion(
            mu_grid=mu_grid,
            sigma_grid=sigma_grid,
            feasible=feasible,
            realizable=realizable,
        )
