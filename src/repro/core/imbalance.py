"""Balanced vs. unbalanced pipeline analysis (paper section 3.2, eq. 14).

A perfectly balanced pipeline maximises throughput deterministically, but
under process variation it also maximises the number of (near-)critical
stages: every stage sits right at the target, so every stage is another
chance to fail it.  The paper shows that deliberately *unbalancing* the
stage delays -- slowing down stages whose area-vs-delay curve is steep
(cheap to slow down) and spending the recovered area to speed up stages
whose curve is shallow -- can raise the pipeline yield at constant area.

The decision heuristic is eq. 14: compute for each stage the rate of change
of area with delay,

    R_i = | dA_i / dD_i |   (evaluated as an elasticity, see below),

then prefer to *slow down / shrink* stages with ``R_i > 1`` (a large area
saving costs little delay) and to *speed up / grow* stages with ``R_i < 1``
(a small area investment buys a lot of delay).  Because area and delay have
different units we evaluate the ratio as an elasticity
``(dA/A) / (dD/D)`` so that "1" is a meaningful threshold, which is how the
paper's prose ("reduction in large area results in small increase in
delay") reads.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np


class StageAction(Enum):
    """What the eq. 14 heuristic recommends doing with a stage."""

    SHRINK = "shrink"
    GROW = "grow"
    NEUTRAL = "neutral"


@dataclass(frozen=True)
class StageAreaDelaySensitivity:
    """Eq. 14 sensitivity record for one stage."""

    name: str
    ratio: float
    action: StageAction

    @property
    def is_cheap_to_slow_down(self) -> bool:
        """True when slowing the stage recovers a lot of area (R_i > 1)."""
        return self.action is StageAction.SHRINK


def sensitivity_ratio(
    areas: np.ndarray,
    delays: np.ndarray,
    at_delay: float | None = None,
) -> float:
    """Area-delay sensitivity R_i of a stage from its area-vs-delay curve.

    Parameters
    ----------
    areas, delays:
        Sampled points of the stage's area-vs-delay trade-off curve (as
        produced by sizing the stage for a sweep of delay targets).  They do
        not need to be sorted.
    at_delay:
        Delay at which to evaluate the local slope; defaults to the midpoint
        of the sampled delay range.

    Returns
    -------
    float
        The elasticity ``|dA/A| / |dD/D|`` evaluated at ``at_delay``.
    """
    areas = np.asarray(areas, dtype=float)
    delays = np.asarray(delays, dtype=float)
    if areas.shape != delays.shape or areas.ndim != 1:
        raise ValueError("areas and delays must be 1-D arrays of the same length")
    if areas.size < 2:
        raise ValueError("need at least two points on the area-delay curve")
    if np.any(areas <= 0.0) or np.any(delays <= 0.0):
        raise ValueError("areas and delays must be positive to form an elasticity")
    order = np.argsort(delays)
    delays = delays[order]
    areas = areas[order]
    if at_delay is None:
        at_delay = float(0.5 * (delays[0] + delays[-1]))
    at_delay = float(np.clip(at_delay, delays[0], delays[-1]))

    slope = np.gradient(areas, delays)
    local_slope = float(np.interp(at_delay, delays, slope))
    local_area = float(np.interp(at_delay, delays, areas))
    if local_area <= 0.0 or at_delay <= 0.0:
        raise ValueError("areas and delays must be positive to form an elasticity")
    return abs(local_slope) * at_delay / local_area


def classify_stage(name: str, ratio: float, tolerance: float = 0.05) -> StageAreaDelaySensitivity:
    """Classify one stage according to the eq. 14 heuristic."""
    if ratio < 0.0:
        raise ValueError(f"sensitivity ratio must be non-negative, got {ratio}")
    if ratio > 1.0 + tolerance:
        action = StageAction.SHRINK
    elif ratio < 1.0 - tolerance:
        action = StageAction.GROW
    else:
        action = StageAction.NEUTRAL
    return StageAreaDelaySensitivity(name=name, ratio=ratio, action=action)


def classify_stages(
    ratios: dict[str, float], tolerance: float = 0.05
) -> list[StageAreaDelaySensitivity]:
    """Classify every stage and return records sorted by descending ratio.

    Sorting by descending R_i is the stage-processing order the global
    optimization algorithm (Fig. 9) uses when its goal is area recovery:
    stages whose area is cheapest to convert into delay go first.
    """
    records = [classify_stage(name, ratio, tolerance) for name, ratio in ratios.items()]
    records.sort(key=lambda record: record.ratio, reverse=True)
    return records


def pipeline_yield_from_stage_yields(stage_yields: list[float] | np.ndarray) -> float:
    """Pipeline yield as the product of independent per-stage yields.

    This is the quantity the paper's imbalance argument manipulates: starting
    from a balanced design with per-stage yield ``Y0`` (pipeline yield
    ``Y0**N``), imbalance trades the yields ``Y_i`` of individual stages so
    that their product exceeds ``Y0**N``.
    """
    stage_yields = np.asarray(stage_yields, dtype=float)
    if stage_yields.ndim != 1 or stage_yields.size == 0:
        raise ValueError("need a non-empty 1-D array of stage yields")
    if np.any((stage_yields < 0.0) | (stage_yields > 1.0)):
        raise ValueError("stage yields must lie in [0, 1]")
    return float(np.prod(stage_yields))


def imbalance_improves_yield(
    balanced_stage_yield: float, unbalanced_stage_yields: list[float] | np.ndarray
) -> bool:
    """Check the paper's imbalance criterion ``prod_i Y_i > Y0**N``."""
    if not 0.0 <= balanced_stage_yield <= 1.0:
        raise ValueError("balanced_stage_yield must lie in [0, 1]")
    unbalanced = np.asarray(unbalanced_stage_yields, dtype=float)
    baseline = balanced_stage_yield ** unbalanced.size
    return pipeline_yield_from_stage_yields(unbalanced) > baseline
