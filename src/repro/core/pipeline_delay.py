"""Pipeline delay distribution estimation (paper section 2.2).

The pipeline delay is the maximum of the stage delays,

    T_P = max_i SD_i ,

so its distribution follows from the per-stage means, standard deviations
and correlations through Clark's pairwise max approximation.  The module
also exposes the Jensen lower bound on the mean (eq. 3),

    E[T_P] >= max_i E[SD_i],

which the paper uses to bound the per-stage mean in its design-space
analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.stats import norm

from repro.core.clark import max_of_gaussians
from repro.core.stage_delay import StageDelayDistribution


@dataclass(frozen=True)
class PipelineDelayEstimate:
    """Gaussian estimate of the overall pipeline delay distribution."""

    mean: float
    std: float
    jensen_lower_bound: float
    n_stages: int

    @property
    def variability(self) -> float:
        """sigma/mu of the pipeline delay."""
        if self.mean == 0.0:
            return 0.0
        return self.std / self.mean

    def yield_at(self, target_delay: float) -> float:
        """Yield (probability of meeting ``target_delay``) from the Gaussian
        approximation of the pipeline delay (paper eq. 9)."""
        if self.std == 0.0:
            return 1.0 if self.mean <= target_delay else 0.0
        return float(norm.cdf((target_delay - self.mean) / self.std))

    def delay_at_yield(self, target_yield: float) -> float:
        """Clock period achievable at the requested yield."""
        if not 0.0 < target_yield < 1.0:
            raise ValueError(f"target_yield must be in (0, 1), got {target_yield}")
        return self.mean + self.std * float(norm.ppf(target_yield))

    def pdf(self, delay: np.ndarray | float) -> np.ndarray | float:
        """Gaussian probability density of the pipeline delay."""
        if self.std == 0.0:
            raise ValueError("pdf undefined for a zero-variance pipeline delay")
        return norm.pdf(delay, loc=self.mean, scale=self.std)


class PipelineDelayModel:
    """Analytical model of ``T_P = max_i SD_i`` from stage statistics.

    Parameters
    ----------
    stages:
        Per-stage Gaussian delay distributions.
    correlations:
        Optional ``(n, n)`` correlation matrix between stage delays.  Omit it
        (or pass the identity) for independent stages -- the
        random-intra-die-variation-only case.  A matrix of all ones models
        perfectly correlated stages -- the inter-die-variation-only case.
    ordering:
        Variable ordering used inside Clark's pairwise reduction; the default
        ``"increasing"`` (by mean) is what the paper uses to minimise the
        approximation error.
    """

    def __init__(
        self,
        stages: list[StageDelayDistribution],
        correlations: np.ndarray | None = None,
        ordering: str = "increasing",
    ) -> None:
        if not stages:
            raise ValueError("a pipeline needs at least one stage")
        self.stages = list(stages)
        n = len(stages)
        if correlations is None:
            correlations = np.eye(n)
        else:
            correlations = np.asarray(correlations, dtype=float)
            if correlations.shape != (n, n):
                raise ValueError(
                    f"correlation matrix must be {n}x{n}, got {correlations.shape}"
                )
        self.correlations = correlations
        self.ordering = ordering

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def with_uniform_correlation(
        cls,
        stages: list[StageDelayDistribution],
        correlation: float,
        ordering: str = "increasing",
    ) -> "PipelineDelayModel":
        """All stage pairs share the same correlation coefficient."""
        if not -1.0 <= correlation <= 1.0:
            raise ValueError(f"correlation must be in [-1, 1], got {correlation}")
        n = len(stages)
        matrix = np.full((n, n), correlation)
        np.fill_diagonal(matrix, 1.0)
        return cls(stages, matrix, ordering=ordering)

    # ------------------------------------------------------------------
    # Stage statistics
    # ------------------------------------------------------------------
    @property
    def means(self) -> np.ndarray:
        """Per-stage mean delays."""
        return np.array([stage.mean for stage in self.stages])

    @property
    def stds(self) -> np.ndarray:
        """Per-stage delay standard deviations."""
        return np.array([stage.std for stage in self.stages])

    @property
    def n_stages(self) -> int:
        """Number of pipeline stages."""
        return len(self.stages)

    def jensen_lower_bound(self) -> float:
        """Lower bound on E[T_P]: the largest stage mean (paper eq. 3)."""
        return float(self.means.max())

    # ------------------------------------------------------------------
    # Pipeline delay distribution
    # ------------------------------------------------------------------
    def estimate(self) -> PipelineDelayEstimate:
        """Estimate the pipeline delay distribution via Clark's method."""
        result = max_of_gaussians(
            self.means, self.stds, self.correlations, ordering=self.ordering
        )
        return PipelineDelayEstimate(
            mean=result.mean,
            std=result.std,
            jensen_lower_bound=self.jensen_lower_bound(),
            n_stages=self.n_stages,
        )

    def sample(self, n_samples: int, rng: np.random.Generator) -> np.ndarray:
        """Draw pipeline delay samples directly from the stage-level Gaussian model.

        This is the "golden" sampler for validating the Clark approximation in
        isolation (it samples the exact multivariate Gaussian stage delays and
        takes the true maximum, with no circuit model in the loop).
        """
        if n_samples < 1:
            raise ValueError(f"n_samples must be at least 1, got {n_samples}")
        means = self.means
        stds = self.stds
        covariance = self.correlations * np.outer(stds, stds)
        stage_samples = rng.multivariate_normal(means, covariance, size=n_samples)
        return stage_samples.max(axis=1)
