"""Per-stage delay distributions.

The paper abstracts each pipeline stage into a Gaussian delay
``SD_i ~ N(mu_i, sigma_i)`` where ``SD_i = T_C-Q + T_comb + T_setup``
(section 2.1).  :class:`StageDelayDistribution` is that abstraction; it is
the interface between the substrates that *characterise* stages (SPICE-style
Monte-Carlo in :mod:`repro.montecarlo` or analytical SSTA in
:mod:`repro.timing.ssta`) and the pipeline-level models that *consume*
stage statistics (:mod:`repro.core.pipeline_delay`,
:mod:`repro.core.yield_model`, the optimizers).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.stats import norm


@dataclass(frozen=True)
class StageDelayDistribution:
    """Gaussian model of one pipeline stage's delay.

    Attributes
    ----------
    mean:
        Mean stage delay in seconds.
    std:
        Standard deviation of the stage delay in seconds.
    name:
        Optional stage name used in reports.
    """

    mean: float
    std: float
    name: str = ""

    def __post_init__(self) -> None:
        if self.mean < 0.0:
            raise ValueError(f"stage delay mean must be non-negative, got {self.mean}")
        if self.std < 0.0:
            raise ValueError(f"stage delay std must be non-negative, got {self.std}")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_samples(cls, samples: np.ndarray, name: str = "") -> "StageDelayDistribution":
        """Fit a Gaussian stage delay to Monte-Carlo delay samples."""
        samples = np.asarray(samples, dtype=float)
        if samples.ndim != 1 or samples.size < 2:
            raise ValueError("need a 1-D array of at least two samples")
        return cls(mean=float(samples.mean()), std=float(samples.std(ddof=1)), name=name)

    @classmethod
    def from_canonical(cls, form, name: str = "") -> "StageDelayDistribution":
        """Build from an SSTA canonical form (anything with .mean and .sigma)."""
        return cls(mean=float(form.mean), std=float(form.sigma), name=name)

    # ------------------------------------------------------------------
    # Distribution queries
    # ------------------------------------------------------------------
    @property
    def variability(self) -> float:
        """The paper's variability metric sigma/mu (0 when the mean is 0)."""
        if self.mean == 0.0:
            return 0.0
        return self.std / self.mean

    def yield_at(self, target_delay: float) -> float:
        """Probability that this stage alone meets ``target_delay``."""
        if self.std == 0.0:
            return 1.0 if self.mean <= target_delay else 0.0
        return float(norm.cdf((target_delay - self.mean) / self.std))

    def delay_at_yield(self, target_yield: float) -> float:
        """Delay this stage meets with probability ``target_yield``."""
        if not 0.0 < target_yield < 1.0:
            raise ValueError(f"target_yield must be in (0, 1), got {target_yield}")
        return self.mean + self.std * float(norm.ppf(target_yield))

    def pdf(self, delay: np.ndarray | float) -> np.ndarray | float:
        """Gaussian probability density at the given delay value(s)."""
        if self.std == 0.0:
            raise ValueError("pdf undefined for a zero-variance stage delay")
        return norm.pdf(delay, loc=self.mean, scale=self.std)

    def scaled(self, mean_factor: float = 1.0, std_factor: float | None = None) -> "StageDelayDistribution":
        """Return a copy with mean (and optionally sigma) scaled.

        If ``std_factor`` is omitted the sigma scales with the mean, which is
        the first-order behaviour of resizing a stage uniformly.
        """
        if std_factor is None:
            std_factor = mean_factor
        return StageDelayDistribution(
            mean=self.mean * mean_factor, std=self.std * std_factor, name=self.name
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = f" {self.name!r}" if self.name else ""
        return (
            f"StageDelayDistribution({label} mean={self.mean * 1e12:.2f}ps, "
            f"std={self.std * 1e12:.2f}ps)"
        )
