"""Variability analyses of section 3.1 (Fig. 5).

The paper studies how the variability (sigma/mu) of stage and pipeline
delays responds to two design knobs -- the logic depth of a stage and the
number of pipeline stages -- under different mixes of random intra-die,
systematic intra-die and inter-die variation.  This module provides the
closed-form versions of those analyses; the Fig. 5 benchmark cross-checks
them against the Monte-Carlo engine.

The model of a stage used here is the paper's: a chain of ``N_L`` identical
gates whose delays share three variance components,

* ``sigma_random`` -- independent per gate (random dopant fluctuation),
* ``sigma_stage``  -- perfectly correlated among gates of the *same* stage
  but independent across stages (local systematic variation),
* ``sigma_die``    -- perfectly correlated across *all* stages (inter-die).

A chain of ``N_L`` such gates has

    mean     = N_L * mu_gate
    variance = N_L * sigma_random^2 + N_L^2 * (sigma_stage^2 + sigma_die^2)

and two distinct stages covary through the die component only,

    cov = N_L^2 * sigma_die^2 .

The independent part averages out with depth (the "cancellation effect"),
the correlated parts do not -- which is exactly the Fig. 5(a) behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.pipeline_delay import PipelineDelayModel
from repro.core.stage_delay import StageDelayDistribution


@dataclass(frozen=True)
class GateVariability:
    """Variance decomposition of a single gate delay (all values in seconds)."""

    mu: float
    sigma_random: float = 0.0
    sigma_stage: float = 0.0
    sigma_die: float = 0.0

    def __post_init__(self) -> None:
        if self.mu <= 0.0:
            raise ValueError(f"gate delay mean must be positive, got {self.mu}")
        for name in ("sigma_random", "sigma_stage", "sigma_die"):
            if getattr(self, name) < 0.0:
                raise ValueError(f"{name} must be non-negative")

    def stage_distribution(self, logic_depth: int, name: str = "") -> StageDelayDistribution:
        """Delay distribution of a chain of ``logic_depth`` such gates."""
        if logic_depth < 1:
            raise ValueError(f"logic_depth must be at least 1, got {logic_depth}")
        mean = logic_depth * self.mu
        variance = (
            logic_depth * self.sigma_random**2
            + logic_depth**2 * (self.sigma_stage**2 + self.sigma_die**2)
        )
        return StageDelayDistribution(mean=mean, std=variance**0.5, name=name)

    def stage_correlation(self, logic_depth: int) -> float:
        """Correlation between the delays of two identical stages."""
        stage = self.stage_distribution(logic_depth)
        if stage.std == 0.0:
            return 0.0
        covariance = logic_depth**2 * self.sigma_die**2
        return float(np.clip(covariance / stage.std**2, 0.0, 1.0))


def stage_variability_vs_logic_depth(
    gate: GateVariability, logic_depths: list[int] | np.ndarray
) -> np.ndarray:
    """sigma/mu of a stage as a function of its logic depth (Fig. 5(a))."""
    values = []
    for depth in logic_depths:
        stage = gate.stage_distribution(int(depth))
        values.append(stage.variability)
    return np.array(values)


def pipeline_variability_vs_stages(
    stage: StageDelayDistribution,
    stage_counts: list[int] | np.ndarray,
    correlation: float = 0.0,
) -> np.ndarray:
    """sigma/mu of the pipeline delay vs. the number of stages (Fig. 5(b)).

    All stages are identical copies of ``stage`` with a uniform pairwise
    ``correlation``.
    """
    if not 0.0 <= correlation <= 1.0:
        raise ValueError(f"correlation must be in [0, 1], got {correlation}")
    values = []
    for count in stage_counts:
        count = int(count)
        if count < 1:
            raise ValueError(f"stage counts must be at least 1, got {count}")
        stages = [
            StageDelayDistribution(stage.mean, stage.std, name=f"s{i}")
            for i in range(count)
        ]
        model = PipelineDelayModel.with_uniform_correlation(stages, correlation)
        values.append(model.estimate().variability)
    return np.array(values)


def pipeline_variability_fixed_total_depth(
    gate: GateVariability,
    total_depth: int,
    stage_counts: list[int] | np.ndarray,
) -> np.ndarray:
    """Pipeline sigma/mu with ``N_S * N_L`` held constant (Fig. 5(c)).

    For each stage count the logic depth is ``total_depth / N_S``; the
    per-stage statistics and the cross-stage correlation both follow from the
    gate-level variance decomposition, so sweeping the inter-die strength in
    ``gate.sigma_die`` reproduces the crossover the paper reports: with only
    intra-die variation deeper pipelines (more, shallower stages) are *more*
    variable, while with dominant inter-die variation they are less.
    """
    if total_depth < 1:
        raise ValueError(f"total_depth must be at least 1, got {total_depth}")
    values = []
    for count in stage_counts:
        count = int(count)
        if count < 1 or total_depth % count != 0:
            raise ValueError(
                f"stage count {count} does not divide the total depth {total_depth}"
            )
        logic_depth = total_depth // count
        stage = gate.stage_distribution(logic_depth)
        correlation = gate.stage_correlation(logic_depth)
        stages = [
            StageDelayDistribution(stage.mean, stage.std, name=f"s{i}")
            for i in range(count)
        ]
        model = PipelineDelayModel.with_uniform_correlation(stages, correlation)
        values.append(model.estimate().variability)
    return np.array(values)


def normalized_series(values: np.ndarray) -> np.ndarray:
    """Normalise a series to its first element (the paper plots most series this way)."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError("cannot normalise an empty series")
    if values[0] == 0.0:
        raise ValueError("cannot normalise a series whose first element is zero")
    return values / values[0]
