"""Yield estimation for a pipelined design (paper section 2.3).

Yield is the probability that the pipeline meets a target delay,

    P_D = Pr{ T_P <= T_TARGET } = Pr{ max_i SD_i <= T_TARGET }   (eq. 2/7).

Three estimators are provided:

* :func:`yield_independent` -- the exact product form for independent
  Gaussian stage delays (eq. 8),
* :func:`yield_correlated` -- the Gaussian approximation of the pipeline
  delay for correlated stages (eq. 9), using the Clark-estimated mu_T and
  sigma_T,
* :func:`yield_from_samples` -- the empirical yield of Monte-Carlo samples,
  used as ground truth throughout the benchmarks.

:func:`target_delay_for_yield` inverts the correlated estimator to answer
"what clock period can this pipeline run at with yield Y?".
"""

from __future__ import annotations

import numpy as np
from scipy.stats import norm

from repro.core.pipeline_delay import PipelineDelayModel
from repro.core.stage_delay import StageDelayDistribution


def yield_independent(
    stages: list[StageDelayDistribution], target_delay: float
) -> float:
    """Exact yield for independent Gaussian stage delays (paper eq. 8).

    ``P_D = prod_i Phi((T_TARGET - mu_i) / sigma_i)``.
    """
    if not stages:
        raise ValueError("need at least one stage")
    if target_delay < 0.0:
        raise ValueError(f"target_delay must be non-negative, got {target_delay}")
    log_probability = 0.0
    for stage in stages:
        if stage.std == 0.0:
            if stage.mean > target_delay:
                return 0.0
            continue
        z = (target_delay - stage.mean) / stage.std
        probability = float(norm.cdf(z))
        if probability <= 0.0:
            return 0.0
        log_probability += np.log(probability)
    return float(np.exp(log_probability))


def yield_correlated(
    stages: list[StageDelayDistribution],
    target_delay: float,
    correlations: np.ndarray | None = None,
    ordering: str = "increasing",
) -> float:
    """Yield for (possibly) correlated stages via the Gaussian T_P approximation.

    The pipeline delay mean and sigma are estimated with Clark's method
    (section 2.2) and the yield is ``Phi((T_TARGET - mu_T) / sigma_T)``
    (paper eq. 9).
    """
    model = PipelineDelayModel(stages, correlations, ordering=ordering)
    return model.estimate().yield_at(target_delay)


def yield_from_samples(samples: np.ndarray, target_delay: float) -> float:
    """Empirical yield: fraction of delay samples at or below the target."""
    samples = np.asarray(samples, dtype=float)
    if samples.ndim != 1 or samples.size == 0:
        raise ValueError("need a non-empty 1-D array of delay samples")
    return float((samples <= target_delay).mean())


def target_delay_for_yield(
    stages: list[StageDelayDistribution],
    target_yield: float,
    correlations: np.ndarray | None = None,
) -> float:
    """Clock period at which the pipeline achieves ``target_yield``.

    Uses the Gaussian approximation of the pipeline delay, i.e. the inverse
    of :func:`yield_correlated`.
    """
    if not 0.0 < target_yield < 1.0:
        raise ValueError(f"target_yield must be in (0, 1), got {target_yield}")
    model = PipelineDelayModel(stages, correlations)
    return model.estimate().delay_at_yield(target_yield)


def stage_yield_budget(pipeline_yield: float, n_stages: int) -> float:
    """Per-stage yield target implied by a pipeline yield target.

    For independent, identically budgeted stages the pipeline yield is the
    product of the stage yields, so each stage must individually achieve
    ``pipeline_yield ** (1 / n_stages)``.  The paper uses this allocation
    (via eq. 12) when it optimises stages independently, e.g. the 0.80**(1/3)
    = 0.9283 per-stage target of the Fig. 7 experiment.
    """
    if not 0.0 < pipeline_yield < 1.0:
        raise ValueError(f"pipeline_yield must be in (0, 1), got {pipeline_yield}")
    if n_stages < 1:
        raise ValueError(f"n_stages must be at least 1, got {n_stages}")
    return float(pipeline_yield ** (1.0 / n_stages))
