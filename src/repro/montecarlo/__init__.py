"""Monte-Carlo delay simulation: the SPICE Monte-Carlo stand-in.

The paper verifies its analytical models against HSPICE Monte-Carlo runs.
This subpackage provides the equivalent reference: sample per-device process
parameters under a :class:`~repro.process.variation.VariationModel`, turn
them into gate delays with the alpha-power-law delay model, propagate
arrival times through each stage netlist (vectorised across samples) and
reduce to per-stage and pipeline delay samples.

* :mod:`repro.montecarlo.engine` -- :class:`MonteCarloEngine` with
  ``run_stage`` and ``run_pipeline``.
* :mod:`repro.montecarlo.results` -- result containers exposing means,
  sigmas, yields, histograms, percentiles, cross-stage correlations and
  conversion to :class:`~repro.core.stage_delay.StageDelayDistribution`.
"""

from repro.montecarlo.engine import MonteCarloEngine
from repro.montecarlo.results import MonteCarloResult, PipelineMonteCarloResult

__all__ = [
    "MonteCarloEngine",
    "MonteCarloResult",
    "PipelineMonteCarloResult",
]
