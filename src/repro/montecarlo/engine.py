"""Monte-Carlo delay engine (the HSPICE Monte-Carlo stand-in).

For every Monte-Carlo sample (die realisation) the engine:

1. draws one inter-die deviation shared by every device on the die,
2. draws one spatially correlated systematic field over the die and reads it
   at each device's placement point,
3. draws independent random (RDF) deviations per device, scaled by
   ``1 / sqrt(size)``,
4. converts the resulting per-device threshold voltages and channel lengths
   into gate delays with the alpha-power-law model,
5. propagates arrival times through each stage's netlist (vectorised over
   samples) to obtain the combinational delay, and adds the stage's
   register overhead sampled from its own device,
6. records per-stage delay samples; the pipeline delay of each sample is the
   maximum over stages.

Because the inter-die deviation and the systematic field are shared by all
stages within one sample, stage delays come out correlated exactly the way
the paper describes: perfectly correlated under inter-die-only variation,
independent under random-intra-only variation, partially correlated in the
combined case.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.flipflop import FlipFlopTiming
from repro.circuit.netlist import Netlist
from repro.montecarlo.results import MonteCarloResult, PipelineMonteCarloResult
from repro.pipeline.pipeline import Pipeline
from repro.pipeline.stage import PipelineStage
from repro.process.sampling import ParameterSampler
from repro.process.technology import Technology, default_technology
from repro.process.variation import VariationModel
from repro.timing.delay_model import GateDelayModel
from repro.timing.kernels import KernelConfig, resolve_config
from repro.timing.sta import max_delay


class MonteCarloEngine:
    """Samples stage and pipeline delays under process variation.

    Parameters
    ----------
    technology:
        Technology node (defaults to the synthetic 70 nm node).
    variation:
        Variation model to sample from.
    n_samples:
        Number of Monte-Carlo samples per run.
    seed:
        Seed of the engine's random generator: an integer or a
        ``numpy.random.SeedSequence`` (e.g. a child spawned for one sweep
        point); runs are reproducible for a fixed seed and input design.
    grid_size:
        Resolution of the spatial-correlation grid.
    chunk_size:
        When set, samples are drawn and propagated in blocks of at most this
        many die realisations, so peak memory is ``O(chunk_size * n_devices)``
        instead of ``O(n_samples * n_devices)`` and million-sample runs fit
        in memory.  ``None`` (the default) processes all samples in one
        block.  Chunked and unchunked runs consume the random stream in a
        different order, so their individual samples differ for a fixed seed
        (the distributions are identical); a chunked run is reproducible for
        a fixed ``(seed, chunk_size)``.
    kernel:
        Propagation kernel tier for the sampled forward pass: a
        :class:`~repro.timing.kernels.KernelConfig`, a kernel name
        (``"auto"``/``"vectorized"``/``"threaded"``) or ``None`` for the
        environment default.  Kernel choice never changes results (the
        threaded tier is bit-identical), only how they are computed.
    """

    def __init__(
        self,
        variation: VariationModel,
        technology: Technology | None = None,
        n_samples: int = 2000,
        seed: int | np.random.SeedSequence = 2005,
        grid_size: int = 8,
        chunk_size: int | None = None,
        kernel: KernelConfig | str | None = None,
    ) -> None:
        if n_samples < 2:
            raise ValueError(f"n_samples must be at least 2, got {n_samples}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be at least 1, got {chunk_size}")
        self.technology = technology if technology is not None else default_technology()
        self.variation = variation
        self.n_samples = int(n_samples)
        self.seed = (
            seed if isinstance(seed, np.random.SeedSequence) else int(seed)
        )
        self.grid_size = int(grid_size)
        self.chunk_size = int(chunk_size) if chunk_size is not None else None
        self.kernel_config = resolve_config(kernel)
        self.delay_model = GateDelayModel(self.technology)
        self.sampler = ParameterSampler(self.technology, variation, grid_size=grid_size)

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _rng(self) -> np.random.Generator:
        return np.random.default_rng(self.seed)

    def _chunk_counts(self) -> list[int]:
        """Sample-block sizes for one run (one entry when unchunked)."""
        if self.chunk_size is None or self.chunk_size >= self.n_samples:
            return [self.n_samples]
        full, rest = divmod(self.n_samples, self.chunk_size)
        return [self.chunk_size] * full + ([rest] if rest else [])

    def _stage_device_arrays(
        self, stage: PipelineStage
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sizes and placement of a stage's devices (gates plus one register).

        The register is modelled as one extra device located at the stage's
        output-register position; its parameter sample drives the sequential
        overhead.
        """
        netlist = stage.netlist
        sizes = netlist.sizes()
        xs, ys = netlist.positions()
        reg_x, reg_y = stage.register_position
        sizes = np.concatenate([sizes, [stage.flipflop.size]])
        xs = np.concatenate([xs, [reg_x]])
        ys = np.concatenate([ys, [reg_y]])
        return sizes, xs, ys

    def _stage_delay_from_samples(
        self,
        stage: PipelineStage,
        vth: np.ndarray,
        length: np.ndarray,
        workspace: np.ndarray | None = None,
    ) -> np.ndarray:
        """Stage delay samples given this stage's device parameter samples.

        ``vth``/``length`` have one column per device: the stage's gates in
        topological order followed by the register device.  ``workspace`` is
        an optional ``(n_chunk_samples, n_gates)`` arrival buffer reused
        across sample chunks.
        """
        netlist = stage.netlist
        n_gates = netlist.n_gates
        gate_vth = vth[:, :n_gates]
        gate_length = length[:, :n_gates]
        register_vth = vth[:, n_gates]
        register_length = length[:, n_gates]

        if n_gates > 0:
            delays = self.delay_model.delay_samples(netlist, gate_vth, gate_length)
            if workspace is not None:
                workspace = workspace[: delays.shape[0]]
            comb = np.asarray(
                max_delay(netlist, delays, out=workspace, kernel=self.kernel_config)
            )
        else:
            comb = np.zeros(vth.shape[0])
        overhead = stage.flipflop.overhead_samples(
            self.technology, register_vth, register_length
        )
        return comb + overhead

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run_stage(self, stage: PipelineStage) -> MonteCarloResult:
        """Monte-Carlo delay distribution of a single stage."""
        rng = self._rng()
        sizes, xs, ys = self._stage_device_arrays(stage)
        delays = np.empty(self.n_samples)
        chunks = self._chunk_counts()
        workspace = (
            np.empty((chunks[0], stage.netlist.n_gates))
            if stage.netlist.n_gates > 0
            else None
        )
        offset = 0
        for count in chunks:
            samples = self.sampler.sample(sizes, xs, ys, count, rng)
            delays[offset : offset + count] = self._stage_delay_from_samples(
                stage, samples.vth, samples.length, workspace
            )
            offset += count
        return MonteCarloResult(delays, name=stage.name)

    def run_netlist(
        self, netlist: Netlist, flipflop: FlipFlopTiming | None = None
    ) -> MonteCarloResult:
        """Monte-Carlo delay distribution of a bare netlist.

        Convenience wrapper that wraps the netlist in a temporary stage; pass
        ``flipflop=None`` for a purely combinational distribution by using a
        zero-overhead register model.
        """
        if flipflop is None:
            flipflop = FlipFlopTiming(clk_to_q_stages=0.0, setup_stages=0.0)
        stage = PipelineStage(name=netlist.name, netlist=netlist, flipflop=flipflop)
        return self.run_stage(stage)

    def run_pipeline(self, pipeline: Pipeline) -> PipelineMonteCarloResult:
        """Monte-Carlo delay distribution of a full pipeline.

        All stages share each sample's inter-die deviation and systematic
        field, so the measured cross-stage correlations reflect the variation
        model (and the stages' physical placement) rather than being imposed.
        """
        rng = self._rng()
        per_stage_device_counts: list[int] = []
        all_sizes: list[np.ndarray] = []
        all_x: list[np.ndarray] = []
        all_y: list[np.ndarray] = []
        for stage in pipeline.stages:
            sizes, xs, ys = self._stage_device_arrays(stage)
            per_stage_device_counts.append(sizes.shape[0])
            all_sizes.append(sizes)
            all_x.append(xs)
            all_y.append(ys)

        sizes = np.concatenate(all_sizes)
        xs = np.concatenate(all_x)
        ys = np.concatenate(all_y)

        stage_delays = np.zeros((self.n_samples, pipeline.n_stages))
        chunks = self._chunk_counts()
        workspaces = [
            np.empty((chunks[0], stage.netlist.n_gates))
            if stage.netlist.n_gates > 0
            else None
            for stage in pipeline.stages
        ]
        sample_offset = 0
        for count in chunks:
            samples = self.sampler.sample(sizes, xs, ys, count, rng)
            device_offset = 0
            for index, stage in enumerate(pipeline.stages):
                n_devices = per_stage_device_counts[index]
                vth = samples.vth[:, device_offset : device_offset + n_devices]
                length = samples.length[:, device_offset : device_offset + n_devices]
                stage_delays[
                    sample_offset : sample_offset + count, index
                ] = self._stage_delay_from_samples(
                    stage, vth, length, workspaces[index]
                )
                device_offset += n_devices
            sample_offset += count

        return PipelineMonteCarloResult(
            stage_samples=stage_delays,
            stage_names=tuple(pipeline.stage_names),
        )
