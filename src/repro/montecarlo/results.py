"""Containers for Monte-Carlo delay results.

:class:`MonteCarloResult` wraps a 1-D array of delay samples (one stage, or
the whole pipeline) and exposes the statistics the paper reports: mean,
standard deviation, sigma/mu variability, yield at a target delay,
percentiles and histograms.  :class:`PipelineMonteCarloResult` additionally
keeps the per-stage sample matrix so cross-stage correlations -- the input
the correlated pipeline model needs -- can be measured directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.stage_delay import StageDelayDistribution


@dataclass(frozen=True)
class MonteCarloResult:
    """Statistics of a set of Monte-Carlo delay samples."""

    samples: np.ndarray
    name: str = ""

    def __post_init__(self) -> None:
        samples = np.asarray(self.samples, dtype=float)
        if samples.ndim != 1 or samples.size < 2:
            raise ValueError("need a 1-D array of at least two delay samples")
        object.__setattr__(self, "samples", samples)

    @property
    def n_samples(self) -> int:
        """Number of Monte-Carlo samples."""
        return self.samples.size

    @property
    def mean(self) -> float:
        """Sample mean delay in seconds."""
        return float(self.samples.mean())

    @property
    def std(self) -> float:
        """Sample standard deviation (ddof=1) in seconds."""
        return float(self.samples.std(ddof=1))

    @property
    def variability(self) -> float:
        """The paper's sigma/mu variability metric."""
        mean = self.mean
        return self.std / mean if mean > 0.0 else 0.0

    def yield_at(self, target_delay: float) -> float:
        """Fraction of samples meeting the target delay."""
        return float((self.samples <= target_delay).mean())

    def percentile(self, q: float | np.ndarray) -> float | np.ndarray:
        """Delay percentile(s) in seconds."""
        return np.percentile(self.samples, q)

    def delay_at_yield(self, target_yield: float) -> float:
        """Empirical clock period achieving the requested yield."""
        if not 0.0 < target_yield < 1.0:
            raise ValueError(f"target_yield must be in (0, 1), got {target_yield}")
        return float(np.quantile(self.samples, target_yield))

    def histogram(self, bins: int = 40) -> tuple[np.ndarray, np.ndarray]:
        """Histogram counts and bin edges (seconds)."""
        return np.histogram(self.samples, bins=bins)

    def to_distribution(self) -> StageDelayDistribution:
        """Fit a Gaussian :class:`StageDelayDistribution` to the samples."""
        return StageDelayDistribution.from_samples(self.samples, name=self.name)

    def summary(self) -> dict[str, float]:
        """Dictionary summary used by the benchmark reports (times in ps)."""
        return {
            "mean_ps": self.mean * 1e12,
            "std_ps": self.std * 1e12,
            "variability": self.variability,
            "p99_ps": float(self.percentile(99.0)) * 1e12,
        }


@dataclass(frozen=True)
class PipelineMonteCarloResult:
    """Monte-Carlo results for a full pipeline.

    Attributes
    ----------
    stage_samples:
        Per-sample stage delays, shape ``(n_samples, n_stages)``.
    stage_names:
        Stage names in column order.
    """

    stage_samples: np.ndarray
    stage_names: tuple[str, ...]

    def __post_init__(self) -> None:
        samples = np.asarray(self.stage_samples, dtype=float)
        if samples.ndim != 2 or samples.shape[0] < 2:
            raise ValueError(
                "stage_samples must be 2-D with at least two samples, got "
                f"shape {samples.shape}"
            )
        if samples.shape[1] != len(self.stage_names):
            raise ValueError(
                f"{samples.shape[1]} stage columns but {len(self.stage_names)} names"
            )
        object.__setattr__(self, "stage_samples", samples)
        object.__setattr__(self, "stage_names", tuple(self.stage_names))

    # ------------------------------------------------------------------
    # Shapes
    # ------------------------------------------------------------------
    @property
    def n_samples(self) -> int:
        """Number of Monte-Carlo samples."""
        return self.stage_samples.shape[0]

    @property
    def n_stages(self) -> int:
        """Number of pipeline stages."""
        return self.stage_samples.shape[1]

    # ------------------------------------------------------------------
    # Pipeline-level view
    # ------------------------------------------------------------------
    @property
    def pipeline_samples(self) -> np.ndarray:
        """Pipeline delay samples: the per-sample maximum over stages."""
        return self.stage_samples.max(axis=1)

    def pipeline_result(self, name: str = "pipeline") -> MonteCarloResult:
        """Pipeline delay statistics as a :class:`MonteCarloResult`."""
        return MonteCarloResult(self.pipeline_samples, name=name)

    def yield_at(self, target_delay: float) -> float:
        """Pipeline yield at the target delay."""
        return self.pipeline_result().yield_at(target_delay)

    # ------------------------------------------------------------------
    # Stage-level view
    # ------------------------------------------------------------------
    def stage_result(self, index_or_name: int | str) -> MonteCarloResult:
        """Statistics of a single stage's delay."""
        index = self._stage_index(index_or_name)
        return MonteCarloResult(
            self.stage_samples[:, index], name=self.stage_names[index]
        )

    def _stage_index(self, index_or_name: int | str) -> int:
        if isinstance(index_or_name, str):
            try:
                return self.stage_names.index(index_or_name)
            except ValueError:
                raise KeyError(
                    f"no stage named {index_or_name!r}; stages: {self.stage_names}"
                ) from None
        index = int(index_or_name)
        if not 0 <= index < self.n_stages:
            raise IndexError(f"stage index {index} out of range [0, {self.n_stages})")
        return index

    def stage_distributions(self) -> list[StageDelayDistribution]:
        """Fit a Gaussian stage-delay distribution to every stage.

        This is exactly what the paper does with its SPICE results: "the
        simulated mu_i and sigma_i values for each stage are then fed into
        the proposed model".
        """
        return [
            StageDelayDistribution.from_samples(
                self.stage_samples[:, index], name=name
            )
            for index, name in enumerate(self.stage_names)
        ]

    def stage_means(self) -> np.ndarray:
        """Per-stage mean delays."""
        return self.stage_samples.mean(axis=0)

    def stage_stds(self) -> np.ndarray:
        """Per-stage delay standard deviations (ddof=1)."""
        return self.stage_samples.std(axis=0, ddof=1)

    def correlation_matrix(self) -> np.ndarray:
        """Measured cross-stage delay correlation matrix."""
        if self.n_stages == 1:
            return np.ones((1, 1))
        matrix = np.corrcoef(self.stage_samples, rowvar=False)
        # corrcoef returns nan rows for zero-variance stages; treat those as
        # uncorrelated with everything (they never limit the max anyway).
        matrix = np.nan_to_num(matrix, nan=0.0)
        np.fill_diagonal(matrix, 1.0)
        return matrix

    def stage_yields(self, target_delay: float) -> np.ndarray:
        """Per-stage yields at the target delay."""
        return (self.stage_samples <= target_delay).mean(axis=0)
