"""Sizing and pipeline-optimization substrate.

The paper's design flow (section 4) rests on a statistical gate-sizing
primitive -- "minimise the area of one stage subject to a statistical delay
(yield) constraint", attributed to Choi et al. (DAC 2004) -- and composes it
into a global pipeline optimization (Fig. 9).  This subpackage provides:

* :mod:`repro.optimize.result` -- result containers shared by the sizers.
* :mod:`repro.optimize.sizers` -- the :class:`StageSizer` strategy protocol
  and the named sizer registry (``"lagrangian"``, ``"greedy"``) that the
  Design API (:mod:`repro.api.design`) resolves specs against.
* :mod:`repro.optimize.lagrangian` -- the primary sizer: an iterative
  Lagrangian-relaxation-style statistical gate sizer with a closed-form
  per-gate resize step and a criticality-driven multiplier update.
* :mod:`repro.optimize.greedy` -- a TILOS-like greedy statistical sizer used
  as a baseline / ablation.
* :mod:`repro.optimize.area_delay` -- per-stage area-vs-delay
  characterisation (Fig. 8) and the eq. 14 sensitivity ratio R_i.
* :mod:`repro.optimize.balance` -- the conventional balanced design flow:
  every stage sized independently for the same delay target and the
  per-stage yield budget Y**(1/N).
* :mod:`repro.optimize.redistribute` -- constant-area imbalance
  redistribution between stages (the Fig. 7 experiment).
* :mod:`repro.optimize.global_opt` -- the Fig. 9 global optimization
  algorithm: R_i-ordered, one-stage-at-a-time statistical sizing with
  full-pipeline statistical timing after every stage.
"""

from repro.optimize.result import SizingResult, StageDesignRecord
from repro.optimize.lagrangian import LagrangianSizer
from repro.optimize.greedy import GreedySizer
from repro.optimize.sizers import (
    StageSizer,
    available_sizers,
    get_sizer_factory,
    make_sizer,
    register_sizer,
)
from repro.optimize.area_delay import AreaDelayCurve, AreaDelayPoint, characterize_stage
from repro.optimize.balance import design_balanced_pipeline, BalancedDesignResult
from repro.optimize.redistribute import redistribute_area, RedistributionResult
from repro.optimize.global_opt import GlobalPipelineOptimizer, GlobalOptimizationResult

__all__ = [
    "SizingResult",
    "StageDesignRecord",
    "LagrangianSizer",
    "GreedySizer",
    "StageSizer",
    "available_sizers",
    "get_sizer_factory",
    "make_sizer",
    "register_sizer",
    "AreaDelayCurve",
    "AreaDelayPoint",
    "characterize_stage",
    "design_balanced_pipeline",
    "BalancedDesignResult",
    "redistribute_area",
    "RedistributionResult",
    "GlobalPipelineOptimizer",
    "GlobalOptimizationResult",
]
