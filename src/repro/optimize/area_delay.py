"""Per-stage area-vs-delay characterisation (Fig. 8) and the R_i sensitivity.

The paper's heuristic (eq. 14) and its global optimization flow (step 1.a of
Fig. 9: "compute area vs. delay plot for each stage") both consume the
stage-level trade-off curve between achievable delay and the area the sizer
needs to reach it.  :func:`characterize_stage` sweeps the sizer over a range
of delay targets and :class:`AreaDelayCurve` stores the resulting points,
interpolates between them and evaluates the eq. 14 sensitivity ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.imbalance import sensitivity_ratio
from repro.pipeline.stage import PipelineStage


@dataclass(frozen=True)
class AreaDelayPoint:
    """One point of a stage's area-vs-delay trade-off curve.

    ``delay`` is the delay the stage meets at the characterisation yield
    (i.e. ``mu + k * sigma``), not the mean delay, so that the curve speaks
    the same statistical language as the optimization constraints.
    """

    target_delay: float
    delay: float
    mean: float
    std: float
    area: float
    sizes: np.ndarray
    met_target: bool


@dataclass(frozen=True)
class AreaDelayCurve:
    """A stage's sampled area-vs-delay curve at a fixed yield."""

    stage_name: str
    target_yield: float
    points: tuple[AreaDelayPoint, ...]

    def __post_init__(self) -> None:
        if len(self.points) < 2:
            raise ValueError("an area-delay curve needs at least two points")
        # Keep only the Pareto frontier: walking from the fastest point to the
        # slowest, a point that does not reduce area relative to every faster
        # point is dominated (some sizing run got stuck in a worse local
        # solution) and would make the trade-off curve non-monotonic.
        ordered = sorted(self.points, key=lambda point: point.delay)
        frontier: list[AreaDelayPoint] = []
        smallest_area = np.inf
        for point in ordered:
            if point.area < smallest_area:
                frontier.append(point)
                smallest_area = point.area
        if len(frontier) < 2:
            # Degenerate sweep (e.g. a block whose area barely moves); fall
            # back to the raw ordered points so interpolation still works.
            frontier = ordered
        object.__setattr__(self, "points", tuple(frontier))

    # ------------------------------------------------------------------
    # Raw series
    # ------------------------------------------------------------------
    def delays(self) -> np.ndarray:
        """Achieved (yield-constrained) delays, ascending."""
        return np.array([point.delay for point in self.points])

    def areas(self) -> np.ndarray:
        """Areas corresponding to :meth:`delays`."""
        return np.array([point.area for point in self.points])

    @property
    def min_delay(self) -> float:
        """Fastest characterised delay."""
        return float(self.delays()[0])

    @property
    def max_delay(self) -> float:
        """Slowest characterised delay (the all-minimum-size stage)."""
        return float(self.delays()[-1])

    # ------------------------------------------------------------------
    # Interpolation
    # ------------------------------------------------------------------
    def area_for_delay(self, delay: float) -> float:
        """Area needed to reach a delay (linear interpolation, clamped)."""
        delays = self.delays()
        areas = self.areas()
        delay = float(np.clip(delay, delays[0], delays[-1]))
        return float(np.interp(delay, delays, areas))

    def delay_for_area(self, area: float) -> float:
        """Delay achievable with a given area budget (clamped)."""
        delays = self.delays()
        areas = self.areas()
        # Area decreases as delay increases; interpolate on the reversed axes.
        order = np.argsort(areas)
        area = float(np.clip(area, areas[order][0], areas[order][-1]))
        return float(np.interp(area, areas[order], delays[order]))

    def point_for_delay(self, delay: float) -> AreaDelayPoint:
        """The characterised point whose delay is closest to the request."""
        delays = self.delays()
        index = int(np.argmin(np.abs(delays - delay)))
        return self.points[index]

    # ------------------------------------------------------------------
    # Eq. 14 sensitivity
    # ------------------------------------------------------------------
    def sensitivity_ratio(self, at_delay: float | None = None) -> float:
        """The eq. 14 area-delay sensitivity R_i (elasticity form)."""
        return sensitivity_ratio(self.areas(), self.delays(), at_delay)


def characterize_stage(
    stage: PipelineStage,
    sizer,
    target_yield: float,
    n_points: int = 5,
    speedup_range: tuple[float, float] = (0.55, 1.0),
) -> AreaDelayCurve:
    """Sweep the sizer over delay targets to build the stage's trade-off curve.

    Parameters
    ----------
    stage:
        Stage to characterise (its netlist sizes are restored afterwards).
    sizer:
        Any sizer exposing ``size_stage(stage, target_delay, target_yield,
        apply=...)`` and ``minimum_area_delay(stage, target_yield)`` --
        :class:`~repro.optimize.lagrangian.LagrangianSizer` or
        :class:`~repro.optimize.greedy.GreedySizer`.
    target_yield:
        Stage yield at which every point's delay is evaluated.
    n_points:
        Number of delay targets to characterise (in addition to the
        all-minimum-size endpoint).
    speedup_range:
        Delay targets as fractions of the minimum-size stage delay; the lower
        end should be aggressive enough to exercise heavy upsizing.
    """
    if n_points < 1:
        raise ValueError(f"n_points must be at least 1, got {n_points}")
    low, high = speedup_range
    if not 0.0 < low < high <= 1.0:
        raise ValueError(f"speedup_range must satisfy 0 < low < high <= 1, got {speedup_range}")

    original_sizes = stage.netlist.sizes()
    try:
        max_delay, min_area = sizer.minimum_area_delay(stage, target_yield)
        points: list[AreaDelayPoint] = []

        # Endpoint: the all-minimum-size design.
        sizes_min = np.full(stage.netlist.n_gates, sizer.min_size)
        form = sizer.ssta.stage_delay(
            stage.netlist, stage.flipflop, stage.register_position, sizes=sizes_min
        )
        points.append(
            AreaDelayPoint(
                target_delay=max_delay,
                delay=max_delay,
                mean=form.mean,
                std=form.sigma,
                area=min_area,
                sizes=sizes_min,
                met_target=True,
            )
        )

        fractions = np.linspace(low, high, n_points, endpoint=False)
        for fraction in fractions:
            target = float(fraction * max_delay)
            result = sizer.size_stage(stage, target, target_yield, apply=False)
            achieved = result.stage_delay.delay_at_yield(target_yield)
            points.append(
                AreaDelayPoint(
                    target_delay=target,
                    delay=achieved,
                    mean=result.stage_delay.mean,
                    std=result.stage_delay.std,
                    area=result.area,
                    sizes=result.sizes,
                    met_target=result.met_target,
                )
            )
        return AreaDelayCurve(
            stage_name=stage.name, target_yield=target_yield, points=tuple(points)
        )
    finally:
        stage.netlist.set_sizes(original_sizes)
