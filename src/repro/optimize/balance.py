"""Conventional balanced pipeline design.

The baseline every experiment in the paper compares against: each stage is
optimised *independently* for the same delay target, with the pipeline yield
budget split equally across stages (eq. 12), i.e. a pipeline yield target of
``Y`` over ``N`` stages gives every stage an individual yield target of
``Y ** (1/N)``.  This is the "individually optimized" column of Tables II
and III and the "balanced" curve of Fig. 7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.core.stage_delay import StageDelayDistribution
from repro.core.yield_model import stage_yield_budget
from repro.optimize.result import SizingResult
from repro.pipeline.pipeline import Pipeline


@dataclass(frozen=True)
class BalancedDesignResult:
    """Outcome of the balanced (stage-independent) design flow.

    ``target_delay`` is the common stage target; when the flow was run with
    per-stage targets it is the loosest (largest) of them and
    ``stage_targets`` holds the individual values.
    """

    pipeline: Pipeline
    stage_results: dict[str, SizingResult]
    target_delay: float
    pipeline_yield_target: float
    stage_yield_target: float
    stage_targets: dict[str, float] | None = None

    @property
    def total_area(self) -> float:
        """Total pipeline area after sizing."""
        return self.pipeline.total_area()

    def stage_distributions(self) -> list[StageDelayDistribution]:
        """Per-stage delay distributions after sizing, in pipeline order."""
        return [
            self.stage_results[name].stage_delay for name in self.pipeline.stage_names
        ]

    def stage_areas(self) -> np.ndarray:
        """Per-stage total areas after sizing, in pipeline order."""
        return self.pipeline.stage_areas()

    def stage_yields(self) -> np.ndarray:
        """Per-stage achieved yields at the target delay, in pipeline order."""
        return np.array(
            [
                self.stage_results[name].achieved_yield
                for name in self.pipeline.stage_names
            ]
        )

    def predicted_pipeline_yield(self) -> float:
        """Pipeline yield assuming independent stages (product of stage yields)."""
        return float(np.prod(self.stage_yields()))


def design_balanced_pipeline(
    pipeline: Pipeline,
    sizer,
    target_delay: float | Mapping[str, float],
    pipeline_yield_target: float,
    stage_yield_target: float | None = None,
) -> BalancedDesignResult:
    """Size every stage independently for the same delay target.

    Parameters
    ----------
    pipeline:
        Pipeline to size; a copy is made, the input is left untouched.
    sizer:
        Any registered stage sizer (see :mod:`repro.optimize.sizers`).
    target_delay:
        Common stage delay target in seconds (the intended clock period), or
        a per-stage mapping ``{stage_name: target}`` for flows that speed up
        every stage relative to its own baseline.
    pipeline_yield_target:
        Desired pipeline yield; split equally over stages unless
        ``stage_yield_target`` is given explicitly.
    stage_yield_target:
        Optional explicit per-stage yield target (overrides the equal split).

    Returns
    -------
    BalancedDesignResult
        The sized pipeline copy plus per-stage sizing results.
    """
    if isinstance(target_delay, Mapping):
        stage_targets = {name: float(value) for name, value in target_delay.items()}
        missing = set(pipeline.stage_names) - set(stage_targets)
        if missing:
            raise KeyError(f"missing stage delay targets for: {sorted(missing)}")
    else:
        stage_targets = {name: float(target_delay) for name in pipeline.stage_names}
    if any(value <= 0.0 for value in stage_targets.values()):
        raise ValueError(f"target_delay must be positive, got {target_delay}")
    designed = pipeline.copy(f"{pipeline.name}_balanced")
    if stage_yield_target is None:
        stage_yield_target = stage_yield_budget(
            pipeline_yield_target, designed.n_stages
        )
    stage_results: dict[str, SizingResult] = {}
    for stage in designed.stages:
        stage_results[stage.name] = sizer.size_stage(
            stage, stage_targets[stage.name], stage_yield_target, apply=True
        )
    return BalancedDesignResult(
        pipeline=designed,
        stage_results=stage_results,
        target_delay=max(stage_targets.values()),
        pipeline_yield_target=pipeline_yield_target,
        stage_yield_target=stage_yield_target,
        stage_targets=stage_targets if isinstance(target_delay, Mapping) else None,
    )
