"""Global pipeline optimization under a yield constraint (paper Fig. 9).

The algorithm sizes one stage at a time while always evaluating the yield of
the *complete* pipeline:

1. Characterise each stage's area-vs-delay curve and its eq. 14 sensitivity
   ratio ``R_i`` (steps 1.a / 1.b of Fig. 9).
2. Order the stages by ``R_i`` -- stages whose delay is cheap to improve
   (low ``R_i``) are processed first when the goal is to ensure yield; this
   is the greedy-heuristic ordering of Fig. 9 (step 2).
3. For each stage in that order (steps 3-8): with every other stage held at
   its current sizing, find the *loosest* delay budget this stage can have
   such that the full-pipeline yield (computed with the statistical pipeline
   model of section 2, including SSTA-derived cross-stage correlations)
   still meets the target; translate the budget into a per-stage yield
   requirement and re-size the stage for minimum area with the statistical
   sizer.  Because the budget search uses the whole pipeline's statistics,
   slack stages automatically donate area and critical stages automatically
   receive speed -- the imbalance of section 3.2 emerges rather than being
   imposed.
4. Optionally repeat the pass (the paper's iterate-until-optimal loop); one
   to two passes are enough in practice.

The result records the per-stage areas and yields before and after, which is
exactly what Tables II and III report.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.stats import norm

from repro.core.pipeline_delay import PipelineDelayModel
from repro.core.stage_delay import StageDelayDistribution
from repro.optimize.area_delay import AreaDelayCurve, characterize_stage
from repro.optimize.result import SizingResult
from repro.pipeline.pipeline import Pipeline


def pipeline_stage_statistics(
    sizer, pipeline: Pipeline
) -> tuple[list[StageDelayDistribution], np.ndarray]:
    """Stage delay distributions and their correlation matrix (SSTA).

    The canonical "full-pipeline statistics at current sizes" computation,
    shared by the Fig. 9 optimizer below and the Design API's report
    assembly/snapshots (:mod:`repro.api.design`); ``sizer`` is any
    :class:`~repro.optimize.sizers.StageSizer` (its embedded SSTA engine is
    used).
    """
    forms = [
        sizer.ssta.stage_delay(
            stage.netlist, stage.flipflop, stage.register_position
        )
        for stage in pipeline.stages
    ]
    distributions = [
        StageDelayDistribution.from_canonical(form, name=stage.name)
        for form, stage in zip(forms, pipeline.stages)
    ]
    correlations = sizer.ssta.correlation_matrix(forms)
    return distributions, correlations


@dataclass(frozen=True)
class PipelineSnapshot:
    """Areas, per-stage yields and pipeline yield of a pipeline at one point."""

    stage_names: tuple[str, ...]
    stage_areas: np.ndarray
    stage_yields: np.ndarray
    total_area: float
    pipeline_yield: float


@dataclass(frozen=True)
class GlobalOptimizationResult:
    """Outcome of the Fig. 9 global optimization."""

    pipeline: Pipeline
    target_delay: float
    target_yield: float
    before: PipelineSnapshot
    after: PipelineSnapshot
    stage_order: tuple[str, ...]
    sensitivity_ratios: dict[str, float]
    sizing_results: dict[str, SizingResult]

    @property
    def yield_improvement(self) -> float:
        """Pipeline yield change in percentage points."""
        return (self.after.pipeline_yield - self.before.pipeline_yield) * 100.0

    @property
    def area_change_percent(self) -> float:
        """Total area change in percent of the starting area."""
        if self.before.total_area == 0.0:
            return 0.0
        return (
            100.0
            * (self.after.total_area - self.before.total_area)
            / self.before.total_area
        )


class GlobalPipelineOptimizer:
    """One-stage-at-a-time statistical pipeline optimizer (Fig. 9).

    Parameters
    ----------
    sizer:
        Stage sizer (Lagrangian or greedy); its embedded SSTA engine is also
        used for the full-pipeline statistical timing.
    curve_points:
        Number of points per stage in the area-vs-delay characterisation.
    rounds:
        Number of passes over the stages.
    ordering:
        ``"ri_ascending"`` (the paper's choice), ``"ri_descending"`` or
        ``"pipeline"`` (document order); exposed for the ordering ablation.
    max_stage_yield:
        Cap on the per-stage yield requirement passed to the sizer, so an
        unreachable pipeline target degrades gracefully into best effort.
    """

    def __init__(
        self,
        sizer,
        curve_points: int = 4,
        rounds: int = 1,
        ordering: str = "ri_ascending",
        max_stage_yield: float = 0.9995,
    ) -> None:
        if rounds < 1:
            raise ValueError(f"rounds must be at least 1, got {rounds}")
        if ordering not in {"ri_ascending", "ri_descending", "pipeline"}:
            raise ValueError(
                "ordering must be 'ri_ascending', 'ri_descending' or 'pipeline', "
                f"got {ordering!r}"
            )
        if not 0.5 < max_stage_yield < 1.0:
            raise ValueError(
                f"max_stage_yield must be in (0.5, 1), got {max_stage_yield}"
            )
        self.sizer = sizer
        self.curve_points = int(curve_points)
        self.rounds = int(rounds)
        self.ordering = ordering
        self.max_stage_yield = float(max_stage_yield)

    # ------------------------------------------------------------------
    # Full-pipeline statistical timing
    # ------------------------------------------------------------------
    def pipeline_statistics(
        self, pipeline: Pipeline
    ) -> tuple[list[StageDelayDistribution], np.ndarray]:
        """Stage delay distributions and their correlation matrix (SSTA)."""
        return pipeline_stage_statistics(self.sizer, pipeline)

    def pipeline_yield(self, pipeline: Pipeline, target_delay: float) -> float:
        """Full-pipeline yield at a target delay from the statistical model."""
        distributions, correlations = self.pipeline_statistics(pipeline)
        model = PipelineDelayModel(distributions, correlations)
        return model.estimate().yield_at(target_delay)

    def snapshot(self, pipeline: Pipeline, target_delay: float) -> PipelineSnapshot:
        """Record areas, stage yields and pipeline yield of the current design."""
        distributions, correlations = self.pipeline_statistics(pipeline)
        model = PipelineDelayModel(distributions, correlations)
        stage_yields = np.array(
            [distribution.yield_at(target_delay) for distribution in distributions]
        )
        return PipelineSnapshot(
            stage_names=tuple(pipeline.stage_names),
            stage_areas=pipeline.stage_areas(),
            stage_yields=stage_yields,
            total_area=pipeline.total_area(),
            pipeline_yield=model.estimate().yield_at(target_delay),
        )

    # ------------------------------------------------------------------
    # Stage budget search
    # ------------------------------------------------------------------
    def _required_stage_yield(
        self,
        distributions: list[StageDelayDistribution],
        correlations: np.ndarray,
        stage_index: int,
        target_delay: float,
        target_yield: float,
    ) -> float:
        """Loosest per-stage yield that still meets the pipeline yield target.

        The stage's distribution is modelled as scaling with its mean at a
        constant sigma/mu ratio (the first-order effect of resizing); a
        bisection over the mean finds the largest mean -- i.e. the loosest,
        smallest-area sizing -- for which the full-pipeline model still
        predicts the target yield.  The answer is returned as the stage yield
        ``Phi((T - mu) / sigma)`` the sizer must be asked for.
        """
        current = distributions[stage_index]
        ratio = current.variability if current.variability > 0.0 else 0.02

        def pipeline_yield_with_mean(mean: float) -> float:
            candidate = StageDelayDistribution(
                mean=mean, std=ratio * mean, name=current.name
            )
            trial = list(distributions)
            trial[stage_index] = candidate
            model = PipelineDelayModel(trial, correlations)
            return model.estimate().yield_at(target_delay)

        mean_low = 0.30 * target_delay
        mean_high = 1.20 * target_delay
        if pipeline_yield_with_mean(mean_low) < target_yield:
            # Even an extremely fast stage cannot rescue the pipeline (other
            # stages dominate the failures): ask for the best this stage can
            # reasonably deliver.
            return self.max_stage_yield
        if pipeline_yield_with_mean(mean_high) >= target_yield:
            mean_best = mean_high
        else:
            low, high = mean_low, mean_high
            for _ in range(40):
                middle = 0.5 * (low + high)
                if pipeline_yield_with_mean(middle) >= target_yield:
                    low = middle
                else:
                    high = middle
            mean_best = low
        sigma_best = ratio * mean_best
        if sigma_best <= 0.0:
            return self.max_stage_yield
        stage_yield = float(norm.cdf((target_delay - mean_best) / sigma_best))
        return float(np.clip(stage_yield, 1e-4, self.max_stage_yield))

    # ------------------------------------------------------------------
    # Main entry point
    # ------------------------------------------------------------------
    def optimize(
        self,
        pipeline: Pipeline,
        target_delay: float,
        target_yield: float,
        curves: dict[str, AreaDelayCurve] | None = None,
        stage_yield_for_curves: float | None = None,
    ) -> GlobalOptimizationResult:
        """Run the Fig. 9 flow on a copy of ``pipeline``.

        Parameters
        ----------
        pipeline:
            Starting design (typically the balanced design); left untouched.
        target_delay:
            Pipeline delay target ``T_TARGET`` in seconds.
        target_yield:
            Pipeline yield target ``Y``.
        curves:
            Pre-computed area-vs-delay curves keyed by stage name; computed
            here (step 1.a) if omitted.
        stage_yield_for_curves:
            Yield at which curves are characterised when computed here;
            defaults to the equal-split budget ``Y ** (1/N)``.
        """
        if target_delay <= 0.0:
            raise ValueError(f"target_delay must be positive, got {target_delay}")
        if not 0.0 < target_yield < 1.0:
            raise ValueError(f"target_yield must be in (0, 1), got {target_yield}")

        designed = pipeline.copy(f"{pipeline.name}_globalopt")
        before = self.snapshot(designed, target_delay)

        if stage_yield_for_curves is None:
            stage_yield_for_curves = target_yield ** (1.0 / designed.n_stages)
        if curves is None:
            curves = {
                stage.name: characterize_stage(
                    stage,
                    self.sizer,
                    stage_yield_for_curves,
                    n_points=self.curve_points,
                )
                for stage in designed.stages
            }

        ratios = {
            name: curves[name].sensitivity_ratio() for name in designed.stage_names
        }
        if self.ordering == "pipeline":
            order = list(designed.stage_names)
        else:
            reverse = self.ordering == "ri_descending"
            order = sorted(ratios, key=lambda name: ratios[name], reverse=reverse)

        sizing_results: dict[str, SizingResult] = {}
        for _ in range(self.rounds):
            for stage_name in order:
                stage_index = designed.stage_names.index(stage_name)
                distributions, correlations = self.pipeline_statistics(designed)
                required = self._required_stage_yield(
                    distributions,
                    correlations,
                    stage_index,
                    target_delay,
                    target_yield,
                )
                stage = designed.stages[stage_index]
                sizing_results[stage_name] = self.sizer.size_stage(
                    stage, target_delay, required, apply=True
                )

        after = self.snapshot(designed, target_delay)
        return GlobalOptimizationResult(
            pipeline=designed,
            target_delay=target_delay,
            target_yield=target_yield,
            before=before,
            after=after,
            stage_order=tuple(order),
            sensitivity_ratios=ratios,
            sizing_results=sizing_results,
        )
