"""TILOS-like greedy statistical sizer (baseline / ablation).

The greedy sizer is the classical alternative to Lagrangian relaxation:
starting from the all-minimum-size design, repeatedly upsize the single gate
on the statistically critical path that buys the most delay per unit of
added area, until the statistical delay target is met (or no further
improvement is possible).  It is used as a baseline for the sizer ablation
benchmark and as a fast sizer for small blocks in the tests.

The statistical target handling mirrors :class:`~repro.optimize.lagrangian.LagrangianSizer`:
the yield constraint is converted to a deterministic combinational budget
``T_TARGET - mean(overhead) - k * sigma_stage`` and the sigma estimate is
refreshed with SSTA every ``sigma_refresh`` accepted moves.
"""

from __future__ import annotations

import time

import numpy as np
from scipy.stats import norm

from repro.circuit.schedule import expand_csr_rows
from repro.core.stage_delay import StageDelayDistribution
from repro.optimize.result import SizingResult
from repro.pipeline.stage import PipelineStage
from repro.process.technology import Technology
from repro.process.variation import VariationModel
from repro.timing.delay_model import GateDelayModel
from repro.timing.incremental import SizingState
from repro.timing.sta import arrival_times, critical_path
from repro.timing.ssta import StatisticalTimingAnalyzer


class GreedySizer:
    """Greedy (TILOS-style) statistical gate sizer for one stage.

    ``incremental`` (default on) routes every arrival / critical-path /
    load evaluation in the move loop through
    :class:`~repro.timing.incremental.SizingState`, so each accepted move
    re-propagates only its fanout cone instead of the whole DAG.  The
    incremental state is bit-identical to full recomputation, so both
    settings produce the same :class:`SizingResult` -- ``incremental=False``
    survives as the honest baseline for the perf benchmarks.
    """

    def __init__(
        self,
        technology: Technology,
        variation: VariationModel,
        min_size: float = 1.0,
        max_size: float = 16.0,
        size_step: float = 1.3,
        max_moves: int = 4000,
        sigma_refresh: int = 50,
        grid_size: int = 8,
        incremental: bool = True,
    ) -> None:
        if min_size <= 0.0 or max_size < min_size:
            raise ValueError(
                f"need 0 < min_size <= max_size, got {min_size}, {max_size}"
            )
        if size_step <= 1.0:
            raise ValueError(f"size_step must exceed 1, got {size_step}")
        self.technology = technology
        self.variation = variation
        self.min_size = float(min_size)
        self.max_size = float(max_size)
        self.size_step = float(size_step)
        self.max_moves = int(max_moves)
        self.sigma_refresh = int(max(1, sigma_refresh))
        self.incremental = bool(incremental)
        self.delay_model = GateDelayModel(technology)
        self.ssta = StatisticalTimingAnalyzer(technology, variation, grid_size=grid_size)

    def _stage_form(self, stage: PipelineStage, sizes: np.ndarray):
        return self.ssta.stage_delay(
            stage.netlist, stage.flipflop, stage.register_position, sizes=sizes
        )

    def size_stage(
        self,
        stage: PipelineStage,
        target_delay: float,
        target_yield: float,
        apply: bool = True,
    ) -> SizingResult:
        """Size one stage greedily for the statistical delay target."""
        if target_delay <= 0.0:
            raise ValueError(f"target_delay must be positive, got {target_delay}")
        if not 0.0 < target_yield < 1.0:
            raise ValueError(f"target_yield must be in (0, 1), got {target_yield}")

        start_time = time.perf_counter()
        netlist = stage.netlist
        n_gates = netlist.n_gates
        if n_gates == 0:
            raise ValueError(f"stage {stage.name!r} has no gates to size")
        tech = self.technology
        coeffs = netlist.cell_coefficients()
        area_coeff = coeffs["area_factor"] * tech.area_unit
        input_cap_unit = coeffs["logical_effort"] * tech.c_unit
        index_of = netlist.gate_index()
        # The compiled schedule is cached across the whole sizing run: size
        # moves do not touch netlist structure, so every arrival/critical-path
        # evaluation below reuses the same CSR arrays.
        schedule = netlist.timing_schedule()
        output_mask = netlist.output_mask()
        if not output_mask.any():
            output_mask = np.ones(n_gates, dtype=bool)
        k_yield = float(norm.ppf(target_yield))

        sizes = np.full(n_gates, self.min_size)
        # The incremental state owns the size vector: moves are applied
        # through state.resize so loads/delays/arrivals stay in sync.
        state = SizingState(netlist, tech, sizes) if self.incremental else None
        if state is not None:
            sizes = state.sizes

        def statistical_budget(current_sizes: np.ndarray) -> float:
            """Deterministic arrival budget implied by the statistical target
            (see :class:`~repro.optimize.lagrangian.LagrangianSizer`)."""
            form = self._stage_form(stage, current_sizes)
            if state is not None:
                worst = state.worst_arrival()
            else:
                nominal = self.delay_model.nominal_delays(netlist, current_sizes)
                arrivals = arrival_times(netlist, nominal)
                worst = float(arrivals[output_mask].max())
            statistical_delay = form.mean + k_yield * form.sigma
            guard = 0.004 * target_delay
            value = worst + (target_delay - statistical_delay) - guard
            return value if value > 0.0 else 0.05 * target_delay

        budget = statistical_budget(sizes)

        moves = 0
        while moves < self.max_moves:
            if state is not None:
                worst_arrival = state.worst_arrival()
            else:
                nominal = self.delay_model.nominal_delays(netlist, sizes)
                arrivals = arrival_times(netlist, nominal)
                worst_arrival = float(arrivals[output_mask].max())
            if worst_arrival <= budget:
                break

            if state is not None:
                path_positions = np.array(
                    state.critical_path_positions(), dtype=np.int64
                )
                loads = state.loads
            else:
                path_names = critical_path(netlist, nominal, arrivals=arrivals)
                path_positions = np.array(
                    [index_of[name] for name in path_names], dtype=np.int64
                )
                loads = netlist.load_capacitances(sizes)
            on_path = np.zeros(n_gates, dtype=bool)
            on_path[path_positions] = True

            # Evaluate every candidate move on the critical path at once.
            current = sizes[path_positions]
            proposed = np.minimum(current * self.size_step, self.max_size)
            growable = proposed > current * (1.0 + 1e-9)
            # Own delay improves because the drive resistance drops.
            own_change = (
                tech.r_unit * loads[path_positions] * (1.0 / proposed - 1.0 / current)
            )
            # Fanins on the critical path slow down because this gate's
            # input capacitance grows.
            extra_cap = input_cap_unit[path_positions] * (proposed - current)
            flat, owner = expand_csr_rows(
                schedule.fanin_ptr, schedule.fanin_idx, path_positions
            )
            penalty_per_cap = np.bincount(
                owner,
                weights=np.where(on_path[flat], tech.r_unit / sizes[flat], 0.0),
                minlength=path_positions.shape[0],
            )
            benefit = -(own_change + penalty_per_cap * extra_cap)
            cost = area_coeff[path_positions] * (proposed - current)
            ratio = np.where(
                growable & (benefit > 0.0),
                benefit / np.where(cost > 0.0, cost, 1.0),
                0.0,
            )
            best = int(np.argmax(ratio))
            if ratio[best] <= 0.0:
                # No move improves the critical path; the target is infeasible
                # within the size bounds.
                break
            if state is not None:
                state.resize(int(path_positions[best]), float(proposed[best]))
            else:
                sizes[path_positions[best]] = proposed[best]
            moves += 1
            if moves % self.sigma_refresh == 0:
                budget = statistical_budget(sizes)

        form = self._stage_form(stage, sizes)
        distribution = StageDelayDistribution.from_canonical(form, name=stage.name)
        achieved_yield = distribution.yield_at(target_delay)
        met = achieved_yield + 1e-9 >= target_yield
        if apply:
            netlist.set_sizes(sizes)
        return SizingResult(
            sizes=sizes,
            area=netlist.total_area(sizes),
            stage_delay=distribution,
            target_delay=target_delay,
            target_yield=target_yield,
            achieved_yield=achieved_yield,
            met_target=met,
            iterations=moves,
            seconds=time.perf_counter() - start_time,
        )

    # ------------------------------------------------------------------
    # Convenience queries (shared sizer-strategy surface)
    # ------------------------------------------------------------------
    def stage_distribution(self, stage: PipelineStage) -> StageDelayDistribution:
        """Stage delay distribution at the stage's current sizes."""
        form = self._stage_form(stage, stage.netlist.sizes())
        return StageDelayDistribution.from_canonical(form, name=stage.name)

    def minimum_area_delay(
        self, stage: PipelineStage, target_yield: float
    ) -> tuple[float, float]:
        """Delay (at the target yield) and area of the all-minimum-size stage."""
        sizes = np.full(stage.netlist.n_gates, self.min_size)
        form = self._stage_form(stage, sizes)
        distribution = StageDelayDistribution.from_canonical(form, name=stage.name)
        return distribution.delay_at_yield(target_yield), stage.netlist.total_area(sizes)
