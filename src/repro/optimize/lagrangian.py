"""Lagrangian-relaxation-style statistical gate sizing.

This is the repo's stand-in for the sizing primitive of Choi et al. (DAC
2004) that the paper uses as a black box: *minimise the combinational area
of one stage subject to a statistical delay constraint*

    mu_stage + Phi^-1(Y_stage) * sigma_stage  <=  T_TARGET .

The algorithm follows the classic Lagrangian-relaxation sizing recipe
(Chen/Chu/Wong-style) with the statistical part layered on top the way the
paper describes (statistical timing is re-run between sizing iterations and
the deterministic target is tightened by the current ``k * sigma`` margin):

1. The yield constraint is converted into a deterministic combinational
   delay budget ``D = T_TARGET - mean(sequential overhead) - k * sigma_stage``
   where ``sigma_stage`` is re-estimated with the canonical-form SSTA every
   few iterations.
2. Arc criticalities act as Lagrange multipliers: per-gate multipliers are
   updated multiplicatively from the gate slacks (more critical gates get
   larger multipliers) and a global multiplier is adapted up when the budget
   is violated and down when there is slack to recover area.
3. For fixed multipliers the per-gate subproblem has the closed-form
   solution

       x_g = sqrt( lam_g * r * C_load(g)
                   / (dA/dx_g + sum_{h in fanin(g)} lam_h * (r / x_h) * c_in(g)) )

   which balances the area cost and the load the gate presents to its
   drivers against the speed it gains; the update is applied Jacobi-style in
   a couple of sweeps per iteration.
4. The best statistically feasible solution seen (smallest area whose
   deterministic worst arrival meets the current budget) is retained and
   returned.

The complexity per iteration is O(n) in the number of gates, matching the
"iterative low-complexity algorithm" the paper relies on.
"""

from __future__ import annotations

import time

import numpy as np
from scipy.stats import norm

from repro.core.stage_delay import StageDelayDistribution
from repro.optimize.result import SizingResult
from repro.pipeline.stage import PipelineStage
from repro.process.technology import Technology
from repro.process.variation import VariationModel
from repro.timing.delay_model import GateDelayModel
from repro.timing.incremental import SizingState
from repro.timing.sta import arrival_times, required_times
from repro.timing.ssta import StatisticalTimingAnalyzer


class LagrangianSizer:
    """Statistical gate sizer for a single pipeline stage.

    Parameters
    ----------
    technology, variation:
        Process description used for delays and statistics.
    min_size, max_size:
        Allowed range of gate sizes (the paper's ``L_i <= x_i <= U_i``).
    max_outer:
        Maximum number of outer (multiplier update) iterations.
    sweeps_per_outer:
        Closed-form resize sweeps per outer iteration.
    sigma_refresh:
        Outer iterations between SSTA sigma refreshes.
    temperature_fraction:
        Slack-to-multiplier temperature as a fraction of the delay budget;
        smaller values concentrate the multipliers on the most critical gates.
    grid_size:
        Spatial-correlation grid resolution for the embedded SSTA.
    incremental:
        Route the outer loop's arrival / required / area evaluations through
        :class:`~repro.timing.incremental.SizingState` (cell coefficients
        cached once, dirty-cone timing updates after each sweep).  The
        incremental state is bit-identical to full recomputation, so both
        settings produce the same :class:`SizingResult`.
    """

    def __init__(
        self,
        technology: Technology,
        variation: VariationModel,
        min_size: float = 1.0,
        max_size: float = 16.0,
        max_outer: int = 40,
        sweeps_per_outer: int = 2,
        sigma_refresh: int = 5,
        temperature_fraction: float = 0.04,
        grid_size: int = 8,
        incremental: bool = True,
    ) -> None:
        if min_size <= 0.0 or max_size < min_size:
            raise ValueError(
                f"need 0 < min_size <= max_size, got {min_size}, {max_size}"
            )
        if max_outer < 1:
            raise ValueError(f"max_outer must be at least 1, got {max_outer}")
        self.technology = technology
        self.variation = variation
        self.min_size = float(min_size)
        self.max_size = float(max_size)
        self.max_outer = int(max_outer)
        self.sweeps_per_outer = int(sweeps_per_outer)
        self.sigma_refresh = int(max(1, sigma_refresh))
        self.temperature_fraction = float(temperature_fraction)
        self.incremental = bool(incremental)
        self.delay_model = GateDelayModel(technology)
        self.ssta = StatisticalTimingAnalyzer(technology, variation, grid_size=grid_size)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _edges(self, netlist) -> tuple[np.ndarray, np.ndarray]:
        """Gate-to-gate timing arcs as (source, destination) index arrays."""
        schedule = netlist.timing_schedule()
        return (
            schedule.fanin_idx.astype(int),
            schedule.edge_owner.astype(int),
        )

    def _resize_sweep(
        self,
        netlist,
        sizes: np.ndarray,
        weights: np.ndarray,
        area_coeff: np.ndarray,
        input_cap_unit: np.ndarray,
        damping: float = 0.5,
    ) -> np.ndarray:
        """One Gauss-Seidel resize sweep in reverse level order.

        Each gate is resized with the closed-form optimum of its local
        Lagrangian subproblem, using already-updated fanout sizes for its
        load and current fanin sizes for the loading pressure it exerts on
        its drivers.  ``damping`` blends the update geometrically with the
        previous size to suppress oscillation on reconvergent structures.

        Gates within one logic level never drive each other, so the sweep
        processes a whole level at once over the compiled schedule: the
        fanouts (strictly higher levels) are already updated and the fanins
        (strictly lower levels) are untouched, which is exactly the update
        order of the original reverse-topological per-gate loop.
        """
        sizes = sizes.copy()
        schedule = netlist.timing_schedule()
        output_mask = netlist.output_mask()
        pin_cap = input_cap_unit  # per-unit-size input capacitance of each gate
        base_load = np.where(
            output_mask | (schedule.fanout_counts == 0),
            netlist.default_output_load,
            0.0,
        )
        for level in range(schedule.n_levels - 1, -1, -1):
            gates = schedule.level_gates[level]
            loads = base_load[gates].copy()
            driven = schedule.rev_level_gates[level]
            if driven.shape[0]:
                fanout_edges = schedule.rev_level_edges[level]
                contributions = pin_cap[fanout_edges] * sizes[fanout_edges]
                summed = np.add.reduceat(contributions, schedule.rev_level_seg[level])
                loads[np.searchsorted(gates, driven)] += summed
            if level == 0:
                pressure = np.zeros(gates.shape[0])
            else:
                fanin_edges = schedule.level_edges[level]
                pressure = np.add.reduceat(
                    weights[fanin_edges] / sizes[fanin_edges],
                    schedule.level_seg[level],
                )
            denominator = area_coeff[gates] + pin_cap[gates] * pressure
            numerator = weights[gates] * loads
            valid = (numerator > 0.0) & (denominator > 0.0)
            safe_den = np.where(valid, denominator, 1.0)
            optimum = (numerator / safe_den) ** 0.5
            blended = sizes[gates] ** (1.0 - damping) * optimum**damping
            updated = np.clip(blended, self.min_size, self.max_size)
            sizes[gates] = np.where(valid, updated, sizes[gates])
        return sizes

    def _stage_form(self, stage: PipelineStage, sizes: np.ndarray):
        return self.ssta.stage_delay(
            stage.netlist, stage.flipflop, stage.register_position, sizes=sizes
        )

    # ------------------------------------------------------------------
    # Main entry point
    # ------------------------------------------------------------------
    def size_stage(
        self,
        stage: PipelineStage,
        target_delay: float,
        target_yield: float,
        apply: bool = True,
        initial_sizes: np.ndarray | None = None,
    ) -> SizingResult:
        """Size one stage for minimum area under a statistical delay target.

        Parameters
        ----------
        stage:
            The pipeline stage to size (its netlist is modified in place when
            ``apply`` is true).
        target_delay:
            Stage delay target ``T_TARGET`` in seconds (including sequential
            overhead).
        target_yield:
            Probability with which the stage must meet ``target_delay``.
        apply:
            Whether to write the final sizes back into the stage netlist.
        initial_sizes:
            Optional starting sizes; defaults to all-minimum, which lets the
            sizer find the smallest-area solution regardless of the stage's
            current sizing.
        """
        if target_delay <= 0.0:
            raise ValueError(f"target_delay must be positive, got {target_delay}")
        if not 0.0 < target_yield < 1.0:
            raise ValueError(f"target_yield must be in (0, 1), got {target_yield}")

        start_time = time.perf_counter()
        netlist = stage.netlist
        n_gates = netlist.n_gates
        if n_gates == 0:
            raise ValueError(f"stage {stage.name!r} has no gates to size")
        tech = self.technology
        coeffs = netlist.cell_coefficients()
        area_coeff = coeffs["area_factor"] * tech.area_unit
        input_cap_unit = coeffs["logical_effort"] * tech.c_unit
        output_mask = netlist.output_mask()
        if not output_mask.any():
            output_mask = np.ones(n_gates, dtype=bool)
        k_yield = float(norm.ppf(target_yield))

        if initial_sizes is None:
            sizes = np.full(n_gates, self.min_size)
        else:
            sizes = np.clip(np.asarray(initial_sizes, dtype=float), self.min_size, self.max_size)

        # The incremental state caches the cell coefficients once and keeps
        # loads/delays/arrivals/required in sync with `sizes` through exact
        # dirty-cone updates (bit-identical to the full recomputation below).
        state = SizingState(netlist, tech, sizes) if self.incremental else None
        if state is not None:
            sizes = state.sizes

        def statistical_budget(current_sizes: np.ndarray) -> float:
            """Deterministic arrival budget implied by the statistical target.

            The budget is the current nominal worst arrival shifted by however
            much the full statistical stage delay (SSTA mean + k * sigma,
            including sequential overhead and the mean shift of the max over
            near-critical paths) misses or beats the target.  Re-evaluating it
            as sizes change keeps the deterministic inner loop honest about
            the statistical constraint it is standing in for.  A small guard
            band keeps the final design from missing the statistical target
            by round-off between the two views.
            """
            form = self._stage_form(stage, current_sizes)
            if state is not None:
                worst = state.worst_arrival()
            else:
                nominal = self.delay_model.nominal_delays(netlist, current_sizes)
                arrivals = arrival_times(netlist, nominal)
                worst = float(arrivals[output_mask].max())
            statistical_delay = form.mean + k_yield * form.sigma
            guard = 0.004 * target_delay
            return worst + (target_delay - statistical_delay) - guard

        # Initial statistical margin and delay budget.
        budget = statistical_budget(sizes)

        lam = np.ones(n_gates)
        loads = state.loads if state is not None else netlist.load_capacitances(sizes)
        scale = float(np.median(area_coeff)) / max(
            float(tech.r_unit * np.median(loads)), 1e-30
        )
        global_multiplier = scale

        best_area = np.inf
        best_sizes: np.ndarray | None = None
        fastest_arrival = np.inf
        fastest_sizes = sizes.copy()
        stable_iterations = 0
        previous_area = (
            state.total_area() if state is not None else netlist.total_area(sizes)
        )
        iterations_used = 0

        for outer in range(self.max_outer):
            iterations_used = outer + 1
            if state is not None:
                arrivals = state.arrivals()
                worst_arrival = state.worst_arrival()
            else:
                nominal = self.delay_model.nominal_delays(netlist, sizes)
                arrivals = arrival_times(netlist, nominal)
                worst_arrival = float(arrivals[output_mask].max())

            if outer > 0 and outer % self.sigma_refresh == 0:
                budget = statistical_budget(sizes)

            if budget <= 0.0:
                # The statistical margin alone exceeds the target; no sizing
                # can satisfy the constraint.  Keep iterating with a tiny
                # positive budget so the result is the fastest design.
                effective_budget = 0.05 * target_delay
            else:
                effective_budget = budget

            if state is not None:
                slack = state.required(effective_budget) - arrivals
            else:
                slack = required_times(netlist, nominal, effective_budget) - arrivals
            worst_slack = float(slack[output_mask].min())

            # Multiplier updates: per-gate criticality plus global scale.
            temperature = max(self.temperature_fraction * effective_budget, 1e-15)
            update = np.exp(np.clip(-slack / temperature, -1.0, 1.0))
            lam = np.clip(lam * update, 1e-9, 1e9)
            lam *= n_gates / lam.sum()
            if worst_arrival > effective_budget:
                global_multiplier *= 1.25
            else:
                global_multiplier *= 0.90

            # Closed-form resize sweeps (Gauss-Seidel, reverse topological).
            weights = global_multiplier * lam * tech.r_unit
            for _ in range(self.sweeps_per_outer):
                sizes = self._resize_sweep(
                    netlist, sizes, weights, area_coeff, input_cap_unit
                )
            if state is not None:
                state.set_sizes(sizes)
                sizes = state.sizes

            # Track the best (smallest-area) solution that meets the budget
            # and the fastest solution seen, both evaluated at the freshly
            # resized design.
            if state is not None:
                resized_worst = state.worst_arrival()
                area_after = state.total_area()
            else:
                resized_delays = self.delay_model.nominal_delays(netlist, sizes)
                resized_arrivals = arrival_times(netlist, resized_delays)
                resized_worst = float(resized_arrivals[output_mask].max())
                area_after = netlist.total_area(sizes)
            if resized_worst <= effective_budget and area_after < best_area:
                best_area = area_after
                best_sizes = sizes.copy()
            if resized_worst < fastest_arrival:
                fastest_arrival = resized_worst
                fastest_sizes = sizes.copy()

            # Convergence: feasible and area no longer moving.
            relative_change = abs(area_after - previous_area) / max(previous_area, 1e-30)
            previous_area = area_after
            if worst_slack >= 0.0 and relative_change < 0.002:
                stable_iterations += 1
                if stable_iterations >= 3:
                    break
            else:
                stable_iterations = 0

        # Prefer the smallest feasible design; if the target was never met,
        # return the fastest design found (best effort) rather than whatever
        # the last multiplier state produced.
        final_sizes = best_sizes if best_sizes is not None else fastest_sizes
        form = self._stage_form(stage, final_sizes)
        distribution = StageDelayDistribution.from_canonical(form, name=stage.name)
        achieved_yield = distribution.yield_at(target_delay)
        met = achieved_yield + 1e-9 >= target_yield
        if apply:
            netlist.set_sizes(final_sizes)
        return SizingResult(
            sizes=final_sizes,
            area=netlist.total_area(final_sizes),
            stage_delay=distribution,
            target_delay=target_delay,
            target_yield=target_yield,
            achieved_yield=achieved_yield,
            met_target=met,
            iterations=iterations_used,
            seconds=time.perf_counter() - start_time,
        )

    # ------------------------------------------------------------------
    # Convenience queries
    # ------------------------------------------------------------------
    def stage_distribution(self, stage: PipelineStage) -> StageDelayDistribution:
        """Stage delay distribution at the stage's current sizes."""
        form = self._stage_form(stage, stage.netlist.sizes())
        return StageDelayDistribution.from_canonical(form, name=stage.name)

    def minimum_area_delay(
        self, stage: PipelineStage, target_yield: float
    ) -> tuple[float, float]:
        """Delay (at the target yield) and area of the all-minimum-size stage."""
        sizes = np.full(stage.netlist.n_gates, self.min_size)
        form = self._stage_form(stage, sizes)
        distribution = StageDelayDistribution.from_canonical(form, name=stage.name)
        return distribution.delay_at_yield(target_yield), stage.netlist.total_area(sizes)
