"""Constant-area imbalance redistribution between pipeline stages.

This implements the paper's Fig. 7 experiment: starting from a balanced
design (all stages sized independently for the same delay target), move area
from the stages whose area-vs-delay curve is steep (eq. 14 ratio ``R_i > 1``
-- shrinking them costs little delay) to the stages whose curve is shallow
(``R_i < 1`` -- a small area investment buys a lot of delay), keeping the
total area approximately constant.  The "worst" mode inverts the assignment,
reproducing the paper's observation that *badly chosen* imbalance hurts
yield (the "Unbalanced(worst)" series of Fig. 7(b)).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.imbalance import classify_stages, StageAction
from repro.core.stage_delay import StageDelayDistribution
from repro.optimize.area_delay import AreaDelayCurve
from repro.optimize.result import SizingResult
from repro.pipeline.pipeline import Pipeline


@dataclass(frozen=True)
class RedistributionResult:
    """Outcome of a constant-area imbalance redistribution."""

    pipeline: Pipeline
    mode: str
    fraction: float
    stage_results: dict[str, SizingResult]
    donor_stages: tuple[str, ...]
    receiver_stages: tuple[str, ...]

    @property
    def total_area(self) -> float:
        """Total pipeline area after redistribution."""
        return self.pipeline.total_area()

    def stage_distributions(self) -> list[StageDelayDistribution]:
        """Per-stage delay distributions after redistribution, in pipeline order."""
        return [
            self.stage_results[name].stage_delay for name in self.pipeline.stage_names
        ]

    def stage_yields(self, target_delay: float) -> np.ndarray:
        """Per-stage yields at a target delay, in pipeline order."""
        return np.array(
            [
                self.stage_results[name].stage_delay.yield_at(target_delay)
                for name in self.pipeline.stage_names
            ]
        )

    def predicted_pipeline_yield(self, target_delay: float) -> float:
        """Pipeline yield assuming independent stages."""
        return float(np.prod(self.stage_yields(target_delay)))


def _split_roles(
    curves: dict[str, AreaDelayCurve], reference_delays: dict[str, float], mode: str
) -> tuple[list[str], list[str]]:
    """Decide which stages donate area and which receive it."""
    ratios = {
        name: curve.sensitivity_ratio(reference_delays[name])
        for name, curve in curves.items()
    }
    records = classify_stages(ratios)
    donors = [r.name for r in records if r.action is StageAction.SHRINK]
    receivers = [r.name for r in records if r.action is StageAction.GROW]
    undecided = [r.name for r in records if r.action is StageAction.NEUTRAL]
    # Guarantee at least one stage on each side: fall back to the extreme
    # ratios when the classification is one-sided.
    if not donors:
        donors = [records[0].name]
        if records[0].name in receivers:
            receivers.remove(records[0].name)
        if records[0].name in undecided:
            undecided.remove(records[0].name)
    if not receivers:
        receivers = [records[-1].name]
        if records[-1].name in donors and len(donors) > 1:
            donors.remove(records[-1].name)
    if mode == "worst":
        donors, receivers = receivers, donors
    return donors, receivers


def redistribute_area(
    pipeline: Pipeline,
    curves: dict[str, AreaDelayCurve],
    sizer,
    target_delay: float,
    stage_yield_target: float,
    fraction: float = 0.15,
    mode: str = "best",
) -> RedistributionResult:
    """Move a fraction of area between stages at (approximately) constant total area.

    Parameters
    ----------
    pipeline:
        The balanced design to perturb; a copy is made.
    curves:
        Area-vs-delay curve of every stage (keys are stage names).
    sizer:
        Stage sizer used to realise the new per-stage delay targets.
    target_delay:
        The pipeline delay target (used only to evaluate the stage yield
        targets of the re-sizing calls consistently with the balanced flow).
    stage_yield_target:
        Per-stage yield at which the curves are expressed.
    fraction:
        Fraction of each donor stage's combinational area that is moved.
    mode:
        ``"best"`` follows the eq. 14 heuristic; ``"worst"`` inverts it.

    Returns
    -------
    RedistributionResult
        The unbalanced pipeline copy plus per-stage sizing results.
    """
    if not 0.0 < fraction < 0.9:
        raise ValueError(f"fraction must be in (0, 0.9), got {fraction}")
    if mode not in {"best", "worst"}:
        raise ValueError(f"mode must be 'best' or 'worst', got {mode!r}")
    missing = set(pipeline.stage_names) - set(curves)
    if missing:
        raise KeyError(f"missing area-delay curves for stages: {sorted(missing)}")

    designed = pipeline.copy(f"{pipeline.name}_unbalanced_{mode}")
    current_areas = {
        stage.name: stage.logic_area() for stage in designed.stages
    }
    reference_delays = {
        name: float(
            np.clip(
                curves[name].delay_for_area(current_areas[name]),
                curves[name].min_delay,
                curves[name].max_delay,
            )
        )
        for name in designed.stage_names
    }
    donors, receivers = _split_roles(curves, reference_delays, mode)

    donated = sum(fraction * current_areas[name] for name in donors)
    receiver_total = sum(current_areas[name] for name in receivers)
    new_areas = dict(current_areas)
    for name in donors:
        new_areas[name] = current_areas[name] * (1.0 - fraction)
    for name in receivers:
        share = current_areas[name] / receiver_total if receiver_total > 0 else 0.0
        new_areas[name] = current_areas[name] + donated * share

    stage_results: dict[str, SizingResult] = {}
    for stage in designed.stages:
        curve = curves[stage.name]
        new_delay_target = curve.delay_for_area(new_areas[stage.name])
        stage_results[stage.name] = sizer.size_stage(
            stage, new_delay_target, stage_yield_target, apply=True
        )
    return RedistributionResult(
        pipeline=designed,
        mode=mode,
        fraction=fraction,
        stage_results=stage_results,
        donor_stages=tuple(donors),
        receiver_stages=tuple(receivers),
    )
