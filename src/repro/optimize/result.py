"""Result containers shared by the sizing and pipeline-optimization code."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.stage_delay import StageDelayDistribution


@dataclass(frozen=True)
class SizingResult:
    """Outcome of sizing one stage for a statistical delay target.

    Attributes
    ----------
    sizes:
        Final gate sizes in the stage netlist's topological order.
    area:
        Final combinational area of the stage in square micrometres.
    stage_delay:
        Gaussian stage delay distribution (including sequential overhead) at
        the final sizes.
    target_delay:
        Delay target the sizer was asked to meet, in seconds.
    target_yield:
        Per-stage yield the sizer was asked to meet at ``target_delay``.
    achieved_yield:
        Stage yield at ``target_delay`` predicted by ``stage_delay``.
    met_target:
        Whether the statistical constraint was satisfied at convergence.
    iterations:
        Number of outer iterations the sizer used.
    seconds:
        Wall-clock time the sizing run took (0.0 when untimed, e.g. for
        hand-constructed results in tests).
    """

    sizes: np.ndarray
    area: float
    stage_delay: StageDelayDistribution
    target_delay: float
    target_yield: float
    achieved_yield: float
    met_target: bool
    iterations: int
    seconds: float = 0.0

    @property
    def delay_margin(self) -> float:
        """Positive when the yield-constrained delay beats the target (seconds)."""
        return self.target_delay - self.stage_delay.delay_at_yield(self.target_yield)


@dataclass
class StageDesignRecord:
    """Per-stage row of the Table II / Table III style reports."""

    name: str
    area: float
    area_percent: float
    yield_percent: float

    def as_row(self) -> list[object]:
        """Row for :func:`repro.analysis.reporting.format_table`."""
        return [self.name, round(self.area_percent, 1), round(self.yield_percent, 1)]
