"""Stage-sizer strategy protocol and registry.

The paper treats the statistical sizing primitive (Choi et al., DAC 2004) as
a black box: every design flow in :mod:`repro.optimize` only needs something
that can *size one stage for a statistical delay target* and answer a couple
of characterisation queries.  This module names that contract
(:class:`StageSizer`) and keeps a registry of implementations so design
specs can address a sizer by name (``"lagrangian"``, ``"greedy"``) the same
way analysis specs address delay backends.

A registered factory has the signature ``factory(technology, variation,
**options)`` and returns a ready sizer; ``options`` are the sizer's own
keyword knobs (``max_outer``, ``max_moves``, ``min_size``...), so a frozen
:class:`~repro.api.spec.DesignSpec` can carry them as data.
"""

from __future__ import annotations

from typing import Any, Callable, Protocol, runtime_checkable

from repro.core.stage_delay import StageDelayDistribution
from repro.optimize.greedy import GreedySizer
from repro.optimize.lagrangian import LagrangianSizer
from repro.optimize.result import SizingResult
from repro.pipeline.stage import PipelineStage
from repro.process.technology import Technology
from repro.process.variation import VariationModel


@runtime_checkable
class StageSizer(Protocol):
    """Anything that can size one pipeline stage for a statistical target.

    The three methods are exactly the surface the design flows consume:
    :func:`~repro.optimize.balance.design_balanced_pipeline` and
    :class:`~repro.optimize.global_opt.GlobalPipelineOptimizer` call
    ``size_stage``, :func:`~repro.optimize.area_delay.characterize_stage`
    additionally needs ``minimum_area_delay``, and the target-delay policies
    of the Design API use ``stage_distribution``.  ``ssta`` exposes the
    sizer's embedded statistical timing engine, which the pipeline-level
    flows reuse for full-pipeline statistics.
    """

    min_size: float
    ssta: Any

    def size_stage(
        self,
        stage: PipelineStage,
        target_delay: float,
        target_yield: float,
        apply: bool = True,
    ) -> SizingResult:
        """Size ``stage`` for minimum area under the statistical target."""
        ...  # pragma: no cover - protocol signature

    def stage_distribution(self, stage: PipelineStage) -> StageDelayDistribution:
        """Stage delay distribution at the stage's current sizes."""
        ...  # pragma: no cover - protocol signature

    def minimum_area_delay(
        self, stage: PipelineStage, target_yield: float
    ) -> tuple[float, float]:
        """Delay (at the target yield) and area of the all-minimum-size stage."""
        ...  # pragma: no cover - protocol signature


SizerFactory = Callable[..., StageSizer]

_SIZERS: dict[str, SizerFactory] = {}


def register_sizer(name: str, factory: SizerFactory, *, replace: bool = False) -> None:
    """Register a sizer factory under a name addressable from design specs.

    ``factory(technology, variation, **options)`` must return an object
    satisfying :class:`StageSizer`.
    """
    if not name or not isinstance(name, str):
        raise ValueError(f"sizer name must be a non-empty string, got {name!r}")
    if name in _SIZERS and not replace:
        raise ValueError(f"sizer {name!r} is already registered")
    _SIZERS[name] = factory


def get_sizer_factory(name: str) -> SizerFactory:
    """Look up a registered sizer factory by name."""
    try:
        return _SIZERS[name]
    except KeyError:
        raise KeyError(
            f"no stage sizer named {name!r}; available: {available_sizers()}"
        ) from None


def available_sizers() -> tuple[str, ...]:
    """Names of all registered sizer strategies, sorted."""
    return tuple(sorted(_SIZERS))


def make_sizer(
    name: str,
    technology: Technology,
    variation: VariationModel,
    **options: Any,
) -> StageSizer:
    """Build a named sizer for a process description with its own knobs."""
    sizer = get_sizer_factory(name)(technology, variation, **options)
    if not isinstance(sizer, StageSizer):
        raise TypeError(
            f"sizer factory {name!r} returned {type(sizer).__name__}, which does "
            "not satisfy the StageSizer protocol"
        )
    return sizer


register_sizer("lagrangian", LagrangianSizer)
register_sizer("greedy", GreedySizer)
