"""Pipeline construction substrate.

* :mod:`repro.pipeline.stage` -- :class:`PipelineStage`: one combinational
  block plus its output register, placed in a region of the die.
* :mod:`repro.pipeline.pipeline` -- :class:`Pipeline`: an ordered list of
  stages with area accounting and die floorplanning (stages are laid out as
  vertical slices across the die, which is what gives their delays partial
  spatial correlation under systematic variation).
* :mod:`repro.pipeline.builder` -- builders for the paper's pipelines:
  N_S x N_L inverter-chain pipelines (model verification), the 3-stage
  ALU-Decoder pipeline (imbalance study) and the 4-stage ISCAS85 pipeline
  (optimization experiments).
"""

from repro.pipeline.stage import PipelineStage
from repro.pipeline.pipeline import Pipeline
from repro.pipeline.builder import (
    alu_decoder_pipeline,
    inverter_chain_pipeline,
    iscas_pipeline,
)

__all__ = [
    "PipelineStage",
    "Pipeline",
    "inverter_chain_pipeline",
    "iscas_pipeline",
    "alu_decoder_pipeline",
]
