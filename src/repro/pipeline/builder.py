"""Builders for the pipelines used in the paper's experiments.

* :func:`inverter_chain_pipeline` -- the ``N_S x N_L`` inverter-chain
  pipelines used for model verification (Figs. 2, 3, 5; Table I).  Supports
  per-stage logic depths for the "variable logic depth" row of Table I.
* :func:`alu_decoder_pipeline` -- the 3-stage ALU / Decoder / ALU pipeline
  of Fig. 6, used for the balanced-vs-unbalanced study (Figs. 7, 8).
* :func:`iscas_pipeline` -- the 4-stage ISCAS85 pipeline (c3540, c2670,
  c1908 a.k.a. the paper's "c1980", c432) used for the optimization
  experiments (Tables II, III).
"""

from __future__ import annotations

from repro.circuit.cell_library import CellLibrary
from repro.circuit.flipflop import FlipFlopTiming
from repro.circuit.generators import alu_block, decoder_block, inverter_chain
from repro.circuit.iscas import iscas_benchmark
from repro.pipeline.pipeline import Pipeline
from repro.pipeline.stage import PipelineStage
from repro.process.technology import Technology


def inverter_chain_pipeline(
    n_stages: int,
    logic_depth: int | list[int],
    name: str | None = None,
    size: float = 1.0,
    flipflop: FlipFlopTiming | None = None,
    library: CellLibrary | None = None,
    technology: Technology | None = None,
) -> Pipeline:
    """Build an ``N_S``-stage pipeline of inverter-chain stages.

    Parameters
    ----------
    n_stages:
        Number of pipeline stages ``N_S``.
    logic_depth:
        Either a single logic depth ``N_L`` applied to every stage, or a list
        of per-stage depths (the Table I "5 x *" configuration).
    size:
        Drive size of every inverter.
    flipflop:
        Sequential-element model shared by all stages.
    """
    if n_stages < 1:
        raise ValueError(f"n_stages must be at least 1, got {n_stages}")
    if isinstance(logic_depth, int):
        depths = [logic_depth] * n_stages
    else:
        depths = list(logic_depth)
        if len(depths) != n_stages:
            raise ValueError(
                f"got {len(depths)} logic depths for {n_stages} stages"
            )
    if flipflop is None:
        flipflop = FlipFlopTiming()
    if name is None:
        if len(set(depths)) == 1:
            name = f"invchain_{n_stages}x{depths[0]}"
        else:
            name = f"invchain_{n_stages}xvar"

    stages = []
    for index, depth in enumerate(depths):
        netlist = inverter_chain(
            depth,
            name=f"{name}_s{index}",
            size=size,
            library=library,
            technology=technology,
        )
        stages.append(
            PipelineStage(name=f"stage{index}", netlist=netlist, flipflop=flipflop)
        )
    return Pipeline(name, stages)


def alu_decoder_pipeline(
    width: int = 8,
    n_address: int = 4,
    name: str = "alu_decoder",
    flipflop: FlipFlopTiming | None = None,
    library: CellLibrary | None = None,
    technology: Technology | None = None,
) -> Pipeline:
    """Build the paper's Fig. 6 three-stage ALU-Decoder pipeline.

    Stage 1 is the lower half of a ``width``-bit ALU datapath, stage 2 is an
    ``n_address``-to-``2**n_address`` decoder, and stage 3 is the upper half
    of the ALU.
    """
    if flipflop is None:
        flipflop = FlipFlopTiming()
    stages = [
        PipelineStage(
            name="alu_part1",
            netlist=alu_block(width, name="alu_part1", part="lower",
                              library=library, technology=technology),
            flipflop=flipflop,
        ),
        PipelineStage(
            name="decoder",
            netlist=decoder_block(n_address, name="decoder",
                                  library=library, technology=technology),
            flipflop=flipflop,
        ),
        PipelineStage(
            name="alu_part2",
            netlist=alu_block(width, name="alu_part2", part="upper",
                              library=library, technology=technology),
            flipflop=flipflop,
        ),
    ]
    return Pipeline(name, stages)


def iscas_pipeline(
    benchmarks: list[str] | None = None,
    name: str = "iscas_pipeline",
    flipflop: FlipFlopTiming | None = None,
    library: CellLibrary | None = None,
    technology: Technology | None = None,
) -> Pipeline:
    """Build the 4-stage ISCAS85 pipeline of Tables II and III.

    Parameters
    ----------
    benchmarks:
        Benchmark names in pipeline order; defaults to the paper's
        ``["c3540", "c2670", "c1908", "c432"]`` (the paper's "c1980" is the
        suite's c1908).
    """
    if benchmarks is None:
        benchmarks = ["c3540", "c2670", "c1908", "c432"]
    if not benchmarks:
        raise ValueError("need at least one benchmark stage")
    if flipflop is None:
        flipflop = FlipFlopTiming()
    stages = [
        PipelineStage(
            name=benchmark,
            netlist=iscas_benchmark(benchmark, library=library, technology=technology),
            flipflop=flipflop,
        )
        for benchmark in benchmarks
    ]
    return Pipeline(name, stages)
