"""Pipeline: an ordered collection of stages sharing one die.

The object is deliberately thin: analysis (delay distributions, yield) lives
in :mod:`repro.core`, characterisation in :mod:`repro.montecarlo` and
:mod:`repro.timing.ssta`, and optimization in :mod:`repro.optimize`.  The
pipeline's own responsibilities are bookkeeping (stage order, area) and
floorplanning: stages are placed as vertical slices across the die, left to
right, which makes physically adjacent stages more correlated under
spatially correlated variation -- the partial correlation regime of the
paper's Fig. 2(c).
"""

from __future__ import annotations

import numpy as np

from repro.pipeline.stage import PipelineStage


class Pipeline:
    """An N-stage synchronous pipeline on a single die."""

    def __init__(self, name: str, stages: list[PipelineStage]) -> None:
        if not stages:
            raise ValueError("a pipeline needs at least one stage")
        names = [stage.name for stage in stages]
        if len(set(names)) != len(names):
            raise ValueError(f"stage names must be unique, got {names}")
        self.name = name
        self.stages = list(stages)
        self.place()

    # ------------------------------------------------------------------
    # Floorplanning
    # ------------------------------------------------------------------
    def place(self) -> None:
        """Lay the stages out as equal-width vertical slices of the die.

        Stage i occupies the horizontal band ``[i/N, (i+1)/N]`` of the unit
        die.  Gates within a stage are then levelised inside that band by
        :meth:`repro.circuit.netlist.Netlist.auto_place`.
        """
        n = len(self.stages)
        for index, stage in enumerate(self.stages):
            x0 = index / n
            x1 = (index + 1) / n
            stage.place((x0 + 1e-6, 0.0, x1 - 1e-6, 1.0))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def n_stages(self) -> int:
        """Number of pipeline stages."""
        return len(self.stages)

    @property
    def stage_names(self) -> list[str]:
        """Names of the stages, in pipeline order."""
        return [stage.name for stage in self.stages]

    def stage(self, name: str) -> PipelineStage:
        """Look up a stage by name."""
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise KeyError(f"no stage named {name!r} in pipeline {self.name!r}")

    def __iter__(self):
        return iter(self.stages)

    def __len__(self) -> int:
        return len(self.stages)

    # ------------------------------------------------------------------
    # Area accounting
    # ------------------------------------------------------------------
    def stage_areas(self) -> np.ndarray:
        """Total area of each stage (logic plus registers), in pipeline order."""
        return np.array([stage.total_area() for stage in self.stages])

    def total_area(self) -> float:
        """Total pipeline area in square micrometres."""
        return float(self.stage_areas().sum())

    def logic_area(self) -> float:
        """Total combinational-logic area in square micrometres."""
        return float(sum(stage.logic_area() for stage in self.stages))

    def area_fractions(self) -> np.ndarray:
        """Per-stage share of the total area (sums to 1)."""
        areas = self.stage_areas()
        return areas / areas.sum()

    # ------------------------------------------------------------------
    # Copying
    # ------------------------------------------------------------------
    def copy(self, name: str | None = None) -> "Pipeline":
        """Deep copy of the pipeline (every stage netlist is cloned)."""
        return Pipeline(
            name if name is not None else self.name,
            [stage.copy() for stage in self.stages],
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        depths = "x".join(str(stage.logic_depth) for stage in self.stages)
        return (
            f"Pipeline({self.name!r}, stages={self.n_stages}, depths={depths}, "
            f"area={self.total_area():.1f}um2)"
        )
