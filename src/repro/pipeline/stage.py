"""Pipeline stage abstraction.

A stage is a combinational block bounded by registers; its delay is the sum
of the register clock-to-Q delay, the combinational propagation delay and
the setup time of the capturing register (paper section 2.1).  The stage
also owns a rectangular placement region of the die so that the spatially
correlated variation component couples stages according to their physical
proximity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuit.flipflop import FlipFlopTiming
from repro.circuit.netlist import Netlist


@dataclass
class PipelineStage:
    """One pipeline stage: combinational logic plus its capturing register.

    Attributes
    ----------
    name:
        Stage name used in reports (e.g. ``"IF"``, ``"c3540"``).
    netlist:
        The stage's combinational logic.
    flipflop:
        Timing model of the registers bounding the stage.
    region:
        ``(x0, y0, x1, y1)`` placement rectangle in normalised die
        coordinates; assigned by :meth:`repro.pipeline.pipeline.Pipeline.place`.
    n_flipflops:
        Number of register bits at the stage output, used for area accounting.
        Defaults to the number of primary outputs of the netlist.
    """

    name: str
    netlist: Netlist
    flipflop: FlipFlopTiming = field(default_factory=FlipFlopTiming)
    region: tuple[float, float, float, float] = (0.0, 0.0, 1.0, 1.0)
    n_flipflops: int | None = None

    def __post_init__(self) -> None:
        if self.n_flipflops is None:
            self.n_flipflops = max(1, len(self.netlist.primary_outputs))

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def place(self, region: tuple[float, float, float, float]) -> None:
        """Assign a die region to the stage and re-place its gates inside it."""
        self.region = region
        self.netlist.auto_place(region)

    @property
    def register_position(self) -> tuple[float, float]:
        """Die position of the stage's output register (right edge, mid height)."""
        x0, y0, x1, y1 = self.region
        return (x1 - 0.02 * (x1 - x0), 0.5 * (y0 + y1))

    # ------------------------------------------------------------------
    # Structure / area
    # ------------------------------------------------------------------
    @property
    def logic_depth(self) -> int:
        """Logic depth of the stage's combinational block."""
        return self.netlist.logic_depth()

    @property
    def n_gates(self) -> int:
        """Number of combinational gates in the stage."""
        return self.netlist.n_gates

    def logic_area(self) -> float:
        """Area of the combinational logic in square micrometres."""
        return self.netlist.total_area()

    def register_area(self) -> float:
        """Area of the stage's output registers in square micrometres."""
        return self.n_flipflops * self.flipflop.area(self.netlist.technology)

    def total_area(self) -> float:
        """Combinational plus sequential area of the stage."""
        return self.logic_area() + self.register_area()

    def copy(self, name: str | None = None) -> "PipelineStage":
        """Deep copy (the netlist is cloned; the flip-flop model is shared)."""
        return PipelineStage(
            name=name if name is not None else self.name,
            netlist=self.netlist.copy(),
            flipflop=self.flipflop,
            region=self.region,
            n_flipflops=self.n_flipflops,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PipelineStage({self.name!r}, gates={self.n_gates}, "
            f"depth={self.logic_depth}, area={self.total_area():.1f}um2)"
        )
