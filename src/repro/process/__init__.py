"""Process technology and variation substrate.

The paper characterises stage delays with HSPICE Monte-Carlo runs in a
70 nm Berkeley Predictive Technology Model (BPTM) node.  This subpackage
provides the stand-in for that infrastructure:

* :mod:`repro.process.technology` -- a synthetic, self-consistent 70 nm-like
  technology description (supply, nominal threshold voltage, channel length,
  per-unit device capacitance/resistance, alpha-power-law exponent).
* :mod:`repro.process.variation` -- the three-component variation model the
  paper uses: inter-die (shared by every gate on a die), intra-die random
  (independent per device, random-dopant-fluctuation style with a
  1/sqrt(W*L) size dependence), and intra-die systematic (spatially
  correlated across the die).
* :mod:`repro.process.spatial` -- grid-based generation of spatially
  correlated parameter fields with an exponential correlation function.
* :mod:`repro.process.sampling` -- vectorised Monte-Carlo sample generation
  of per-gate parameter deviations for a placed netlist.

Only the statistical structure of the samples matters to the paper's
models; the absolute numbers are calibrated to give stage delays of the
same order of magnitude (tens to hundreds of picoseconds) as the paper.
"""

from repro.process.technology import Technology
from repro.process.variation import VariationModel, VariationComponents
from repro.process.spatial import SpatialCorrelationModel
from repro.process.sampling import ParameterSampler, ParameterSamples

__all__ = [
    "Technology",
    "VariationModel",
    "VariationComponents",
    "SpatialCorrelationModel",
    "ParameterSampler",
    "ParameterSamples",
]
