"""Vectorised Monte-Carlo sampling of per-device parameter deviations.

This module is the bridge between the abstract :class:`~repro.process.variation.VariationModel`
and the Monte-Carlo delay engine.  Given the sizes and placement coordinates
of the devices in a design, :class:`ParameterSampler` draws, for each
Monte-Carlo sample (die realisation):

* one inter-die threshold-voltage / channel-length deviation shared by all
  devices,
* independent per-device random threshold deviations, scaled by
  ``1/sqrt(size)`` (random dopant fluctuation),
* spatially correlated systematic threshold / length deviations from a
  :class:`~repro.process.spatial.SpatialCorrelationModel`.

The result is a :class:`ParameterSamples` container holding dense
``(n_samples, n_devices)`` arrays of absolute threshold voltages and channel
lengths, ready to be turned into delays by the timing substrate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.process.spatial import SpatialCorrelationModel
from repro.process.technology import Technology
from repro.process.variation import VariationModel


@dataclass(frozen=True)
class ParameterSamples:
    """Per-device process-parameter samples for a batch of die realisations.

    Attributes
    ----------
    vth:
        Absolute threshold voltages in volts, shape ``(n_samples, n_devices)``.
    length:
        Absolute channel lengths in nanometres, same shape.
    inter_die_vth_shift:
        The inter-die Vth component of each sample, shape ``(n_samples,)``.
        Exposed so analyses can condition on the die corner.
    """

    vth: np.ndarray
    length: np.ndarray
    inter_die_vth_shift: np.ndarray

    @property
    def n_samples(self) -> int:
        """Number of Monte-Carlo samples."""
        return self.vth.shape[0]

    @property
    def n_devices(self) -> int:
        """Number of devices covered by each sample."""
        return self.vth.shape[1]


class ParameterSampler:
    """Draws process-parameter samples for a placed, sized design.

    Parameters
    ----------
    technology:
        Technology node supplying nominal Vth and channel length.
    variation:
        The three-component variation model to sample from.
    grid_size:
        Grid resolution of the spatial-correlation model used for the
        systematic intra-die component.
    """

    def __init__(
        self,
        technology: Technology,
        variation: VariationModel,
        grid_size: int = 8,
    ) -> None:
        self.technology = technology
        self.variation = variation
        self.spatial = SpatialCorrelationModel(
            grid_size=grid_size,
            correlation_length=variation.correlation_length,
        )

    def sample(
        self,
        sizes: np.ndarray,
        x: np.ndarray,
        y: np.ndarray,
        n_samples: int,
        rng: np.random.Generator,
    ) -> ParameterSamples:
        """Draw ``n_samples`` die realisations for the given devices.

        Parameters
        ----------
        sizes:
            Relative drive sizes of the devices (multiples of minimum size),
            shape ``(n_devices,)``.  Sizes must be positive.
        x, y:
            Normalised placement coordinates in [0, 1], shape ``(n_devices,)``.
        n_samples:
            Number of Monte-Carlo samples.
        rng:
            NumPy random generator (callers own the seed for reproducibility).

        Returns
        -------
        ParameterSamples
            Absolute Vth and channel-length samples.
        """
        sizes = np.asarray(sizes, dtype=float)
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if sizes.ndim != 1:
            raise ValueError(f"sizes must be 1-D, got shape {sizes.shape}")
        if np.any(sizes <= 0.0):
            raise ValueError("all device sizes must be positive")
        if x.shape != sizes.shape or y.shape != sizes.shape:
            raise ValueError(
                "x and y must match sizes in shape: "
                f"sizes {sizes.shape}, x {x.shape}, y {y.shape}"
            )
        if n_samples < 1:
            raise ValueError(f"n_samples must be at least 1, got {n_samples}")

        tech = self.technology
        var = self.variation
        n_devices = sizes.shape[0]

        # Inter-die: one deviation per sample, broadcast over devices.
        inter_vth = var.sigma_vth_inter * rng.standard_normal(n_samples)
        inter_l = var.sigma_l_inter * rng.standard_normal(n_samples)

        # Intra-die random: independent per (sample, device), RDF size scaling.
        if var.has_intra_random:
            random_vth = (
                var.sigma_vth_random
                / np.sqrt(sizes)[None, :]
                * rng.standard_normal((n_samples, n_devices))
            )
        else:
            random_vth = np.zeros((n_samples, n_devices))

        # Intra-die systematic: spatially correlated standard-normal field,
        # scaled separately for Vth and channel length.
        if var.has_intra_systematic:
            field = self.spatial.sample_at(x, y, n_samples, rng)
            systematic_vth = var.sigma_vth_systematic * field
            systematic_l = var.sigma_l_systematic * field
        else:
            systematic_vth = np.zeros((n_samples, n_devices))
            systematic_l = np.zeros((n_samples, n_devices))

        vth = tech.vth0 + inter_vth[:, None] + random_vth + systematic_vth
        # Keep thresholds physical: clamp far away from the supply so the
        # alpha-power drive factor stays finite even for extreme tail samples.
        vth = np.clip(vth, 0.0, tech.vdd - 0.05)

        length = tech.lmin * (1.0 + inter_l[:, None] + systematic_l)
        length = np.clip(length, 0.25 * tech.lmin, 4.0 * tech.lmin)

        return ParameterSamples(
            vth=vth,
            length=length,
            inter_die_vth_shift=inter_vth,
        )
