"""Spatially correlated intra-die variation.

The systematic part of intra-die variation (channel-length gradients, oxide
thickness drift across the reticle) is correlated in space: two gates that
sit next to each other see almost the same deviation while gates at opposite
corners of the die are nearly independent.  The paper models this with
"spatially correlated W, L, Tox variations" that make stage delays
*partially* correlated.

This module implements the standard grid-based model:

* the die is divided into ``grid_size x grid_size`` cells,
* one Gaussian deviation is drawn per cell per Monte-Carlo sample,
* cell deviations follow an exponential correlation function
  ``rho(d) = exp(-d / correlation_length)`` in normalised die coordinates,
* a gate picks up the deviation of the cell containing its placement point.

Correlated cell samples are generated with a Cholesky factor of the cell
covariance matrix, which is exact and cheap for the modest grid sizes used
here (the default is 8 x 8 = 64 cells).
"""

from __future__ import annotations

import numpy as np


class SpatialCorrelationModel:
    """Grid-based exponential spatial correlation over a unit die.

    Parameters
    ----------
    grid_size:
        Number of grid cells along each die edge.
    correlation_length:
        Characteristic distance of the exponential correlation function,
        expressed as a fraction of the die edge length.
    """

    def __init__(self, grid_size: int = 8, correlation_length: float = 0.5) -> None:
        if grid_size < 1:
            raise ValueError(f"grid_size must be at least 1, got {grid_size}")
        if correlation_length <= 0.0:
            raise ValueError(
                f"correlation_length must be positive, got {correlation_length}"
            )
        self.grid_size = int(grid_size)
        self.correlation_length = float(correlation_length)
        self._cholesky = self._build_cholesky()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _cell_centres(self) -> np.ndarray:
        """Coordinates of all cell centres, shape (n_cells, 2), in [0, 1]."""
        n = self.grid_size
        edges = (np.arange(n) + 0.5) / n
        xs, ys = np.meshgrid(edges, edges, indexing="ij")
        return np.column_stack([xs.ravel(), ys.ravel()])

    def correlation_matrix(self) -> np.ndarray:
        """Full cell-to-cell correlation matrix, shape (n_cells, n_cells)."""
        centres = self._cell_centres()
        deltas = centres[:, None, :] - centres[None, :, :]
        distances = np.sqrt((deltas**2).sum(axis=-1))
        return np.exp(-distances / self.correlation_length)

    def _build_cholesky(self) -> np.ndarray:
        corr = self.correlation_matrix()
        # Exponential correlation matrices are positive definite, but add a
        # tiny jitter so the factorisation is robust to round-off for large
        # grids or long correlation lengths.
        jitter = 1e-10 * np.eye(corr.shape[0])
        return np.linalg.cholesky(corr + jitter)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def n_cells(self) -> int:
        """Number of grid cells on the die."""
        return self.grid_size * self.grid_size

    def cell_index(self, x: np.ndarray | float, y: np.ndarray | float) -> np.ndarray:
        """Map die coordinates in [0, 1] x [0, 1] to flat cell indices.

        Coordinates outside the unit square are clipped onto the die.
        """
        x = np.clip(np.asarray(x, dtype=float), 0.0, 1.0 - 1e-12)
        y = np.clip(np.asarray(y, dtype=float), 0.0, 1.0 - 1e-12)
        ix = (x * self.grid_size).astype(int)
        iy = (y * self.grid_size).astype(int)
        return ix * self.grid_size + iy

    def sample_cells(self, n_samples: int, rng: np.random.Generator) -> np.ndarray:
        """Draw correlated standard-normal cell deviations.

        Returns an array of shape ``(n_samples, n_cells)`` where each row is
        one die realisation.  Every marginal is standard normal and the
        cross-cell correlation follows the exponential model.
        """
        if n_samples < 1:
            raise ValueError(f"n_samples must be at least 1, got {n_samples}")
        white = rng.standard_normal((n_samples, self.n_cells))
        return white @ self._cholesky.T

    def sample_at(
        self,
        x: np.ndarray,
        y: np.ndarray,
        n_samples: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Draw correlated deviations at specific placement points.

        Parameters
        ----------
        x, y:
            Placement coordinates of the devices, each of shape
            ``(n_devices,)``, in normalised die coordinates [0, 1].
        n_samples:
            Number of Monte-Carlo samples (die realisations).
        rng:
            NumPy random generator.

        Returns
        -------
        numpy.ndarray
            Array of shape ``(n_samples, n_devices)`` of standard-normal
            deviations, spatially correlated according to the grid model.
        """
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.shape != y.shape:
            raise ValueError(f"x and y must have the same shape, got {x.shape} and {y.shape}")
        cells = self.cell_index(x, y)
        cell_samples = self.sample_cells(n_samples, rng)
        return cell_samples[:, cells]

    def correlation_between(self, point_a: tuple[float, float], point_b: tuple[float, float]) -> float:
        """Model correlation between the deviations at two placement points.

        Points within the same grid cell are perfectly correlated (the grid
        model assigns them the same deviation); otherwise the correlation is
        the exponential function of the distance between their cell centres.
        """
        idx_a = int(self.cell_index(point_a[0], point_a[1]))
        idx_b = int(self.cell_index(point_b[0], point_b[1]))
        if idx_a == idx_b:
            return 1.0
        corr = self.correlation_matrix()
        return float(corr[idx_a, idx_b])
