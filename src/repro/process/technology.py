"""Synthetic 70 nm technology description.

The paper's experiments run on the Berkeley Predictive Technology Model
(BPTM) at the 70 nm node.  We cannot ship or simulate BPTM SPICE decks, so
this module defines a small, self-consistent set of technology constants
that reproduce the *relevant* behaviour:

* gate delays in the tens-of-picoseconds range for minimum-size devices,
* a strong, monotonic sensitivity of delay to threshold voltage through an
  alpha-power-law drive-current model,
* a weaker, linear sensitivity to channel-length deviation,
* random threshold variation that shrinks as 1/sqrt(W*L) (random dopant
  fluctuation behaviour), so that larger gates are intrinsically less
  variable.

Everything downstream (cell library, delay model, Monte-Carlo engine,
statistical timing) reads its constants from a :class:`Technology`
instance, so alternative nodes can be modelled by constructing a different
instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Technology:
    """A technology node for delay and variation modelling.

    Parameters
    ----------
    name:
        Human-readable node name.
    vdd:
        Supply voltage in volts.
    vth0:
        Nominal threshold voltage in volts.
    alpha:
        Alpha-power-law exponent; drive current scales as
        ``(vdd - vth) ** alpha``.  Values between 1 and 2 model velocity
        saturation in short-channel devices.
    lmin:
        Minimum (nominal) channel length in nanometres.
    wmin:
        Minimum device width in nanometres.
    r_unit:
        Effective drive resistance of a minimum-size inverter in ohms at
        nominal process.
    c_unit:
        Input capacitance of a minimum-size inverter in femtofarads.
    c_par_unit:
        Parasitic (self-load) capacitance of a minimum-size inverter in
        femtofarads.
    area_unit:
        Layout area of a minimum-size inverter in square micrometres; cell
        areas are expressed in multiples of this unit.
    """

    name: str = "bptm70"
    vdd: float = 1.0
    vth0: float = 0.22
    alpha: float = 1.4
    lmin: float = 70.0
    wmin: float = 140.0
    r_unit: float = 4.5e3
    c_unit: float = 1.55e-15
    c_par_unit: float = 1.1e-15
    area_unit: float = 0.55

    def __post_init__(self) -> None:
        if self.vdd <= 0.0:
            raise ValueError(f"vdd must be positive, got {self.vdd}")
        if not 0.0 < self.vth0 < self.vdd:
            raise ValueError(
                f"vth0 must lie strictly between 0 and vdd={self.vdd}, got {self.vth0}"
            )
        if self.alpha <= 0.0:
            raise ValueError(f"alpha must be positive, got {self.alpha}")
        if self.lmin <= 0.0 or self.wmin <= 0.0:
            raise ValueError("lmin and wmin must be positive")
        if min(self.r_unit, self.c_unit, self.c_par_unit, self.area_unit) <= 0.0:
            raise ValueError("r_unit, c_unit, c_par_unit and area_unit must be positive")

    @property
    def gate_overdrive(self) -> float:
        """Nominal gate overdrive ``vdd - vth0`` in volts."""
        return self.vdd - self.vth0

    @property
    def tau(self) -> float:
        """Characteristic RC time constant of a minimum inverter in seconds."""
        return self.r_unit * self.c_unit

    @property
    def tau_ps(self) -> float:
        """Characteristic RC time constant in picoseconds."""
        return self.tau * 1e12

    def drive_factor(self, vth: float, length: float | None = None) -> float:
        """Relative drive-resistance multiplier for a deviated device.

        The alpha-power law gives drive current proportional to
        ``(vdd - vth) ** alpha / L``; drive resistance is the reciprocal, so
        a device with raised threshold or lengthened channel is slower.

        Parameters
        ----------
        vth:
            Actual threshold voltage of the device in volts.  Must be below
            ``vdd``; values at or above the supply would turn the device off.
        length:
            Actual channel length in nanometres.  Defaults to the nominal
            ``lmin``.

        Returns
        -------
        float
            Multiplier to apply to the nominal drive resistance (1.0 at
            nominal process).
        """
        if vth >= self.vdd:
            raise ValueError(
                f"threshold voltage {vth} V is at or above the supply {self.vdd} V; "
                "the device does not turn on"
            )
        if length is None:
            length = self.lmin
        if length <= 0.0:
            raise ValueError(f"channel length must be positive, got {length}")
        overdrive_ratio = self.gate_overdrive / (self.vdd - vth)
        length_ratio = length / self.lmin
        return (overdrive_ratio**self.alpha) * length_ratio

    def scaled(self, **overrides: float) -> "Technology":
        """Return a copy of this technology with selected fields replaced."""
        values = {
            "name": self.name,
            "vdd": self.vdd,
            "vth0": self.vth0,
            "alpha": self.alpha,
            "lmin": self.lmin,
            "wmin": self.wmin,
            "r_unit": self.r_unit,
            "c_unit": self.c_unit,
            "c_par_unit": self.c_par_unit,
            "area_unit": self.area_unit,
        }
        unknown = set(overrides) - set(values)
        if unknown:
            raise TypeError(f"unknown technology fields: {sorted(unknown)}")
        values.update(overrides)
        return Technology(**values)


def default_technology() -> Technology:
    """Return the default synthetic 70 nm technology used across the repo."""
    return Technology()
