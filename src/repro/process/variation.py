"""Three-component process-variation model.

The paper decomposes parameter variation (Section 2.1) into:

* **inter-die** variation -- shared by every device on a die; shifts every
  stage delay in the same direction and makes stage delays correlated,
* **intra-die random** variation -- independent per device (random dopant
  fluctuation being the canonical source); makes stage delays independent,
* **intra-die systematic** variation -- spatially correlated across the die
  (channel length / oxide thickness gradients); makes stage delays
  *partially* correlated, with nearby stages more correlated than distant
  ones.

This module defines :class:`VariationModel`, the configuration object that
every Monte-Carlo and statistical-timing component consumes, and
:class:`VariationComponents`, a convenience container used when a caller
wants to inspect the three contributions separately.

Threshold-voltage variation carries the bulk of the delay sensitivity in
sub-100 nm nodes, so the model is expressed in terms of Vth sigmas (in
volts) plus a relative channel-length sigma.  The intra-die random Vth
sigma is specified *for a minimum-size device* and scales as
``1/sqrt(relative device area)``, following the random-dopant-fluctuation
model the paper cites ([6], Mahmoodi et al.).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class VariationComponents:
    """Per-gate standard deviations split into the three components.

    All values are threshold-voltage sigmas in volts (already scaled for
    device size where applicable), so they can be summed in quadrature to
    get the total per-gate Vth sigma.
    """

    inter_die: float
    intra_random: float
    intra_systematic: float

    @property
    def total(self) -> float:
        """Total Vth sigma (quadrature sum of the three components)."""
        return (
            self.inter_die**2 + self.intra_random**2 + self.intra_systematic**2
        ) ** 0.5


@dataclass(frozen=True)
class VariationModel:
    """Configuration of inter-die, intra-die random and systematic variation.

    Parameters
    ----------
    sigma_vth_inter:
        Inter-die threshold-voltage standard deviation in volts.  The paper
        sweeps 0, 20 and 40 mV for its Figure 5 studies.
    sigma_vth_random:
        Intra-die random (RDF) threshold-voltage standard deviation of a
        *minimum-size* device, in volts.  A device of relative drive size
        ``s`` sees ``sigma_vth_random / sqrt(s)``.
    sigma_vth_systematic:
        Intra-die systematic (spatially correlated) threshold-voltage
        standard deviation in volts.
    correlation_length:
        Characteristic length of the systematic component's exponential
        spatial correlation, as a fraction of the die edge (0..inf).  Larger
        values mean the whole die moves together; smaller values decorrelate
        distant gates.
    sigma_l_inter:
        Inter-die relative channel-length standard deviation
        (dimensionless, e.g. 0.03 for 3 %).
    sigma_l_systematic:
        Intra-die systematic relative channel-length standard deviation.
    """

    sigma_vth_inter: float = 0.020
    sigma_vth_random: float = 0.025
    sigma_vth_systematic: float = 0.012
    correlation_length: float = 0.5
    sigma_l_inter: float = 0.02
    sigma_l_systematic: float = 0.01

    def __post_init__(self) -> None:
        fields = {
            "sigma_vth_inter": self.sigma_vth_inter,
            "sigma_vth_random": self.sigma_vth_random,
            "sigma_vth_systematic": self.sigma_vth_systematic,
            "sigma_l_inter": self.sigma_l_inter,
            "sigma_l_systematic": self.sigma_l_systematic,
        }
        for name, value in fields.items():
            if value < 0.0:
                raise ValueError(f"{name} must be non-negative, got {value}")
        if self.correlation_length <= 0.0:
            raise ValueError(
                f"correlation_length must be positive, got {self.correlation_length}"
            )

    # ------------------------------------------------------------------
    # Named configurations used throughout the paper's experiments
    # ------------------------------------------------------------------
    @classmethod
    def intra_random_only(cls, sigma_vth_random: float = 0.025) -> "VariationModel":
        """Only random intra-die variation (Fig. 2(a): independent stages)."""
        return cls(
            sigma_vth_inter=0.0,
            sigma_vth_random=sigma_vth_random,
            sigma_vth_systematic=0.0,
            sigma_l_inter=0.0,
            sigma_l_systematic=0.0,
        )

    @classmethod
    def inter_only(cls, sigma_vth_inter: float = 0.040) -> "VariationModel":
        """Only inter-die variation (Fig. 2(b): perfectly correlated stages)."""
        return cls(
            sigma_vth_inter=sigma_vth_inter,
            sigma_vth_random=0.0,
            sigma_vth_systematic=0.0,
            sigma_l_inter=0.02,
            sigma_l_systematic=0.0,
        )

    @classmethod
    def combined(
        cls,
        sigma_vth_inter: float = 0.020,
        sigma_vth_random: float = 0.025,
        sigma_vth_systematic: float = 0.012,
        correlation_length: float = 0.5,
    ) -> "VariationModel":
        """Inter- and intra-die variation with both random and systematic parts
        (Fig. 2(c): partially correlated stages)."""
        return cls(
            sigma_vth_inter=sigma_vth_inter,
            sigma_vth_random=sigma_vth_random,
            sigma_vth_systematic=sigma_vth_systematic,
            correlation_length=correlation_length,
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def has_inter_die(self) -> bool:
        """Whether any inter-die component is present."""
        return self.sigma_vth_inter > 0.0 or self.sigma_l_inter > 0.0

    @property
    def has_intra_random(self) -> bool:
        """Whether the random intra-die component is present."""
        return self.sigma_vth_random > 0.0

    @property
    def has_intra_systematic(self) -> bool:
        """Whether the spatially correlated intra-die component is present."""
        return self.sigma_vth_systematic > 0.0 or self.sigma_l_systematic > 0.0

    def vth_components_for_size(self, relative_size: float) -> VariationComponents:
        """Vth sigma components seen by a device of the given relative size.

        Parameters
        ----------
        relative_size:
            Drive size of the device in multiples of a minimum-size device.
            Must be positive.
        """
        if relative_size <= 0.0:
            raise ValueError(f"relative_size must be positive, got {relative_size}")
        return VariationComponents(
            inter_die=self.sigma_vth_inter,
            intra_random=self.sigma_vth_random / relative_size**0.5,
            intra_systematic=self.sigma_vth_systematic,
        )

    def total_vth_sigma(self, relative_size: float = 1.0) -> float:
        """Total per-device Vth sigma for a device of ``relative_size``."""
        return self.vth_components_for_size(relative_size).total

    def with_inter_sigma(self, sigma_vth_inter: float) -> "VariationModel":
        """Return a copy with a different inter-die Vth sigma.

        Convenience for the Figure 5 sweeps, which vary only the inter-die
        strength while holding the intra-die components fixed.
        """
        return VariationModel(
            sigma_vth_inter=sigma_vth_inter,
            sigma_vth_random=self.sigma_vth_random,
            sigma_vth_systematic=self.sigma_vth_systematic,
            correlation_length=self.correlation_length,
            sigma_l_inter=self.sigma_l_inter if sigma_vth_inter > 0 else 0.0,
            sigma_l_systematic=self.sigma_l_systematic,
        )
