"""Resilient sweep execution: retries, timeouts, checkpoint/resume, chaos.

The layer between :class:`~repro.api.sweep.ScenarioSweep` and the process
pool.  :class:`ExecutionPolicy` says how points run (attempts, backoff,
timeouts, deadline, checkpoint directory); :func:`execute_tasks` runs them,
turning each failing point into a structured :class:`PointFailure` inside a
partial result instead of an aborted sweep, and recording what actually
happened in an :class:`ExecutionTrace`.  :class:`CheckpointStore` persists
completed points content-addressed on disk so interrupted sweeps resume
bit-identically, and :class:`FaultPlan` injects deterministic, replayable
failures (crash / slow / kill / corrupt) to prove every recovery path
works -- see ``repro.verify``'s ``sweep-fault-recovery`` oracle and the
chaos tests.
"""

from repro.robust.checkpoint import (
    CheckpointStore,
    resolved_store_spec,
    spec_digest,
)
from repro.robust.executor import SweepTask, create_pool, execute_tasks
from repro.robust.failures import (
    ExecutionTrace,
    PointFailure,
    PointTimeout,
    SweepExecutionError,
)
from repro.robust.faults import (
    CORRUPTED_RESULT,
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    apply_fault,
)
from repro.robust.policy import ExecutionPolicy

_SHARD_EXPORTS = (
    "merge_shard_results",
    "partition_tasks",
    "run_sharded",
    "shard_for_digest",
)


def __getattr__(name: str):
    # Lazy so `python -m repro.robust.shard` does not import the module
    # twice (once here, once as __main__) and warn about it.
    if name in _SHARD_EXPORTS:
        from repro.robust import shard

        return getattr(shard, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "CORRUPTED_RESULT",
    "FAULT_KINDS",
    "CheckpointStore",
    "ExecutionPolicy",
    "ExecutionTrace",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "PointFailure",
    "PointTimeout",
    "SweepExecutionError",
    "SweepTask",
    "apply_fault",
    "create_pool",
    "execute_tasks",
    "merge_shard_results",
    "partition_tasks",
    "resolved_store_spec",
    "run_sharded",
    "shard_for_digest",
    "spec_digest",
]
