"""Content-addressed on-disk checkpoint store for study results.

The specs already round-trip loss-free through JSON and the reports
(:class:`~repro.api.backends.DelayReport`,
:class:`~repro.api.design.DesignReport`) compare equal after a JSON round
trip, so persistence is just *canonical spec JSON -> SHA-256 digest ->
report JSON on disk*:

* the digest covers exactly the fields that determine the computation --
  ``(pipeline, variation, analysis)`` for an analysis study, ``(pipeline,
  variation, design, validation)`` for a design study -- so renaming a
  study or changing its query targets never misses the cache, and two
  sweeps over the same physical points share checkpoints;
* specs with a deferred (``None``) sampling seed must be resolved against
  the executing session *before* keying (:func:`resolved_store_spec`),
  otherwise two sessions with different root seeds would poison each
  other's entries;
* writes are atomic (temp file + ``os.replace``) so a sweep killed
  mid-write never leaves a truncated checkpoint, and unreadable or
  mismatched entries read as misses rather than crashes.

Layout on disk: ``<root>/<digest[:2]>/<digest>.json``, each file holding
``{"kind", "spec", "report"}`` (the spec payload is stored for audit and
for :meth:`CheckpointStore.entries`).

This store is the seed of ROADMAP item 5 (persistent result store +
resumable distributed sweeps): :class:`~repro.api.session.Session` accepts
a store as its read-through layer, and the sweep executor
(:mod:`repro.robust.executor`) checkpoints every completed point through
it, which is what makes killed-then-resumed sweeps bit-identical to
uninterrupted ones.
"""

from __future__ import annotations

import itertools
import json
import os
import pathlib
import tempfile
import threading
from typing import TYPE_CHECKING, Iterator, Union

# Spec identity (canonical payload + digest + seed resolution) is shared
# with the serving layer's request coalescing, so it lives in one place:
# ``repro.api.canonical``.  Re-exported here because the names are part of
# this module's public API (and the on-disk format they define predates the
# move -- the regression test in tests/test_canonical.py pins the digests).
from repro.api.canonical import (  # noqa: F401  (re-exports)
    resolved_store_spec,
    spec_digest,
    spec_store_payload,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.backends import DelayReport
    from repro.api.design import DesignReport
    from repro.api.spec import DesignStudySpec, StudySpec

    AnySpec = Union[StudySpec, DesignStudySpec]
    AnyReport = Union[DelayReport, DesignReport]

#: Process-wide suffix counter for temp-file names.  Combined with the pid
#: and thread id it makes every writer's temp path unique even when many
#: processes (shard workers) and threads (the serve bridge) materialise the
#: same digest at the same instant.
_TMP_COUNTER = itertools.count()


class CheckpointStore:
    """Content-addressed ``spec -> report`` store on the local filesystem.

    Safe for concurrent writers of the *same* entry (last atomic replace
    wins with identical content, since equal digests imply equal
    computations) and tolerant of torn files: a checkpoint that fails to
    parse, or whose stored kind disagrees with the requesting spec, reads
    as a miss.
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.writes = 0
        # Counter increments are read-modify-write; one store instance may be
        # driven from several serve-bridge threads at once.
        self._counter_lock = threading.Lock()

    # -- addressing ------------------------------------------------------
    def path_for(self, digest: str) -> pathlib.Path:
        """On-disk location of one digest's checkpoint file."""
        return self.root / digest[:2] / f"{digest}.json"

    def digest(self, spec: "AnySpec") -> str:
        """The spec's content address (see :func:`spec_digest`)."""
        return spec_digest(spec)

    # -- read / write ----------------------------------------------------
    def get(self, spec: "AnySpec") -> "AnyReport | None":
        """The stored report for ``spec``, or ``None`` on a miss."""
        from repro.api.backends import DelayReport
        from repro.api.design import DesignReport

        expected = spec_store_payload(spec)
        path = self.path_for(self.digest(spec))
        try:
            payload = json.loads(path.read_text())
            if payload.get("kind") != expected["kind"]:
                raise ValueError(
                    f"checkpoint kind {payload.get('kind')!r} does not match "
                    f"spec kind {expected['kind']!r}"
                )
            loader = (
                DesignReport.from_dict
                if expected["kind"] == "design"
                else DelayReport.from_dict
            )
            report = loader(payload["report"])
        except (OSError, ValueError, KeyError, TypeError):
            # Missing, torn, corrupt or mismatched entries are misses, never
            # crashes: the point simply recomputes (and rewrites the entry).
            with self._counter_lock:
                self.misses += 1
            return None
        with self._counter_lock:
            self.hits += 1
        return report

    def put(self, spec: "AnySpec", report: "AnyReport") -> str:
        """Persist ``report`` under ``spec``'s digest (atomic); returns it."""
        digest = self.digest(spec)
        path = self.path_for(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "kind": spec_store_payload(spec)["kind"],
            "spec": spec_store_payload(spec),
            "report": report.to_dict(),
        }
        handle, tmp_name = self._open_tmp(path.parent, digest)
        try:
            with os.fdopen(handle, "w") as stream:
                json.dump(payload, stream)
            try:
                os.replace(tmp_name, path)
            except OSError:
                # The losing side of a concurrent materialisation of the same
                # digest (possible on platforms where replace can fail while
                # the winner holds the destination).  Equal digests imply
                # equal computations, so the winner's bytes are ours: drop
                # the temp file and count the write as served.
                if not path.exists():
                    raise
                self._unlink_quietly(tmp_name)
        except BaseException:
            self._unlink_quietly(tmp_name)
            raise
        with self._counter_lock:
            self.writes += 1
        return digest

    def _open_tmp(self, parent: pathlib.Path, digest: str) -> tuple[int, str]:
        """An exclusively created temp file unique per process *and* thread.

        The name carries pid, thread id and a process-wide counter, so two
        shard workers (or serve-bridge threads) materialising the same digest
        concurrently can never collide on one temp path; a stale leftover
        from a crashed run with the same triple falls back to ``mkstemp``.
        """
        name = (
            f".{digest[:8]}.{os.getpid()}.{threading.get_ident():x}."
            f"{next(_TMP_COUNTER)}.tmp"
        )
        tmp_path = parent / name
        try:
            handle = os.open(
                tmp_path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o600
            )
        except FileExistsError:
            return tempfile.mkstemp(
                dir=parent, prefix=f".{digest[:8]}.", suffix=".tmp"
            )
        return handle, str(tmp_path)

    @staticmethod
    def _unlink_quietly(tmp_name: str) -> None:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass

    # -- introspection ---------------------------------------------------
    def __contains__(self, spec: object) -> bool:
        try:
            return self.path_for(spec_digest(spec)).exists()  # type: ignore[arg-type]
        except TypeError:
            return False

    def _files(self) -> Iterator[pathlib.Path]:
        return self.root.glob("??/*.json")

    def __len__(self) -> int:
        return sum(1 for _ in self._files())

    def digests(self) -> list[str]:
        """Every stored digest (sorted, for stable iteration)."""
        return sorted(path.stem for path in self._files())

    def clear(self) -> int:
        """Delete every checkpoint file; returns how many were removed."""
        removed = 0
        for path in list(self._files()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
