"""The resilient sweep execution engine.

:func:`execute_tasks` evaluates a list of :class:`SweepTask` s on a session
under an :class:`~repro.robust.policy.ExecutionPolicy`, optionally fanning
out over a process pool, and returns ``(points, failures, trace)``:

* every successful point is a :class:`~repro.api.sweep.SweepPoint`;
* every point that exhausted its attempts is a structured
  :class:`~repro.robust.failures.PointFailure` -- one bad point never
  discards the rest of the sweep;
* the :class:`~repro.robust.failures.ExecutionTrace` records what the
  engine actually did (pool kind, serial fallback and its reason, retries,
  preemptive timeouts, worker respawns, checkpoint traffic, deadline).

Recovery behaviour, by failure mode:

* **exception in a point** -- consumes one attempt; retried up to
  ``policy.max_retries`` times with deterministic exponential backoff.
* **slow point** -- ``policy.point_timeout`` is enforced *preemptively* in
  parallel runs: the stuck worker's task is marked failed, the pool (which
  cannot cancel a running task) is torn down and respawned, and innocent
  in-flight points are re-enqueued *without* an attempt penalty.  Serial
  runs check the timeout after the attempt returns -- the interpreter
  cannot preempt its own frame -- so a slow point still consumes an attempt
  and retries deterministically.
* **dead worker** (``BrokenProcessPool``) -- the pool cannot say which task
  killed it, so every in-flight task is charged one attempt and re-enqueued
  (retries cover the innocents), and the pool is respawned.
* **pool unavailable / respawn failure** -- execution degrades to the
  serial engine and the trace records why (no more silent fallback).
* **sweep deadline** -- no new points are submitted once
  ``policy.sweep_deadline`` expires; in-flight points are drained and every
  unsubmitted point becomes a structured deadline failure.
* **checkpointing** -- with ``policy.checkpoint_dir`` set, completed points
  are persisted through a :class:`~repro.robust.checkpoint.CheckpointStore`
  as they finish and already-stored points are served from disk before any
  submission, which is what makes killed-then-resumed sweeps bit-identical
  to uninterrupted ones (per-point seeds are baked into the task specs).

This module imports ``repro.api`` only lazily (inside functions), so the
spec layer can import the robust package without cycles.
"""

from __future__ import annotations

import time
import traceback as traceback_module
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.robust.checkpoint import CheckpointStore, resolved_store_spec
from repro.robust.failures import ExecutionTrace, PointFailure, PointTimeout
from repro.robust.faults import CORRUPTED_RESULT, FaultPlan, apply_fault
from repro.robust.policy import ExecutionPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.session import Session
    from repro.api.sweep import SweepPoint

#: Smallest wait used when polling in-flight futures with a pending wakeup.
_MIN_WAIT = 0.005


@dataclass(frozen=True)
class SweepTask:
    """One unit of sweep work: a fully resolved spec plus its position."""

    index: int
    coords: tuple[tuple[str, Any], ...]
    spec: Any  # StudySpec | DesignStudySpec, seeds already resolved


@dataclass
class _TaskState:
    """Coordinator-side bookkeeping for one task across its attempts."""

    task: SweepTask
    attempt: int = 1
    ready_at: float = 0.0  #: monotonic time before which it must not resubmit
    started: float = 0.0  #: monotonic submission time of the current attempt
    store_spec: Any = field(default=None, repr=False)


def _valid_report(report: Any) -> bool:
    """Whether a worker's payload is an actual report object."""
    from repro.api.backends import DelayReport
    from repro.api.design import DesignReport

    return isinstance(report, (DelayReport, DesignReport))


def _make_point(task: SweepTask, report: Any) -> "SweepPoint":
    from repro.api.sweep import SweepPoint

    return SweepPoint(task.index, task.coords, task.spec, report)


def _deadline_failure(task: SweepTask, attempts: int) -> PointFailure:
    return PointFailure(
        index=task.index,
        coords=task.coords,
        error_type="SweepDeadlineExceeded",
        message="sweep deadline expired before this point could run",
        attempts=attempts,
    )


def _failure_from_exception(
    task: SweepTask, exc: BaseException, attempts: int, elapsed: float
) -> PointFailure:
    return PointFailure(
        index=task.index,
        coords=task.coords,
        error_type=type(exc).__name__,
        message=str(exc),
        traceback="".join(
            traceback_module.format_exception(type(exc), exc, exc.__traceback__)
        ),
        attempts=attempts,
        elapsed=elapsed,
        exception=exc,
    )


def _pool_probe() -> None:
    """No-op task used to force worker spawning before committing to a pool."""


def create_pool(n_jobs: int):
    """``(pool, None)`` for a verified-working process pool, else ``(None, reason)``.

    ``ProcessPoolExecutor`` spawns workers lazily, so constructing one can
    succeed on platforms where forking is forbidden; a probe task surfaces
    the failure here -- with a recordable reason -- instead of mid-sweep.
    """
    try:
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool
    except ImportError as exc:  # pragma: no cover - stdlib always present
        return None, f"concurrent.futures unavailable: {exc}"
    try:
        pool = ProcessPoolExecutor(max_workers=n_jobs)
    except (OSError, PermissionError, ValueError) as exc:
        return None, f"pool construction failed: {type(exc).__name__}: {exc}"
    try:
        pool.submit(_pool_probe).result()
    except (OSError, PermissionError, BrokenProcessPool) as exc:
        # wait=True: the probe pool spawned real processes -- reap them
        # rather than leaking zombies behind the fallback.
        pool.shutdown(wait=True, cancel_futures=True)
        return None, f"pool probe failed: {type(exc).__name__}: {exc}"
    return pool, None


def _robust_worker(payload: tuple) -> tuple:
    """Process-pool entrypoint: one attempt of one point, errors as data.

    Shares ``repro.api.sweep._worker_session``'s per-process session (one
    session per worker, rebuilt only when technology or root seed change)
    but never raises: failures come back as structured ``("err", ...)``
    tuples so the coordinator can retry without losing the exception detail
    across the process boundary.
    """
    index, spec, technology, root_seed, fault = payload
    start = time.monotonic()
    try:
        from repro.api.sweep import _worker_session

        session = _worker_session(technology, root_seed)
        corrupt = apply_fault(fault, parallel=True)
        report = CORRUPTED_RESULT if corrupt else session.run(spec)
        return ("ok", index, report, time.monotonic() - start)
    except Exception as exc:
        return (
            "err",
            index,
            type(exc).__name__,
            str(exc),
            traceback_module.format_exc(),
            time.monotonic() - start,
        )


class _Engine:
    """Shared state of one :func:`execute_tasks` run."""

    def __init__(
        self,
        session: "Session",
        policy: ExecutionPolicy,
        fault_plan: FaultPlan | None,
        trace: ExecutionTrace,
    ) -> None:
        self.session = session
        self.policy = policy
        self.fault_plan = fault_plan
        self.trace = trace
        self.store = (
            CheckpointStore(policy.checkpoint_dir)
            if policy.checkpoint_dir is not None
            else None
        )
        self.start = time.monotonic()
        self.points: list["SweepPoint"] = []
        self.failures: list[PointFailure] = []

    # -- shared helpers -------------------------------------------------
    def deadline_exceeded(self) -> bool:
        deadline = self.policy.sweep_deadline
        return deadline is not None and time.monotonic() - self.start > deadline

    def deadline_at(self) -> float | None:
        if self.policy.sweep_deadline is None:
            return None
        return self.start + self.policy.sweep_deadline

    def fault_for(self, index: int, attempt: int):
        if self.fault_plan is None:
            return None
        return self.fault_plan.fault_for(index, attempt)

    def checkpoint_lookup(self, state: _TaskState) -> bool:
        """Serve the task from the checkpoint store if possible."""
        if self.store is None:
            return False
        if state.store_spec is None:
            state.store_spec = resolved_store_spec(state.task.spec, self.session)
        report = self.store.get(state.store_spec)
        if report is None:
            return False
        self.trace.checkpoint_hits += 1
        self.points.append(_make_point(state.task, report))
        return True

    def checkpoint_write(self, state: _TaskState, report: Any) -> None:
        if self.store is None:
            return
        if state.store_spec is None:
            state.store_spec = resolved_store_spec(state.task.spec, self.session)
        self.store.put(state.store_spec, report)
        self.trace.checkpoint_writes += 1

    # -- serial engine --------------------------------------------------
    def run_serial(self, states: deque[_TaskState]) -> None:
        """Evaluate the remaining states in order on the caller's session.

        Resumes each state at its current attempt count, so the parallel
        engine can hand half-retried work over on pool loss without
        granting extra attempts.
        """
        while states:
            state = states.popleft()
            if self.deadline_exceeded():
                self.trace.deadline_hit = True
                self.failures.append(
                    _deadline_failure(state.task, attempts=state.attempt - 1)
                )
                continue
            if self.checkpoint_lookup(state):
                continue
            self._run_point_serial(state)

    def _attempt_elapsed(self, attempt_start: float, io_before: float) -> float:
        """Wall-clock of one attempt minus the session's store I/O inside it.

        ``Session(store=...)`` read-through does disk work inside
        ``session.run``; charging that against ``policy.point_timeout``
        would fail perfectly healthy points behind a slow (e.g. networked)
        store, so the attempt clock covers the evaluation only.
        """
        io_spent = (
            getattr(self.session, "store_io_seconds", 0.0) - io_before
        )
        return max(0.0, time.monotonic() - attempt_start - io_spent)

    def _run_point_serial(self, state: _TaskState) -> None:
        task = state.task
        last: tuple[BaseException, int, float] | None = None
        attempt = state.attempt
        while attempt <= self.policy.max_attempts:
            if attempt > state.attempt or last is not None:
                if self.deadline_exceeded():
                    self.trace.deadline_hit = True
                    break
                delay = self.policy.backoff_delay(task.index, attempt - 1)
                if delay > 0.0:
                    time.sleep(delay)
                self.trace.n_retries += 1
            attempt_start = time.monotonic()
            io_before = getattr(self.session, "store_io_seconds", 0.0)
            try:
                corrupt = apply_fault(
                    self.fault_for(task.index, attempt), parallel=False
                )
                report = (
                    CORRUPTED_RESULT if corrupt else self.session.run(task.spec)
                )
                if not _valid_report(report):
                    raise TypeError(
                        f"point {task.index} returned a corrupted result "
                        f"({type(report).__name__}, not a report)"
                    )
                elapsed = self._attempt_elapsed(attempt_start, io_before)
                if (
                    self.policy.point_timeout is not None
                    and elapsed > self.policy.point_timeout
                ):
                    self.trace.n_timeouts += 1
                    raise PointTimeout(
                        f"point {task.index} attempt {attempt} took "
                        f"{elapsed:.3f}s > point_timeout="
                        f"{self.policy.point_timeout}s"
                    )
            except Exception as exc:
                last = (exc, attempt, self._attempt_elapsed(attempt_start, io_before))
                attempt += 1
                continue
            self.checkpoint_write(state, report)
            self.points.append(_make_point(task, report))
            return
        assert last is not None
        exc, attempts, elapsed = last
        self.failures.append(
            _failure_from_exception(task, exc, attempts=attempts, elapsed=elapsed)
        )

    # -- parallel engine ------------------------------------------------
    def run_parallel(self, states: deque[_TaskState], n_jobs: int) -> None:
        from concurrent.futures import FIRST_COMPLETED, wait
        from concurrent.futures.process import BrokenProcessPool

        # Checkpoint pre-pass before spawning anything: a fully resumed
        # sweep never pays pool startup.
        if self.store is not None:
            remaining: deque[_TaskState] = deque()
            for state in states:
                if not self.checkpoint_lookup(state):
                    remaining.append(state)
            states = remaining
        if not states:
            self.trace.pool_kind = "serial"
            return

        pool, reason = create_pool(n_jobs)
        if pool is None:
            self.trace.pool_kind = "serial"
            self.trace.fallback_reason = reason
            self.run_serial(states)
            return
        self.trace.pool_kind = "process"

        inflight: dict[Any, _TaskState] = {}

        def submit(state: _TaskState) -> None:
            payload = (
                state.task.index,
                state.task.spec,
                self.session.technology,
                self.session.root_seed,
                self.fault_for(state.task.index, state.attempt),
            )
            state.started = time.monotonic()
            inflight[pool.submit(_robust_worker, payload)] = state

        def attempt_failed(
            state: _TaskState, exc: BaseException, elapsed: float
        ) -> None:
            """Charge one attempt; re-enqueue with backoff or finalise."""
            if state.attempt >= self.policy.max_attempts:
                self.failures.append(
                    _failure_from_exception(
                        state.task, exc, attempts=state.attempt, elapsed=elapsed
                    )
                )
                return
            delay = self.policy.backoff_delay(state.task.index, state.attempt)
            state.attempt += 1
            state.ready_at = time.monotonic() + delay
            self.trace.n_retries += 1
            states.append(state)

        def respawn(why: str) -> bool:
            """Replace a dead/abandoned pool; degrade to serial on failure."""
            nonlocal pool
            pool.shutdown(wait=False, cancel_futures=True)
            pool, reason = create_pool(n_jobs)
            self.trace.n_worker_respawns += 1
            if pool is None:
                self.trace.fallback_reason = f"{why}; respawn failed: {reason}"
                return False
            return True

        try:
            while states or inflight:
                now = time.monotonic()
                if self.deadline_exceeded():
                    # Stop submitting; drain in-flight below, fail the rest.
                    if states:
                        self.trace.deadline_hit = True
                        for state in states:
                            self.failures.append(
                                _deadline_failure(
                                    state.task, attempts=state.attempt - 1
                                )
                            )
                        states.clear()
                    if not inflight:
                        break
                # Submit every ready state up to one task per worker, so a
                # submitted attempt is (approximately) a running attempt and
                # per-point timeouts measure execution, not queueing.
                rotations = 0
                while states and len(inflight) < n_jobs and not self.deadline_exceeded():
                    if states[0].ready_at <= now:
                        submit(states.popleft())
                        rotations = 0
                    else:
                        states.rotate(-1)
                        rotations += 1
                        if rotations >= len(states):
                            break  # every remaining state is backing off
                if not inflight:
                    # Nothing running: sleep to the earliest backoff wakeup.
                    wakeup = min(state.ready_at for state in states)
                    time.sleep(max(_MIN_WAIT, wakeup - time.monotonic()))
                    continue
                done, _ = wait(
                    set(inflight),
                    timeout=self._wait_timeout(states, inflight),
                    return_when=FIRST_COMPLETED,
                )
                broken: BaseException | None = None
                for future in done:
                    state = inflight.pop(future)
                    elapsed = time.monotonic() - state.started
                    try:
                        result = future.result()
                    except BrokenProcessPool as exc:
                        broken = exc
                        attempt_failed(state, exc, elapsed)
                        continue
                    except Exception as exc:  # pragma: no cover - defensive
                        attempt_failed(state, exc, elapsed)
                        continue
                    if result[0] == "ok":
                        report = result[2]
                        if _valid_report(report):
                            self.checkpoint_write(state, report)
                            self.points.append(_make_point(state.task, report))
                        else:
                            attempt_failed(
                                state,
                                TypeError(
                                    f"point {state.task.index} returned a "
                                    f"corrupted result "
                                    f"({type(report).__name__}, not a report)"
                                ),
                                result[3],
                            )
                    else:
                        _, _, error_type, message, tb_text, w_elapsed = result
                        self._structured_attempt_failed(
                            state, error_type, message, tb_text, w_elapsed,
                            attempt_failed,
                        )
                if broken is not None:
                    # The pool cannot identify the culprit: charge every
                    # in-flight task one attempt (retries cover innocents)
                    # and replace the pool.
                    for future, state in list(inflight.items()):
                        attempt_failed(
                            state, broken, time.monotonic() - state.started
                        )
                    inflight.clear()
                    if not respawn("process pool broke"):
                        self.run_serial(states)
                        return
                    continue
                self._reap_timeouts(states, inflight, attempt_failed, respawn)
        finally:
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)

    def _structured_attempt_failed(
        self, state, error_type, message, tb_text, elapsed, attempt_failed
    ) -> None:
        """Route a worker's structured ``("err", ...)`` through retry logic.

        The original exception object stayed in the worker process, so a
        finalised failure is reconstructed from the shipped strings; the
        retry path only needs attempt accounting, which ``attempt_failed``
        already does (it cannot finalise here -- the attempt bound was
        checked first, so the surrogate exception it holds is never
        recorded).
        """
        if state.attempt >= self.policy.max_attempts:
            self.failures.append(
                PointFailure(
                    index=state.task.index,
                    coords=state.task.coords,
                    error_type=error_type,
                    message=message,
                    traceback=tb_text,
                    attempts=state.attempt,
                    elapsed=elapsed,
                )
            )
            return
        attempt_failed(state, RuntimeError(message), elapsed)

    def _wait_timeout(
        self, states: deque[_TaskState], inflight: dict
    ) -> float | None:
        """Seconds to block in ``wait()``: the nearest scheduled wakeup."""
        candidates: list[float] = []
        if self.policy.point_timeout is not None:
            candidates.extend(
                state.started + self.policy.point_timeout
                for state in inflight.values()
            )
        deadline = self.deadline_at()
        if deadline is not None:
            candidates.append(deadline)
        candidates.extend(
            state.ready_at for state in states if state.ready_at > 0.0
        )
        if not candidates:
            return None
        return max(_MIN_WAIT, min(candidates) - time.monotonic())

    def _reap_timeouts(
        self, states: deque[_TaskState], inflight: dict, attempt_failed, respawn
    ) -> None:
        """Preemptive per-point timeout: abandon stuck workers, spare the rest."""
        if self.policy.point_timeout is None or not inflight:
            return
        now = time.monotonic()
        expired = [
            (future, state)
            for future, state in inflight.items()
            if now - state.started > self.policy.point_timeout
        ]
        if not expired:
            return
        for future, state in expired:
            del inflight[future]
            self.trace.n_timeouts += 1
            attempt_failed(
                state,
                PointTimeout(
                    f"point {state.task.index} attempt {state.attempt} exceeded "
                    f"point_timeout={self.policy.point_timeout}s"
                ),
                now - state.started,
            )
        # A ProcessPoolExecutor cannot cancel a *running* task, so enforcing
        # the timeout means abandoning the whole pool.  In-flight innocents
        # are re-enqueued without an attempt penalty.
        for future, state in list(inflight.items()):
            state.started = 0.0
            states.append(state)
        inflight.clear()
        if not respawn("point timeout abandoned a stuck worker"):
            self.run_serial(states)
            states.clear()


def execute_tasks(
    tasks: list[SweepTask],
    session: "Session",
    policy: ExecutionPolicy | None = None,
    n_jobs: int | None = None,
    fault_plan: FaultPlan | None = None,
) -> tuple[list["SweepPoint"], list[PointFailure], ExecutionTrace]:
    """Evaluate sweep tasks under a policy; never raises for point failures.

    Returns ``(points, failures, trace)``: successful
    :class:`~repro.api.sweep.SweepPoint` s (sweep order), structured
    :class:`~repro.robust.failures.PointFailure` s for every point that
    exhausted its attempts, and the
    :class:`~repro.robust.failures.ExecutionTrace` of what the engine did.
    """
    policy = policy if policy is not None else ExecutionPolicy()
    trace = ExecutionTrace(
        n_jobs=n_jobs,
        n_points=len(tasks),
        fault_plan_seed=fault_plan.seed if fault_plan is not None else None,
    )
    engine = _Engine(session, policy, fault_plan, trace)
    states = deque(_TaskState(task=task) for task in tasks)
    if n_jobs is None or n_jobs <= 1:
        trace.pool_kind = "serial"
        engine.run_serial(states)
    else:
        engine.run_parallel(states, n_jobs)
    engine.points.sort(key=lambda point: point.index)
    engine.failures.sort(key=lambda failure: failure.index)
    trace.n_completed = len(engine.points)
    trace.n_failed = len(engine.failures)
    trace.elapsed = time.monotonic() - engine.start
    return engine.points, engine.failures, trace
