"""Structured failure records: what a resilient sweep reports instead of dying.

A failing sweep point becomes a :class:`PointFailure` -- exception type,
message, traceback, attempt count, elapsed seconds -- inside a *partial*
:class:`~repro.api.sweep.SweepResult`; the execution layer itself leaves a
:class:`ExecutionTrace` (pool kind, fallback reason, retries, worker
respawns, checkpoint traffic) attached to the result, so "the pool silently
fell back to serial" is a recorded fact rather than a mystery.
:class:`SweepExecutionError` is what ``SweepResult.raise_on_failure`` turns
the failure list into when the caller wants the old all-or-nothing
semantics back.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class PointFailure:
    """One sweep point that exhausted its attempts (or never got one).

    Attributes
    ----------
    index / coords:
        The point's position and axis coordinates in the sweep.
    error_type / message / traceback:
        The final attempt's exception, as strings (structured, so failures
        survive pickling across process boundaries and JSON serialisation).
    attempts:
        Attempts actually made; 0 means the point was never submitted
        (sweep deadline expired first).
    elapsed:
        Wall-clock seconds spent on the final attempt.
    exception:
        The original exception object when it is available (serial
        execution in the calling process); ``None`` for failures imported
        from worker processes.  Excluded from equality.
    """

    index: int
    coords: tuple[tuple[str, Any], ...]
    error_type: str
    message: str
    traceback: str = ""
    attempts: int = 0
    elapsed: float = 0.0
    exception: BaseException | None = field(
        default=None, compare=False, repr=False
    )

    @property
    def is_timeout(self) -> bool:
        """Whether the point died to the per-point timeout."""
        return self.error_type == "PointTimeout"

    @property
    def is_deadline(self) -> bool:
        """Whether the point was never run because the sweep deadline hit."""
        return self.error_type == "SweepDeadlineExceeded"

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe view (the live exception object is dropped)."""
        return {
            "index": self.index,
            "coords": [list(pair) for pair in self.coords],
            "error_type": self.error_type,
            "message": self.message,
            "traceback": self.traceback,
            "attempts": self.attempts,
            "elapsed": self.elapsed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PointFailure":
        """Rebuild a failure from :meth:`to_dict` output (exception stays lost).

        The live exception object never crosses a serialisation boundary;
        everything observable (type, message, traceback, attempts, elapsed)
        round-trips, so ``to_dict -> from_dict`` compares equal
        (``exception`` is excluded from equality).
        """
        return cls(
            index=int(data["index"]),
            coords=tuple((str(k), v) for k, v in data.get("coords", [])),
            error_type=str(data["error_type"]),
            message=str(data["message"]),
            traceback=str(data.get("traceback", "")),
            attempts=int(data.get("attempts", 0)),
            elapsed=float(data.get("elapsed", 0.0)),
        )

    def __str__(self) -> str:
        return (
            f"point {self.index} failed after {self.attempts} attempt(s): "
            f"{self.error_type}: {self.message}"
        )


class PointTimeout(Exception):
    """Raised (or recorded) when one attempt exceeds ``policy.point_timeout``."""


class SweepExecutionError(RuntimeError):
    """A sweep had failing points and the caller asked for strict semantics.

    Carries the full failure list; ``__cause__`` is set to the first
    original exception when one is available, so tracebacks stay useful.
    """

    def __init__(self, failures: tuple[PointFailure, ...]) -> None:
        self.failures = tuple(failures)
        preview = "; ".join(str(f) for f in self.failures[:3])
        more = len(self.failures) - 3
        if more > 0:
            preview += f"; ... and {more} more"
        super().__init__(
            f"{len(self.failures)} sweep point(s) failed: {preview}"
        )


@dataclass
class ExecutionTrace:
    """What the execution layer actually did to produce a sweep result.

    Mutable by design: the executor accumulates it while running, then
    attaches it to the :class:`~repro.api.sweep.SweepResult`.  Timing
    fields (``elapsed``) are wall-clock and therefore excluded from any
    determinism comparison -- compare :meth:`deterministic_dict` instead.
    """

    pool_kind: str = "serial"  #: ``"process"``, ``"shard"`` or ``"serial"``
    fallback_reason: str | None = None  #: why a requested pool degraded to serial
    n_jobs: int | None = None
    n_shards: int | None = None  #: shard-runner fan-out, if one was used
    n_points: int = 0
    n_completed: int = 0
    n_failed: int = 0
    n_retries: int = 0
    n_timeouts: int = 0
    n_worker_respawns: int = 0
    checkpoint_hits: int = 0
    checkpoint_writes: int = 0
    deadline_hit: bool = False
    fault_plan_seed: int | None = None
    elapsed: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            f.name: getattr(self, f.name) for f in dataclasses.fields(self)
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExecutionTrace":
        """Rebuild a trace from :meth:`to_dict` output (loss-free)."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown ExecutionTrace field(s): {sorted(unknown)}")
        return cls(**data)

    def deterministic_dict(self) -> dict[str, Any]:
        """The trace minus wall-clock fields (for replay comparisons)."""
        data = self.to_dict()
        data.pop("elapsed")
        return data

    def merge(self, part: "ExecutionTrace") -> None:
        """Fold another trace's counters into this one.

        This is how the study server folds per-batch traces into one
        stream-level trace and how the shard runner folds per-shard traces
        into the merged result's: additive counters accumulate, flags OR,
        and the first recorded fallback reason wins.  ``pool_kind`` tracks
        the most recent part (the shard runner overwrites it afterwards).
        """
        self.pool_kind = part.pool_kind
        if part.fallback_reason and not self.fallback_reason:
            self.fallback_reason = part.fallback_reason
        self.n_completed += part.n_completed
        self.n_failed += part.n_failed
        self.n_retries += part.n_retries
        self.n_timeouts += part.n_timeouts
        self.n_worker_respawns += part.n_worker_respawns
        self.checkpoint_hits += part.checkpoint_hits
        self.checkpoint_writes += part.checkpoint_writes
        self.deadline_hit = self.deadline_hit or part.deadline_hit

    def __str__(self) -> str:
        parts = [
            f"pool={self.pool_kind}",
            f"points={self.n_completed}/{self.n_points} ok",
            f"failed={self.n_failed}",
            f"retries={self.n_retries}",
        ]
        if self.n_shards:
            parts.insert(1, f"shards={self.n_shards}")
        if self.fallback_reason:
            parts.append(f"fallback={self.fallback_reason!r}")
        if self.n_worker_respawns:
            parts.append(f"respawns={self.n_worker_respawns}")
        if self.n_timeouts:
            parts.append(f"timeouts={self.n_timeouts}")
        if self.checkpoint_hits or self.checkpoint_writes:
            parts.append(
                f"checkpoint={self.checkpoint_hits} hits/"
                f"{self.checkpoint_writes} writes"
            )
        if self.deadline_hit:
            parts.append("deadline hit")
        return "ExecutionTrace(" + ", ".join(parts) + ")"
