"""Deterministic fault injection: replayable chaos for the execution layer.

A :class:`FaultPlan` is pure data -- frozen, picklable, JSON-round-trippable
-- mapping sweep points to injected failures, in the same spirit as the
:class:`~repro.verify.scenarios.ScenarioFuzzer`: seeded, enumerable,
replayable.  The executor consults the plan before evaluating each attempt
of each point and applies whatever fault it prescribes:

=============  ===============================================================
``"raise"``    the attempt raises :class:`InjectedFault`
``"timeout"``  the attempt sleeps ``delay`` seconds first (trips a
               ``point_timeout`` when one is configured, otherwise just a
               slow point)
``"kill"``     the worker process dies mid-task (``os._exit``); in serial
               execution -- where killing would take the coordinator down
               too -- a surrogate :class:`InjectedFault` is raised instead
``"corrupt"``  the attempt *returns* a wrong-typed payload instead of a
               report, exercising the coordinator's result validation
=============  ===============================================================

``FaultSpec.attempts`` bounds how many attempts of the point the fault hits:
``1`` makes a *flaky* point (first attempt fails, a retry succeeds), ``-1``
makes a *persistent* one (every attempt fails, the point ends as a
:class:`~repro.robust.failures.PointFailure`).

No module here imports anything from ``repro.api`` -- plans must be
shippable to worker processes and importable from the spec layer without
cycles.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

import numpy as np

FAULT_KINDS = ("raise", "timeout", "kill", "corrupt")

#: Sentinel a corrupted attempt yields instead of a report.  A plain string
#: (picklable, obviously not a DelayReport/DesignReport) so the
#: coordinator's type validation is what catches it.
CORRUPTED_RESULT = "__repro_corrupted_result__"

#: Exit code used by injected worker kills (visible in pool diagnostics).
KILL_EXIT_CODE = 17


class InjectedFault(RuntimeError):
    """The error a ``"raise"`` (or serial ``"kill"``) fault produces."""


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault: which point, what kind, how persistently.

    Parameters
    ----------
    point:
        Sweep-point index the fault targets.
    kind:
        One of :data:`FAULT_KINDS`.
    attempts:
        Number of attempts of the point the fault applies to: ``1`` hits
        only the first attempt (a flaky point), ``k`` hits attempts
        ``1..k``, ``-1`` hits every attempt (a persistent failure).
    delay:
        Seconds a ``"timeout"`` fault sleeps before the attempt proceeds.
    """

    point: int
    kind: str
    attempts: int = 1
    delay: float = 0.0

    def __post_init__(self) -> None:
        if self.point < 0:
            raise ValueError(f"point must be non-negative, got {self.point}")
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        if self.attempts != -1 and self.attempts < 1:
            raise ValueError(
                f"attempts must be -1 (always) or >= 1, got {self.attempts}"
            )
        if self.delay < 0.0:
            raise ValueError(f"delay must be non-negative, got {self.delay}")

    def applies(self, attempt: int) -> bool:
        """Whether this fault fires on the given (1-based) attempt."""
        if attempt < 1:
            raise ValueError(f"attempt is 1-based, got {attempt}")
        return self.attempts == -1 or attempt <= self.attempts

    def to_dict(self) -> dict[str, Any]:
        return {
            f.name: getattr(self, f.name) for f in dataclasses.fields(self)
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSpec":
        return cls(**dict(data))


@dataclass(frozen=True)
class FaultPlan:
    """A replayable set of injected faults for one sweep execution.

    Build one explicitly from :class:`FaultSpec` entries, or generate one
    deterministically with :meth:`seeded`.  The plan is consulted per
    (point, attempt); the first listed fault for that point whose
    ``attempts`` window covers the attempt wins.
    """

    faults: tuple[FaultSpec, ...] = ()
    seed: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        for fault in self.faults:
            if not isinstance(fault, FaultSpec):
                raise TypeError(
                    f"faults must be FaultSpec instances, got {type(fault).__name__}"
                )

    def __len__(self) -> int:
        return len(self.faults)

    def fault_for(self, point: int, attempt: int) -> FaultSpec | None:
        """The fault (if any) injected into this attempt of this point."""
        for fault in self.faults:
            if fault.point == point and fault.applies(attempt):
                return fault
        return None

    def faulted_points(self) -> tuple[int, ...]:
        """Sorted indices of every point the plan touches."""
        return tuple(sorted({fault.point for fault in self.faults}))

    @classmethod
    def seeded(
        cls,
        seed: int,
        n_points: int,
        rate: float = 0.25,
        kinds: Sequence[str] = ("raise",),
        attempts: int = 1,
        delay: float = 0.0,
    ) -> "FaultPlan":
        """Generate a plan by seeded coin-flips over the points.

        Each point is faulted with probability ``rate``; the kind is drawn
        uniformly from ``kinds``.  Identical ``(seed, n_points, rate,
        kinds, attempts, delay)`` always produce the identical plan --
        chaos you can put in a bug report.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        kinds = tuple(kinds)
        if not kinds:
            raise ValueError("kinds must name at least one fault kind")
        for kind in kinds:
            if kind not in FAULT_KINDS:
                raise ValueError(
                    f"kind must be one of {FAULT_KINDS}, got {kind!r}"
                )
        rng = np.random.default_rng(np.random.SeedSequence(int(seed)))
        faults = []
        for point in range(int(n_points)):
            # Draw both variates unconditionally so each point's outcome is
            # independent of every other point's fault/no-fault decision.
            hit = rng.uniform() < rate
            kind = kinds[int(rng.integers(len(kinds)))]
            if hit:
                faults.append(
                    FaultSpec(
                        point=point, kind=kind, attempts=attempts, delay=delay
                    )
                )
        return cls(tuple(faults), seed=int(seed))

    # -- serialisation --------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "faults": [fault.to_dict() for fault in self.faults],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        return cls(
            faults=tuple(
                FaultSpec.from_dict(entry) for entry in data.get("faults", ())
            ),
            seed=data.get("seed"),
        )

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))


def apply_fault(fault: FaultSpec | None, parallel: bool = False) -> bool:
    """Perform a fault's side effect inside an attempt.

    Returns ``True`` when the attempt's *result* should be corrupted
    (``kind == "corrupt"``; the engine substitutes :data:`CORRUPTED_RESULT`
    for the real report and lets the coordinator's validation catch it).
    ``"raise"`` raises :class:`InjectedFault`; ``"timeout"`` sleeps and
    lets the attempt proceed; ``"kill"`` exits the worker process with
    :data:`KILL_EXIT_CODE` (parallel) or raises a surrogate
    :class:`InjectedFault` (serial, where a real kill would take the
    coordinator down with it).
    """
    if fault is None:
        return False
    if fault.kind == "raise":
        raise InjectedFault(f"injected failure at point {fault.point}")
    if fault.kind == "timeout":
        time.sleep(fault.delay)
        return False
    if fault.kind == "kill":
        if parallel:
            os._exit(KILL_EXIT_CODE)
        raise InjectedFault(
            f"injected worker kill at point {fault.point} (serial surrogate)"
        )
    if fault.kind == "corrupt":
        return True
    raise ValueError(f"unknown fault kind {fault.kind!r}")  # pragma: no cover
