"""The :class:`ExecutionPolicy`: how a sweep survives its own failures.

The policy is pure data -- a frozen, validated, JSON-round-trippable
dataclass in the same family as the experiment specs -- describing *how*
sweep points execute, never *what* they compute:

* **retries** -- ``max_retries`` extra attempts per point, separated by
  exponential backoff (``backoff_base * backoff_factor**(attempt-1)``,
  capped at ``backoff_cap``) with deterministic seed-derived jitter: the
  jitter fraction for (point, attempt) is spawned from ``retry_seed`` via
  ``numpy.random.SeedSequence``, so two runs of the same sweep back off
  identically -- replayable chaos, not wall-clock noise;
* **timeouts** -- ``point_timeout`` bounds one attempt of one point.  In
  process-parallel execution it is enforced preemptively (the stuck worker
  is abandoned and the pool replaced); in serial execution it is checked
  after the attempt returns (the interpreter cannot preempt its own frame),
  so a slow point still consumes an attempt and retries deterministically.
  The serial attempt clock covers the *evaluation* only: time the session
  spends in :class:`~repro.robust.checkpoint.CheckpointStore` read-through
  I/O (``Session.store_io_seconds``) is subtracted, so a slow persistent
  store can never time out a healthy point;
* **deadline** -- ``sweep_deadline`` bounds the whole sweep: once exceeded
  the executor stops submitting new points, drains in-flight ones, and
  returns partial results with the remaining points recorded as structured
  failures;
* **checkpointing** -- ``checkpoint_dir`` names a content-addressed
  on-disk store (see :mod:`repro.robust.checkpoint`); completed points are
  persisted as they finish and an interrupted sweep resumes exactly from
  the points already stored.

``ExecutionPolicy()`` (all defaults) is the legacy behaviour: no retries,
no timeout, no deadline, no checkpointing.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np


@dataclass(frozen=True)
class ExecutionPolicy:
    """How sweep points run: retries, backoff, timeouts, deadline, checkpoints.

    Parameters
    ----------
    max_retries:
        Extra attempts after the first failure of a point (0 = fail fast).
    backoff_base / backoff_factor / backoff_cap:
        Exponential backoff between attempts of one point, in seconds:
        attempt ``k`` (1-based) waits ``min(cap, base * factor**(k-1))``
        before retrying.  A zero base disables waiting entirely.
    backoff_jitter:
        Fractional jitter band applied to each backoff delay: the delay is
        scaled by ``1 + jitter * u`` with ``u`` drawn deterministically in
        ``[-1, 1)`` from ``SeedSequence(retry_seed, spawn_key=(point,
        attempt))`` -- independent streams per (point, attempt), identical
        across reruns.
    retry_seed:
        Root seed of the jitter streams.
    point_timeout:
        Seconds one attempt of one point may take, or ``None`` for no
        bound.  Enforced preemptively in process pools (worker replaced),
        post-hoc in serial runs -- where the clock covers the evaluation
        only, excluding the session's checkpoint-store read-through I/O.
    sweep_deadline:
        Seconds the whole sweep may take, or ``None``.  On expiry no new
        points are submitted; in-flight points are drained and the
        unsubmitted remainder becomes structured deadline failures.
    checkpoint_dir:
        Directory of the content-addressed checkpoint store, or ``None``
        to disable checkpointing.
    """

    max_retries: int = 0
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_cap: float = 5.0
    backoff_jitter: float = 0.25
    retry_seed: int = 0
    point_timeout: float | None = None
    sweep_deadline: float | None = None
    checkpoint_dir: str | None = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be non-negative, got {self.max_retries}")
        if self.backoff_base < 0.0:
            raise ValueError(f"backoff_base must be non-negative, got {self.backoff_base}")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be at least 1, got {self.backoff_factor}"
            )
        if self.backoff_cap < 0.0:
            raise ValueError(f"backoff_cap must be non-negative, got {self.backoff_cap}")
        if not 0.0 <= self.backoff_jitter < 1.0:
            raise ValueError(
                f"backoff_jitter must be in [0, 1), got {self.backoff_jitter}"
            )
        if self.retry_seed < 0:
            raise ValueError(f"retry_seed must be non-negative, got {self.retry_seed}")
        if self.point_timeout is not None and self.point_timeout <= 0.0:
            raise ValueError(
                f"point_timeout must be None or positive, got {self.point_timeout}"
            )
        if self.sweep_deadline is not None and self.sweep_deadline <= 0.0:
            raise ValueError(
                f"sweep_deadline must be None or positive, got {self.sweep_deadline}"
            )
        if self.checkpoint_dir is not None:
            object.__setattr__(self, "checkpoint_dir", str(self.checkpoint_dir))

    # -- derived behaviour ----------------------------------------------
    @property
    def max_attempts(self) -> int:
        """Total attempts a point gets (first try + retries)."""
        return self.max_retries + 1

    def backoff_delay(self, point_index: int, attempt: int) -> float:
        """Seconds to wait before retrying ``point_index`` after ``attempt``.

        Deterministic: the jitter is spawned from ``retry_seed`` along the
        ``(point_index, attempt)`` branch, so reruns (and resumed runs)
        back off identically.
        """
        if attempt < 1:
            raise ValueError(f"attempt is 1-based, got {attempt}")
        if self.backoff_base == 0.0:
            return 0.0
        delay = min(
            self.backoff_cap, self.backoff_base * self.backoff_factor ** (attempt - 1)
        )
        if self.backoff_jitter == 0.0:
            return delay
        sequence = np.random.SeedSequence(
            self.retry_seed, spawn_key=(int(point_index), int(attempt))
        )
        jitter = np.random.default_rng(sequence).uniform(-1.0, 1.0)
        return float(delay * (1.0 + self.backoff_jitter * jitter))

    def replace(self, **changes: Any) -> "ExecutionPolicy":
        """``dataclasses.replace`` convenience, mirroring the spec classes."""
        return dataclasses.replace(self, **changes)

    # -- serialisation --------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            f.name: getattr(self, f.name) for f in dataclasses.fields(self)
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExecutionPolicy":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown ExecutionPolicy field(s): {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        return cls(**dict(data))

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ExecutionPolicy":
        return cls.from_dict(json.loads(text))
