"""Shard-parallel sweep execution: one sweep split across OS processes.

The statistical-design methodology is fundamentally a sweep -- Monte-Carlo
yield characterisation repeated across scenario grids -- and a single
process (even with the executor's per-point process pool) is the ceiling on
how fast one sweep can go.  This module removes that ceiling by partitioning
a sweep's tasks across *N shard workers* and merging their partial results
into one :class:`~repro.api.sweep.SweepResult` bit-identical to serial
execution:

* **Partitioning is by content-addressed cache key.**  Every task is
  assigned to ``int(spec_digest, 16) % n_shards`` -- the same SHA-256 digest
  the :class:`~repro.robust.checkpoint.CheckpointStore` and the serving
  layer's request coalescing use -- so duplicate points (equal digests)
  always land on one shard, where the engine's per-point checkpoint lookup
  coalesces them into a single computation.  The assignment depends only on
  the spec bytes, never on worker count ordering or timing, so every
  launcher of the same sweep computes the same partition.

* **The checkpoint store is the only rendezvous.**  Each shard runs its
  tasks through the existing :class:`~repro.robust.executor._Engine` with
  ``policy.checkpoint_dir`` pointing at one shared store directory.
  Completed points are persisted as they finish; a shard that is killed and
  relaunched serves every already-stored point from disk (checkpoint hits)
  and recomputes nothing.  Because shards agree *only* via the store, the
  same sweep can be split across independently-launched OS processes -- or
  machines sharing a filesystem -- with the standalone CLI::

      python -m repro.robust.shard run   sweep.json --store DIR --shard 0 --shards 2
      python -m repro.robust.shard run   sweep.json --store DIR --shard 1 --shards 2
      python -m repro.robust.shard merge sweep.json --store DIR --shards 2 --out result.json

* **Merging is exact.**  Per-shard points and structured failures are
  reassembled in sweep-index order; per-point seeds are baked into the task
  specs before partitioning (SeedSequence spawning is execution-order
  independent), so the merged result's points, reports and failures are
  bit-identical to an uninterrupted serial run.  Per-shard
  :class:`~repro.robust.failures.ExecutionTrace` s fold into one merged
  trace (``pool_kind="shard"``, ``n_shards=N``) whose checkpoint counters
  carry the exact resume accounting.

In-process, :func:`run_sharded` is the engine behind
``ScenarioSweep.run(shards=N)`` / ``run_sweep(shards=N)`` and the study
server's ``shards`` sweep knob; a shard worker that dies (OOM, kill) is
recovered by re-running its tasks in the coordinator process against the
shared store -- completed points come back as hits, so a crash costs only
the points that were genuinely lost.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import shutil
import sys
import tempfile
from typing import TYPE_CHECKING, Any, Sequence

from repro.api.canonical import resolved_store_spec, spec_digest, spec_from_wire
from repro.robust.executor import SweepTask, create_pool, execute_tasks
from repro.robust.failures import ExecutionTrace, PointFailure
from repro.robust.faults import FaultPlan
from repro.robust.policy import ExecutionPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.session import Session
    from repro.api.sweep import SweepPoint


def shard_for_digest(digest: str, n_shards: int) -> int:
    """The shard a content digest belongs to: ``int(digest, 16) % n_shards``.

    Pure data -> data, shared by every launcher: the in-process runner, the
    standalone CLI and any remote machine all agree on the partition because
    it depends only on the spec's canonical bytes.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be at least 1, got {n_shards}")
    return int(digest, 16) % n_shards


def partition_tasks(
    tasks: Sequence[SweepTask], session: "Session", n_shards: int
) -> list[list[SweepTask]]:
    """Partition sweep tasks across ``n_shards`` by content-addressed key.

    Tasks with equal digests (duplicate points -- e.g. comparison axes that
    coalesce, or a zip sweep revisiting a spec) always land on the same
    shard, so the shard's per-point checkpoint lookup computes them once.
    Seeds must already be concrete (``ScenarioSweep.tasks`` resolves them);
    deferred seeds are resolved against ``session`` before digesting, the
    same way the store and the serving layer key them.
    """
    shards: list[list[SweepTask]] = [[] for _ in range(n_shards)]
    for task in tasks:
        digest = spec_digest(resolved_store_spec(task.spec, session))
        shards[shard_for_digest(digest, n_shards)].append(task)
    return shards


def _shard_worker(payload: tuple) -> tuple:
    """Process entrypoint: run one shard's tasks through the engine.

    Reuses :func:`repro.api.sweep._worker_session`'s per-process session
    (rebuilt only when technology or root seed change); the policy carries
    the shared checkpoint directory, which is the only cross-shard state.
    """
    shard_id, tasks, technology, root_seed, policy, fault_plan = payload
    from repro.api.sweep import _worker_session

    session = _worker_session(technology, root_seed)
    points, failures, trace = execute_tasks(
        tasks, session, policy=policy, fault_plan=fault_plan
    )
    return shard_id, points, failures, trace


def merge_shard_results(
    parts: Sequence[tuple[list, list, ExecutionTrace]],
    n_points: int,
    n_shards: int,
) -> tuple[list, list, ExecutionTrace]:
    """Merge per-shard ``(points, failures, trace)`` into one sweep result.

    Points and failures reassemble in sweep-index order (bit-identical to a
    serial run -- per-point seeds are baked into the specs); traces fold
    additively into one ``pool_kind="shard"`` trace.
    """
    points: list["SweepPoint"] = []
    failures: list[PointFailure] = []
    merged = ExecutionTrace(n_shards=n_shards, n_points=n_points)
    for part_points, part_failures, part_trace in parts:
        points.extend(part_points)
        failures.extend(part_failures)
        merged.merge(part_trace)
    merged.pool_kind = "shard"
    points.sort(key=lambda point: point.index)
    failures.sort(key=lambda failure: failure.index)
    merged.n_completed = len(points)
    merged.n_failed = len(failures)
    return points, failures, merged


def run_sharded(
    tasks: list[SweepTask],
    session: "Session",
    shards: int,
    policy: ExecutionPolicy | None = None,
    fault_plan: FaultPlan | None = None,
) -> tuple[list, list, ExecutionTrace]:
    """Evaluate sweep tasks across ``shards`` worker processes.

    Mirrors :func:`~repro.robust.executor.execute_tasks`'s contract --
    returns ``(points, failures, trace)``, never raises for point failures
    -- but fans whole shards out as processes, with a shared
    :class:`~repro.robust.checkpoint.CheckpointStore` as the rendezvous.
    When ``policy.checkpoint_dir`` is unset an ephemeral store directory is
    created for the run (duplicate points still coalesce; kill/resume needs
    a caller-provided directory to survive the process).  A shard process
    that dies is re-run in this process against the shared store, so its
    completed points are served as hits and only the lost ones recompute.
    If no process pool can be created the shards run sequentially in
    process (same store, same answer) and the trace records why.
    """
    import time

    if shards < 1:
        raise ValueError(f"shards must be at least 1, got {shards}")
    policy = policy if policy is not None else ExecutionPolicy()
    started = time.monotonic()
    ephemeral_dir: str | None = None
    if policy.checkpoint_dir is None:
        ephemeral_dir = tempfile.mkdtemp(prefix="repro-shard-")
        policy = policy.replace(checkpoint_dir=ephemeral_dir)
    try:
        partition = partition_tasks(tasks, session, shards)
        occupied = [
            (shard_id, shard_tasks)
            for shard_id, shard_tasks in enumerate(partition)
            if shard_tasks
        ]
        if len(occupied) <= 1:
            # Zero or one occupied shard: the partition degenerates to one
            # engine run; skip pool spin-up entirely.
            points, failures, trace = execute_tasks(
                tasks, session, policy=policy, fault_plan=fault_plan
            )
            merged = _rebrand_single(trace, shards)
            merged.elapsed = time.monotonic() - started
            return points, failures, merged

        parts, merged = _run_shard_pool(
            occupied, session, policy, fault_plan, shards
        )
        points, failures, trace = merge_shard_results(
            parts, n_points=len(tasks), n_shards=shards
        )
        trace.fallback_reason = merged.fallback_reason or trace.fallback_reason
        trace.n_worker_respawns += merged.n_worker_respawns
        trace.n_jobs = merged.n_jobs
        trace.pool_kind = merged.pool_kind
        trace.elapsed = time.monotonic() - started
        return points, failures, trace
    finally:
        if ephemeral_dir is not None:
            shutil.rmtree(ephemeral_dir, ignore_errors=True)


def _rebrand_single(trace: ExecutionTrace, shards: int) -> ExecutionTrace:
    """A degenerate (<=1 occupied shard) run still reports shard identity."""
    trace.n_shards = shards
    trace.pool_kind = "shard" if shards > 1 else trace.pool_kind
    return trace


def _run_shard_pool(
    occupied: list[tuple[int, list[SweepTask]]],
    session: "Session",
    policy: ExecutionPolicy,
    fault_plan: FaultPlan | None,
    shards: int,
) -> tuple[list, ExecutionTrace]:
    """Run the occupied shards on a process pool (or serially in process).

    Returns ``(parts, coordinator_trace)`` where ``parts`` is one
    ``(points, failures, trace)`` triple per occupied shard and the
    coordinator trace carries pool-level facts (fallback reason, shard
    process respawn-equivalents, fan-out).
    """
    coordinator = ExecutionTrace(
        pool_kind="shard", n_jobs=len(occupied), n_shards=shards
    )

    def run_inline(shard_tasks: list[SweepTask]) -> tuple:
        points, failures, trace = execute_tasks(
            shard_tasks, session, policy=policy, fault_plan=fault_plan
        )
        return points, failures, trace

    pool, reason = create_pool(len(occupied))
    if pool is None:
        coordinator.pool_kind = "serial"
        coordinator.fallback_reason = reason
        return [run_inline(shard_tasks) for _, shard_tasks in occupied], coordinator

    parts_by_shard: dict[int, tuple] = {}
    try:
        futures = {
            pool.submit(
                _shard_worker,
                (
                    shard_id,
                    shard_tasks,
                    session.technology,
                    session.root_seed,
                    policy,
                    fault_plan,
                ),
            ): (shard_id, shard_tasks)
            for shard_id, shard_tasks in occupied
        }
        for future, (shard_id, shard_tasks) in futures.items():
            try:
                result_id, points, failures, trace = future.result()
                parts_by_shard[result_id] = (points, failures, trace)
            except Exception:
                # The shard process died (kill fault, OOM, broken pool).
                # Its completed points are already in the shared store, so a
                # coordinator-side re-run serves them as hits and only
                # recomputes what was genuinely lost.
                coordinator.n_worker_respawns += 1
                parts_by_shard[shard_id] = run_inline(shard_tasks)
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
    return [parts_by_shard[sid] for sid, _ in occupied], coordinator


# ----------------------------------------------------------------------
# Standalone CLI: split one sweep across independently-launched processes
# ----------------------------------------------------------------------
def _load_sweep_request(path: str) -> dict[str, Any]:
    payload = json.loads(pathlib.Path(path).read_text())
    if not isinstance(payload, dict) or "base" not in payload:
        raise SystemExit(
            f"{path}: a sweep request is "
            '{"base": <tagged spec>, "axes": {...}, "mode"?, "seed_policy"?, '
            '"policy"?}'
        )
    return payload


def _build_tasks(payload: dict[str, Any], root_seed: int | None):
    """Materialise the sweep request into resolved tasks + a session.

    Every launcher of the same request file with the same root seed builds
    the identical task list (specs, seeds, indices) -- which is what lets
    shard processes that never talk to each other agree on the partition.
    """
    from repro.api.session import Session
    from repro.api.sweep import ScenarioSweep

    sweep = ScenarioSweep(
        spec_from_wire(payload["base"]),
        payload.get("axes") or {},
        mode=payload.get("mode", "grid"),
        seed_policy=payload.get("seed_policy", "spawn"),
    )
    session = Session() if root_seed is None else Session(root_seed=root_seed)
    return sweep.tasks(session), session


def _policy_from(payload: dict[str, Any], store: str) -> ExecutionPolicy:
    policy = (
        ExecutionPolicy.from_dict(payload["policy"])
        if payload.get("policy")
        else ExecutionPolicy()
    )
    return policy.replace(checkpoint_dir=store)


def _shard_out_path(store: str, shard: int, n_shards: int) -> pathlib.Path:
    return pathlib.Path(store) / "shards" / f"shard-{shard}-of-{n_shards}.json"


def _cmd_plan(args: argparse.Namespace) -> int:
    tasks, session = _build_tasks(_load_sweep_request(args.sweep), args.seed)
    partition = partition_tasks(tasks, session, args.shards)
    print(
        json.dumps(
            {
                "n_points": len(tasks),
                "n_shards": args.shards,
                "shards": [
                    {
                        "shard": shard_id,
                        "n_tasks": len(shard_tasks),
                        "indices": [task.index for task in shard_tasks],
                    }
                    for shard_id, shard_tasks in enumerate(partition)
                ],
            },
            indent=2,
        )
    )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.api.sweep import SweepResult

    payload = _load_sweep_request(args.sweep)
    tasks, session = _build_tasks(payload, args.seed)
    if not 0 <= args.shard < args.shards:
        raise SystemExit(f"--shard must be in [0, {args.shards}), got {args.shard}")
    shard_tasks = partition_tasks(tasks, session, args.shards)[args.shard]
    policy = _policy_from(payload, args.store)
    points, failures, trace = execute_tasks(shard_tasks, session, policy=policy)
    trace.n_shards = args.shards
    result = SweepResult(points, failures=failures, trace=trace)
    out = (
        pathlib.Path(args.out)
        if args.out is not None
        else _shard_out_path(args.store, args.shard, args.shards)
    )
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(result.to_json())
    print(
        f"shard {args.shard}/{args.shards}: {len(points)} point(s), "
        f"{len(failures)} failure(s), {trace.checkpoint_hits} resumed from "
        f"store, {trace.checkpoint_writes} written -> {out}",
        file=sys.stderr,
    )
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    from repro.api.sweep import SweepResult

    payload = _load_sweep_request(args.sweep)
    tasks, _ = _build_tasks(payload, args.seed)
    parts: list[tuple[list, list, ExecutionTrace]] = []
    missing: list[int] = []
    for shard_id in range(args.shards):
        path = _shard_out_path(args.store, shard_id, args.shards)
        if not path.exists():
            missing.append(shard_id)
            continue
        part = SweepResult.from_json(path.read_text())
        parts.append((list(part.points), list(part.failures), part.trace))
    if missing:
        print(
            f"merge: missing shard output(s) {missing}; run "
            f"`python -m repro.robust.shard run {args.sweep} --store "
            f"{args.store} --shards {args.shards} --shard <id>` for each",
            file=sys.stderr,
        )
        return 2
    points, failures, trace = merge_shard_results(
        parts, n_points=len(tasks), n_shards=args.shards
    )
    covered = {point.index for point in points} | {f.index for f in failures}
    uncovered = sorted(set(task.index for task in tasks) - covered)
    if uncovered:
        print(
            f"merge: shard outputs do not cover point(s) {uncovered}; "
            f"was the request file identical for every shard?",
            file=sys.stderr,
        )
        return 2
    result = SweepResult(points, failures=failures, trace=trace)
    out_text = result.to_json()
    if args.out is not None:
        pathlib.Path(args.out).write_text(out_text)
        print(f"merged {len(points)} point(s) -> {args.out}", file=sys.stderr)
    else:
        print(out_text)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.robust.shard",
        description=(
            "Split one scenario sweep across independently-launched shard "
            "processes that rendezvous only through a shared checkpoint "
            "store directory; merge their outputs into one SweepResult "
            "bit-identical to a serial run."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser, store: bool = True) -> None:
        p.add_argument(
            "sweep",
            help='sweep request JSON file: {"base": <tagged spec>, "axes": '
            '{...}, "mode"?, "seed_policy"?, "policy"?}',
        )
        p.add_argument("--shards", type=int, required=True, help="total shard count")
        p.add_argument(
            "--seed", type=int, default=None,
            help="session root seed (must match across every shard)",
        )
        if store:
            p.add_argument(
                "--store", required=True,
                help="shared checkpoint store directory (the rendezvous)",
            )

    plan = sub.add_parser("plan", help="print the digest-keyed partition")
    common(plan, store=False)
    plan.set_defaults(func=_cmd_plan)

    run = sub.add_parser("run", help="run one shard against the shared store")
    common(run)
    run.add_argument("--shard", type=int, required=True, help="this shard's id")
    run.add_argument(
        "--out", default=None,
        help="shard result JSON path (default <store>/shards/shard-K-of-N.json)",
    )
    run.set_defaults(func=_cmd_run)

    merge = sub.add_parser(
        "merge", help="merge every shard's output into one SweepResult JSON"
    )
    common(merge)
    merge.add_argument(
        "--out", default=None, help="merged result path (default: stdout)"
    )
    merge.set_defaults(func=_cmd_merge)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
