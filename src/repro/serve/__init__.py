"""repro.serve -- the study API as a long-lived network service.

One shared :class:`~repro.api.session.Session` behind a stdlib-only asyncio
HTTP server: study/design specs in, typed reports out, sweeps streamed
point-by-point as NDJSON, identical concurrent submissions coalesced onto a
single computation, and explicit request budgets instead of unbounded
queues.

Modules
-------
``repro.serve.server``
    :class:`StudyServer` (the asyncio service), :class:`ServeConfig`,
    :class:`ServerStats` and :class:`BackgroundServer` (daemon-thread
    wrapper for tests/benchmarks/embedding).
``repro.serve.client``
    :class:`Client` -- typed stdlib client; :class:`SweepEvent`,
    :class:`ServerError`.
``repro.serve.budgets``
    :class:`ServeBudgets` admission limits, :class:`BudgetExceeded`.
``repro.serve.protocol``
    The HTTP/1.1 + NDJSON wire layer (useful for custom clients).

Run a server from the command line::

    python -m repro.serve --host 127.0.0.1 --port 8642
"""

from repro.serve.budgets import BudgetExceeded, ServeBudgets
from repro.serve.client import Client, ServerError, SweepEvent
from repro.serve.protocol import PROTOCOL_VERSION, ProtocolError
from repro.serve.server import (
    BackgroundServer,
    ServeConfig,
    ServerStats,
    StudyServer,
)

__all__ = [
    "BackgroundServer",
    "BudgetExceeded",
    "Client",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ServeBudgets",
    "ServeConfig",
    "ServerError",
    "ServerStats",
    "StudyServer",
    "SweepEvent",
]
