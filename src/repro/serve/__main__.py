"""``python -m repro.serve``: run a study server from the command line."""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import sys

from repro.api.session import Session
from repro.serve.budgets import ServeBudgets
from repro.serve.server import ServeConfig, StudyServer


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description=(
            "Serve the study/design API over HTTP: POST /v1/study, "
            "POST /v1/design, streamed POST /v1/sweep, GET /v1/health|stats."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=8642, help="bind port (0 = ephemeral)"
    )
    parser.add_argument(
        "--workers", type=int, default=8, help="compute bridge threads"
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="session root seed"
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="content-addressed report store directory (persistent cache)",
    )
    parser.add_argument(
        "--max-samples",
        type=int,
        default=None,
        metavar="N",
        help="cap on per-study n_samples (also applied to design validation)",
    )
    parser.add_argument(
        "--max-sweep-points", type=int, default=None, metavar="N"
    )
    parser.add_argument("--max-n-jobs", type=int, default=None, metavar="N")
    parser.add_argument(
        "--max-shards",
        type=int,
        default=None,
        metavar="N",
        help="cap on per-request sweep shard fan-out",
    )
    parser.add_argument("--max-in-flight", type=int, default=None, metavar="N")
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help=(
            "default shard fan-out for sweeps that do not request one "
            "(per-request 'shards' wins; capped by --max-shards)"
        ),
    )
    return parser


def config_from_args(args: argparse.Namespace) -> ServeConfig:
    defaults = ServeBudgets()
    budgets = ServeBudgets(
        max_study_samples=(
            args.max_samples if args.max_samples is not None
            else defaults.max_study_samples
        ),
        max_validation_samples=(
            args.max_samples if args.max_samples is not None
            else defaults.max_validation_samples
        ),
        max_sweep_points=(
            args.max_sweep_points if args.max_sweep_points is not None
            else defaults.max_sweep_points
        ),
        max_n_jobs=(
            args.max_n_jobs if args.max_n_jobs is not None
            else defaults.max_n_jobs
        ),
        max_shards=(
            args.max_shards if args.max_shards is not None
            else defaults.max_shards
        ),
        max_in_flight=(
            args.max_in_flight if args.max_in_flight is not None
            else defaults.max_in_flight
        ),
    )
    return ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        budgets=budgets,
        sweep_shards=args.shards,
    )


async def _amain(args: argparse.Namespace) -> None:
    store = None
    if args.store is not None:
        from repro.robust.checkpoint import CheckpointStore

        store = CheckpointStore(args.store)
    session = Session(root_seed=args.seed, store=store)
    server = StudyServer(session=session, config=config_from_args(args))
    await server.start()
    print(
        f"repro.serve listening on http://{server.host}:{server.port} "
        f"(seed={args.seed}, workers={server.config.workers})",
        flush=True,
    )
    try:
        await server.serve_forever()
    finally:
        await server.shutdown(drain=True)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        with contextlib.suppress(asyncio.CancelledError):
            asyncio.run(_amain(args))
    except KeyboardInterrupt:
        print("repro.serve: interrupted, drained and stopped", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
