"""Request budgets and backpressure limits for the study server.

A public-facing service cannot let one request pin a core for minutes, so
every submission is checked against a frozen :class:`ServeBudgets` *before*
any computation is admitted:

* per-kind sampling caps (``max_study_samples`` for analysis studies,
  ``max_validation_samples`` for design validations) bound the cost of a
  single characterisation;
* ``max_sweep_points`` and the per-point sampling caps bound a streamed
  sweep, and ``max_n_jobs`` / ``max_shards`` bound how much process fan-out
  one request may ask the host for (per-point pool workers and shard
  processes respectively);
* ``max_in_flight`` is the backpressure valve: at most this many requests
  may be *computing* at once (coalesced duplicates waiting on someone
  else's in-flight computation are free), the rest get a structured
  429-style rejection immediately instead of queueing unboundedly;
* ``max_body_bytes`` caps the request payload before it is even parsed.

Violations raise :class:`BudgetExceeded`, which carries the machine-readable
limit/got pair the server turns into a JSON error envelope -- a rejected
client always learns *which* budget it tripped and by how much.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.spec import DesignStudySpec, StudySpec

    AnySpec = Union[StudySpec, DesignStudySpec]


class BudgetExceeded(Exception):
    """A submission asked for more than its budget tier allows.

    Attributes mirror the JSON error detail: ``budget`` names the tripped
    limit field, ``limit`` its configured value and ``got`` what the
    request asked for.
    """

    def __init__(self, budget: str, limit: Any, got: Any, message: str) -> None:
        super().__init__(message)
        self.budget = budget
        self.limit = limit
        self.got = got

    def detail(self) -> dict[str, Any]:
        """JSON-safe error detail for the structured rejection."""
        return {"budget": self.budget, "limit": self.limit, "got": self.got}


@dataclass(frozen=True)
class ServeBudgets:
    """Per-tier request budgets enforced at admission time.

    The defaults are sized for the synthetic paper workloads: generous
    enough for every committed benchmark spec, small enough that a single
    request cannot monopolise the host.  Pass a custom instance to
    :class:`~repro.serve.server.StudyServer` (or ``--max-samples`` etc. on
    the ``python -m repro.serve`` command line) to retier a deployment.
    """

    max_study_samples: int = 50_000
    max_validation_samples: int = 50_000
    max_sweep_points: int = 1_024
    max_n_jobs: int = 8
    max_shards: int = 8
    max_in_flight: int = 256
    max_body_bytes: int = 8 * 1024 * 1024

    def __post_init__(self) -> None:
        for name in (
            "max_study_samples",
            "max_validation_samples",
            "max_sweep_points",
            "max_n_jobs",
            "max_shards",
            "max_in_flight",
            "max_body_bytes",
        ):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 1:
                raise ValueError(f"{name} must be a positive int, got {value!r}")

    # -- checks ----------------------------------------------------------
    def check_spec(self, spec: "AnySpec") -> None:
        """Validate one study/design submission against the sampling caps."""
        from repro.api.spec import DesignStudySpec

        if isinstance(spec, DesignStudySpec):
            if (
                spec.validation is not None
                and spec.validation.n_samples > self.max_validation_samples
            ):
                raise BudgetExceeded(
                    "max_validation_samples",
                    self.max_validation_samples,
                    spec.validation.n_samples,
                    f"validation.n_samples={spec.validation.n_samples} exceeds "
                    f"this tier's cap of {self.max_validation_samples}",
                )
            return
        if spec.analysis.n_samples > self.max_study_samples:
            raise BudgetExceeded(
                "max_study_samples",
                self.max_study_samples,
                spec.analysis.n_samples,
                f"analysis.n_samples={spec.analysis.n_samples} exceeds "
                f"this tier's cap of {self.max_study_samples}",
            )

    def check_sweep_size(
        self,
        n_points: int,
        n_jobs: int | None,
        shards: int | None = None,
    ) -> None:
        """Validate a sweep's shape -- point count and fan-out -- alone.

        The point count can (and on the server, must) be computed from the
        axis lengths before any point spec is materialised: a request body
        of a few hundred bytes can describe a combinatorially huge grid, so
        enforcing this cap only after construction would let one small
        request pin the host.
        """
        if n_points > self.max_sweep_points:
            raise BudgetExceeded(
                "max_sweep_points",
                self.max_sweep_points,
                n_points,
                f"sweep has {n_points} points, this tier allows "
                f"{self.max_sweep_points}",
            )
        if n_jobs is not None and n_jobs > self.max_n_jobs:
            raise BudgetExceeded(
                "max_n_jobs",
                self.max_n_jobs,
                n_jobs,
                f"n_jobs={n_jobs} exceeds this tier's cap of {self.max_n_jobs}",
            )
        if shards is not None and shards > self.max_shards:
            raise BudgetExceeded(
                "max_shards",
                self.max_shards,
                shards,
                f"shards={shards} exceeds this tier's cap of {self.max_shards}",
            )

    def check_sweep(
        self,
        specs: list,
        n_jobs: int | None,
        shards: int | None = None,
    ) -> None:
        """Validate a sweep submission: point count, fan-out, per-point caps."""
        self.check_sweep_size(len(specs), n_jobs, shards)
        for spec in specs:
            self.check_spec(spec)

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe view, reported by the ``/v1/stats`` endpoint."""
        return {
            "max_study_samples": self.max_study_samples,
            "max_validation_samples": self.max_validation_samples,
            "max_sweep_points": self.max_sweep_points,
            "max_n_jobs": self.max_n_jobs,
            "max_shards": self.max_shards,
            "max_in_flight": self.max_in_flight,
            "max_body_bytes": self.max_body_bytes,
        }
