"""A typed, stdlib-only client for the study server.

:class:`Client` wraps one keep-alive ``http.client`` connection and gives
the service the same shape as the local API: specs in, reports out --

>>> client = Client(host, port)
>>> report = client.study(StudySpec(...))          # DelayReport
>>> report = client.design(DesignStudySpec(...))   # DesignReport
>>> for event in client.sweep(ScenarioSweep(...)): # streamed points
...     ...

Unary calls return fully-typed reports (the raw envelope -- digest,
coalesced flag -- is kept on :attr:`Client.last_envelope` for callers who
care); :meth:`Client.sweep` yields typed :class:`SweepEvent` records as the
server streams NDJSON chunks, and :meth:`Client.sweep_result` folds a whole
stream back into the same :class:`~repro.api.sweep.SweepResult` the local
``run_sweep`` returns.

Structured server rejections raise :class:`ServerError` carrying the
machine-readable ``type``/``detail`` from the error envelope.

One instance owns one socket and is **not** thread-safe; concurrent load
generators use one ``Client`` per worker (see ``benchmarks/bench_serve.py``).
"""

from __future__ import annotations

import http.client
import json
from dataclasses import dataclass
from typing import Any, Iterator, Mapping

from repro.api.canonical import report_from_wire
from repro.api.spec import DesignStudySpec, ExecutionPolicy, StudySpec
from repro.serve.protocol import PROTOCOL_VERSION


class ServerError(Exception):
    """A structured rejection from the server (never a raw traceback).

    ``status`` is the HTTP status, ``error_type`` the envelope's machine
    name (``BudgetExceeded``, ``TooManyRequests``, ...) and ``detail`` its
    optional machine-readable payload.
    """

    def __init__(
        self,
        status: int,
        error_type: str,
        message: str,
        detail: Mapping[str, Any] | None = None,
    ) -> None:
        super().__init__(f"[{status} {error_type}] {message}")
        self.status = status
        self.error_type = error_type
        self.detail = dict(detail) if detail else {}


@dataclass(frozen=True)
class SweepEvent:
    """One NDJSON event off a ``/v1/sweep`` stream.

    ``kind`` is ``"start"``, ``"point"``, ``"failure"`` or ``"done"``;
    ``data`` is the decoded event object.  Typed views (:attr:`point`,
    :attr:`failure`, :attr:`trace`) lazily rebuild the API objects.
    """

    kind: str
    data: Mapping[str, Any]

    @property
    def point(self):
        """The :class:`~repro.api.sweep.SweepPoint` of a ``point`` event."""
        from repro.api.sweep import SweepPoint

        return SweepPoint.from_dict(self.data["point"])

    @property
    def failure(self):
        """The :class:`~repro.robust.failures.PointFailure` of a ``failure`` event."""
        from repro.robust.failures import PointFailure

        return PointFailure.from_dict(self.data["failure"])

    @property
    def trace(self):
        """The merged :class:`~repro.robust.failures.ExecutionTrace` of ``done``."""
        from repro.robust.failures import ExecutionTrace

        return ExecutionTrace.from_dict(self.data["trace"])


#: Failures that mean the reused keep-alive socket was already dead when
#: this exchange started (server restarted, idle connection reaped): nothing
#: reached the server, so retrying cannot double-submit work.
_STALE_SOCKET_ERRORS = (
    http.client.BadStatusLine,  # includes RemoteDisconnected
    ConnectionResetError,
    ConnectionAbortedError,
    BrokenPipeError,
)


class Client:
    """One keep-alive connection to a :class:`~repro.serve.server.StudyServer`."""

    def __init__(self, host: str, port: int, timeout: float | None = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.last_envelope: dict[str, Any] | None = None
        self._conn: http.client.HTTPConnection | None = None
        self._exchanged = False  #: current connection completed an exchange

    # -- plumbing --------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            self._exchanged = False
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None
        self._exchanged = False

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _request(
        self, method: str, path: str, payload: Any | None = None
    ) -> http.client.HTTPResponse:
        conn = self._connection()
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        reused = self._exchanged
        try:
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
        except (http.client.HTTPException, ConnectionError, OSError) as exc:
            self.close()
            # Retry only when a resubmission cannot double work server-side:
            # idempotent GETs, or a stale keep-alive socket the server closed
            # before this exchange started.  A POST that timed out or died
            # mid-exchange may already be computing -- surface the error
            # rather than silently submitting the same spec twice.
            if method != "GET" and not (
                reused and isinstance(exc, _STALE_SOCKET_ERRORS)
            ):
                raise
            conn = self._connection()
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
        self._exchanged = True
        return response

    def _json_call(self, method: str, path: str, payload: Any | None = None) -> Any:
        response = self._request(method, path, payload)
        data = json.loads(response.read().decode("utf-8"))
        if response.status >= 400:
            raise _to_server_error(response.status, data)
        return data

    # -- endpoints -------------------------------------------------------
    def health(self) -> dict[str, Any]:
        """``GET /v1/health``; verifies the protocol version matches."""
        payload = self._json_call("GET", "/v1/health")
        if payload.get("protocol") != PROTOCOL_VERSION:
            raise ServerError(
                200,
                "ProtocolMismatch",
                f"server speaks protocol {payload.get('protocol')}, "
                f"client speaks {PROTOCOL_VERSION}",
            )
        return payload

    def stats(self) -> dict[str, Any]:
        """``GET /v1/stats``: server, session and budget counters."""
        return self._json_call("GET", "/v1/stats")

    def study(self, spec: StudySpec):
        """Characterise one analysis study; returns its ``DelayReport``."""
        return self._unary("/v1/study", spec)

    def design(self, spec: DesignStudySpec):
        """Run one design study; returns its ``DesignReport``."""
        return self._unary("/v1/design", spec)

    def run(self, spec: StudySpec | DesignStudySpec):
        """Dispatch on spec type -- the remote mirror of ``Session.run``."""
        if isinstance(spec, DesignStudySpec):
            return self.design(spec)
        return self.study(spec)

    def _unary(self, path: str, spec):
        envelope = self._json_call("POST", path, spec.to_dict())
        self.last_envelope = envelope
        return report_from_wire(
            {"kind": "design" if envelope["kind"] == "design" else "delay",
             "data": envelope["report"]}
        )

    def sweep(
        self,
        sweep,
        n_jobs: int | None = None,
        policy: ExecutionPolicy | None = None,
        chunk: int | None = None,
        shards: int | None = None,
    ) -> Iterator[SweepEvent]:
        """``POST /v1/sweep``: yield :class:`SweepEvent` as the server streams.

        ``sweep`` is a :class:`~repro.api.sweep.ScenarioSweep` (or any
        object with ``base``/``axes``/``mode``/``seed_policy`` attributes).
        The iterator is driven by the socket: each ``next()`` blocks until
        the server finishes another point.  ``shards`` asks the server to
        run the sweep through the shard runner (mutually exclusive with
        ``n_jobs``; capped by the server's ``max_shards`` budget).
        """
        from repro.api.canonical import spec_to_wire

        payload: dict[str, Any] = {
            "base": spec_to_wire(sweep.base),
            "axes": {path: list(values) for path, values in dict(sweep.axes).items()},
            "mode": sweep.mode,
            "seed_policy": sweep.seed_policy,
        }
        if n_jobs is not None:
            payload["n_jobs"] = n_jobs
        if policy is not None:
            payload["policy"] = policy.to_dict()
        if chunk is not None:
            payload["chunk"] = chunk
        if shards is not None:
            payload["shards"] = shards
        response = self._request("POST", "/v1/sweep", payload)
        if response.status >= 400:
            raise _to_server_error(
                response.status, json.loads(response.read().decode("utf-8"))
            )
        # http.client undoes the chunked framing; readline gives NDJSON lines.
        try:
            while True:
                line = response.readline()
                if not line:
                    break
                event = json.loads(line.decode("utf-8"))
                if event.get("event") == "error":
                    # The server hit a mid-stream failure after the head was
                    # out; it ends the stream with a structured error event.
                    raise _to_server_error(500, event)
                yield SweepEvent(kind=event["event"], data=event)
        finally:
            # A stream always closes the connection server-side.
            self.close()

    def sweep_result(
        self,
        sweep,
        n_jobs: int | None = None,
        policy: ExecutionPolicy | None = None,
        chunk: int | None = None,
        shards: int | None = None,
    ):
        """Consume a whole stream into a local-identical ``SweepResult``."""
        from repro.api.sweep import SweepResult

        points, failures, trace = [], [], None
        for event in self.sweep(
            sweep, n_jobs=n_jobs, policy=policy, chunk=chunk, shards=shards
        ):
            if event.kind == "point":
                points.append(event.point)
            elif event.kind == "failure":
                failures.append(event.failure)
            elif event.kind == "done":
                trace = event.trace
        return SweepResult(
            points=tuple(points), failures=tuple(failures), trace=trace
        )


def _to_server_error(status: int, payload: Any) -> ServerError:
    if isinstance(payload, Mapping) and isinstance(payload.get("error"), Mapping):
        error = payload["error"]
        return ServerError(
            status,
            str(error.get("type", "Unknown")),
            str(error.get("message", "")),
            error.get("detail"),
        )
    return ServerError(status, "Unknown", f"unrecognised error payload: {payload!r}")
