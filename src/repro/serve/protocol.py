"""Wire protocol of the study server: HTTP/1.1 framing and JSON envelopes.

The server speaks a deliberately small, dependency-free slice of HTTP/1.1
over raw asyncio streams -- request line + headers + ``Content-Length``
body in, status line + headers + body out -- enough for ``http.client``,
``curl`` and any standard library to talk to it:

* unary endpoints (``/v1/study``, ``/v1/design``, ``/v1/health``,
  ``/v1/stats``) answer with a ``Content-Length`` JSON body;
* the streaming endpoint (``/v1/sweep``) answers with
  ``Transfer-Encoding: chunked`` NDJSON -- one :func:`event_line` per
  completed sweep point, failure, and the final trace -- so a client sees
  points the moment they finish and connections stay reusable;
* every error is a structured :func:`error_payload` envelope
  (``{"error": {"type", "message", "detail"}}``), never a traceback dump.

Keep-alive is honoured (HTTP/1.1 default), so load generators can pipeline
thousands of requests over a bounded connection pool.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Mapping

#: Protocol version reported by /v1/health and checked by the client.
PROTOCOL_VERSION = 1

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Cap on the request line + headers block (not the body).
MAX_HEADER_BYTES = 32 * 1024


class ProtocolError(Exception):
    """A malformed or oversized request, mapped to a structured rejection."""

    def __init__(self, status: int, error_type: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.error_type = error_type


@dataclass
class HttpRequest:
    """One parsed request: method, path and decoded JSON body (if any)."""

    method: str
    path: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "keep-alive").lower() != "close"

    def json(self) -> Any:
        """Decode the body as JSON; malformed bodies become typed 400s."""
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(
                400, "InvalidJSON", f"request body is not valid JSON: {exc}"
            ) from exc


async def read_request(
    reader: asyncio.StreamReader, max_body_bytes: int
) -> HttpRequest | None:
    """Parse one HTTP request off the stream; ``None`` on clean EOF.

    Raises :class:`ProtocolError` for malformed framing or oversized
    payloads -- the handler turns those into structured 400/413 responses
    rather than dropping the connection.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between keep-alive requests
        raise ProtocolError(400, "InvalidRequest", "truncated request head") from exc
    except asyncio.LimitOverrunError as exc:
        raise ProtocolError(
            413, "HeadersTooLarge", f"request head exceeds {MAX_HEADER_BYTES} bytes"
        ) from exc

    try:
        request_line, *header_lines = head.decode("latin-1").split("\r\n")
        method, target, _version = request_line.split(" ", 2)
    except ValueError as exc:
        raise ProtocolError(
            400, "InvalidRequest", f"malformed request line: {head[:80]!r}"
        ) from exc
    headers: dict[str, str] = {}
    for line in header_lines:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ProtocolError(400, "InvalidRequest", f"malformed header {line!r}")
        headers[name.strip().lower()] = value.strip()

    path = target.split("?", 1)[0]
    body = b""
    length_text = headers.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError as exc:
            raise ProtocolError(
                400, "InvalidRequest", f"bad Content-Length {length_text!r}"
            ) from exc
        if length > max_body_bytes:
            raise ProtocolError(
                413,
                "PayloadTooLarge",
                f"request body of {length} bytes exceeds the "
                f"{max_body_bytes}-byte cap",
            )
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError as exc:
                raise ProtocolError(
                    400, "InvalidRequest", "request body shorter than Content-Length"
                ) from exc
    return HttpRequest(method=method.upper(), path=path, headers=headers, body=body)


# ----------------------------------------------------------------------
# Response framing
# ----------------------------------------------------------------------
def _head(
    status: int, headers: list[tuple[str, str]], keep_alive: bool
) -> bytes:
    lines = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}"]
    lines.extend(f"{name}: {value}" for name, value in headers)
    lines.append(f"Connection: {'keep-alive' if keep_alive else 'close'}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


def json_response(
    status: int, payload: Any, keep_alive: bool = True
) -> bytes:
    """A complete ``Content-Length``-framed JSON response."""
    body = json.dumps(payload).encode("utf-8")
    return (
        _head(
            status,
            [
                ("Content-Type", "application/json"),
                ("Content-Length", str(len(body))),
            ],
            keep_alive,
        )
        + body
    )


def stream_head(status: int = 200, keep_alive: bool = True) -> bytes:
    """Response head opening a chunked NDJSON stream."""
    return _head(
        status,
        [
            ("Content-Type", "application/x-ndjson"),
            ("Transfer-Encoding", "chunked"),
        ],
        keep_alive,
    )


def chunk(data: bytes) -> bytes:
    """One HTTP chunk (hex length, CRLF, payload, CRLF)."""
    return f"{len(data):x}\r\n".encode("latin-1") + data + b"\r\n"


def last_chunk() -> bytes:
    """The zero-length terminator of a chunked stream."""
    return b"0\r\n\r\n"


# ----------------------------------------------------------------------
# JSON envelopes
# ----------------------------------------------------------------------
def error_payload(
    error_type: str, message: str, detail: Mapping[str, Any] | None = None
) -> dict[str, Any]:
    """The structured error envelope every rejection uses."""
    payload: dict[str, Any] = {"error": {"type": error_type, "message": message}}
    if detail:
        payload["error"]["detail"] = dict(detail)
    return payload


def event_line(event: Mapping[str, Any]) -> bytes:
    """One NDJSON stream event, newline-terminated."""
    return (json.dumps(event, separators=(",", ":")) + "\n").encode("utf-8")
