"""The asyncio study server: timing analysis and yield-driven design as a service.

:class:`StudyServer` turns the Study/Design API into a network service.
Every endpoint accepts the same frozen, JSON-round-trippable specs the
local API uses -- the README's "storage or RPC" promise made real:

``POST /v1/study``
    A :class:`~repro.api.spec.StudySpec` JSON body; answers with the
    :class:`~repro.api.backends.DelayReport` (plus the spec's content
    digest and whether the request coalesced onto an in-flight duplicate).
``POST /v1/design``
    A :class:`~repro.api.spec.DesignStudySpec` JSON body; answers with the
    :class:`~repro.api.design.DesignReport`.
``POST /v1/sweep``
    ``{"base": <tagged spec>, "axes": {...}, "mode", "seed_policy",
    "n_jobs", "policy", "chunk"}``; answers with a chunked NDJSON stream --
    one event per completed :class:`~repro.api.sweep.SweepPoint` (and per
    structured :class:`~repro.robust.failures.PointFailure`), then a final
    ``done`` event carrying the merged execution trace -- so clients see
    points as they finish, not when the sweep ends.
``GET /v1/health`` / ``GET /v1/stats``
    Liveness, and server + session + budget counters.

Three production concerns shape the implementation:

* **Content-addressed request coalescing.**  Each admitted study/design
  spec is resolved against the session (deferred seeds made concrete) and
  keyed by :func:`~repro.api.canonical.spec_digest` -- the *same* digest
  the checkpoint store uses.  A request whose digest is already in flight
  awaits the existing computation instead of starting another: N identical
  concurrent submissions cost exactly one characterisation.  Computation
  ownership lives in a detached task, so an impatient client disconnecting
  never kills work other clients are waiting on.  Sequential duplicates are
  the session report cache's job (and the optional
  :class:`~repro.robust.checkpoint.CheckpointStore` read-through makes
  them survive restarts).
* **A bounded worker bridge.**  Handlers never run NumPy on the event
  loop: computation is pushed to a thread pool, and the shared session is
  guarded by one lock (its caches are plain dicts).  Request concurrency
  therefore buys coalescing, caching and I/O overlap; *compute* fan-out
  comes from the sweep executor's process pool (``n_jobs``), which releases
  the session lock's thread while child processes work.
* **Backpressure and graceful drain.**  Admission is checked against
  :class:`~repro.serve.budgets.ServeBudgets` (sampling caps per tier, sweep
  size, ``max_in_flight``); excess load gets structured 429/413 envelopes
  immediately.  Sweep sizes are computed from the axis lengths *before* the
  sweep is materialised -- a 1 KB body describing a combinatorially huge
  grid is rejected without building a single point -- and a failure after a
  stream's head has been written ends the stream with a structured
  ``error`` event (never a second response head mid-body).  :meth:`StudyServer.shutdown` stops accepting, answers new
  requests on kept-alive connections with 503, and drains in-flight
  computations to completion before returning.

:class:`BackgroundServer` runs the whole thing on a daemon thread with its
own event loop -- what the tests, the benchmark and embedding applications
use.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.api.canonical import resolved_store_spec, spec_digest, spec_from_wire
from repro.api.session import Session
from repro.api.spec import DesignStudySpec, ExecutionPolicy, StudySpec
from repro.robust.executor import SweepTask, execute_tasks
from repro.robust.failures import ExecutionTrace
from repro.serve.budgets import BudgetExceeded, ServeBudgets
from repro.serve.protocol import (
    MAX_HEADER_BYTES,
    PROTOCOL_VERSION,
    HttpRequest,
    ProtocolError,
    chunk,
    error_payload,
    event_line,
    json_response,
    last_chunk,
    read_request,
    stream_head,
)


@dataclass(frozen=True)
class ServeConfig:
    """How the server listens and schedules work.

    Parameters
    ----------
    host / port:
        Listen address; port 0 binds an ephemeral port (read it back from
        :attr:`StudyServer.port` -- what the tests and benchmark do).
    workers:
        Threads in the compute bridge.  The shared session serialises on
        its lock, so this mainly bounds how many requests can be mid-flight
        through parsing/serialisation at once; sweep process fan-out is
        per-request (``n_jobs``).
    budgets:
        Admission-time request budgets (see
        :class:`~repro.serve.budgets.ServeBudgets`).
    stream_chunk:
        Points per executor batch in streamed sweeps; ``None`` picks 1 for
        serial sweeps (true per-point streaming) and ``4 * n_jobs`` for
        parallel ones (amortises pool spin-up per batch).
    sweep_shards:
        Default shard fan-out for sweeps that do not request one
        themselves (``--shards`` on the command line); ``None`` leaves
        sweeps unsharded unless the request asks.  Per-request ``shards``
        always wins, and both are capped by ``budgets.max_shards``.
    drain_timeout:
        Seconds :meth:`StudyServer.shutdown` waits for in-flight work.
    """

    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 8
    budgets: ServeBudgets = field(default_factory=ServeBudgets)
    stream_chunk: int | None = None
    sweep_shards: int | None = None
    drain_timeout: float = 60.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be at least 1, got {self.workers}")
        if self.stream_chunk is not None and self.stream_chunk < 1:
            raise ValueError(
                f"stream_chunk must be None or >= 1, got {self.stream_chunk}"
            )
        if self.sweep_shards is not None and self.sweep_shards < 1:
            raise ValueError(
                f"sweep_shards must be None or >= 1, got {self.sweep_shards}"
            )
        if self.drain_timeout <= 0.0:
            raise ValueError(
                f"drain_timeout must be positive, got {self.drain_timeout}"
            )


@dataclass
class ServerStats:
    """Mutable request counters, reported by ``/v1/stats``.

    ``coalesced`` counts requests that awaited an in-flight duplicate
    instead of computing; ``computed`` counts computations the server
    actually ran (a request served from the session's report cache still
    counts here -- the cache hit is visible in the *session* stats).
    """

    requests: int = 0
    computed: int = 0
    coalesced: int = 0
    streams: int = 0
    points_streamed: int = 0
    rejected_budget: int = 0
    rejected_busy: int = 0
    rejected_draining: int = 0
    rejected_invalid: int = 0
    errors: int = 0

    def to_dict(self) -> dict[str, int]:
        return {
            "requests": self.requests,
            "computed": self.computed,
            "coalesced": self.coalesced,
            "streams": self.streams,
            "points_streamed": self.points_streamed,
            "rejected_budget": self.rejected_budget,
            "rejected_busy": self.rejected_busy,
            "rejected_draining": self.rejected_draining,
            "rejected_invalid": self.rejected_invalid,
            "errors": self.errors,
        }


class _Rejection(Exception):
    """Internal: a request mapped to a structured HTTP rejection."""

    def __init__(
        self,
        status: int,
        error_type: str,
        message: str,
        detail: Mapping[str, Any] | None = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.payload = error_payload(error_type, message, detail)


class StudyServer:
    """One shared-session asyncio HTTP server over the Study/Design API."""

    def __init__(
        self,
        session: Session | None = None,
        config: ServeConfig | None = None,
    ) -> None:
        self.session = session if session is not None else Session()
        self.config = config if config is not None else ServeConfig()
        self.stats = ServerStats()
        self.host: str | None = None
        self.port: int | None = None
        self._server: asyncio.AbstractServer | None = None
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers, thread_name_prefix="repro-serve"
        )
        self._session_lock = threading.Lock()
        self._inflight: dict[str, asyncio.Future] = {}
        self._active = 0  #: requests currently computing (coalesced waiters excluded)
        self._handlers: set[asyncio.Task] = set()
        self._busy: set[asyncio.Task] = set()  #: handlers mid-request
        self._owners: set[asyncio.Task] = set()
        self._draining = False
        self._started_at = time.monotonic()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listener (resolving an ephemeral port) without blocking."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._server = await asyncio.start_server(
            self._on_connection,
            host=self.config.host,
            port=self.config.port,
            limit=MAX_HEADER_BYTES,
        )
        address = self._server.sockets[0].getsockname()
        self.host, self.port = address[0], address[1]
        self._started_at = time.monotonic()

    async def serve_forever(self) -> None:
        """Run until cancelled (``python -m repro.serve`` uses this)."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def shutdown(self, drain: bool = True) -> None:
        """Stop accepting and (by default) drain in-flight work.

        New requests on kept-alive connections are answered with a
        structured 503 while the drain runs; in-flight computations and
        streams finish normally (bounded by ``config.drain_timeout``).
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if drain:
            # Wait for in-flight *work* -- computations and handlers that
            # are mid-request -- not for idle keep-alive connections, which
            # would otherwise stall the drain for its full timeout.
            loop = asyncio.get_running_loop()
            deadline = loop.time() + self.config.drain_timeout
            while loop.time() < deadline:
                working = {
                    task
                    for task in self._busy | self._owners
                    if task is not asyncio.current_task() and not task.done()
                }
                if not working and self._active == 0:
                    break
                await asyncio.sleep(0.02)
        leftover = [
            task
            for task in self._handlers | self._owners
            if task is not asyncio.current_task() and not task.done()
        ]
        for task in leftover:
            task.cancel()
        if leftover:
            # Retrieve the CancelledErrors (idle keep-alive handlers die
            # here); an unawaited cancelled task logs a spurious traceback
            # at GC time.
            await asyncio.gather(*leftover, return_exceptions=True)
        self._executor.shutdown(wait=drain, cancel_futures=not drain)

    @property
    def in_flight(self) -> int:
        """Requests currently computing (coalesced waiters not counted)."""
        return self._active

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
        try:
            while True:
                try:
                    request = await read_request(
                        reader, self.config.budgets.max_body_bytes
                    )
                except ProtocolError as exc:
                    self.stats.rejected_invalid += 1
                    writer.write(
                        json_response(
                            exc.status,
                            error_payload(exc.error_type, str(exc)),
                            keep_alive=False,
                        )
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                if task is not None:
                    self._busy.add(task)
                try:
                    must_close = await self._dispatch(request, writer)
                    await writer.drain()
                finally:
                    if task is not None:
                        self._busy.discard(task)
                if must_close or not request.keep_alive or self._draining:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass  # client went away; nothing to answer
        except asyncio.CancelledError:
            # Shutdown cancelled an idle keep-alive handler.  Finish the
            # task normally: asyncio.streams' done-callback calls
            # task.exception() and would log a cancelled task as an
            # unhandled 'Exception in callback' traceback.
            pass
        finally:
            if task is not None:
                self._handlers.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _dispatch(
        self, request: HttpRequest, writer: asyncio.StreamWriter
    ) -> bool:
        """Route one request; returns True when the connection must close."""
        self.stats.requests += 1
        route = (request.method, request.path)
        try:
            if route == ("GET", "/v1/health"):
                writer.write(json_response(200, self._health_payload()))
                return False
            if route == ("GET", "/v1/stats"):
                writer.write(json_response(200, self._stats_payload()))
                return False
            if route == ("POST", "/v1/study"):
                writer.write(await self._handle_unary(request, kind="study"))
                return False
            if route == ("POST", "/v1/design"):
                writer.write(await self._handle_unary(request, kind="design"))
                return False
            if route == ("POST", "/v1/sweep"):
                return await self._handle_sweep(request, writer)
            if request.path in ("/v1/health", "/v1/stats", "/v1/study",
                                "/v1/design", "/v1/sweep"):
                raise _Rejection(
                    405, "MethodNotAllowed",
                    f"{request.method} is not supported on {request.path}",
                )
            raise _Rejection(404, "NotFound", f"unknown endpoint {request.path}")
        except _Rejection as rejection:
            writer.write(json_response(rejection.status, rejection.payload))
            return False
        except ProtocolError as exc:
            self.stats.rejected_invalid += 1
            writer.write(
                json_response(exc.status, error_payload(exc.error_type, str(exc)))
            )
            return False
        except (ConnectionResetError, BrokenPipeError):
            raise  # dead socket: nothing to answer, _on_connection cleans up
        except Exception as exc:  # noqa: BLE001 - last-resort request guard
            self.stats.errors += 1
            writer.write(
                json_response(
                    500,
                    error_payload(
                        "InternalError", f"{type(exc).__name__}: {exc}"
                    ),
                )
            )
            return False

    # ------------------------------------------------------------------
    # Unary endpoints: /v1/study and /v1/design
    # ------------------------------------------------------------------
    def _parse_spec(self, request: HttpRequest, kind: str):
        payload = request.json()
        if not isinstance(payload, Mapping):
            raise _Rejection(
                400, "InvalidSpec", "request body must be a JSON object spec"
            )
        cls = StudySpec if kind == "study" else DesignStudySpec
        try:
            return cls.from_dict(payload)
        except (ValueError, TypeError, KeyError) as exc:
            self.stats.rejected_invalid += 1
            raise _Rejection(
                400, "InvalidSpec", f"not a valid {cls.__name__}: {exc}"
            ) from None

    def _admit(self) -> None:
        """Backpressure gate for one new computation."""
        if self._draining:
            self.stats.rejected_draining += 1
            raise _Rejection(
                503, "ServerDraining", "server is draining; resubmit elsewhere"
            )
        if self._active >= self.config.budgets.max_in_flight:
            self.stats.rejected_busy += 1
            raise _Rejection(
                429,
                "TooManyRequests",
                f"{self._active} requests already in flight "
                f"(max_in_flight={self.config.budgets.max_in_flight})",
                detail={
                    "limit": self.config.budgets.max_in_flight,
                    "in_flight": self._active,
                },
            )

    async def _handle_unary(self, request: HttpRequest, kind: str) -> bytes:
        spec = self._parse_spec(request, kind)
        try:
            self.config.budgets.check_spec(spec)
        except BudgetExceeded as exc:
            self.stats.rejected_budget += 1
            raise _Rejection(
                413, "BudgetExceeded", str(exc), detail=exc.detail()
            ) from None
        resolved = resolved_store_spec(spec, self.session)
        digest = spec_digest(resolved)

        future = self._inflight.get(digest)
        if future is not None:
            self.stats.coalesced += 1
            coalesced = True
        else:
            self._admit()
            coalesced = False
            future = self._begin_compute(digest, resolved)
        try:
            report = await asyncio.shield(future)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 - computation failed
            self.stats.errors += 1
            raise _Rejection(
                500,
                "ComputeError",
                f"{type(exc).__name__}: {exc}",
                detail={"digest": digest},
            ) from None
        return json_response(
            200,
            {
                "kind": kind,
                "digest": digest,
                "coalesced": coalesced,
                "report": report.to_dict(),
            },
        )

    def _begin_compute(self, digest: str, resolved) -> asyncio.Future:
        """Start (and own) the computation for a digest in a detached task.

        Ownership is deliberately *not* the requesting handler: if that
        client disconnects, coalesced waiters still get their result.  The
        in-flight entry is removed only after the future resolves, so every
        duplicate arriving in between coalesces onto it.
        """
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        # A fully-coalesced request set can be abandoned wholesale; consume
        # the exception so abandoned failures never warn at GC time.
        future.add_done_callback(
            lambda f: None if f.cancelled() else f.exception()
        )
        self._inflight[digest] = future
        self._active += 1

        async def owner() -> None:
            try:
                report = await loop.run_in_executor(
                    self._executor, self._compute, resolved
                )
            except Exception as exc:  # noqa: BLE001 - forwarded to waiters
                if not future.done():
                    future.set_exception(exc)
            else:
                self.stats.computed += 1
                if not future.done():
                    future.set_result(report)
            finally:
                self._inflight.pop(digest, None)
                self._active -= 1

        task = asyncio.ensure_future(owner())
        self._owners.add(task)
        task.add_done_callback(self._owners.discard)
        return future

    def _compute(self, spec):
        """Worker-thread entrypoint: one spec through the shared session."""
        with self._session_lock:
            return self.session.run(spec)

    # ------------------------------------------------------------------
    # Streaming endpoint: /v1/sweep
    # ------------------------------------------------------------------
    def _parse_sweep(self, request: HttpRequest):
        """Parse and budget-check a sweep request WITHOUT materialising it.

        The prospective point count is computed from the axis lengths alone
        (product for grid mode, axis length for zip), so a tiny body that
        describes a combinatorially huge grid is rejected with a structured
        413 before a single point spec -- let alone the full task list -- is
        built.  Construction itself happens later, off the event loop, in
        :meth:`_build_tasks`.
        """
        payload = request.json()
        if not isinstance(payload, Mapping) or "base" not in payload:
            raise _Rejection(
                400,
                "InvalidSweep",
                'sweep body must be {"base": <tagged spec>, "axes": {...}, ...}',
            )
        try:
            base = spec_from_wire(payload["base"])
            axes = payload.get("axes")
            if not isinstance(axes, Mapping):
                raise ValueError("axes must be a mapping of path -> values")
            mode = payload.get("mode", "grid")
            if mode not in ("grid", "zip"):
                raise ValueError(f"mode must be 'grid' or 'zip', got {mode!r}")
            seed_policy = payload.get("seed_policy", "spawn")
            n_points = _sweep_point_count(axes, mode)
            n_jobs = payload.get("n_jobs")
            if n_jobs is not None:
                n_jobs = int(n_jobs)
            shards = payload.get("shards", self.config.sweep_shards)
            if shards is not None:
                shards = int(shards)
                if shards < 1:
                    raise ValueError(f"shards must be >= 1, got {shards}")
                if n_jobs is not None and n_jobs > 1 and shards > 1:
                    raise ValueError(
                        "shards and n_jobs are mutually exclusive; each "
                        "shard already runs its tasks through a full engine"
                    )
            policy = (
                ExecutionPolicy.from_dict(payload["policy"])
                if payload.get("policy") is not None
                else ExecutionPolicy()
            )
            chunk_size = payload.get("chunk")
            if chunk_size is not None:
                chunk_size = max(1, int(chunk_size))
        except (ValueError, TypeError, KeyError) as exc:
            self.stats.rejected_invalid += 1
            raise _Rejection(
                400, "InvalidSweep", f"not a valid sweep request: {exc}"
            ) from None
        try:
            self.config.budgets.check_sweep_size(n_points, n_jobs, shards)
        except BudgetExceeded as exc:
            self.stats.rejected_budget += 1
            raise _Rejection(
                413, "BudgetExceeded", str(exc), detail=exc.detail()
            ) from None
        return base, axes, mode, seed_policy, n_jobs, policy, chunk_size, shards

    def _build_tasks(self, base, axes, mode: str, seed_policy: str):
        """Worker-thread entrypoint: materialise an admitted sweep.

        Point-spec derivation (and per-point SeedSequence spawning) is CPU
        work proportional to the sweep size; running it here keeps the
        event loop responsive while a large-but-within-budget sweep builds.
        """
        from repro.api.sweep import ScenarioSweep

        sweep = ScenarioSweep(base, axes, mode=mode, seed_policy=seed_policy)
        return sweep.tasks(self.session)

    def _sweep_chunk_size(self, n_jobs: int | None, override: int | None) -> int:
        if override is not None:
            return override
        if self.config.stream_chunk is not None:
            return self.config.stream_chunk
        if n_jobs is not None and n_jobs > 1:
            return 4 * n_jobs  # amortise pool spin-up per streamed batch
        return 1  # serial: true per-point streaming

    def _run_batch(self, tasks: list[SweepTask], n_jobs, policy):
        """Worker-thread entrypoint: one streamed batch through the executor.

        ``execute_tasks`` with ``n_jobs > 1`` fans out to its own process
        pool; the session lock is held for the batch, which keeps the
        shared caches consistent (sweep parallelism lives in the child
        processes, not in racing session threads).
        """
        with self._session_lock:
            return execute_tasks(
                tasks, self.session, policy=policy, n_jobs=n_jobs
            )

    def _run_sharded(self, tasks: list[SweepTask], shards: int, policy):
        """Worker-thread entrypoint: a whole sweep through the shard runner.

        Sharded sweeps run as one call (the shard partition is global to
        the task list, so batching would defeat the digest-keyed split);
        the session lock is held exactly as for a batch -- parallelism
        lives in the shard processes.
        """
        from repro.robust.shard import run_sharded

        with self._session_lock:
            return run_sharded(
                tasks, self.session, shards=shards, policy=policy
            )

    async def _handle_sweep(
        self, request: HttpRequest, writer: asyncio.StreamWriter
    ) -> bool:
        """Stream a sweep as NDJSON; returns True (connection closes after).

        The stream is chunk-framed, so clients could keep the connection,
        but closing after a stream keeps the drain logic trivial; clients
        reconnect cheaply.
        """
        base, axes, mode, seed_policy, n_jobs, policy, chunk_override, shards = (
            self._parse_sweep(request)
        )
        self._admit()

        self._active += 1
        loop = asyncio.get_running_loop()
        try:
            try:
                tasks = await loop.run_in_executor(
                    self._executor, self._build_tasks, base, axes, mode, seed_policy
                )
            except (ValueError, TypeError, KeyError) as exc:
                self.stats.rejected_invalid += 1
                raise _Rejection(
                    400, "InvalidSweep", f"not a valid sweep request: {exc}"
                ) from None
            try:
                self.config.budgets.check_sweep(
                    [t.spec for t in tasks], n_jobs, shards
                )
            except BudgetExceeded as exc:
                self.stats.rejected_budget += 1
                raise _Rejection(
                    413, "BudgetExceeded", str(exc), detail=exc.detail()
                ) from None

            self.stats.streams += 1
            batch = self._sweep_chunk_size(n_jobs, chunk_override)
            merged = ExecutionTrace(n_jobs=n_jobs, n_points=len(tasks))
            started = time.monotonic()
            try:
                writer.write(stream_head(keep_alive=False))
                writer.write(
                    chunk(
                        event_line(
                            {
                                "event": "start",
                                "n_points": len(tasks),
                                "chunk": batch,
                                "protocol": PROTOCOL_VERSION,
                            }
                        )
                    )
                )
                await writer.drain()
                if shards is not None and shards > 1:
                    # Sharded: the digest-keyed partition is global to the
                    # task list, so the whole sweep runs as one call and the
                    # completed points stream afterwards in batch-sized
                    # writes (drain fairness, not incremental compute).
                    points, failures, trace = await loop.run_in_executor(
                        self._executor, self._run_sharded, tasks, shards, policy
                    )
                    merged.merge(trace)
                    merged.pool_kind = trace.pool_kind
                    merged.n_shards = trace.n_shards
                    for offset in range(0, len(points), batch):
                        for point in points[offset : offset + batch]:
                            self.stats.points_streamed += 1
                            writer.write(
                                chunk(
                                    event_line(
                                        {"event": "point", "point": point.to_dict()}
                                    )
                                )
                            )
                        await writer.drain()
                    for failure in failures:
                        writer.write(
                            chunk(
                                event_line(
                                    {"event": "failure", "failure": failure.to_dict()}
                                )
                            )
                        )
                    await writer.drain()
                else:
                    for offset in range(0, len(tasks), batch):
                        points, failures, trace = await loop.run_in_executor(
                            self._executor,
                            self._run_batch,
                            tasks[offset : offset + batch],
                            n_jobs,
                            policy,
                        )
                        merged.merge(trace)
                        for point in points:
                            self.stats.points_streamed += 1
                            writer.write(
                                chunk(
                                    event_line(
                                        {"event": "point", "point": point.to_dict()}
                                    )
                                )
                            )
                        for failure in failures:
                            writer.write(
                                chunk(
                                    event_line(
                                        {
                                            "event": "failure",
                                            "failure": failure.to_dict(),
                                        }
                                    )
                                )
                            )
                        await writer.drain()
                merged.elapsed = time.monotonic() - started
                writer.write(
                    chunk(event_line({"event": "done", "trace": merged.to_dict()}))
                )
                writer.write(last_chunk())
                await writer.drain()
            except asyncio.CancelledError:
                raise
            except (ConnectionResetError, BrokenPipeError):
                raise  # client went away mid-stream; _on_connection handles
            except Exception as exc:  # noqa: BLE001 - mid-stream failure
                # The head is already out: a second HTTP response here would
                # corrupt the chunk framing.  Finish the stream with a
                # structured error event and terminator instead; the
                # connection closes either way (return True below).
                self.stats.errors += 1
                try:
                    writer.write(
                        chunk(
                            event_line(
                                {
                                    "event": "error",
                                    **error_payload(
                                        "ComputeError",
                                        f"{type(exc).__name__}: {exc}",
                                    ),
                                }
                            )
                        )
                    )
                    writer.write(last_chunk())
                    await writer.drain()
                except (ConnectionResetError, BrokenPipeError, OSError):
                    pass
        finally:
            self._active -= 1
        return True

    # ------------------------------------------------------------------
    # Introspection endpoints
    # ------------------------------------------------------------------
    def _health_payload(self) -> dict[str, Any]:
        return {
            "status": "draining" if self._draining else "ok",
            "protocol": PROTOCOL_VERSION,
            "uptime_s": time.monotonic() - self._started_at,
            "in_flight": self._active,
        }

    def _stats_payload(self) -> dict[str, Any]:
        return {
            "protocol": PROTOCOL_VERSION,
            "uptime_s": time.monotonic() - self._started_at,
            "in_flight": self._active,
            "inflight_digests": len(self._inflight),
            "server": self.stats.to_dict(),
            "session": self.session.stats(),
            "budgets": self.config.budgets.to_dict(),
        }


def _sweep_point_count(axes: Mapping[str, Any], mode: str) -> int:
    """Prospective sweep size from the axis lengths alone.

    Grid mode multiplies, zip mode pairs elementwise; either way the count
    is known before any point spec exists, which is what lets the server
    budget-check a sweep without materialising it.
    """
    lengths = []
    for path, values in axes.items():
        if not isinstance(values, list):
            raise ValueError(f"axis {path!r} must be a JSON array of values")
        lengths.append(len(values))
    if mode == "zip":
        return max(lengths, default=0)
    count = 1
    for length in lengths:
        count *= length
    return count


class BackgroundServer:
    """A :class:`StudyServer` on a daemon thread with its own event loop.

    Usage (tests, benchmarks, embedding)::

        with BackgroundServer(config=ServeConfig()) as server:
            client = Client(server.host, server.port)
            ...

    ``stop`` (or leaving the ``with`` block) drains in-flight work through
    :meth:`StudyServer.shutdown` before joining the thread.
    """

    def __init__(
        self,
        session: Session | None = None,
        config: ServeConfig | None = None,
    ) -> None:
        self.server = StudyServer(session=session, config=config)
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._stop: asyncio.Event | None = None
        self._startup_error: BaseException | None = None

    # -- lifecycle -------------------------------------------------------
    def start(self) -> "BackgroundServer":
        if self._thread is not None:
            raise RuntimeError("background server already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-loop", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise RuntimeError("server failed to start") from self._startup_error
        return self

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        try:
            await self.server.start()
        except BaseException as exc:  # noqa: BLE001 - reported to starter
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        await self._stop.wait()

    def stop(self, drain: bool = True, timeout: float | None = None) -> None:
        """Drain (optionally) and stop the server, then join the thread."""
        if self._thread is None or self._loop is None or self._stop is None:
            return
        if self._thread.is_alive():
            asyncio.run_coroutine_threadsafe(
                self.server.shutdown(drain=drain), self._loop
            ).result(timeout if timeout is not None else None)
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout)
        self._thread = None

    # -- conveniences ----------------------------------------------------
    @property
    def host(self) -> str:
        assert self.server.host is not None, "server not started"
        return self.server.host

    @property
    def port(self) -> int:
        assert self.server.port is not None, "server not started"
        return self.server.port

    @property
    def session(self) -> Session:
        return self.server.session

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
