"""Timing-analysis substrate.

* :mod:`repro.timing.delay_model` -- alpha-power-law gate delay model:
  nominal delays from the logical-effort RC parameterisation, plus
  vectorised evaluation under sampled threshold-voltage / channel-length
  deviations and first-order sensitivity extraction for statistical timing.
* :mod:`repro.timing.sta` -- deterministic static timing analysis (arrival
  times, maximum delay, critical path) over a :class:`~repro.circuit.netlist.Netlist`;
  also accepts per-sample delay matrices so the Monte-Carlo engine can reuse it.
* :mod:`repro.timing.ssta` -- block-based statistical static timing analysis
  using first-order canonical delay forms (global factors: inter-die Vth and
  length, principal components of the spatially correlated field; plus an
  independent random part) combined with Clark's max operator.
* :mod:`repro.timing.paths` -- critical-path extraction, slack and
  near-critical path counting.
* :mod:`repro.timing.incremental` -- incremental STA: dirty-cone
  arrival/required propagation with exact cutoff (:class:`IncrementalTimer`)
  and the coefficient-cached sizer state (:class:`SizingState`).
* :mod:`repro.timing.kernels` -- kernel-tier selection
  (:class:`KernelConfig`): vectorized vs threaded row-chunked propagation
  with auto-selection by problem size.
"""

from repro.timing.delay_model import GateDelayModel
from repro.timing.incremental import IncrementalTimer, SizingState
from repro.timing.kernels import KernelConfig
from repro.timing.sta import (
    arrival_times,
    critical_path,
    max_delay,
    required_times,
    slacks,
)
from repro.timing.ssta import CanonicalForm, StatisticalTimingAnalyzer

__all__ = [
    "GateDelayModel",
    "IncrementalTimer",
    "KernelConfig",
    "SizingState",
    "arrival_times",
    "max_delay",
    "critical_path",
    "required_times",
    "slacks",
    "CanonicalForm",
    "StatisticalTimingAnalyzer",
]
