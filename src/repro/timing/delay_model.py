"""Gate delay model.

Delay of a gate ``i`` with size ``x_i`` driving load ``C_load``:

    d_i = R_i * (C_par_i + C_load_i)
        = (r_unit / x_i) * (p_i * c_par_unit * x_i + C_load_i)

which is the logical-effort RC model: a size-independent parasitic term plus
a drive term that shrinks as the gate is upsized (and grows as its fanout is
upsized, because ``C_load`` contains the fanout gates' input capacitance).

Process variation enters through the drive resistance.  With the
alpha-power law, drive current scales as ``(vdd - vth)**alpha / L`` so the
delay of a device whose threshold voltage and channel length deviate from
nominal is the nominal delay multiplied by

    drive_factor = ((vdd - vth0) / (vdd - vth))**alpha * (L / L0).

The same factor gives the first-order sensitivities used by the statistical
timer: ``d(d)/d(vth) = d_nom * alpha / (vdd - vth0)`` and
``d(d)/d(L/L0) = d_nom`` at the nominal point.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.netlist import Netlist
from repro.process.technology import Technology
from repro.process.variation import VariationModel


class GateDelayModel:
    """Computes nominal, sampled and sensitivity-form gate delays."""

    def __init__(self, technology: Technology) -> None:
        self.technology = technology

    # ------------------------------------------------------------------
    # Nominal
    # ------------------------------------------------------------------
    def nominal_delays(
        self, netlist: Netlist, sizes: np.ndarray | None = None
    ) -> np.ndarray:
        """Nominal delay of every gate in seconds (topological order).

        Parameters
        ----------
        netlist:
            The netlist to evaluate.
        sizes:
            Optional size vector to evaluate at without mutating the netlist.
        """
        tech = self.technology
        if sizes is None:
            sizes = netlist.sizes()
        else:
            sizes = np.asarray(sizes, dtype=float)
            if np.any(sizes <= 0.0):
                raise ValueError("all gate sizes must be positive")
        coeffs = netlist.cell_coefficients()
        loads = netlist.load_capacitances(sizes)
        drive_resistance = tech.r_unit / sizes
        parasitic_cap = coeffs["parasitic_delay"] * tech.c_par_unit * sizes
        return drive_resistance * (parasitic_cap + loads)

    # ------------------------------------------------------------------
    # Monte-Carlo samples
    # ------------------------------------------------------------------
    def drive_factors(
        self, vth_samples: np.ndarray, length_samples: np.ndarray | None = None
    ) -> np.ndarray:
        """Delay multipliers for sampled Vth (and optionally channel length).

        Accepts arrays of any matching shape and broadcasts.
        """
        tech = self.technology
        vth_samples = np.asarray(vth_samples, dtype=float)
        overdrive = tech.vdd - vth_samples
        if np.any(overdrive <= 0.0):
            raise ValueError(
                "sampled threshold voltage reaches the supply; clamp samples "
                "before computing delays"
            )
        factor = (tech.gate_overdrive / overdrive) ** tech.alpha
        if length_samples is not None:
            factor = factor * (np.asarray(length_samples, dtype=float) / tech.lmin)
        return factor

    def delay_samples(
        self,
        netlist: Netlist,
        vth_samples: np.ndarray,
        length_samples: np.ndarray | None = None,
        sizes: np.ndarray | None = None,
    ) -> np.ndarray:
        """Per-sample, per-gate delays in seconds.

        Parameters
        ----------
        netlist:
            The netlist to evaluate.
        vth_samples:
            Threshold samples of shape ``(n_samples, n_gates)`` in topological
            gate order.
        length_samples:
            Optional channel-length samples of the same shape.
        sizes:
            Optional size vector (topological order).

        Returns
        -------
        numpy.ndarray
            Delays of shape ``(n_samples, n_gates)``.
        """
        nominal = self.nominal_delays(netlist, sizes)
        vth_samples = np.asarray(vth_samples, dtype=float)
        if vth_samples.ndim != 2 or vth_samples.shape[1] != nominal.shape[0]:
            raise ValueError(
                "vth_samples must have shape (n_samples, n_gates="
                f"{nominal.shape[0]}), got {vth_samples.shape}"
            )
        factors = self.drive_factors(vth_samples, length_samples)
        return nominal[None, :] * factors

    # ------------------------------------------------------------------
    # First-order sensitivities (for SSTA)
    # ------------------------------------------------------------------
    def sensitivity_coefficients(
        self,
        netlist: Netlist,
        variation: VariationModel,
        sizes: np.ndarray | None = None,
    ) -> dict[str, np.ndarray]:
        """Per-gate delay mean and standard-deviation components.

        Returns a dict of arrays (topological order, units of seconds):

        * ``mean`` -- nominal delay,
        * ``sigma_inter`` -- sigma due to the inter-die component (Vth and
          channel length combined in quadrature; they are modelled as
          independent global factors but both shift all gates together),
        * ``sigma_vth_inter`` / ``sigma_l_inter`` -- the two inter-die parts
          separately (used as separate canonical factors),
        * ``sigma_systematic`` -- sigma due to the spatially correlated
          component (Vth and length move together on the same field),
        * ``sigma_random`` -- sigma of the independent per-gate component.
        """
        tech = self.technology
        if sizes is None:
            sizes = netlist.sizes()
        else:
            sizes = np.asarray(sizes, dtype=float)
        nominal = self.nominal_delays(netlist, sizes)
        vth_slope = tech.alpha / tech.gate_overdrive

        sigma_vth_inter = nominal * vth_slope * variation.sigma_vth_inter
        sigma_l_inter = nominal * variation.sigma_l_inter
        sigma_systematic = nominal * (
            vth_slope * variation.sigma_vth_systematic + variation.sigma_l_systematic
        )
        sigma_random = (
            nominal * vth_slope * variation.sigma_vth_random / np.sqrt(sizes)
        )
        sigma_inter = np.sqrt(sigma_vth_inter**2 + sigma_l_inter**2)
        return {
            "mean": nominal,
            "sigma_inter": sigma_inter,
            "sigma_vth_inter": sigma_vth_inter,
            "sigma_l_inter": sigma_l_inter,
            "sigma_systematic": sigma_systematic,
            "sigma_random": sigma_random,
        }
