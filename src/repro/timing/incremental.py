"""Incremental static timing: dirty-cone propagation over the compiled schedule.

A single-gate resize perturbs only its fanout cone, yet the sizers' inner
loops historically re-propagated the entire DAG (and rebuilt every cell
coefficient) after every move.  This module provides the incremental tier:

* :class:`IncrementalTimer` -- maintains arrival (and lazily, required) time
  state on a netlist's compiled CSR :class:`~repro.circuit.schedule.TimingSchedule`.
  After a delay change, only the dirty fanout frontier is re-propagated,
  level by level, with early cutoff when a recomputed arrival is *exactly*
  equal to the stored one.  Because the max fold is exact (no epsilon), the
  maintained arrivals are bit-identical to a full
  :func:`~repro.timing.sta.arrival_times` pass at every point, and the
  maintained critical path / required times match
  :func:`~repro.timing.sta.critical_path` / :func:`~repro.timing.sta.required_times`
  exactly.
* :class:`SizingState` -- the sizer-facing layer: caches the cell
  coefficients once and incrementally maintains sizes -> pin caps -> loads ->
  delays -> arrivals across ``resize``/``set_sizes`` calls, each stage
  replaying the reference formulas (`Netlist.load_capacitances`,
  `GateDelayModel.nominal_delays`) element for element so the state is bit
  identical to a from-scratch evaluation at the same sizes.

Exactness of the subset load recomputation deserves a note: the reference
``np.bincount`` accumulates each gate's load over its fanin occurrences in
increasing edge order, which (by construction of ``Netlist._rebuild``) is
exactly the fanout-CSR order of the driving gate; a subset ``np.bincount``
over the expanded fanout CSR replays the same addend sequence in the same
sequential order, so the partial sums -- and therefore the floats -- agree
bit for bit.  (``np.add.reduceat`` would not: it sums pairwise.)
"""

from __future__ import annotations

import numpy as np

from repro.circuit.netlist import Netlist
from repro.circuit.schedule import expand_csr_rows
from repro.timing.sta import _propagate_block

# Dirty level-buckets at or below this size take the scalar per-gate path;
# larger buckets batch the fanin fold with one gather + reduceat.
_SCALAR_BUCKET = 8
#: A propagation pass with at least 1/_DENSE_DIRTY_FRACTION of the gates
#: dirty skips the frontier machinery and reruns the full vectorized kernel
#: (same kernel, same bits, less bookkeeping).
_DENSE_DIRTY_FRACTION = 4


def _segment_starts(counts: np.ndarray) -> np.ndarray:
    """Exclusive prefix sums of ``counts`` (reduceat segment offsets)."""
    seg = np.zeros(counts.shape[0], dtype=np.int64)
    np.cumsum(counts[:-1], out=seg[1:])
    return seg


class IncrementalTimer:
    """Incrementally maintained arrival/required times for one netlist.

    Parameters
    ----------
    netlist:
        Netlist to track.  Its compiled schedule is captured at construction;
        structural edits (add/remove gates) require a new timer.
    gate_delays:
        Initial per-gate delay vector in topological order; copied.

    Notes
    -----
    The update contract is *epsilon-exact*: propagation past a gate stops
    only when its recomputed arrival is bit-equal to the stored one, so
    :meth:`arrivals`, :meth:`critical_path` and :meth:`required` always
    return exactly what the full kernels would produce for the current
    delays.  ``invalidate`` may be called with any gate ids (no-op
    invalidations are safe: the recomputed arrival equals the stored one and
    the frontier dies immediately).
    """

    def __init__(self, netlist: Netlist, gate_delays: np.ndarray) -> None:
        self.netlist = netlist
        self.schedule = netlist.timing_schedule()
        n_gates = self.schedule.n_gates
        delays = np.array(gate_delays, dtype=float)
        if delays.shape != (n_gates,):
            raise ValueError(
                f"gate_delays must have shape ({n_gates},), got {delays.shape}"
            )
        self._delays = delays
        self._arrivals = np.empty(n_gates)
        # parents[g]: the fanin whose arrival realises g's max (first maximum
        # in pin order, matching critical_path's np.argmax tie-break); -1 for
        # source gates.  Maintained alongside arrivals so the critical path
        # is an O(depth) walk instead of a full backtrace.
        self._parents = np.full(n_gates, -1, dtype=np.int64)
        self._dirty = np.zeros(n_gates, dtype=bool)
        self._queued = np.zeros(n_gates, dtype=bool)
        self._has_dirty = False
        # Set by the dense propagation path instead of rebuilding parents
        # eagerly; cleared by the next critical-path query.
        self._parents_stale = False
        out_mask = netlist.output_mask()
        if not out_mask.any():
            out_mask = np.ones(n_gates, dtype=bool)
        self._output_positions = np.nonzero(out_mask)[0]
        self._order = netlist.topological_order()
        # Required-time state, built lazily on the first required() call.
        req_mask = netlist.output_mask()
        if not req_mask.any():
            req_mask = self.schedule.fanout_counts == 0
        self._required_mask = req_mask
        self._required: np.ndarray | None = None
        # Raw backward recurrence values: gates whose forward cone never
        # reaches a marked output stay at +inf here (the reference flattens
        # them to the target only at the very end, NOT through the min
        # recurrence -- replicating that is what keeps the incremental pass
        # bit-identical).  Reachability is structural, so delay changes never
        # flip an entry between finite and inf.
        self._required_raw: np.ndarray | None = None
        self._required_target: float | None = None
        self._required_dirty = np.zeros(n_gates, dtype=bool)
        self._req_queued = np.zeros(n_gates, dtype=bool)
        self._has_required_dirty = False
        # Instrumentation: how much work the incremental tier actually did.
        self.full_propagations = 0
        self.incremental_propagations = 0
        self.gates_recomputed = 0
        self.gates_changed = 0
        if n_gates:
            _propagate_block(self.schedule, self._delays, self._arrivals)
            self._rebuild_parents(np.arange(n_gates, dtype=np.int64))
        self.full_propagations += 1

    # ------------------------------------------------------------------
    # Delay updates
    # ------------------------------------------------------------------
    @property
    def delays(self) -> np.ndarray:
        """The current per-gate delay vector (treat as read-only)."""
        return self._delays

    def invalidate(self, gate_ids) -> None:
        """Mark gates whose delays may have changed for re-propagation.

        Safe to over-invalidate: gates whose recomputed arrival is unchanged
        cut the frontier off immediately.
        """
        ids = np.atleast_1d(np.asarray(gate_ids, dtype=np.int64))
        if ids.size == 0:
            return
        n_gates = self.schedule.n_gates
        if ids.min() < 0 or ids.max() >= n_gates:
            raise IndexError(
                f"gate ids must be in [0, {n_gates}), got range "
                f"[{ids.min()}, {ids.max()}]"
            )
        self._dirty[ids] = True
        self._has_dirty = True

    def update_delays(self, gate_ids, values) -> None:
        """Set the delays of ``gate_ids`` to ``values`` and mark the changes."""
        ids = np.atleast_1d(np.asarray(gate_ids, dtype=np.int64))
        vals = np.atleast_1d(np.asarray(values, dtype=float))
        if ids.shape != vals.shape:
            raise ValueError(
                f"gate_ids shape {ids.shape} does not match values {vals.shape}"
            )
        if ids.size == 0:
            return
        changed = vals != self._delays[ids]
        if not changed.any():
            return
        changed_ids = ids[changed]
        self._delays[changed_ids] = vals[changed]
        self._dirty[changed_ids] = True
        self._has_dirty = True
        self._mark_required_stale(changed_ids)

    def set_delays(self, gate_delays: np.ndarray) -> None:
        """Replace the whole delay vector, diffing against the current one."""
        new = np.asarray(gate_delays, dtype=float)
        if new.shape != self._delays.shape:
            raise ValueError(
                f"gate_delays must have shape {self._delays.shape}, got {new.shape}"
            )
        changed = np.nonzero(new != self._delays)[0]
        if changed.size == 0:
            return
        self._delays[changed] = new[changed]
        self._dirty[changed] = True
        self._has_dirty = True
        self._mark_required_stale(changed)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def arrivals(self) -> np.ndarray:
        """Current arrival times (propagating any pending dirt first).

        Returns the internal array; treat as read-only.
        """
        if self._has_dirty:
            self._propagate()
        return self._arrivals

    def worst_arrival(self) -> float:
        """Max arrival over the primary outputs (all gates when none marked)."""
        arrivals = self.arrivals()
        return float(arrivals[self._output_positions].max())

    def critical_path_positions(self) -> list[int]:
        """Topological positions along the longest path, source first."""
        arrivals = self.arrivals()
        if self._parents_stale:
            self._rebuild_parents(np.arange(self.schedule.n_gates, dtype=np.int64))
            self._parents_stale = False
        outs = self._output_positions
        current = int(outs[np.argmax(arrivals[outs])])
        path = [current]
        parents = self._parents
        while parents[current] >= 0:
            current = int(parents[current])
            path.append(current)
        path.reverse()
        return path

    def critical_path(self) -> list[str]:
        """Gate names along the longest path, matching :func:`~repro.timing.sta.critical_path`."""
        return [self._order[pos] for pos in self.critical_path_positions()]

    def required(self, target: float) -> np.ndarray:
        """Required times for ``target``, matching :func:`~repro.timing.sta.required_times`.

        The first call (and any call with a new target) performs a full
        backward pass; subsequent calls with the same target only re-tighten
        the fanin cones of gates whose delays changed.  Returns the internal
        array; treat as read-only.
        """
        target = float(target)
        if self._required is None or target != self._required_target:
            self._full_required(target)
            if self._has_required_dirty:
                self._required_dirty[:] = False
                self._has_required_dirty = False
        elif self._has_required_dirty:
            self._propagate_required()
        return self._required

    def _full_required(self, target: float) -> None:
        """Full backward pass, replaying :func:`~repro.timing.sta.required_times`.

        Also captures the raw (inf-preserving) recurrence values the
        incremental re-tightening operates on.
        """
        schedule = self.schedule
        delays = self._delays
        raw = np.full(schedule.n_gates, np.inf)
        raw[self._required_mask] = target
        for level in range(schedule.n_levels - 1, -1, -1):
            gates = schedule.rev_level_gates[level]
            if gates.shape[0] == 0:
                continue
            candidates = (
                raw[schedule.rev_level_edges[level]]
                - delays[schedule.rev_level_edges[level]]
            )
            tightest = np.minimum.reduceat(candidates, schedule.rev_level_seg[level])
            raw[gates] = np.minimum(raw[gates], tightest)
        self._required_raw = raw
        required = raw.copy()
        required[np.isinf(required)] = target
        self._required = required
        self._required_target = target

    # ------------------------------------------------------------------
    # Forward propagation
    # ------------------------------------------------------------------
    def _rebuild_parents(self, gates: np.ndarray) -> None:
        """Recompute ``parents`` for ``gates`` from the current arrivals.

        Vectorized first-maximum-in-pin-order selection: matches the
        ``np.argmax`` tie-break of the reference critical-path walk.
        """
        schedule = self.schedule
        counts = (
            schedule.fanin_ptr[gates + 1] - schedule.fanin_ptr[gates]
        ).astype(np.int64)
        with_fanins = counts > 0
        if not with_fanins.any():
            self._parents[gates] = -1
            return
        self._parents[gates[~with_fanins]] = -1
        gates = gates[with_fanins]
        counts = counts[with_fanins]
        flat, _ = expand_csr_rows(schedule.fanin_ptr, schedule.fanin_idx, gates)
        seg = _segment_starts(counts)
        vals = self._arrivals[flat]
        seg_max = np.maximum.reduceat(vals, seg)
        n_edges = flat.shape[0]
        candidates = np.where(
            vals == np.repeat(seg_max, counts), np.arange(n_edges), n_edges
        )
        first = np.minimum.reduceat(candidates, seg)
        self._parents[gates] = flat[first]

    def _propagate(self) -> None:
        """Re-propagate the dirty frontier level by level with exact cutoff."""
        schedule = self.schedule
        levels = schedule.levels
        arrivals = self._arrivals
        delays = self._delays
        parents = self._parents
        queued = self._queued
        fanin_ptr = schedule.fanin_ptr
        fanin_idx = schedule.fanin_idx
        fanout_ptr = schedule.fanout_ptr
        fanout_idx = schedule.fanout_idx

        dirty = np.nonzero(self._dirty)[0]
        self._dirty[:] = False
        self._has_dirty = False
        if dirty.size == 0:
            return
        if dirty.size * _DENSE_DIRTY_FRACTION >= schedule.n_gates:
            # Mostly-dirty passes (e.g. a sizer sweep that touched every
            # gate) are faster through the plain full kernel than through
            # the frontier machinery -- and it is the same kernel, so the
            # result is identical either way.  Parents are rebuilt lazily
            # on the next critical-path query: sizers that only watch
            # arrivals/required (the Lagrangian loop) never pay for them.
            old = arrivals.copy()
            _propagate_block(schedule, delays, arrivals)
            self._parents_stale = True
            self.full_propagations += 1
            self.gates_recomputed += schedule.n_gates
            self.gates_changed += int(np.count_nonzero(arrivals != old))
            return
        self.incremental_propagations += 1
        # Masked level sweep: the queue is just a boolean array scanned
        # against the static per-level gate lists.  Levels with no queued
        # gates cost one small gather + any(); frontier pushes are plain
        # boolean scatters (fanouts live at strictly higher levels, so a
        # push can never miss the sweep).  No per-gate Python bookkeeping.
        # If the frontier balloons past the dense budget mid-sweep, bail
        # out to the full kernel: it recomputes the partially-updated
        # arrivals to the same bits and costs less than expanding the
        # rest of the cone level by level.
        snapshot = arrivals.copy()
        budget = schedule.n_gates // _DENSE_DIRTY_FRACTION
        queued[dirty] = True
        recomputed = 0
        changed_total = 0
        for level in range(int(levels[dirty].min()), schedule.n_levels):
            level_gates = schedule.level_gates[level]
            selected = queued[level_gates]
            if not selected.any():
                continue
            gates = level_gates[selected]
            queued[gates] = False
            recomputed += gates.shape[0]
            if recomputed > budget:
                queued[:] = False
                _propagate_block(schedule, delays, arrivals)
                self._parents_stale = True
                self.full_propagations += 1
                self.gates_recomputed += schedule.n_gates
                self.gates_changed += int(np.count_nonzero(arrivals != snapshot))
                return
            if gates.shape[0] <= _SCALAR_BUCKET:
                for gate in gates.tolist():
                    lo = fanin_ptr[gate]
                    hi = fanin_ptr[gate + 1]
                    if lo == hi:
                        new_arrival = delays[gate]
                        parents[gate] = -1
                    else:
                        fanins = fanin_idx[lo:hi]
                        vals = arrivals[fanins]
                        best = int(vals.argmax())
                        new_arrival = vals[best] + delays[gate]
                        parents[gate] = fanins[best]
                    if new_arrival == arrivals[gate]:
                        continue
                    arrivals[gate] = new_arrival
                    changed_total += 1
                    queued[fanout_idx[fanout_ptr[gate] : fanout_ptr[gate + 1]]] = True
                continue
            old = arrivals[gates]
            if level == 0:
                new_arrivals = delays[gates]
                parents[gates] = -1
            else:
                flat, _ = expand_csr_rows(fanin_ptr, fanin_idx, gates)
                counts = (fanin_ptr[gates + 1] - fanin_ptr[gates]).astype(np.int64)
                seg = _segment_starts(counts)
                vals = arrivals[flat]
                seg_max = np.maximum.reduceat(vals, seg)
                new_arrivals = seg_max + delays[gates]
                # Parents are NOT maintained on the batch path (the argmax
                # selection costs as much as the fold itself); they are
                # rebuilt lazily on the next critical-path query.  Sizers
                # that only watch arrivals/required never pay for them.
                self._parents_stale = True
            changed = new_arrivals != old
            if not changed.any():
                continue
            changed_gates = gates[changed]
            arrivals[changed_gates] = new_arrivals[changed]
            changed_total += changed_gates.shape[0]
            flat_out, _ = expand_csr_rows(fanout_ptr, fanout_idx, changed_gates)
            if flat_out.shape[0]:
                queued[flat_out] = True
        self.gates_recomputed += recomputed
        self.gates_changed += changed_total

    # ------------------------------------------------------------------
    # Backward (required-time) propagation
    # ------------------------------------------------------------------
    def _mark_required_stale(self, changed_delay_gates: np.ndarray) -> None:
        """Dirty the fanins of delay-changed gates for the backward pass.

        ``required(g) = min over fanouts h of required(h) - delay(h)``: a
        delay change at ``h`` perturbs the required times of ``h``'s fanins
        (not ``h`` itself); arrival-driven required changes then ripple
        further down inside :meth:`_propagate_required`.
        """
        if self._required is None or changed_delay_gates.size == 0:
            return
        flat, _ = expand_csr_rows(
            self.schedule.fanin_ptr, self.schedule.fanin_idx, changed_delay_gates
        )
        if flat.shape[0]:
            self._required_dirty[flat] = True
            self._has_required_dirty = True

    def _propagate_required(self) -> None:
        """Re-tighten required times over the dirty fanin cones, deepest first.

        Operates on the raw (inf-preserving) recurrence values; gates whose
        cone never reaches a marked output keep raw ``+inf`` (their
        candidates stay ``inf - delay = inf``), so they cut the frontier off
        exactly as in the full pass, and the public array keeps their
        flattened target value.
        """
        schedule = self.schedule
        levels = schedule.levels
        raw = self._required_raw
        required = self._required
        delays = self._delays
        target = self._required_target
        mask = self._required_mask
        queued = self._req_queued
        fanin_ptr = schedule.fanin_ptr
        fanin_idx = schedule.fanin_idx
        fanout_ptr = schedule.fanout_ptr
        fanout_idx = schedule.fanout_idx

        dirty = np.nonzero(self._required_dirty)[0]
        self._required_dirty[:] = False
        self._has_required_dirty = False
        if dirty.size == 0:
            return
        if dirty.size * _DENSE_DIRTY_FRACTION >= schedule.n_gates:
            self._full_required(target)
            return
        # Masked level sweep, mirror-image of the forward pass: levels
        # descend, frontier pushes go to fanins (strictly lower levels).
        # Every dirtied gate drives at least one fanout (only fanins of
        # other gates are ever marked), so the min over fanouts is total.
        # Like the forward sweep, a frontier that balloons past the dense
        # budget bails out to the full backward pass (which rebuilds the
        # raw/flattened arrays from scratch, discarding partial updates).
        budget = schedule.n_gates // _DENSE_DIRTY_FRACTION
        recomputed = 0
        queued[dirty] = True
        for level in range(int(levels[dirty].max()), -1, -1):
            level_gates = schedule.level_gates[level]
            selected = queued[level_gates]
            if not selected.any():
                continue
            gates = level_gates[selected]
            queued[gates] = False
            recomputed += gates.shape[0]
            if recomputed > budget:
                queued[:] = False
                self._full_required(target)
                return
            if gates.shape[0] <= _SCALAR_BUCKET:
                for gate in gates.tolist():
                    fanouts = fanout_idx[fanout_ptr[gate] : fanout_ptr[gate + 1]]
                    tightest = (raw[fanouts] - delays[fanouts]).min()
                    if mask[gate]:
                        tightest = np.minimum(target, tightest)
                    if tightest == raw[gate]:
                        continue
                    raw[gate] = tightest
                    required[gate] = tightest
                    queued[fanin_idx[fanin_ptr[gate] : fanin_ptr[gate + 1]]] = True
                continue
            old = raw[gates]
            flat, _ = expand_csr_rows(fanout_ptr, fanout_idx, gates)
            counts = (fanout_ptr[gates + 1] - fanout_ptr[gates]).astype(np.int64)
            seg = _segment_starts(counts)
            tightest = np.minimum.reduceat(raw[flat] - delays[flat], seg)
            masked = mask[gates]
            if masked.any():
                tightest[masked] = np.minimum(target, tightest[masked])
            changed = tightest != old
            if not changed.any():
                continue
            changed_gates = gates[changed]
            raw[changed_gates] = tightest[changed]
            required[changed_gates] = tightest[changed]
            flat_in, _ = expand_csr_rows(fanin_ptr, fanin_idx, changed_gates)
            if flat_in.shape[0]:
                queued[flat_in] = True


class SizingState:
    """Incrementally maintained sizes -> loads -> delays -> arrivals.

    The sizer-facing layer over :class:`IncrementalTimer`: cell coefficients
    are computed once at construction, and every :meth:`resize` /
    :meth:`set_sizes` recomputes only the perturbed loads (the resized
    gate's fanins) and delays (those fanins plus the gate itself), feeding
    the exact diff into the timer.  After any update sequence ``loads``,
    ``delays`` and the timer's arrivals are bit-identical to
    ``Netlist.load_capacitances`` / ``GateDelayModel.nominal_delays`` /
    ``sta.arrival_times`` evaluated from scratch at the same sizes.
    """

    # set_sizes falls back to a full (but still coefficient-cached) local
    # recompute once at least 1/_DENSE_FRACTION of the gates changed.
    _DENSE_FRACTION = 4

    def __init__(
        self,
        netlist: Netlist,
        technology,
        sizes: np.ndarray | None = None,
    ) -> None:
        self.netlist = netlist
        self.technology = technology
        self.schedule = netlist.timing_schedule()
        n_gates = self.schedule.n_gates
        coefficients = netlist.cell_coefficients()
        self._pin_cap_unit = coefficients["logical_effort"] * technology.c_unit
        self._parasitic_unit = coefficients["parasitic_delay"] * technology.c_par_unit
        self._area_unit = coefficients["area_factor"] * technology.area_unit
        self._r_unit = float(technology.r_unit)
        self._is_output = netlist.output_mask()
        self._dangling = (self.schedule.fanout_counts == 0) & ~self._is_output
        self._default_load = float(netlist.default_output_load)
        self.sizes = (
            np.array(sizes, dtype=float) if sizes is not None else netlist.sizes()
        )
        if self.sizes.shape != (n_gates,):
            raise ValueError(
                f"sizes must have shape ({n_gates},), got {self.sizes.shape}"
            )
        self._pin_caps = self._pin_cap_unit * self.sizes
        self.loads = self._full_loads()
        self.timer = IncrementalTimer(netlist, self._full_delays())

    # ------------------------------------------------------------------
    # Full (coefficient-cached) recomputation
    # ------------------------------------------------------------------
    def _full_loads(self) -> np.ndarray:
        """All gate loads from the cached pin caps (== ``load_capacitances``)."""
        schedule = self.schedule
        loads = np.bincount(
            schedule.fanin_idx,
            weights=self._pin_caps[schedule.edge_owner],
            minlength=schedule.n_gates,
        ).astype(float)
        loads[self._is_output] += self._default_load
        loads[self._dangling] += self._default_load
        return loads

    def _full_delays(self) -> np.ndarray:
        """All gate delays from cached coefficients (== ``nominal_delays``)."""
        return (self._r_unit / self.sizes) * (
            self._parasitic_unit * self.sizes + self.loads
        )

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def resize(self, position: int, new_size: float) -> None:
        """Set one gate's size, updating loads, delays and arrivals.

        Only the gate's fanins see a load change (the gate's own load
        depends on its *fanouts'* sizes), so the perturbed delay set is the
        fanins plus the gate itself.
        """
        position = int(position)
        value = float(new_size)
        if value <= 0.0:
            raise ValueError(f"gate sizes must be positive, got {value}")
        if value == self.sizes[position]:
            return
        self.sizes[position] = value
        self._pin_caps[position] = self._pin_cap_unit[position] * value
        sources = self.schedule.fanins_of(position).astype(np.int64)
        if sources.shape[0]:
            self._recompute_loads(sources)
            affected = np.append(sources, position)
        else:
            affected = np.array([position], dtype=np.int64)
        self._recompute_delays(affected)

    def set_sizes(self, new_sizes: np.ndarray) -> None:
        """Replace the whole size vector, diffing against the current one."""
        new = np.asarray(new_sizes, dtype=float)
        if new.shape != self.sizes.shape:
            raise ValueError(
                f"sizes must have shape {self.sizes.shape}, got {new.shape}"
            )
        if (new <= 0.0).any():
            raise ValueError("gate sizes must be positive")
        changed = np.nonzero(new != self.sizes)[0]
        if changed.size == 0:
            return
        self.sizes[changed] = new[changed]
        self._pin_caps[changed] = self._pin_cap_unit[changed] * new[changed]
        if changed.size * self._DENSE_FRACTION >= self.schedule.n_gates:
            self.loads = self._full_loads()
            self.timer.set_delays(self._full_delays())
            return
        flat, _ = expand_csr_rows(
            self.schedule.fanin_ptr, self.schedule.fanin_idx, changed
        )
        if flat.shape[0]:
            sources = np.unique(flat.astype(np.int64))
            self._recompute_loads(sources)
            affected = np.union1d(sources, changed)
        else:
            affected = changed
        self._recompute_delays(affected)

    def _recompute_loads(self, sources: np.ndarray) -> None:
        """Recompute the loads of ``sources`` (each must drive >= 1 fanout).

        Replays the reference bincount's addend order over the fanout CSR,
        so the recomputed floats match a from-scratch ``load_capacitances``.
        """
        schedule = self.schedule
        flat, _ = expand_csr_rows(schedule.fanout_ptr, schedule.fanout_idx, sources)
        counts = (
            schedule.fanout_ptr[sources + 1] - schedule.fanout_ptr[sources]
        ).astype(np.int64)
        # bincount accumulates sequentially in array order -- the same
        # addend order as the reference's full bincount.  (reduceat sums
        # pairwise, which can differ in the last bit.)
        owner_local = np.repeat(np.arange(sources.shape[0]), counts)
        sums = np.bincount(
            owner_local, weights=self._pin_caps[flat], minlength=sources.shape[0]
        )
        driven_outputs = self._is_output[sources]
        if driven_outputs.any():
            sums[driven_outputs] += self._default_load
        self.loads[sources] = sums

    def _recompute_delays(self, affected: np.ndarray) -> None:
        """Recompute the delays of ``affected`` gates and update the timer."""
        local_sizes = self.sizes[affected]
        new_delays = (self._r_unit / local_sizes) * (
            self._parasitic_unit[affected] * local_sizes + self.loads[affected]
        )
        self.timer.update_delays(affected, new_delays)

    # ------------------------------------------------------------------
    # Queries (delegating to the timer)
    # ------------------------------------------------------------------
    @property
    def delays(self) -> np.ndarray:
        """Current per-gate delays (treat as read-only)."""
        return self.timer.delays

    def arrivals(self) -> np.ndarray:
        """Current arrival times (treat as read-only)."""
        return self.timer.arrivals()

    def worst_arrival(self) -> float:
        """Max arrival over the primary outputs."""
        return self.timer.worst_arrival()

    def critical_path_positions(self) -> list[int]:
        """Topological positions along the longest path, source first."""
        return self.timer.critical_path_positions()

    def required(self, target: float) -> np.ndarray:
        """Required times for ``target`` (treat as read-only)."""
        return self.timer.required(target)

    def total_area(self, sizes: np.ndarray | None = None) -> float:
        """Total area from the cached coefficients (== ``Netlist.total_area``)."""
        values = self.sizes if sizes is None else np.asarray(sizes, dtype=float)
        return float((self._area_unit * values).sum())
