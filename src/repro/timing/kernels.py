"""Kernel-tier selection for the timing engines.

The vectorized STA/SSTA kernels are single-core NumPy.  Their hot loops are
embarrassingly parallel along one axis -- Monte-Carlo sample rows for the
2-D arrival propagation, gates-within-a-level for the SSTA component fold --
and the underlying ufuncs (fancy gather, ``maximum``, ``einsum``,
``norm.cdf``) all release the GIL, so a plain ``ThreadPoolExecutor`` over
row spans scales them across cores with zero extra allocation.

This module owns the *selection* of that tier:

* :class:`KernelConfig` -- a frozen, JSON-round-trippable description of
  which kernel to use (``"auto"`` / ``"vectorized"`` / ``"threaded"``) and
  with how many threads.  Like :class:`~repro.robust.ExecutionPolicy` it is
  execution-side configuration: it never changes results beyond float noise
  (the row chunking is bit-identical for STA) and never enters a cache key.
* :func:`resolve_config` -- coercion from ``None`` / name / config, with the
  ``REPRO_TIMING_KERNEL`` and ``REPRO_TIMING_THREADS`` environment knobs.
* :func:`shared_executor` -- one process-wide thread pool shared by every
  timing kernel, grown on demand and reused across calls.

Auto-selection is deliberately conservative: threading only pays once the
per-call working set dwarfs the pool hand-off cost, so ``"auto"`` stays on
the vectorized tier below :attr:`KernelConfig.min_bytes` (or when only one
worker is available) and small problems never regress.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

#: Environment override for the default kernel name (``auto`` when unset).
ENV_KERNEL = "REPRO_TIMING_KERNEL"
#: Environment override for the worker count (``os.cpu_count()`` when unset).
ENV_THREADS = "REPRO_TIMING_THREADS"

KERNELS = ("auto", "vectorized", "threaded")

_LOCK = threading.Lock()
_EXECUTOR: ThreadPoolExecutor | None = None
_EXECUTOR_WORKERS = 0


def worker_count() -> int:
    """Default worker count: ``REPRO_TIMING_THREADS`` or the CPU count."""
    env = os.environ.get(ENV_THREADS)
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return os.cpu_count() or 1


@dataclass(frozen=True)
class KernelConfig:
    """Which timing-kernel tier to run, and how wide.

    Parameters
    ----------
    kernel:
        ``"vectorized"`` forces the single-core NumPy tier, ``"threaded"``
        forces the row-chunked thread-pool tier, ``"auto"`` (default) picks
        per call based on problem size and available workers.
    threads:
        Worker count for the threaded tier; ``None`` uses
        ``REPRO_TIMING_THREADS`` or ``os.cpu_count()``.
    min_bytes:
        ``auto`` threshold: minimum per-call working set (rows x row bytes)
        before the threaded tier is considered.
    min_rows:
        ``auto`` threshold: minimum number of independent rows before the
        threaded tier is considered.
    """

    kernel: str = "auto"
    threads: int | None = None
    min_bytes: int = 4 << 20
    min_rows: int = 64

    def __post_init__(self) -> None:
        if self.kernel not in KERNELS:
            raise ValueError(
                f"kernel must be one of {KERNELS}, got {self.kernel!r}"
            )
        if self.threads is not None and self.threads < 1:
            raise ValueError(f"threads must be at least 1, got {self.threads}")
        if self.min_bytes < 0:
            raise ValueError(f"min_bytes must be non-negative, got {self.min_bytes}")
        if self.min_rows < 1:
            raise ValueError(f"min_rows must be at least 1, got {self.min_rows}")

    def resolved_threads(self) -> int:
        """Concrete worker count (environment / CPU default applied)."""
        return self.threads if self.threads is not None else worker_count()

    def resolve(self, n_rows: int, row_bytes: int) -> int:
        """Worker count for a propagation over ``n_rows`` independent rows.

        Returns 1 when the vectorized tier should run (always for a single
        row); a forced ``"threaded"`` kernel is only capped by the row count,
        while ``"auto"`` additionally requires at least two workers and the
        ``min_rows`` / ``min_bytes`` floors.
        """
        if self.kernel == "vectorized" or n_rows <= 1:
            return 1
        workers = max(1, min(self.resolved_threads(), int(n_rows)))
        if self.kernel == "threaded":
            return workers
        if workers < 2:
            return 1
        if n_rows < self.min_rows or n_rows * row_bytes < self.min_bytes:
            return 1
        return workers

    def to_dict(self) -> dict:
        """JSON-safe representation (storage / RPC, like the other specs)."""
        return {
            "kernel": self.kernel,
            "threads": self.threads,
            "min_bytes": self.min_bytes,
            "min_rows": self.min_rows,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "KernelConfig":
        """Rebuild a config from :meth:`to_dict` output."""
        known = {name for name in cls.__dataclass_fields__}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown KernelConfig fields: {sorted(unknown)}")
        return cls(**payload)


def default_config() -> KernelConfig:
    """The process default: ``REPRO_TIMING_KERNEL`` or plain ``auto``."""
    env = os.environ.get(ENV_KERNEL)
    if env:
        return KernelConfig(kernel=env)
    return KernelConfig()


def resolve_config(kernel: "KernelConfig | str | None") -> KernelConfig:
    """Coerce a kernel knob (None / tier name / config) into a config."""
    if kernel is None:
        return default_config()
    if isinstance(kernel, KernelConfig):
        return kernel
    if isinstance(kernel, str):
        return KernelConfig(kernel=kernel)
    raise TypeError(
        f"kernel must be a KernelConfig, a tier name or None, got {kernel!r}"
    )


def shared_executor(workers: int) -> ThreadPoolExecutor:
    """The process-wide timing thread pool, grown to at least ``workers``.

    One pool serves every threaded kernel call; growing replaces it (the old
    pool finishes its in-flight work and is shut down without blocking).
    """
    global _EXECUTOR, _EXECUTOR_WORKERS
    with _LOCK:
        if _EXECUTOR is None or _EXECUTOR_WORKERS < workers:
            previous = _EXECUTOR
            _EXECUTOR = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-timing"
            )
            _EXECUTOR_WORKERS = workers
            if previous is not None:
                previous.shutdown(wait=False)
        return _EXECUTOR


def split_rows(n_rows: int, workers: int) -> list[tuple[int, int]]:
    """Contiguous, near-equal ``(start, stop)`` row spans for ``workers``."""
    workers = max(1, min(int(workers), int(n_rows))) if n_rows else 1
    base, extra = divmod(int(n_rows), workers)
    spans: list[tuple[int, int]] = []
    start = 0
    for index in range(workers):
        stop = start + base + (1 if index < extra else 0)
        if stop > start:
            spans.append((start, stop))
        start = stop
    return spans
