"""Path-level timing queries.

The balanced-vs-unbalanced discussion in the paper (Section 3.2) rests on
the observation that a balanced pipeline has *more near-critical paths* than
an unbalanced one, which hurts yield because every near-critical path is
another chance to violate the target.  This module provides the path-level
queries that let experiments quantify that: critical-path extraction,
per-gate slack, and counting of paths within a slack margin of critical.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.netlist import Netlist
from repro.timing.sta import arrival_times, critical_path, max_delay, required_times


@dataclass(frozen=True)
class PathReport:
    """Summary of the path structure of a block at its current sizes."""

    delay: float
    critical_path: tuple[str, ...]
    n_gates_near_critical: int
    n_paths_near_critical: int
    margin: float


def near_critical_gate_count(
    netlist: Netlist, gate_delays: np.ndarray, margin: float
) -> int:
    """Number of gates whose slack is within ``margin`` of the worst slack."""
    gate_delays = np.asarray(gate_delays, dtype=float)
    target = float(max_delay(netlist, gate_delays))
    arrivals = arrival_times(netlist, gate_delays)
    required = required_times(netlist, gate_delays, target)
    slack = required - arrivals
    return int((slack <= margin + 1e-18).sum())


def near_critical_path_count(
    netlist: Netlist, gate_delays: np.ndarray, margin: float
) -> int:
    """Number of input-to-output paths with delay within ``margin`` of critical.

    Counted exactly by dynamic programming over the sub-DAG of near-critical
    gates: a path is near-critical when every edge on it keeps the path delay
    within ``margin`` of the block delay.  The count is capped at 10**9 to
    avoid overflow on pathological blocks.
    """
    gate_delays = np.asarray(gate_delays, dtype=float)
    if gate_delays.ndim != 1:
        raise ValueError("near_critical_path_count expects a 1-D delay vector")
    target = float(max_delay(netlist, gate_delays))
    arrivals = arrival_times(netlist, gate_delays)
    required = required_times(netlist, gate_delays, target)
    slack = required - arrivals
    cap = 10**9

    fanins = netlist.fanin_indices()
    near = slack <= margin + 1e-18
    # paths_to[g]: number of near-critical partial paths ending at gate g.
    paths_to = np.zeros(len(fanins), dtype=float)
    for gate_pos, gate_fanins in enumerate(fanins):
        if not near[gate_pos]:
            continue
        near_fanins = [f for f in gate_fanins if near[f]]
        if near_fanins:
            paths_to[gate_pos] = min(cap, sum(paths_to[f] for f in near_fanins))
        else:
            paths_to[gate_pos] = 1.0
    mask = netlist.output_mask()
    if not mask.any():
        mask = np.ones(len(fanins), dtype=bool)
    total = paths_to[mask & near].sum()
    return int(min(total, cap))


def path_report(
    netlist: Netlist, gate_delays: np.ndarray, margin_fraction: float = 0.05
) -> PathReport:
    """Build a :class:`PathReport` for a block.

    Parameters
    ----------
    margin_fraction:
        Paths within this fraction of the block delay are counted as
        near-critical.
    """
    gate_delays = np.asarray(gate_delays, dtype=float)
    delay = float(max_delay(netlist, gate_delays))
    margin = margin_fraction * delay
    return PathReport(
        delay=delay,
        critical_path=tuple(critical_path(netlist, gate_delays)),
        n_gates_near_critical=near_critical_gate_count(netlist, gate_delays, margin),
        n_paths_near_critical=near_critical_path_count(netlist, gate_delays, margin),
        margin=margin,
    )
