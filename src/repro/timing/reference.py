"""Naive reference timing kernels (retained seed implementations).

These are the original gate-at-a-time Python-loop implementations of the
STA/SSTA propagation kernels, kept verbatim so that:

* the property-based test suite can assert the vectorized level-parallel
  kernels in :mod:`repro.timing.sta` and :mod:`repro.timing.ssta` match them
  to tight tolerances on arbitrary DAGs, and
* the performance benchmark (``benchmarks/bench_perf_timing.py``) can report
  the speedup of the compiled-schedule kernels against a fixed baseline.

They are not used on any production path.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.netlist import Netlist


def arrival_times_reference(netlist: Netlist, gate_delays: np.ndarray) -> np.ndarray:
    """Seed implementation of :func:`repro.timing.sta.arrival_times`."""
    gate_delays = np.asarray(gate_delays, dtype=float)
    fanins = netlist.fanin_indices()
    n_gates = len(fanins)
    if gate_delays.shape[-1] != n_gates:
        raise ValueError(
            f"gate_delays last dimension must be {n_gates}, got {gate_delays.shape}"
        )
    arrivals = np.zeros_like(gate_delays)
    if gate_delays.ndim == 1:
        for gate_pos, gate_fanins in enumerate(fanins):
            latest = 0.0
            for fanin_pos in gate_fanins:
                if arrivals[fanin_pos] > latest:
                    latest = arrivals[fanin_pos]
            arrivals[gate_pos] = latest + gate_delays[gate_pos]
    elif gate_delays.ndim == 2:
        for gate_pos, gate_fanins in enumerate(fanins):
            if gate_fanins:
                latest = arrivals[:, gate_fanins[0]]
                for fanin_pos in gate_fanins[1:]:
                    latest = np.maximum(latest, arrivals[:, fanin_pos])
                arrivals[:, gate_pos] = latest + gate_delays[:, gate_pos]
            else:
                arrivals[:, gate_pos] = gate_delays[:, gate_pos]
    else:
        raise ValueError(
            f"gate_delays must be 1-D or 2-D, got {gate_delays.ndim} dimensions"
        )
    return arrivals


def required_times_reference(
    netlist: Netlist, gate_delays: np.ndarray, target: float
) -> np.ndarray:
    """Seed implementation of :func:`repro.timing.sta.required_times`."""
    gate_delays = np.asarray(gate_delays, dtype=float)
    if gate_delays.ndim != 1:
        raise ValueError("required_times expects a 1-D delay vector")
    fanouts = netlist.fanout_indices()
    n_gates = len(fanouts)
    mask = netlist.output_mask()
    if not mask.any():
        mask = np.array([not f for f in fanouts], dtype=bool)
    required = np.full(n_gates, np.inf)
    required[mask] = target
    for gate_pos in range(n_gates - 1, -1, -1):
        for fanout_pos in fanouts[gate_pos]:
            candidate = required[fanout_pos] - gate_delays[fanout_pos]
            if candidate < required[gate_pos]:
                required[gate_pos] = candidate
    required[np.isinf(required)] = target
    return required


def arrival_components_reference(
    analyzer, netlist: Netlist, sizes: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Seed implementation of ``StatisticalTimingAnalyzer.arrival_components``.

    Performs one scalar Clark max per fanin pair, walking the DAG gate by
    gate.  ``analyzer`` is a :class:`repro.timing.ssta.StatisticalTimingAnalyzer`.
    """
    from repro.timing.ssta import _max_arrays

    means, sens, rands = analyzer.gate_delay_components(netlist, sizes)
    fanins = netlist.fanin_indices()
    n_gates = means.shape[0]
    arr_mean = np.zeros(n_gates)
    arr_sens = np.zeros((n_gates, analyzer.n_factors))
    arr_rand = np.zeros(n_gates)
    for gate_pos, gate_fanins in enumerate(fanins):
        if gate_fanins:
            best_mean = arr_mean[gate_fanins[0]]
            best_sens = arr_sens[gate_fanins[0]]
            best_rand = arr_rand[gate_fanins[0]]
            for fanin_pos in gate_fanins[1:]:
                best_mean, best_sens, best_rand = _max_arrays(
                    best_mean,
                    best_sens,
                    best_rand,
                    arr_mean[fanin_pos],
                    arr_sens[fanin_pos],
                    arr_rand[fanin_pos],
                )
        else:
            best_mean = 0.0
            best_sens = np.zeros(analyzer.n_factors)
            best_rand = 0.0
        arr_mean[gate_pos] = best_mean + means[gate_pos]
        arr_sens[gate_pos] = best_sens + sens[gate_pos]
        arr_rand[gate_pos] = float(np.hypot(best_rand, rands[gate_pos]))
    return arr_mean, arr_sens, arr_rand


def correlation_matrix_reference(forms: list) -> np.ndarray:
    """Seed implementation of ``StatisticalTimingAnalyzer.correlation_matrix``."""
    n = len(forms)
    matrix = np.eye(n)
    for i in range(n):
        for j in range(i + 1, n):
            rho = forms[i].correlation(forms[j])
            matrix[i, j] = rho
            matrix[j, i] = rho
    return matrix
