"""Block-based statistical static timing analysis (SSTA).

The paper feeds its pipeline-level model with per-stage delay means and
standard deviations obtained from SPICE Monte-Carlo.  This module provides
the analytical alternative: a first-order canonical-form SSTA engine that
computes the distribution of a stage's combinational delay (and the full
stage delay including sequential overhead) directly from the netlist, the
delay model and the variation model -- no sampling.

Canonical form
--------------
Every timing quantity is represented as

    T = mean + sum_j s_j * Z_j + r * R

where the ``Z_j`` are independent standard-normal *global* factors shared by
all gates (inter-die Vth, inter-die channel length, and the principal
components of the spatially correlated intra-die field) and ``R`` is an
independent standard-normal variable private to this quantity.  Sums add
means and sensitivities and combine the private parts in quadrature; the
max of two forms uses Clark's moment-matching approximation with the tightness
probability splitting the sensitivities.

The same factor basis is shared by every stage of a pipeline analysed by one
:class:`StatisticalTimingAnalyzer`, so the covariance between stage delays
(through the shared inter-die factors and overlapping spatial components)
falls directly out of the canonical forms -- exactly the correlation the
paper's pipeline model needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.stats import norm

from repro.circuit.flipflop import FlipFlopTiming
from repro.circuit.netlist import Netlist
from repro.process.spatial import SpatialCorrelationModel
from repro.process.technology import Technology
from repro.process.variation import VariationModel
from repro.timing.delay_model import GateDelayModel
from repro.timing.kernels import KernelConfig, resolve_config, shared_executor, split_rows

# Relative threshold below which the variance of (A - B) is treated as zero
# and the max degenerates to the larger-mean form (unit independent).
_DEGENERATE_RATIO = 1e-12


@dataclass(frozen=True)
class CanonicalForm:
    """First-order canonical representation of a Gaussian timing quantity."""

    mean: float
    sensitivities: np.ndarray
    sigma_random: float

    @property
    def variance(self) -> float:
        """Total variance (global sensitivities plus private part)."""
        return float(np.dot(self.sensitivities, self.sensitivities) + self.sigma_random**2)

    @property
    def sigma(self) -> float:
        """Total standard deviation."""
        return self.variance**0.5

    def covariance(self, other: "CanonicalForm") -> float:
        """Covariance with another form sharing the same factor basis."""
        if self.sensitivities.shape != other.sensitivities.shape:
            raise ValueError(
                "canonical forms have incompatible factor bases: "
                f"{self.sensitivities.shape} vs {other.sensitivities.shape}"
            )
        return float(np.dot(self.sensitivities, other.sensitivities))

    def correlation(self, other: "CanonicalForm") -> float:
        """Correlation coefficient with another form (0 if either is constant)."""
        denom = self.sigma * other.sigma
        if denom <= 0.0:
            return 0.0
        rho = self.covariance(other) / denom
        return float(np.clip(rho, -1.0, 1.0))

    def shifted(self, offset: float) -> "CanonicalForm":
        """Return a copy with the mean shifted by ``offset``."""
        return CanonicalForm(self.mean + offset, self.sensitivities, self.sigma_random)

    def __add__(self, other: "CanonicalForm") -> "CanonicalForm":
        """Sum of two forms (private parts are independent, so they RSS)."""
        return CanonicalForm(
            mean=self.mean + other.mean,
            sensitivities=self.sensitivities + other.sensitivities,
            sigma_random=float(np.hypot(self.sigma_random, other.sigma_random)),
        )

    @staticmethod
    def constant(value: float, n_factors: int) -> "CanonicalForm":
        """A deterministic quantity expressed in an ``n_factors`` basis."""
        return CanonicalForm(float(value), np.zeros(n_factors), 0.0)

    @staticmethod
    def maximum(a: "CanonicalForm", b: "CanonicalForm") -> "CanonicalForm":
        """Clark's approximation to ``max(a, b)`` as a new canonical form."""
        mean, sens, rand = _max_arrays(
            a.mean, a.sensitivities, a.sigma_random,
            b.mean, b.sensitivities, b.sigma_random,
        )
        return CanonicalForm(mean, sens, rand)


def _max_arrays(
    mean_a: float,
    sens_a: np.ndarray,
    rand_a: float,
    mean_b: float,
    sens_b: np.ndarray,
    rand_b: float,
) -> tuple[float, np.ndarray, float]:
    """Clark max of two canonical forms, returned as raw components."""
    var_a = float(np.dot(sens_a, sens_a) + rand_a * rand_a)
    var_b = float(np.dot(sens_b, sens_b) + rand_b * rand_b)
    cov_ab = float(np.dot(sens_a, sens_b))
    theta_sq = var_a + var_b - 2.0 * cov_ab
    if var_a + var_b <= 0.0 or theta_sq <= _DEGENERATE_RATIO * (var_a + var_b):
        # The two quantities are (numerically) the same random variable up to
        # a constant shift; the max is simply the one with the larger mean.
        if mean_a >= mean_b:
            return mean_a, sens_a.copy(), rand_a
        return mean_b, sens_b.copy(), rand_b
    theta = theta_sq**0.5
    alpha = (mean_a - mean_b) / theta
    prob_a = float(norm.cdf(alpha))
    prob_b = 1.0 - prob_a
    phi = float(norm.pdf(alpha))
    mean_max = mean_a * prob_a + mean_b * prob_b + theta * phi
    second_moment = (
        (mean_a**2 + var_a) * prob_a
        + (mean_b**2 + var_b) * prob_b
        + (mean_a + mean_b) * theta * phi
    )
    var_max = max(second_moment - mean_max**2, 0.0)
    sens_max = prob_a * sens_a + prob_b * sens_b
    residual = var_max - float(np.dot(sens_max, sens_max))
    rand_max = residual**0.5 if residual > 0.0 else 0.0
    return mean_max, sens_max, rand_max


def _max_arrays_batch(
    mean_a: np.ndarray,
    sens_a: np.ndarray,
    rand_a: np.ndarray,
    mean_b: np.ndarray,
    sens_b: np.ndarray,
    rand_b: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Clark max applied elementwise to ``k`` pairs of canonical forms.

    Shapes: means and randoms ``(k,)``, sensitivities ``(k, n_factors)``.
    Performs the same moment matching as :func:`_max_arrays` but for a whole
    batch of independent max operations at once -- one call per fanin rank
    per level instead of one Python call per fanin pair.
    """
    var_a = np.einsum("ij,ij->i", sens_a, sens_a) + rand_a * rand_a
    var_b = np.einsum("ij,ij->i", sens_b, sens_b) + rand_b * rand_b
    cov_ab = np.einsum("ij,ij->i", sens_a, sens_b)
    total = var_a + var_b
    theta_sq = total - 2.0 * cov_ab
    degenerate = (total <= 0.0) | (theta_sq <= _DEGENERATE_RATIO * total)
    theta = np.sqrt(np.where(degenerate, 1.0, theta_sq))
    alpha = (mean_a - mean_b) / theta
    prob_a = norm.cdf(alpha)
    prob_b = 1.0 - prob_a
    phi = norm.pdf(alpha)
    mean_max = mean_a * prob_a + mean_b * prob_b + theta * phi
    second_moment = (
        (mean_a**2 + var_a) * prob_a
        + (mean_b**2 + var_b) * prob_b
        + (mean_a + mean_b) * theta * phi
    )
    var_max = np.maximum(second_moment - mean_max**2, 0.0)
    sens_max = prob_a[:, None] * sens_a + prob_b[:, None] * sens_b
    residual = var_max - np.einsum("ij,ij->i", sens_max, sens_max)
    rand_max = np.sqrt(np.clip(residual, 0.0, None))
    if np.any(degenerate):
        # Numerically identical inputs (up to a constant shift): the max is
        # simply the form with the larger mean, as in the scalar kernel.
        use_a = degenerate & (mean_a >= mean_b)
        use_b = degenerate & ~(mean_a >= mean_b)
        mean_max = np.where(use_a, mean_a, np.where(use_b, mean_b, mean_max))
        rand_max = np.where(use_a, rand_a, np.where(use_b, rand_b, rand_max))
        sens_max[use_a] = sens_a[use_a]
        sens_max[use_b] = sens_b[use_b]
    return mean_max, sens_max, rand_max


class StatisticalTimingAnalyzer:
    """Canonical-form SSTA engine over a shared global factor basis.

    Parameters
    ----------
    technology:
        Technology node for the delay model.
    variation:
        The three-component variation model.
    grid_size:
        Resolution of the spatial-correlation grid whose principal
        components form the spatially correlated factors.
    variance_coverage:
        Fraction of the spatial field's variance the retained principal
        components must explain (1.0 keeps all of them).
    kernel:
        Kernel-tier selection for :meth:`arrival_components`: a
        :class:`~repro.timing.kernels.KernelConfig`, a tier name or ``None``
        for the process default.  Gates within a level are independent, so
        the threaded tier chunks wide levels across the shared timing pool.
    """

    def __init__(
        self,
        technology: Technology,
        variation: VariationModel,
        grid_size: int = 8,
        variance_coverage: float = 0.995,
        kernel: KernelConfig | str | None = None,
    ) -> None:
        if not 0.0 < variance_coverage <= 1.0:
            raise ValueError(
                f"variance_coverage must be in (0, 1], got {variance_coverage}"
            )
        self.technology = technology
        self.variation = variation
        self.kernel_config = resolve_config(kernel)
        self.delay_model = GateDelayModel(technology)
        self.spatial = SpatialCorrelationModel(
            grid_size=grid_size, correlation_length=variation.correlation_length
        )
        self._spatial_loadings = self._build_spatial_loadings(variance_coverage)
        # Factor basis: [vth_inter, l_inter, spatial components...]
        self.n_factors = 2 + self._spatial_loadings.shape[1]

    # ------------------------------------------------------------------
    # Factor basis construction
    # ------------------------------------------------------------------
    def _build_spatial_loadings(self, variance_coverage: float) -> np.ndarray:
        """Principal-component loadings of the spatial grid field.

        Returns an array of shape ``(n_cells, n_components)`` such that the
        correlated cell field equals ``loadings @ Z`` for independent
        standard-normal ``Z``.
        """
        if not self.variation.has_intra_systematic:
            return np.zeros((self.spatial.n_cells, 0))
        corr = self.spatial.correlation_matrix()
        eigenvalues, eigenvectors = np.linalg.eigh(corr)
        # eigh returns ascending order; take components from largest down.
        order = np.argsort(eigenvalues)[::-1]
        eigenvalues = np.clip(eigenvalues[order], 0.0, None)
        eigenvectors = eigenvectors[:, order]
        total = eigenvalues.sum()
        if total <= 0.0:
            return np.zeros((self.spatial.n_cells, 0))
        cumulative = np.cumsum(eigenvalues) / total
        n_keep = int(np.searchsorted(cumulative, variance_coverage) + 1)
        n_keep = min(n_keep, len(eigenvalues))
        return eigenvectors[:, :n_keep] * np.sqrt(eigenvalues[:n_keep])[None, :]

    # ------------------------------------------------------------------
    # Gate delay forms
    # ------------------------------------------------------------------
    def gate_delay_components(
        self, netlist: Netlist, sizes: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Canonical components of every gate's delay.

        Returns ``(means, sensitivities, randoms)`` with shapes
        ``(n_gates,)``, ``(n_gates, n_factors)`` and ``(n_gates,)``.
        """
        coefficients = self.delay_model.sensitivity_coefficients(
            netlist, self.variation, sizes
        )
        n_gates = coefficients["mean"].shape[0]
        sensitivities = np.zeros((n_gates, self.n_factors))
        sensitivities[:, 0] = coefficients["sigma_vth_inter"]
        sensitivities[:, 1] = coefficients["sigma_l_inter"]
        if self._spatial_loadings.shape[1] > 0:
            xs, ys = netlist.positions()
            cells = self.spatial.cell_index(xs, ys)
            loadings = self._spatial_loadings[cells, :]
            sensitivities[:, 2:] = (
                coefficients["sigma_systematic"][:, None] * loadings
            )
        return coefficients["mean"], sensitivities, coefficients["sigma_random"]

    # ------------------------------------------------------------------
    # Arrival-time propagation
    # ------------------------------------------------------------------
    def arrival_components(
        self, netlist: Netlist, sizes: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Canonical arrival-time components at every gate output.

        Propagates level by level over the netlist's compiled schedule.  At
        each level the pairwise Clark fold over every gate's fanins is
        batched by fanin rank: one :func:`_max_arrays_batch` call folds the
        ``j``-th fanin of all gates in the level simultaneously, preserving
        the per-gate left-to-right pin order of the scalar reference.

        When the threaded kernel tier is selected, wide levels are chunked
        into contiguous gate spans across the shared timing pool -- each
        gate's fold only reads lower-level arrivals and writes its own row,
        so chunks are independent and the result matches the vectorized fold
        per gate.
        """
        means, sens, rands = self.gate_delay_components(netlist, sizes)
        schedule = netlist.timing_schedule()
        n_gates = means.shape[0]
        arr_mean = np.zeros(n_gates)
        arr_sens = np.zeros((n_gates, self.n_factors))
        arr_rand = np.zeros(n_gates)
        state = (arr_mean, arr_sens, arr_rand, means, sens, rands)
        row_bytes = 8 * (self.n_factors + 2)
        for plan in schedule.level_plans:
            gates = plan.gates
            if plan.edge_cols is None:
                # Source gates: the arrival is the gate's own delay form.
                arr_mean[gates] = means[gates]
                arr_sens[gates] = sens[gates]
                arr_rand[gates] = rands[gates]
                continue
            workers = self.kernel_config.resolve(plan.width, row_bytes)
            if workers > 1:
                executor = shared_executor(workers)
                futures = [
                    executor.submit(self._fold_level_span, plan, state, lo, hi)
                    for lo, hi in split_rows(plan.width, workers)
                ]
                for future in futures:
                    future.result()
            else:
                self._fold_level_span(plan, state, 0, plan.width)
        return arr_mean, arr_sens, arr_rand

    @staticmethod
    def _fold_level_span(plan, state, lo: int, hi: int) -> None:
        """Fold the fanin ranks for the ``[lo, hi)`` span of one level's gates.

        The plan sorts the level's gates by fanin count, so the gates still
        folding their rank-``j`` fanin are always the ``:k`` prefix; within a
        span that prefix clips to ``[lo, min(k, hi))``.
        """
        arr_mean, arr_sens, arr_rand, means, sens, rands = state
        cols = plan.edge_cols
        first = cols[lo:hi]
        acc_mean = arr_mean[first]
        acc_sens = arr_sens[first]
        acc_rand = arr_rand[first]
        offset = plan.width
        for k in plan.rank_counts:
            count = min(k, hi) - lo
            if count > 0:
                nxt = cols[offset + lo : offset + lo + count]
                folded = _max_arrays_batch(
                    acc_mean[:count],
                    acc_sens[:count],
                    acc_rand[:count],
                    arr_mean[nxt],
                    arr_sens[nxt],
                    arr_rand[nxt],
                )
                acc_mean[:count], acc_sens[:count], acc_rand[:count] = folded
            offset += k
        gates = plan.gates[lo:hi]
        arr_mean[gates] = acc_mean + means[gates]
        arr_sens[gates] = acc_sens + sens[gates]
        arr_rand[gates] = np.hypot(acc_rand, rands[gates])

    def combinational_delay(
        self, netlist: Netlist, sizes: np.ndarray | None = None
    ) -> CanonicalForm:
        """Distribution of the block's combinational delay (max over outputs)."""
        arr_mean, arr_sens, arr_rand = self.arrival_components(netlist, sizes)
        mask = netlist.output_mask()
        if not mask.any():
            mask = np.ones(arr_mean.shape[0], dtype=bool)
        positions = np.where(mask)[0]
        # Process outputs in increasing order of mean arrival; the paper notes
        # (after Ross/Clark) that this ordering minimises the approximation
        # error of the pairwise max.
        positions = positions[np.argsort(arr_mean[positions])]
        # Gather the sorted chain into contiguous arrays once, then fold; the
        # pairwise chain itself is inherently sequential (each max feeds the
        # next) but this avoids re-indexing the component arrays every step.
        chain_mean = arr_mean[positions]
        chain_sens = arr_sens[positions]
        chain_rand = arr_rand[positions]
        mean = float(chain_mean[0])
        sens = chain_sens[0].copy()
        rand = float(chain_rand[0])
        for pos in range(1, positions.shape[0]):
            mean, sens, rand = _max_arrays(
                mean, sens, rand, chain_mean[pos], chain_sens[pos], chain_rand[pos]
            )
        return CanonicalForm(mean, sens, rand)

    # ------------------------------------------------------------------
    # Sequential overhead and stage delay
    # ------------------------------------------------------------------
    def flipflop_form(
        self,
        flipflop: FlipFlopTiming,
        position: tuple[float, float] = (0.5, 0.5),
    ) -> CanonicalForm:
        """Canonical form of the sequential overhead ``T_C-Q + T_setup``."""
        tech = self.technology
        var = self.variation
        mean = flipflop.nominal_overhead(tech)
        vth_slope = tech.alpha / tech.gate_overdrive
        sens = np.zeros(self.n_factors)
        sens[0] = mean * vth_slope * var.sigma_vth_inter
        sens[1] = mean * var.sigma_l_inter
        if self._spatial_loadings.shape[1] > 0:
            cell = int(self.spatial.cell_index(position[0], position[1]))
            loading = self._spatial_loadings[cell, :]
            sens[2:] = mean * (
                vth_slope * var.sigma_vth_systematic + var.sigma_l_systematic
            ) * loading
        sigma_random = mean * vth_slope * var.sigma_vth_random / flipflop.size**0.5
        return CanonicalForm(mean, sens, sigma_random)

    def stage_delay(
        self,
        netlist: Netlist,
        flipflop: FlipFlopTiming | None = None,
        flipflop_position: tuple[float, float] | None = None,
        sizes: np.ndarray | None = None,
    ) -> CanonicalForm:
        """Distribution of a full stage delay ``T_C-Q + T_comb + T_setup``.

        Parameters
        ----------
        netlist:
            The stage's combinational logic.
        flipflop:
            Sequential-element model; omit for a purely combinational stage.
        flipflop_position:
            Die position of the stage's output register (defaults to the mean
            position of the stage's gates).
        sizes:
            Optional size vector to analyse without mutating the netlist.
        """
        comb = self.combinational_delay(netlist, sizes)
        if flipflop is None:
            return comb
        if flipflop_position is None:
            xs, ys = netlist.positions()
            flipflop_position = (float(xs.mean()), float(ys.mean())) if len(xs) else (0.5, 0.5)
        overhead = self.flipflop_form(flipflop, flipflop_position)
        return comb + overhead

    # ------------------------------------------------------------------
    # Cross-stage statistics
    # ------------------------------------------------------------------
    def pipeline_stage_forms(self, pipeline) -> list[CanonicalForm]:
        """Stage-delay canonical forms for every stage of a pipeline.

        All forms share this analyzer's factor basis, so the cross-stage
        correlation the pipeline model needs falls out of
        :meth:`correlation_matrix` directly.  ``pipeline`` is anything with
        ``.stages`` of objects exposing ``netlist``, ``flipflop`` and
        ``register_position`` (i.e. :class:`repro.pipeline.pipeline.Pipeline`).
        """
        return [
            self.stage_delay(stage.netlist, stage.flipflop, stage.register_position)
            for stage in pipeline.stages
        ]

    def correlation_matrix(self, forms: list[CanonicalForm]) -> np.ndarray:
        """Correlation matrix of a list of canonical forms.

        Computed in one shot as ``S @ S.T`` over the stacked sensitivity
        matrix plus the private (random) variances on the diagonal, instead
        of ``O(n^2)`` scalar covariance calls.
        """
        n = len(forms)
        if n == 0:
            return np.eye(0)
        shapes = {form.sensitivities.shape for form in forms}
        if len(shapes) > 1:
            first, second, *_ = sorted(shapes)
            raise ValueError(
                "canonical forms have incompatible factor bases: "
                f"{first} vs {second}"
            )
        stacked = np.stack([form.sensitivities for form in forms])
        randoms = np.array([form.sigma_random for form in forms])
        covariance = stacked @ stacked.T
        sigma = np.sqrt(np.diag(covariance) + randoms**2)
        denom = np.outer(sigma, sigma)
        matrix = np.divide(
            covariance, denom, out=np.zeros((n, n)), where=denom > 0.0
        )
        matrix = np.clip(matrix, -1.0, 1.0)
        np.fill_diagonal(matrix, 1.0)
        return matrix
