"""Deterministic static timing analysis.

Propagates arrival times through a :class:`~repro.circuit.netlist.Netlist`:

    arrival(g) = max over fanins f of arrival(f) + delay(g)

Primary inputs arrive at time zero.  The functions accept either a single
per-gate delay vector (shape ``(n_gates,)``) or a matrix of per-sample
delays (shape ``(n_samples, n_gates)``).

The kernels run on the netlist's compiled :class:`~repro.circuit.schedule.TimingSchedule`:
gates are processed level by level, and within a level the max over every
gate's fanins -- across *all* Monte-Carlo samples at once -- is a single
gather plus ``np.maximum.reduceat``.  Compared to the seed's gate-at-a-time
Python loop this removes the per-gate interpreter overhead that dominated
``MonteCarloEngine.run_pipeline``; the naive loop survives in
:mod:`repro.timing.reference` as the correctness oracle.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.netlist import Netlist
from repro.timing.kernels import KernelConfig, resolve_config, shared_executor, split_rows


# Sample-block byte target for the 2-D kernel: one arrival block plus one
# delay block should sit inside a typical L2 cache while the level loop's
# Python overhead stays amortised over enough samples.
_BLOCK_BYTES = 1 << 20


def _propagate_block(schedule, delays: np.ndarray, arrivals: np.ndarray) -> None:
    """Forward-propagate one (contiguous) batch of sample rows in place.

    ``delays``/``arrivals`` are ``(n_rows, n_gates)`` (or 1-D) views.  Each
    level performs ONE fancy gather of every fanin arrival in rank-major
    order (``LevelMaxPlan.edge_cols``) and folds the pin ranks with plain
    contiguous-slice maximums -- the max is exact, so any fold order
    reproduces the naive per-gate loop bit for bit.
    """
    for plan in schedule.level_plans:
        gates = plan.gates
        if plan.edge_cols is None:
            # Source gates: arrival is just the gate's own delay.
            arrivals[..., gates] = delays[..., gates]
            continue
        width = plan.width
        gathered = arrivals[..., plan.edge_cols]
        latest = gathered[..., :width]
        offset = width
        for rank_count in plan.rank_counts:
            np.maximum(
                latest[..., :rank_count],
                gathered[..., offset : offset + rank_count],
                out=latest[..., :rank_count],
            )
            offset += rank_count
        latest += delays[..., gates]
        arrivals[..., gates] = latest


def _propagate_rows(
    schedule, delays: np.ndarray, arrivals: np.ndarray, block: int
) -> None:
    """Forward-propagate a contiguous span of sample rows in L2-sized blocks."""
    n_rows = delays.shape[0]
    for start in range(0, n_rows, block):
        stop = min(start + block, n_rows)
        _propagate_block(schedule, delays[start:stop], arrivals[start:stop])


def arrival_times(
    netlist: Netlist,
    gate_delays: np.ndarray,
    out: np.ndarray | None = None,
    kernel: KernelConfig | str | None = None,
) -> np.ndarray:
    """Arrival time at the output of every gate.

    Parameters
    ----------
    netlist:
        Netlist to analyse.
    gate_delays:
        Per-gate delays in topological order: either ``(n_gates,)`` or
        ``(n_samples, n_gates)``.
    out:
        Optional preallocated result array of the same shape and dtype.
        Streaming callers (the chunked Monte-Carlo engine, the sizers' inner
        loops) pass a reused workspace here: for large sample blocks the
        page-fault cost of a fresh allocation rivals the propagation itself.
    kernel:
        Kernel-tier selection for the 2-D path: a
        :class:`~repro.timing.kernels.KernelConfig`, a tier name
        (``"auto"``/``"vectorized"``/``"threaded"``) or ``None`` for the
        process default.  Sample rows are independent, so the threaded tier
        splits them into contiguous spans across a shared thread pool and is
        bit-identical to the vectorized tier.  Ignored for 1-D delays.

    Returns
    -------
    numpy.ndarray
        Arrival times with the same shape as ``gate_delays`` (``out`` when
        it was provided).
    """
    gate_delays = np.asarray(gate_delays, dtype=float)
    schedule = netlist.timing_schedule()
    if gate_delays.shape[-1] != schedule.n_gates:
        raise ValueError(
            f"gate_delays last dimension must be {schedule.n_gates}, "
            f"got {gate_delays.shape}"
        )
    if gate_delays.ndim not in (1, 2):
        raise ValueError(
            f"gate_delays must be 1-D or 2-D, got {gate_delays.ndim} dimensions"
        )
    if out is None:
        arrivals = np.empty_like(gate_delays)
    else:
        if out.shape != gate_delays.shape or out.dtype != gate_delays.dtype:
            raise ValueError(
                f"out must match gate_delays (shape {gate_delays.shape}, "
                f"dtype {gate_delays.dtype}), got shape {out.shape}, "
                f"dtype {out.dtype}"
            )
        arrivals = out
    if gate_delays.ndim == 1:
        _propagate_block(schedule, gate_delays, arrivals)
        return arrivals
    # 2-D: process sample rows in cache-sized blocks.  Gates in one level are
    # mutually independent, so each block streams through the level sequence
    # with its whole working set resident in L2.
    n_samples = gate_delays.shape[0]
    block = max(16, _BLOCK_BYTES // max(8 * schedule.n_gates, 1))
    workers = resolve_config(kernel).resolve(n_samples, 8 * schedule.n_gates)
    if workers > 1:
        executor = shared_executor(workers)
        futures = [
            executor.submit(
                _propagate_rows,
                schedule,
                gate_delays[start:stop],
                arrivals[start:stop],
                block,
            )
            for start, stop in split_rows(n_samples, workers)
        ]
        for future in futures:
            future.result()
    else:
        _propagate_rows(schedule, gate_delays, arrivals, block)
    return arrivals


def max_delay(
    netlist: Netlist,
    gate_delays: np.ndarray,
    out: np.ndarray | None = None,
    kernel: KernelConfig | str | None = None,
) -> np.ndarray | float:
    """Maximum arrival time over the primary outputs.

    If no primary outputs are marked, the maximum over all gates is used
    (every path must terminate somewhere).

    ``out`` is an optional arrival-time workspace and ``kernel`` the tier
    selection, both forwarded to :func:`arrival_times`.

    Returns a scalar for 1-D delays, or an ``(n_samples,)`` array for 2-D.
    """
    arrivals = arrival_times(netlist, gate_delays, out=out, kernel=kernel)
    mask = netlist.output_mask()
    if not mask.any():
        mask = np.ones(arrivals.shape[-1], dtype=bool)
    if arrivals.ndim == 1:
        return float(arrivals[mask].max())
    return arrivals[:, mask].max(axis=1)


def required_times(
    netlist: Netlist, gate_delays: np.ndarray, target: float
) -> np.ndarray:
    """Latest allowed arrival time at every gate output for a delay target.

    Propagated backwards from the primary outputs:
    ``required(g) = min over fanouts h of (required(h) - delay(h))``,
    with ``required = target`` at the primary outputs (or at sink gates when
    no outputs are marked).  Only defined for 1-D delay vectors.

    The backward walk mirrors the forward kernel: levels are visited from
    deepest to shallowest, and each level's min over fanouts is one gather
    plus ``np.minimum.reduceat`` (a gate's fanouts always sit at strictly
    higher levels, so they are final by the time the gate is visited).
    """
    gate_delays = np.asarray(gate_delays, dtype=float)
    if gate_delays.ndim != 1:
        raise ValueError("required_times expects a 1-D delay vector")
    schedule = netlist.timing_schedule()
    n_gates = schedule.n_gates
    if gate_delays.shape[0] != n_gates:
        raise ValueError(
            f"gate_delays must have length {n_gates}, got {gate_delays.shape}"
        )
    mask = netlist.output_mask()
    if not mask.any():
        mask = schedule.fanout_counts == 0
    required = np.full(n_gates, np.inf)
    required[mask] = target
    for level in range(schedule.n_levels - 1, -1, -1):
        gates = schedule.rev_level_gates[level]
        if gates.shape[0] == 0:
            continue
        candidates = (
            required[schedule.rev_level_edges[level]]
            - gate_delays[schedule.rev_level_edges[level]]
        )
        tightest = np.minimum.reduceat(candidates, schedule.rev_level_seg[level])
        required[gates] = np.minimum(required[gates], tightest)
    # Sink gates that are not marked outputs still default to the target.
    required[np.isinf(required)] = target
    return required


def slacks(netlist: Netlist, gate_delays: np.ndarray, target: float) -> np.ndarray:
    """Per-gate slack (required minus arrival) for a delay target."""
    arrivals = arrival_times(netlist, gate_delays)
    required = required_times(netlist, gate_delays, target)
    return required - arrivals


def critical_path(
    netlist: Netlist,
    gate_delays: np.ndarray,
    arrivals: np.ndarray | None = None,
) -> list[str]:
    """Gate names on the longest path, from first gate to primary output.

    Only defined for 1-D delay vectors.

    Parameters
    ----------
    arrivals:
        Optional precomputed arrival times for ``gate_delays`` (as returned
        by :func:`arrival_times`); callers that already hold them -- the
        greedy sizer evaluates arrivals every move -- avoid a redundant full
        propagation.
    """
    gate_delays = np.asarray(gate_delays, dtype=float)
    if gate_delays.ndim != 1:
        raise ValueError("critical_path expects a 1-D delay vector")
    if arrivals is None:
        arrivals = arrival_times(netlist, gate_delays)
    else:
        arrivals = np.asarray(arrivals, dtype=float)
        if arrivals.shape != gate_delays.shape:
            raise ValueError(
                f"arrivals shape {arrivals.shape} does not match "
                f"gate_delays shape {gate_delays.shape}"
            )
    order = netlist.topological_order()
    schedule = netlist.timing_schedule()
    mask = netlist.output_mask()
    if not mask.any():
        mask = np.ones(len(order), dtype=bool)

    candidates = np.where(mask)[0]
    end_pos = int(candidates[np.argmax(arrivals[candidates])])
    path_positions = [end_pos]
    current = end_pos
    fanins = schedule.fanins_of(current)
    while fanins.shape[0]:
        predecessor = int(fanins[np.argmax(arrivals[fanins])])
        path_positions.append(predecessor)
        current = predecessor
        fanins = schedule.fanins_of(current)
    path_positions.reverse()
    return [order[pos] for pos in path_positions]
