"""Deterministic static timing analysis.

Walks a :class:`~repro.circuit.netlist.Netlist` in topological order and
propagates arrival times:

    arrival(g) = max over fanins f of arrival(f) + delay(g)

Primary inputs arrive at time zero.  The functions accept either a single
per-gate delay vector (shape ``(n_gates,)``) or a matrix of per-sample
delays (shape ``(n_samples, n_gates)``); in the latter case every operation
is vectorised across samples, which is what makes the Monte-Carlo engine
fast enough to serve as the SPICE stand-in.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.netlist import Netlist


def arrival_times(netlist: Netlist, gate_delays: np.ndarray) -> np.ndarray:
    """Arrival time at the output of every gate.

    Parameters
    ----------
    netlist:
        Netlist to analyse.
    gate_delays:
        Per-gate delays in topological order: either ``(n_gates,)`` or
        ``(n_samples, n_gates)``.

    Returns
    -------
    numpy.ndarray
        Arrival times with the same shape as ``gate_delays``.
    """
    gate_delays = np.asarray(gate_delays, dtype=float)
    fanins = netlist.fanin_indices()
    n_gates = len(fanins)
    if gate_delays.shape[-1] != n_gates:
        raise ValueError(
            f"gate_delays last dimension must be {n_gates}, got {gate_delays.shape}"
        )
    arrivals = np.zeros_like(gate_delays)
    if gate_delays.ndim == 1:
        for gate_pos, gate_fanins in enumerate(fanins):
            latest = 0.0
            for fanin_pos in gate_fanins:
                if arrivals[fanin_pos] > latest:
                    latest = arrivals[fanin_pos]
            arrivals[gate_pos] = latest + gate_delays[gate_pos]
    elif gate_delays.ndim == 2:
        for gate_pos, gate_fanins in enumerate(fanins):
            if gate_fanins:
                latest = arrivals[:, gate_fanins[0]]
                for fanin_pos in gate_fanins[1:]:
                    latest = np.maximum(latest, arrivals[:, fanin_pos])
                arrivals[:, gate_pos] = latest + gate_delays[:, gate_pos]
            else:
                arrivals[:, gate_pos] = gate_delays[:, gate_pos]
    else:
        raise ValueError(
            f"gate_delays must be 1-D or 2-D, got {gate_delays.ndim} dimensions"
        )
    return arrivals


def max_delay(netlist: Netlist, gate_delays: np.ndarray) -> np.ndarray | float:
    """Maximum arrival time over the primary outputs.

    If no primary outputs are marked, the maximum over all gates is used
    (every path must terminate somewhere).

    Returns a scalar for 1-D delays, or an ``(n_samples,)`` array for 2-D.
    """
    arrivals = arrival_times(netlist, gate_delays)
    mask = netlist.output_mask()
    if not mask.any():
        mask = np.ones(arrivals.shape[-1], dtype=bool)
    if arrivals.ndim == 1:
        return float(arrivals[mask].max())
    return arrivals[:, mask].max(axis=1)


def required_times(
    netlist: Netlist, gate_delays: np.ndarray, target: float
) -> np.ndarray:
    """Latest allowed arrival time at every gate output for a delay target.

    Propagated backwards from the primary outputs:
    ``required(g) = min over fanouts h of (required(h) - delay(h))``,
    with ``required = target`` at the primary outputs (or at sink gates when
    no outputs are marked).  Only defined for 1-D delay vectors.
    """
    gate_delays = np.asarray(gate_delays, dtype=float)
    if gate_delays.ndim != 1:
        raise ValueError("required_times expects a 1-D delay vector")
    fanouts = netlist.fanout_indices()
    n_gates = len(fanouts)
    mask = netlist.output_mask()
    if not mask.any():
        mask = np.array([not f for f in fanouts], dtype=bool)
    required = np.full(n_gates, np.inf)
    required[mask] = target
    for gate_pos in range(n_gates - 1, -1, -1):
        for fanout_pos in fanouts[gate_pos]:
            candidate = required[fanout_pos] - gate_delays[fanout_pos]
            if candidate < required[gate_pos]:
                required[gate_pos] = candidate
    # Sink gates that are not marked outputs still default to the target.
    required[np.isinf(required)] = target
    return required


def slacks(netlist: Netlist, gate_delays: np.ndarray, target: float) -> np.ndarray:
    """Per-gate slack (required minus arrival) for a delay target."""
    arrivals = arrival_times(netlist, gate_delays)
    required = required_times(netlist, gate_delays, target)
    return required - arrivals


def critical_path(netlist: Netlist, gate_delays: np.ndarray) -> list[str]:
    """Gate names on the longest path, from first gate to primary output.

    Only defined for 1-D delay vectors.
    """
    gate_delays = np.asarray(gate_delays, dtype=float)
    if gate_delays.ndim != 1:
        raise ValueError("critical_path expects a 1-D delay vector")
    arrivals = arrival_times(netlist, gate_delays)
    order = netlist.topological_order()
    fanins = netlist.fanin_indices()
    mask = netlist.output_mask()
    if not mask.any():
        mask = np.ones(len(order), dtype=bool)

    candidates = np.where(mask)[0]
    end_pos = int(candidates[np.argmax(arrivals[candidates])])
    path_positions = [end_pos]
    current = end_pos
    while fanins[current]:
        predecessor = max(fanins[current], key=lambda pos: arrivals[pos])
        path_positions.append(predecessor)
        current = predecessor
    path_positions.reverse()
    return [order[pos] for pos in path_positions]
