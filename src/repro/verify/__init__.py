"""Differential verification subsystem: fuzzer + conformance harness.

Every perf/refactor PR in this repo speeds up or restructures a kernel that
has a slower, trusted counterpart -- the retained naive timing loops in
:mod:`repro.timing.reference`, the empirical Monte-Carlo view of every
analytical model, the balanced baseline of every optimizer.  This package
turns those pairs into a first-class, executable contract:

:mod:`repro.verify.tolerances`
    Typed tolerance policies (exact / kernel / statistical / yield-points).
:mod:`repro.verify.scenarios`
    The :class:`Scenario` unit, the committed ``corpus.json``, the seeded
    :class:`ScenarioFuzzer`, and the ``"random_logic"`` pipeline kind.
:mod:`repro.verify.invariants`
    Unconditional report invariants (probability bounds, monotone
    quantiles, JSON round trips, baseline consistency).
:mod:`repro.verify.oracles`
    The :class:`DifferentialOracle` protocol and registry pairing each
    vectorized kernel / analytical shortcut with its reference.
:mod:`repro.verify.runner`
    :func:`run_conformance` -- corpus + fresh fuzz -> one
    :class:`ConformanceReport`.

Quick use::

    from repro.verify import run_conformance

    report = run_conformance(fuzz=6)        # corpus + 6 fresh scenarios
    assert report.passed, report.format(failures_only=True)
"""

from repro.verify.invariants import check_delay_report, check_design_report
from repro.verify.oracles import (
    DifferentialOracle,
    OracleCheck,
    available_oracles,
    get_oracle,
    oracles_for,
    register_oracle,
)
from repro.verify.runner import ConformanceReport, run_conformance
from repro.verify.scenarios import (
    Scenario,
    ScenarioFuzzer,
    builtin_corpus,
    load_corpus,
    save_corpus,
)
from repro.verify.tolerances import Tolerance

__all__ = [
    "ConformanceReport",
    "DifferentialOracle",
    "OracleCheck",
    "Scenario",
    "ScenarioFuzzer",
    "Tolerance",
    "available_oracles",
    "builtin_corpus",
    "check_delay_report",
    "check_design_report",
    "get_oracle",
    "load_corpus",
    "oracles_for",
    "register_oracle",
    "run_conformance",
    "save_corpus",
]
