"""Structural invariants every report must satisfy, whatever produced it.

Differential oracles compare two implementations; the checkers here instead
assert properties that must hold of a single
:class:`~repro.api.backends.DelayReport` or
:class:`~repro.api.design.DesignReport` *unconditionally* -- probabilities in
[0, 1], quantile/yield monotonicity, well-formed correlation matrices,
baseline-vs-sized bookkeeping consistency, loss-free JSON round trips.
Each checker returns a list of human-readable violation strings (empty means
the report is sound), so the conformance runner can report every broken
property of a scenario at once instead of stopping at the first.
"""

from __future__ import annotations

import numpy as np

from repro.api.backends import DelayReport
from repro.api.design import DesignReport

#: Yield probes used for monotonicity checks, spread across the bulk and
#: both tails of the delay distribution.
_YIELD_PROBES = (0.05, 0.25, 0.50, 0.75, 0.95)


def _check_correlation_matrix(matrix: np.ndarray, violations: list[str]) -> None:
    n = matrix.shape[0]
    if matrix.shape != (n, n):
        violations.append(f"correlation matrix is not square: {matrix.shape}")
        return
    if not np.all(np.isfinite(matrix)):
        violations.append("correlation matrix has non-finite entries")
        return
    if not np.allclose(matrix, matrix.T, atol=1e-9):
        violations.append("correlation matrix is not symmetric")
    if not np.allclose(np.diag(matrix), 1.0, atol=1e-9):
        violations.append("correlation matrix diagonal is not 1")
    if np.any(np.abs(matrix) > 1.0 + 1e-9):
        violations.append("correlation entries fall outside [-1, 1]")


def check_delay_report(report: DelayReport) -> list[str]:
    """Invariants of a single delay report (any backend).

    Checks finiteness and non-negativity of the moments, correlation-matrix
    well-formedness, ``yield_at`` bounds and monotonicity in the target
    delay, ``delay_at_yield`` monotonicity in the target yield, mutual
    consistency of the two queries, and a loss-free JSON round trip.
    """
    violations: list[str] = []
    means = np.asarray(report.stage_means)
    stds = np.asarray(report.stage_stds)
    if not (np.all(np.isfinite(means)) and np.all(np.isfinite(stds))):
        violations.append("stage moments contain non-finite values")
        return violations
    if np.any(means < 0.0):
        violations.append("negative stage mean delay")
    if np.any(stds < 0.0):
        violations.append("negative stage delay sigma")
    if not np.isfinite(report.pipeline_mean) or not np.isfinite(report.pipeline_std):
        violations.append("pipeline moments are non-finite")
        return violations
    if report.pipeline_std < 0.0:
        violations.append(f"negative pipeline sigma {report.pipeline_std}")
    if means.size and report.pipeline_mean < means.max() * (1.0 - 1e-9):
        violations.append(
            "pipeline mean below the largest stage mean (violates "
            f"E[max] >= max E): {report.pipeline_mean} < {means.max()}"
        )
    if report.jensen_lower_bound is not None and report.pipeline_mean < (
        report.jensen_lower_bound * (1.0 - 1e-9)
    ):
        violations.append("pipeline mean below its Jensen lower bound")
    _check_correlation_matrix(report.correlation_matrix(), violations)

    # Yield/quantile queries: bounds, monotonicity, mutual consistency.
    quantiles = [report.delay_at_yield(q) for q in _YIELD_PROBES]
    if any(not np.isfinite(value) for value in quantiles):
        violations.append("delay_at_yield returned non-finite values")
    elif any(b < a for a, b in zip(quantiles, quantiles[1:])):
        violations.append(f"delay_at_yield is not monotone over {_YIELD_PROBES}")
    yields = [report.yield_at(delay) for delay in sorted(quantiles)]
    if any(not 0.0 <= value <= 1.0 for value in yields):
        violations.append(f"yield_at left [0, 1]: {yields}")
    if any(b < a - 1e-12 for a, b in zip(yields, yields[1:])):
        violations.append("yield_at is not monotone in the target delay")
    # Empirical quantiles interpolate between order statistics, so the
    # round trip can undershoot by up to ~1/n_samples; Gaussian queries
    # invert exactly.
    slack = 1e-9 if report.samples is None else 2.0 / len(report.samples)
    for probe, quantile in zip(_YIELD_PROBES, quantiles):
        achieved = report.yield_at(quantile)
        if achieved < probe - slack:
            violations.append(
                f"yield_at(delay_at_yield({probe})) = {achieved} < {probe}"
            )
    if report.samples is not None and report.n_stages:
        empirical_mean = float(np.asarray(report.samples).mean())
        if not np.isclose(empirical_mean, report.pipeline_mean, rtol=1e-9):
            violations.append("pipeline mean disagrees with its own samples")

    round_tripped = DelayReport.from_json(report.to_json())
    if round_tripped != report:
        violations.append("DelayReport JSON round trip is not loss-free")
    return violations


def check_design_report(report: DesignReport) -> list[str]:
    """Invariants of a single design report (any optimizer x sizer).

    Checks target/probability bounds, per-stage bookkeeping (positive sizes
    and areas, logic area <= stage area, totals equal to the per-stage
    sums), consistency of the predicted yield with the report's own Gaussian
    model, baseline-snapshot consistency, trace sanity and a loss-free JSON
    round trip -- plus the delay-report invariants of any embedded
    Monte-Carlo validations.
    """
    violations: list[str] = []
    if not 0.0 < report.target_yield < 1.0:
        violations.append(f"target_yield {report.target_yield} outside (0, 1)")
    if not 0.0 < report.stage_yield_target < 1.0:
        violations.append(f"stage_yield_target {report.stage_yield_target} outside (0, 1)")
    if report.target_delay <= 0.0 or not np.isfinite(report.target_delay):
        violations.append(f"non-positive target delay {report.target_delay}")
    if any(target <= 0.0 for target in report.stage_targets):
        violations.append("non-positive per-stage delay target")
    if not 0.0 <= report.predicted_yield <= 1.0:
        violations.append(f"predicted_yield {report.predicted_yield} outside [0, 1]")
    if any(not 0.0 <= value <= 1.0 for value in report.stage_yields):
        violations.append("a model stage yield left [0, 1]")

    for stage, sizes in zip(report.stage_names, report.stage_sizes):
        if not sizes or any(size <= 0.0 for size in sizes):
            violations.append(f"stage {stage!r} has empty or non-positive gate sizes")
    areas = np.asarray(report.stage_areas)
    logic = np.asarray(report.stage_logic_areas)
    if np.any(areas <= 0.0):
        violations.append("non-positive stage area")
    if np.any(logic > areas * (1.0 + 1e-9)):
        violations.append("stage logic area exceeds the stage's total area")
    if not np.isclose(report.total_area, areas.sum(), rtol=1e-9):
        violations.append("total_area is not the sum of stage areas")
    if not np.isclose(report.total_logic_area, logic.sum(), rtol=1e-9):
        violations.append("total_logic_area is not the sum of stage logic areas")
    if not np.isclose(
        report.predicted_yield,
        report.predicted_yield_at(report.target_delay),
        atol=1e-9,
    ):
        violations.append(
            "predicted_yield disagrees with predicted_yield_at(target_delay)"
        )

    if report.baseline is not None:
        baseline = report.baseline
        if baseline.stage_names != report.stage_names:
            violations.append("baseline snapshot names a different stage set")
        if baseline.total_area <= 0.0:
            violations.append("baseline snapshot has non-positive total area")
        if not 0.0 <= baseline.pipeline_yield <= 1.0:
            violations.append("baseline pipeline yield left [0, 1]")
        if not np.isclose(
            baseline.total_area, np.asarray(baseline.stage_areas).sum(), rtol=1e-9
        ):
            violations.append("baseline total area is not the sum of its stages")

    known_stages = set(report.stage_names)
    for entry in report.trace:
        if entry.stage not in known_stages:
            violations.append(f"trace names unknown stage {entry.stage!r}")
        if entry.target_delay <= 0.0 or entry.area < 0.0 or entry.iterations < 0:
            violations.append(f"trace entry for {entry.stage!r} has nonsense fields")
        if not 0.0 <= entry.achieved_yield <= 1.0:
            violations.append(f"trace yield for {entry.stage!r} left [0, 1]")

    for label, validation in (
        ("validation", report.validation),
        ("validation_baseline", report.validation_baseline),
    ):
        if validation is not None:
            violations.extend(
                f"{label}: {violation}" for violation in check_delay_report(validation)
            )

    round_tripped = DesignReport.from_json(report.to_json())
    if round_tripped != report:
        violations.append("DesignReport JSON round trip is not loss-free")
    return violations
