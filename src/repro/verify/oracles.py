"""Differential oracles: each pairs a fast path with its trusted reference.

An oracle answers one question about one scenario: *does the optimised
implementation still agree with the implementation we trust, under an
explicit tolerance policy?*  The registry pairs every vectorized kernel and
model shortcut in the codebase with its oracle:

========================  ====================================================
oracle                    fast path vs. reference
========================  ====================================================
``sta-forward``           :func:`repro.timing.sta.arrival_times` (levelized,
                          1-D and batched 2-D) vs. the retained gate-at-a-time
                          loop in :mod:`repro.timing.reference`
``sta-backward``          :func:`repro.timing.sta.required_times` vs. its
                          reverse-walk reference
``ssta-propagation``      batched canonical-form propagation
                          (:meth:`StatisticalTimingAnalyzer.arrival_components`)
                          vs. the scalar Clark-fold reference
``ssta-correlation``      the one-shot ``S @ S.T`` correlation matrix vs. the
                          pairwise-covariance reference
``clark-max``             Clark's analytical pipeline max vs. the empirical
                          max of correlated Gaussian samples
``analytic-yield``        the paper's model yield (Clark + Gaussian, eq. 9)
                          vs. Monte-Carlo empirical yield from the *same*
                          characterisation
``backend-agreement``     SSTA (no sampling) vs. Monte-Carlo ground truth
``report-invariants``     the scenario's own report vs.
                          :mod:`repro.verify.invariants`
``design-invariants``     the design report vs. its invariants
``design-isolation``      session-cached pipelines must be bit-identical
                          before and after a design run (mutation isolation)
``optimizer-conformance`` the optimizer's model-predicted yield vs. its
                          Monte-Carlo validation
``sweep-fault-recovery``  fault-injected robust sweep execution vs. the
                          session's direct answer: injected flaky/persistent
                          failures must cost zero successful points and
                          surface as structured failures
``incremental-sta``       :class:`~repro.timing.incremental.IncrementalTimer`
                          / :class:`~repro.timing.incremental.SizingState`
                          dirty-cone re-propagation vs. full-from-scratch
                          kernels under randomized update sequences
                          (bit-exact by construction)
``threaded-2d``           the threaded row/gate-chunked kernel tier for 2-D
                          sampled STA and SSTA component propagation vs. the
                          single-threaded vectorized kernels
``parser-round-trip``     the :mod:`repro.circuit.ingest` emitters vs. their
                          parsers: emit -> parse must reproduce bit-identical
                          topological order, sizes, loads, schedule levels
                          and nominal arrival times
========================  ====================================================

Every oracle is cheap relative to the scenario's own characterisation
because it reuses the :class:`~repro.api.session.Session` caches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Protocol, runtime_checkable

import numpy as np

from repro.api.session import derive_seed
from repro.api.spec import StudySpec
from repro.core.pipeline_delay import PipelineDelayModel
from repro.core.stage_delay import StageDelayDistribution
from repro.timing.reference import (
    arrival_components_reference,
    arrival_times_reference,
    correlation_matrix_reference,
    required_times_reference,
)
from repro.timing.sta import arrival_times, max_delay, required_times
from repro.verify.invariants import check_delay_report, check_design_report
from repro.verify.scenarios import Scenario
from repro.verify.tolerances import Tolerance

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.session import Session

#: Sample-block shape used by the 2-D STA differential check.
_STA_SAMPLE_ROWS = 8
#: Sample count for the empirical side of the Clark-max oracle.
_CLARK_SAMPLES = 20000


@dataclass(frozen=True)
class OracleCheck:
    """Outcome of one oracle on one scenario."""

    oracle: str
    scenario: str
    passed: bool
    excess: float
    tolerance: str = ""
    detail: str = ""

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        status = "ok" if self.passed else "FAIL"
        tail = f" ({self.detail})" if self.detail else ""
        return f"[{status}] {self.oracle} on {self.scenario}: excess={self.excess:.3g}{tail}"


@runtime_checkable
class DifferentialOracle(Protocol):
    """Anything that can differentially check one scenario.

    ``kinds`` names the scenario kinds the oracle applies to (``"study"``,
    ``"design"``), and ``tolerance`` is the oracle's primary typed policy,
    replaceable per run through :func:`repro.verify.runner.run_conformance`.
    """

    name: str
    kinds: tuple[str, ...]
    tolerance: Tolerance

    def check(self, session: "Session", scenario: Scenario) -> OracleCheck:
        """Run the differential comparison for ``scenario``."""
        ...  # pragma: no cover - protocol signature


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_ORACLES: dict[str, DifferentialOracle] = {}


def register_oracle(oracle: DifferentialOracle, *, replace: bool = False) -> None:
    """Register an oracle instance under its ``name``."""
    name = getattr(oracle, "name", None)
    if not name or not isinstance(name, str):
        raise ValueError(f"oracle must expose a non-empty string name, got {name!r}")
    if name in _ORACLES and not replace:
        raise ValueError(f"oracle {name!r} is already registered")
    _ORACLES[name] = oracle


def get_oracle(name: str) -> DifferentialOracle:
    """Look up a registered oracle by name."""
    try:
        return _ORACLES[name]
    except KeyError:
        raise KeyError(
            f"no differential oracle named {name!r}; available: {available_oracles()}"
        ) from None


def available_oracles() -> tuple[str, ...]:
    """Names of all registered oracles, in registration order."""
    return tuple(_ORACLES)


def oracles_for(kind: str) -> tuple[DifferentialOracle, ...]:
    """Registered oracles applicable to a scenario kind."""
    return tuple(oracle for oracle in _ORACLES.values() if kind in oracle.kinds)


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
def _worst(*excesses: float) -> float:
    return max(excesses) if excesses else 0.0


def _check(
    oracle: "DifferentialOracle",
    scenario: Scenario,
    excess: float,
    detail: str = "",
) -> OracleCheck:
    return OracleCheck(
        oracle=oracle.name,
        scenario=scenario.name,
        passed=excess <= 1.0,
        excess=excess,
        tolerance=oracle.tolerance.describe(),
        detail=detail,
    )


def _invariant_check(
    oracle: "DifferentialOracle", scenario: Scenario, violations: list[str]
) -> OracleCheck:
    return OracleCheck(
        oracle=oracle.name,
        scenario=scenario.name,
        passed=not violations,
        excess=float("inf") if violations else 0.0,
        tolerance="invariants",
        detail="; ".join(violations),
    )


def _perturbed_delays(
    nominal: np.ndarray, seed: int, rows: int = _STA_SAMPLE_ROWS
) -> np.ndarray:
    """A small batch of lognormally perturbed per-sample delay rows."""
    rng = np.random.default_rng(seed)
    factors = np.exp(rng.normal(0.0, 0.15, size=(rows, nominal.shape[0])))
    return nominal[None, :] * factors


def _stage_forms(session: "Session", scenario: Scenario):
    """(pipeline, analyzer, per-stage canonical forms) for a scenario."""
    pipeline = session.pipeline(scenario.pipeline)
    analyzer = session.analyzer(scenario.variation, scenario.analysis)
    return pipeline, analyzer, analyzer.pipeline_stage_forms(pipeline)


# ----------------------------------------------------------------------
# Kernel-level oracles (STA / SSTA vs. the retained naive references)
# ----------------------------------------------------------------------
@dataclass
class StaForwardOracle:
    """Vectorized levelized STA vs. the gate-at-a-time reference loop."""

    name: str = "sta-forward"
    kinds: tuple[str, ...] = ("study", "design")
    tolerance: Tolerance = field(default_factory=Tolerance.exact)

    def check(self, session: "Session", scenario: Scenario) -> OracleCheck:
        from repro.timing.delay_model import GateDelayModel

        pipeline = session.pipeline(scenario.pipeline)
        model = GateDelayModel(session.technology)
        seed = session.resolve_seed(scenario.analysis)
        worst, worst_stage = 0.0, ""
        for index, stage in enumerate(pipeline.stages):
            netlist = stage.netlist
            nominal = model.nominal_delays(netlist)
            batch = _perturbed_delays(nominal, derive_seed(seed, 1, index))
            for delays in (nominal, batch):
                excess = self.tolerance.excess(
                    arrival_times(netlist, delays),
                    arrival_times_reference(netlist, delays),
                )
                if excess > worst:
                    worst, worst_stage = excess, stage.name
        return _check(self, scenario, worst, worst_stage and f"stage {worst_stage}")


@dataclass
class StaBackwardOracle:
    """Vectorized backward required-time walk vs. its reference."""

    name: str = "sta-backward"
    kinds: tuple[str, ...] = ("study", "design")
    tolerance: Tolerance = field(default_factory=Tolerance.exact)

    def check(self, session: "Session", scenario: Scenario) -> OracleCheck:
        from repro.timing.delay_model import GateDelayModel

        pipeline = session.pipeline(scenario.pipeline)
        model = GateDelayModel(session.technology)
        worst, worst_stage = 0.0, ""
        for stage in pipeline.stages:
            netlist = stage.netlist
            nominal = model.nominal_delays(netlist)
            target = 1.05 * float(max_delay(netlist, nominal))
            excess = self.tolerance.excess(
                required_times(netlist, nominal, target),
                required_times_reference(netlist, nominal, target),
            )
            if excess > worst:
                worst, worst_stage = excess, stage.name
        return _check(self, scenario, worst, worst_stage and f"stage {worst_stage}")


@dataclass
class SstaPropagationOracle:
    """Batched canonical-form propagation vs. the scalar Clark-fold loop.

    Compares per-gate arrival means, factor sensitivities and *total*
    arrival sigmas.  The private (random) component is deliberately not
    compared in isolation: it is the square root of a variance residual
    obtained by cancellation, so when the true value is 0 (e.g. inter-only
    variation) both kernels produce pure ``sqrt(eps)``-level noise there --
    only ``sens^2 + rand^2`` is numerically well defined.
    """

    name: str = "ssta-propagation"
    kinds: tuple[str, ...] = ("study", "design")
    tolerance: Tolerance = field(default_factory=Tolerance.kernel)

    def check(self, session: "Session", scenario: Scenario) -> OracleCheck:
        pipeline = session.pipeline(scenario.pipeline)
        analyzer = session.analyzer(scenario.variation, scenario.analysis)
        worst, detail = 0.0, ""
        for stage in pipeline.stages:
            fast_mean, fast_sens, fast_rand = analyzer.arrival_components(stage.netlist)
            slow_mean, slow_sens, slow_rand = arrival_components_reference(
                analyzer, stage.netlist
            )
            comparisons = (
                ("mean", fast_mean, slow_mean),
                ("sens", fast_sens, slow_sens),
                (
                    "sigma",
                    np.hypot(np.linalg.norm(fast_sens, axis=1), fast_rand),
                    np.hypot(np.linalg.norm(slow_sens, axis=1), slow_rand),
                ),
            )
            for label, actual, expected in comparisons:
                excess = self.tolerance.excess(actual, expected)
                if excess > worst:
                    worst, detail = excess, f"stage {stage.name} ({label})"
        return _check(self, scenario, worst, detail)


@dataclass
class SstaCorrelationOracle:
    """One-shot stacked correlation matrix vs. the pairwise reference."""

    name: str = "ssta-correlation"
    kinds: tuple[str, ...] = ("study", "design")
    tolerance: Tolerance = field(default_factory=Tolerance.kernel)

    def check(self, session: "Session", scenario: Scenario) -> OracleCheck:
        _, analyzer, forms = _stage_forms(session, scenario)
        excess = self.tolerance.excess(
            analyzer.correlation_matrix(forms), correlation_matrix_reference(forms)
        )
        return _check(self, scenario, excess)


# ----------------------------------------------------------------------
# Model-vs-sampled oracles
# ----------------------------------------------------------------------
@dataclass
class ClarkMaxOracle:
    """Clark's pipeline-max moments vs. the empirical max of correlated draws.

    Builds the scenario's per-stage Gaussian statistics from SSTA canonical
    forms, samples the implied correlated multivariate normal directly, and
    compares Clark's analytical ``max_i SD_i`` moments against the sampled
    max.  ``tolerance`` bounds the mean; ``sigma_tolerance`` bounds the
    (noisier, approximation-limited) standard deviation.
    """

    name: str = "clark-max"
    kinds: tuple[str, ...] = ("study", "design")
    tolerance: Tolerance = field(
        default_factory=lambda: Tolerance.statistical(rel=0.02, abs=1e-15)
    )
    sigma_tolerance: Tolerance = field(
        default_factory=lambda: Tolerance.statistical(rel=0.25, abs=1e-13)
    )

    def check(self, session: "Session", scenario: Scenario) -> OracleCheck:
        _, analyzer, forms = _stage_forms(session, scenario)
        stages = [
            StageDelayDistribution.from_canonical(form, name=f"s{index}")
            for index, form in enumerate(forms)
        ]
        correlations = analyzer.correlation_matrix(forms)
        estimate = PipelineDelayModel(
            stages, correlations, ordering=scenario.analysis.ordering
        ).estimate()
        means = np.array([stage.mean for stage in stages])
        stds = np.array([stage.std for stage in stages])
        covariance = correlations * np.outer(stds, stds)
        rng = np.random.default_rng(
            derive_seed(session.resolve_seed(scenario.analysis), 2)
        )
        draws = rng.multivariate_normal(
            means, covariance, size=_CLARK_SAMPLES, check_valid="ignore"
        )
        empirical = draws.max(axis=1)
        mean_excess = self.tolerance.excess(estimate.mean, float(empirical.mean()))
        sigma_excess = self.sigma_tolerance.excess(
            estimate.std, float(empirical.std(ddof=1))
        )
        detail = "mean" if mean_excess >= sigma_excess else "sigma"
        return _check(self, scenario, _worst(mean_excess, sigma_excess), detail)


@dataclass
class AnalyticYieldOracle:
    """Paper-model yield (Clark + eq. 9) vs. empirical Monte-Carlo yield.

    Both reports come from one session-cached characterisation, so the
    comparison isolates the Clark/Gaussian approximation itself -- the
    paper's Table I error columns, run at every probed quantile.
    """

    name: str = "analytic-yield"
    kinds: tuple[str, ...] = ("study",)
    tolerance: Tolerance = field(default_factory=lambda: Tolerance.yield_points(8.0))
    probes: tuple[float, ...] = (0.5, 0.8, 0.95)

    def check(self, session: "Session", scenario: Scenario) -> OracleCheck:
        study = scenario.study
        mc = session.analyze(study, backend="montecarlo")
        analytic = session.analyze(study, backend="analytic")
        worst, detail = 0.0, ""
        for probe in self.probes:
            target = mc.delay_at_yield(probe)
            excess = self.tolerance.excess(analytic.yield_at(target), mc.yield_at(target))
            if excess > worst:
                worst, detail = excess, f"at the MC q{probe:g} delay"
        return _check(self, scenario, worst, detail)


@dataclass
class BackendAgreementOracle:
    """Sampling-free SSTA vs. Monte-Carlo ground truth on one question.

    Mean tolerances are tight (first-order SSTA tracks the mean well);
    ``sigma_tolerance`` is loose because canonical-form SSTA is known to
    underestimate sigma over many near-critical paths.
    """

    name: str = "backend-agreement"
    kinds: tuple[str, ...] = ("study",)
    tolerance: Tolerance = field(
        default_factory=lambda: Tolerance.statistical(rel=0.10, abs=1e-15)
    )
    sigma_tolerance: Tolerance = field(
        default_factory=lambda: Tolerance.statistical(rel=0.50, abs=1e-13)
    )

    def check(self, session: "Session", scenario: Scenario) -> OracleCheck:
        study = scenario.study
        mc = session.analyze(study, backend="montecarlo")
        ssta = session.analyze(study, backend="ssta")
        mean_excess = _worst(
            self.tolerance.excess(ssta.stage_means, mc.stage_means),
            self.tolerance.excess(ssta.pipeline_mean, mc.pipeline_mean),
        )
        sigma_excess = self.sigma_tolerance.excess(ssta.pipeline_std, mc.pipeline_std)
        detail = "means" if mean_excess >= sigma_excess else "pipeline sigma"
        return _check(self, scenario, _worst(mean_excess, sigma_excess), detail)


# ----------------------------------------------------------------------
# Invariant and design-flow oracles
# ----------------------------------------------------------------------
@dataclass
class ReportInvariantsOracle:
    """The scenario's own delay report must satisfy every report invariant."""

    name: str = "report-invariants"
    kinds: tuple[str, ...] = ("study",)
    tolerance: Tolerance = field(default_factory=Tolerance.exact)

    def check(self, session: "Session", scenario: Scenario) -> OracleCheck:
        report = session.analyze(scenario.study)
        return _invariant_check(self, scenario, check_delay_report(report))


@dataclass
class DesignInvariantsOracle:
    """The design report must satisfy every design-report invariant."""

    name: str = "design-invariants"
    kinds: tuple[str, ...] = ("design",)
    tolerance: Tolerance = field(default_factory=Tolerance.exact)

    def check(self, session: "Session", scenario: Scenario) -> OracleCheck:
        report = session.design(scenario.design)
        return _invariant_check(self, scenario, check_design_report(report))


@dataclass
class DesignIsolationOracle:
    """Design runs must never mutate the session's shared analysis pipelines.

    Optimizers resize gates aggressively, so after the scenario's design has
    run (here or in any earlier oracle -- ``Session.design`` memoizes), the
    session-cached pipeline must still carry its as-built gate sizes: the
    check compares it against a pristine rebuild from the spec, which
    catches a mutation no matter *when* it happened.  The design must also
    reproduce bit-identically on a fresh session, proving the report never
    absorbed shared-cache state.
    """

    name: str = "design-isolation"
    kinds: tuple[str, ...] = ("design",)
    tolerance: Tolerance = field(default_factory=Tolerance.exact)

    @staticmethod
    def _without_wall_clock(report):
        """The report with its (inherently nondeterministic) timings zeroed."""
        import dataclasses

        return dataclasses.replace(
            report,
            trace=tuple(
                dataclasses.replace(entry, seconds=0.0) for entry in report.trace
            ),
        )

    def check(self, session: "Session", scenario: Scenario) -> OracleCheck:
        from repro.api.session import Session

        report = session.design(scenario.design)
        violations = []
        cached = session.pipeline(scenario.pipeline)
        pristine = scenario.pipeline.build(session.technology)
        for cached_stage, pristine_stage in zip(cached.stages, pristine.stages):
            if not np.array_equal(
                cached_stage.netlist.sizes(), pristine_stage.netlist.sizes()
            ):
                violations.append(
                    f"cached stage {cached_stage.name!r} lost its as-built sizes"
                )
        fresh = Session(technology=session.technology, root_seed=session.root_seed)
        if self._without_wall_clock(
            fresh.design(scenario.design)
        ) != self._without_wall_clock(report):
            violations.append(
                "design is not reproducible on a fresh session "
                "(shared-cache state leaked into the report)"
            )
        return _invariant_check(self, scenario, violations)


@dataclass
class OptimizerConformanceOracle:
    """Model-predicted design yield vs. its own Monte-Carlo validation.

    The band covers the Clark/Gaussian model error *and* the validation's
    sampling noise, so it is wider than the analytic-yield band; scenarios
    without a validation block pass trivially (there is nothing to check).
    """

    name: str = "optimizer-conformance"
    kinds: tuple[str, ...] = ("design",)
    tolerance: Tolerance = field(default_factory=lambda: Tolerance.yield_points(12.0))

    def check(self, session: "Session", scenario: Scenario) -> OracleCheck:
        report = session.design(scenario.design)
        if report.validation is None:
            return _check(self, scenario, 0.0, "no validation block")
        excess = self.tolerance.excess(report.predicted_yield, report.mc_yield)
        return _check(
            self,
            scenario,
            excess,
            f"predicted {report.predicted_yield:.3f} vs MC {report.mc_yield:.3f}",
        )


@dataclass
class SweepFaultRecoveryOracle:
    """Fault-injected robust sweep execution vs. the session's direct answer.

    Drives the ``repro.robust`` execution layer on a two-point sweep over
    the scenario's own spec and asserts its recovery contract:

    * point 0 gets a *flaky* injected fault (first attempt raises, the
      retry must succeed) -- its report must equal ``session.run(spec)``
      exactly, proving retries lose nothing;
    * point 1 gets a *persistent* injected fault (every attempt raises) --
      it must come back as a structured
      :class:`~repro.robust.failures.PointFailure` with the injected error
      type and a full attempt count, never as an escaping exception.

    The sweep's axis is the spec ``name``, which no session cache key
    includes, so both points answer from the already-cached scenario report
    and the oracle costs nothing beyond the bookkeeping it is checking.
    """

    name: str = "sweep-fault-recovery"
    kinds: tuple[str, ...] = ("study", "design")
    tolerance: Tolerance = field(default_factory=Tolerance.exact)

    def check(self, session: "Session", scenario: Scenario) -> OracleCheck:
        from repro.api.sweep import ScenarioSweep
        from repro.robust import ExecutionPolicy, FaultPlan, FaultSpec

        spec = scenario.spec
        reference = session.run(spec)
        policy = ExecutionPolicy(max_retries=2, backoff_base=0.0)
        plan = FaultPlan(
            (
                FaultSpec(point=0, kind="raise", attempts=1),
                FaultSpec(point=1, kind="raise", attempts=-1),
            )
        )
        sweep = ScenarioSweep(
            spec,
            {"study.name": [f"{scenario.name}::recovered", f"{scenario.name}::doomed"]},
            seed_policy="fixed",
            session=session,
        )
        violations: list[str] = []
        try:
            result = sweep.run(policy=policy, fault_plan=plan)
        except Exception as exc:  # noqa: BLE001 - the contract under test
            return _invariant_check(
                self,
                scenario,
                [f"robust sweep raised instead of isolating: {type(exc).__name__}: {exc}"],
            )
        if [point.index for point in result.ok] != [0]:
            violations.append(
                f"expected exactly point 0 to survive, got "
                f"{[point.index for point in result.ok]}"
            )
        elif result[0].report != reference:
            violations.append(
                "retried point's report differs from the session's direct answer"
            )
        if [failure.index for failure in result.failures] != [1]:
            violations.append(
                f"expected exactly point 1 to fail, got "
                f"{[failure.index for failure in result.failures]}"
            )
        else:
            failure = result.failures[0]
            if failure.error_type != "InjectedFault":
                violations.append(
                    f"failure lost its error type: {failure.error_type!r}"
                )
            if failure.attempts != policy.max_attempts:
                violations.append(
                    f"persistent fault consumed {failure.attempts} attempts, "
                    f"expected {policy.max_attempts}"
                )
        if result.trace.n_retries < 1:
            violations.append("trace recorded no retries under a flaky fault")
        return _invariant_check(self, scenario, violations)


@dataclass
class IncrementalStaOracle:
    """Incremental dirty-cone STA vs. full-from-scratch recomputation.

    Drives an :class:`~repro.timing.incremental.IncrementalTimer` through
    seeded rounds of randomized delay updates (plus a no-op invalidation)
    and a :class:`~repro.timing.incremental.SizingState` through a short
    resize sequence, comparing arrivals, critical paths, required times,
    loads and delays against the trusted full kernels after every step.
    The incremental engine is exact (its cutoff fires only when a value is
    bit-identical to the old one), so the tolerance is exact equality.
    """

    name: str = "incremental-sta"
    kinds: tuple[str, ...] = ("study", "design")
    tolerance: Tolerance = field(default_factory=Tolerance.exact)
    rounds: int = 4

    def check(self, session: "Session", scenario: Scenario) -> OracleCheck:
        from repro.timing.delay_model import GateDelayModel
        from repro.timing.incremental import IncrementalTimer, SizingState
        from repro.timing.sta import critical_path

        pipeline = session.pipeline(scenario.pipeline)
        model = GateDelayModel(session.technology)
        seed = session.resolve_seed(scenario.analysis)
        worst, detail = 0.0, ""

        def note(excess: float, where: str) -> None:
            nonlocal worst, detail
            if excess > worst:
                worst, detail = excess, where

        for index, stage in enumerate(pipeline.stages):
            netlist = stage.netlist
            if netlist.n_gates == 0:
                continue
            rng = np.random.default_rng(derive_seed(seed, 11, index))
            delays = model.nominal_delays(netlist)
            timer = IncrementalTimer(netlist, delays)
            target = 1.1 * timer.worst_arrival()
            for round_index in range(self.rounds):
                count = int(rng.integers(1, max(2, netlist.n_gates // 8)))
                gate_ids = rng.choice(netlist.n_gates, size=count, replace=False)
                delays = delays.copy()
                delays[gate_ids] *= rng.uniform(0.6, 1.6, size=count)
                timer.update_delays(gate_ids, delays[gate_ids])
                if round_index == 1:
                    timer.invalidate(gate_ids)  # no-op: delays unchanged
                where = f"stage {stage.name} round {round_index}"
                note(
                    self.tolerance.excess(
                        timer.arrivals(), arrival_times(netlist, delays)
                    ),
                    f"{where} (arrivals)",
                )
                note(
                    self.tolerance.excess(
                        timer.required(target),
                        required_times(netlist, delays, target),
                    ),
                    f"{where} (required)",
                )
                if timer.critical_path() != critical_path(netlist, delays):
                    note(float("inf"), f"{where} (critical path)")

            state = SizingState(netlist, session.technology)
            for move in range(self.rounds):
                position = int(rng.integers(0, netlist.n_gates))
                state.resize(position, float(rng.uniform(1.0, 6.0)))
                where = f"stage {stage.name} move {move}"
                note(
                    self.tolerance.excess(
                        state.loads, netlist.load_capacitances(state.sizes)
                    ),
                    f"{where} (loads)",
                )
                note(
                    self.tolerance.excess(
                        state.delays, model.nominal_delays(netlist, state.sizes)
                    ),
                    f"{where} (delays)",
                )
                note(
                    self.tolerance.excess(
                        state.arrivals(), arrival_times(netlist, state.delays)
                    ),
                    f"{where} (arrivals)",
                )
        return _check(self, scenario, worst, detail)


@dataclass
class Threaded2dOracle:
    """Threaded row/gate-chunked kernel tier vs. the vectorized kernels.

    Forces ``kernel="threaded"`` with two workers (independent of the
    host's core count) on both the batched 2-D forward pass and the SSTA
    component propagation, and compares against the single-threaded
    vectorized implementations.  Row/gate chunks are computed with the
    exact same ufunc calls, so agreement is bitwise in practice; the check
    still runs under the kernel tolerance like the other kernel oracles.
    """

    name: str = "threaded-2d"
    kinds: tuple[str, ...] = ("study", "design")
    tolerance: Tolerance = field(default_factory=Tolerance.kernel)

    def check(self, session: "Session", scenario: Scenario) -> OracleCheck:
        from repro.timing.delay_model import GateDelayModel
        from repro.timing.kernels import KernelConfig
        from repro.timing.ssta import StatisticalTimingAnalyzer

        forced = KernelConfig(kernel="threaded", threads=2, min_bytes=1, min_rows=1)
        pipeline = session.pipeline(scenario.pipeline)
        analyzer = session.analyzer(scenario.variation, scenario.analysis)
        threaded_analyzer = StatisticalTimingAnalyzer(
            session.technology,
            session.variation(scenario.variation),
            grid_size=scenario.analysis.grid_size,
            variance_coverage=scenario.analysis.variance_coverage,
            kernel=forced,
        )
        model = GateDelayModel(session.technology)
        seed = session.resolve_seed(scenario.analysis)
        worst, detail = 0.0, ""

        def note(excess: float, where: str) -> None:
            nonlocal worst, detail
            if excess > worst:
                worst, detail = excess, where

        for index, stage in enumerate(pipeline.stages):
            netlist = stage.netlist
            if netlist.n_gates == 0:
                continue
            nominal = model.nominal_delays(netlist)
            batch = _perturbed_delays(nominal, derive_seed(seed, 13, index), rows=32)
            note(
                self.tolerance.excess(
                    arrival_times(netlist, batch, kernel=forced),
                    arrival_times(netlist, batch, kernel="vectorized"),
                ),
                f"stage {stage.name} (2-D arrivals)",
            )
            fast = threaded_analyzer.arrival_components(netlist)
            slow = analyzer.arrival_components(netlist)
            for label, actual, expected in zip(("mean", "sens", "rand"), fast, slow):
                note(
                    self.tolerance.excess(actual, expected),
                    f"stage {stage.name} (ssta {label})",
                )
        return _check(self, scenario, worst, detail)


@dataclass
class ParserRoundTripOracle:
    """Emit -> parse must be a bit-exact structural round trip.

    Every stage netlist is written out through both ingestion emitters
    (:func:`repro.circuit.ingest.write_bench` and
    :func:`~repro.circuit.ingest.write_yosys_json`), parsed back, and the
    reconstruction must be *byte-identical* where it counts: same
    topological order and primary outputs, bit-equal sizes, loads, compiled
    schedule levels and nominal arrival times.  This is the contract that
    lets a design leave the system as a file and come back without
    perturbing a single sample of any downstream characterisation.
    """

    name: str = "parser-round-trip"
    kinds: tuple[str, ...] = ("study", "design")
    tolerance: Tolerance = field(default_factory=Tolerance.exact)

    def check(self, session: "Session", scenario: Scenario) -> OracleCheck:
        from repro.circuit.ingest import (
            parse_bench,
            parse_yosys_json,
            write_bench,
            write_yosys_json,
        )
        from repro.timing.delay_model import GateDelayModel

        pipeline = session.pipeline(scenario.pipeline)
        model = GateDelayModel(session.technology)
        worst, detail = 0.0, ""

        def note(excess: float, where: str) -> None:
            nonlocal worst, detail
            if excess > worst:
                worst, detail = excess, where

        for stage in pipeline.stages:
            netlist = stage.netlist
            if netlist.n_gates == 0:
                continue
            delays = model.nominal_delays(netlist)
            arrivals = arrival_times(netlist, delays)
            levels = netlist.levels()
            for fmt, reparsed in (
                ("bench", parse_bench(write_bench(netlist), netlist.name)),
                ("yosys", parse_yosys_json(write_yosys_json(netlist))),
            ):
                where = f"stage {stage.name} ({fmt})"
                if reparsed.topological_order() != netlist.topological_order():
                    note(float("inf"), f"{where}: topological order changed")
                    continue
                if reparsed.primary_outputs != netlist.primary_outputs:
                    note(float("inf"), f"{where}: primary outputs changed")
                    continue
                note(
                    self.tolerance.excess(reparsed.sizes(), netlist.sizes()),
                    f"{where}: sizes",
                )
                note(
                    self.tolerance.excess(reparsed.levels(), levels),
                    f"{where}: schedule levels",
                )
                note(
                    self.tolerance.excess(
                        reparsed.load_capacitances(), netlist.load_capacitances()
                    ),
                    f"{where}: loads",
                )
                note(
                    self.tolerance.excess(
                        arrival_times(reparsed, model.nominal_delays(reparsed)),
                        arrivals,
                    ),
                    f"{where}: arrival times",
                )
        return _check(self, scenario, worst, detail)


for _oracle in (
    StaForwardOracle(),
    StaBackwardOracle(),
    SstaPropagationOracle(),
    SstaCorrelationOracle(),
    ClarkMaxOracle(),
    AnalyticYieldOracle(),
    BackendAgreementOracle(),
    ReportInvariantsOracle(),
    DesignInvariantsOracle(),
    DesignIsolationOracle(),
    OptimizerConformanceOracle(),
    SweepFaultRecoveryOracle(),
    IncrementalStaOracle(),
    Threaded2dOracle(),
    ParserRoundTripOracle(),
):
    register_oracle(_oracle)
