"""The conformance entry point: scenarios x oracles -> one typed report.

:func:`run_conformance` is what every future perf/refactor PR leans on: it
runs the committed scenario corpus (plus, optionally, a batch of freshly
fuzzed scenarios) through every applicable differential oracle on one shared
:class:`~repro.api.session.Session`, and returns a
:class:`ConformanceReport` that knows which (scenario, oracle) pairs failed,
by how much, and how to reproduce the fuzzed part (the fuzz seed is carried
in the report).

An oracle that *raises* is recorded as a failed check rather than aborting
the run -- a crash in a kernel on a fuzzed topology is exactly the kind of
finding the harness exists to surface.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.analysis.reporting import format_table
from repro.verify.oracles import (
    DifferentialOracle,
    OracleCheck,
    get_oracle,
    oracles_for,
)
from repro.verify.scenarios import Scenario, ScenarioFuzzer, builtin_corpus
from repro.verify.tolerances import Tolerance


@dataclass(frozen=True)
class ConformanceReport:
    """Every oracle outcome of one conformance run."""

    checks: tuple[OracleCheck, ...]
    fuzz_seed: int | None = None

    @property
    def passed(self) -> bool:
        """Whether every check of the run passed."""
        return all(check.passed for check in self.checks)

    @property
    def failures(self) -> tuple[OracleCheck, ...]:
        """The failing checks, worst excess first."""
        return tuple(
            sorted(
                (check for check in self.checks if not check.passed),
                key=lambda check: -check.excess,
            )
        )

    @property
    def n_scenarios(self) -> int:
        """Number of distinct scenarios the run covered."""
        return len({check.scenario for check in self.checks})

    def summary(self) -> dict[str, float | int]:
        """Scalar roll-up for logs and CI output."""
        finite = [c.excess for c in self.checks if np.isfinite(c.excess)]
        return {
            "scenarios": self.n_scenarios,
            "checks": len(self.checks),
            "failures": len(self.failures),
            "worst_excess": max(finite) if finite else 0.0,
        }

    def format(self, failures_only: bool = False) -> str:
        """Plain-text table of the run (the benchmark-report format)."""
        rows = [
            [
                check.scenario,
                check.oracle,
                "ok" if check.passed else "FAIL",
                check.excess,
                check.tolerance,
                check.detail,
            ]
            for check in (self.failures if failures_only else self.checks)
        ]
        seed_note = f" (fuzz seed {self.fuzz_seed})" if self.fuzz_seed is not None else ""
        summary = self.summary()
        title = (
            f"conformance: {summary['checks']} checks over "
            f"{summary['scenarios']} scenarios, "
            f"{summary['failures']} failures{seed_note}"
        )
        return format_table(
            ["scenario", "oracle", "status", "excess", "tolerance", "detail"],
            rows,
            title=title,
        )


def _run_oracle(
    oracle: DifferentialOracle, session, scenario: Scenario
) -> OracleCheck:
    try:
        return oracle.check(session, scenario)
    except Exception as error:  # noqa: BLE001 - a crash IS the finding
        return OracleCheck(
            oracle=oracle.name,
            scenario=scenario.name,
            passed=False,
            excess=float("inf"),
            tolerance=oracle.tolerance.describe(),
            detail=f"oracle raised {type(error).__name__}: {error}",
        )


def run_conformance(
    scenarios: Sequence[Scenario] | None = None,
    *,
    fuzz: int = 0,
    seed: int | None = None,
    session=None,
    oracles: Iterable[str] | None = None,
    tolerances: Mapping[str, Tolerance] | None = None,
) -> ConformanceReport:
    """Run the differential conformance harness.

    Parameters
    ----------
    scenarios:
        Scenarios to check; defaults to the committed corpus
        (:func:`~repro.verify.scenarios.builtin_corpus`).  Pass an explicit
        (possibly empty) sequence to run fuzz-only batches.
    fuzz:
        Number of *additional* freshly fuzzed scenarios; roughly one in
        three is a (more expensive) design scenario, the rest are analysis
        scenarios.
    seed:
        Fuzzer seed.  ``None`` draws a fresh entropy seed each run -- the
        "new scenarios on every push" mode -- and records it in the report
        so any failure is replayable with ``run_conformance(fuzz=..., seed=...)``.
    session:
        Shared :class:`~repro.api.session.Session`; a fresh one is built if
        omitted.  Sharing matters: scenarios differing in one axis reuse
        cached pipelines/characterisations exactly like production sweeps,
        so the harness also exercises cache-key correctness.
    oracles:
        Oracle names to run (default: every registered oracle applicable to
        each scenario's kind).
    tolerances:
        Per-oracle :class:`Tolerance` overrides, keyed by oracle name,
        applied to the oracle's primary tolerance for this run.
    """
    from repro.api.session import Session

    if scenarios is None:
        scenarios = builtin_corpus()
    scenarios = list(scenarios)
    fuzz_seed: int | None = None
    if fuzz > 0:
        if seed is None:
            fuzz_seed = int(np.random.SeedSequence().entropy % (2**32))
        else:
            fuzz_seed = int(seed)
        n_design = fuzz // 3
        fuzzer = ScenarioFuzzer(fuzz_seed)
        scenarios.extend(fuzzer.scenarios(fuzz - n_design, n_design))
    if session is None:
        session = Session()

    selected: list[DifferentialOracle] | None = None
    if oracles is not None:
        selected = [get_oracle(name) for name in oracles]

    def resolve(oracle: DifferentialOracle) -> DifferentialOracle:
        if tolerances and oracle.name in tolerances:
            return dataclasses.replace(oracle, tolerance=tolerances[oracle.name])
        return oracle

    checks: list[OracleCheck] = []
    for scenario in scenarios:
        applicable = (
            [oracle for oracle in selected if scenario.kind in oracle.kinds]
            if selected is not None
            else list(oracles_for(scenario.kind))
        )
        for oracle in applicable:
            checks.append(_run_oracle(resolve(oracle), session, scenario))
    return ConformanceReport(checks=tuple(checks), fuzz_seed=fuzz_seed)
