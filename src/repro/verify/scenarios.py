"""Scenarios: the unit of work the conformance harness runs oracles over.

A :class:`Scenario` wraps exactly one spec -- a
:class:`~repro.api.spec.StudySpec` (analysis conformance) or a
:class:`~repro.api.spec.DesignStudySpec` (design-flow conformance) -- plus a
stable name, and round-trips through JSON so a *corpus* of scenarios can be
committed next to the code (``corpus.json``) and grown one regression at a
time.

Two scenario sources feed :func:`repro.verify.runner.run_conformance`:

* :func:`builtin_corpus` -- the committed corpus, curated to cover every
  registered backend, every optimizer x sizer combination, every built-in
  pipeline family and the variation regimes the paper studies;
* :class:`ScenarioFuzzer` -- a seeded generator producing fresh random
  scenarios (topology x variation x analysis x design) each run, so the
  differential oracles keep exploring configurations nobody hand-picked.

This module also registers the ``"random_logic"`` pipeline kind: pipelines
whose stages are :func:`~repro.circuit.generators.random_logic_block` DAGs
with real fanin/reconvergence structure, which the straight inverter chains
and the fixed ALU/decoder/ISCAS topologies never exercise.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass
from typing import Any, Iterable, Mapping

import numpy as np

from repro.api.spec import (
    AnalysisSpec,
    DesignSpec,
    DesignStudySpec,
    PipelineSpec,
    StudySpec,
    VariationSpec,
    pipeline_kinds,
    register_pipeline_kind,
)

_CORPUS_PATH = pathlib.Path(__file__).resolve().parent / "corpus.json"


# ----------------------------------------------------------------------
# The "random_logic" pipeline kind
# ----------------------------------------------------------------------
def _build_random_logic(spec: PipelineSpec, technology):
    """Pipeline of random-logic DAG stages (fanin/reconvergence coverage).

    Reads its structural knobs from ``spec.options``: ``n_gates`` (per
    stage), ``n_inputs``, ``n_outputs`` and ``seed`` (per-stage seeds are
    ``seed + stage index`` so stages differ structurally).  ``n_stages`` and
    ``logic_depth`` keep their usual meanings.
    """
    from repro.circuit.flipflop import FlipFlopTiming
    from repro.circuit.generators import random_logic_block
    from repro.pipeline.pipeline import Pipeline
    from repro.pipeline.stage import PipelineStage

    options = dict(spec.options)
    depths = (
        list(spec.logic_depth)
        if isinstance(spec.logic_depth, tuple)
        else [spec.logic_depth] * spec.n_stages
    )
    n_gates = int(options.get("n_gates", 40))
    n_inputs = int(options.get("n_inputs", 5))
    n_outputs = int(options.get("n_outputs", 3))
    seed = int(options.get("seed", 0))
    name = spec.name if spec.name is not None else f"random_logic_{spec.n_stages}x{n_gates}"
    flipflop = FlipFlopTiming()
    stages = []
    for index, depth in enumerate(depths):
        netlist = random_logic_block(
            f"{name}_s{index}",
            n_gates=max(n_gates, depth),
            depth=depth,
            n_inputs=n_inputs,
            n_outputs=n_outputs,
            seed=seed + index,
            technology=technology,
        )
        stages.append(
            PipelineStage(name=f"stage{index}", netlist=netlist, flipflop=flipflop)
        )
    return Pipeline(name, stages)


if "random_logic" not in pipeline_kinds():
    register_pipeline_kind("random_logic", _build_random_logic)


# ----------------------------------------------------------------------
# Scenario container
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Scenario:
    """One named conformance workload: an analysis *or* a design study."""

    name: str
    study: StudySpec | None = None
    design: DesignStudySpec | None = None

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError(f"scenario name must be a non-empty string, got {self.name!r}")
        if (self.study is None) == (self.design is None):
            raise ValueError(
                f"scenario {self.name!r} must carry exactly one of study/design"
            )

    @property
    def kind(self) -> str:
        """``"study"`` or ``"design"``."""
        return "study" if self.study is not None else "design"

    @property
    def spec(self) -> StudySpec | DesignStudySpec:
        """The wrapped spec, whichever study kind the scenario carries."""
        return self.study if self.study is not None else self.design

    @property
    def pipeline(self) -> PipelineSpec:
        """The scenario's pipeline spec, whichever study kind it wraps."""
        spec = self.study if self.study is not None else self.design
        return spec.pipeline

    @property
    def variation(self) -> VariationSpec:
        """The scenario's variation spec, whichever study kind it wraps."""
        spec = self.study if self.study is not None else self.design
        return spec.variation

    @property
    def analysis(self) -> AnalysisSpec:
        """The analysis knobs oracles should sample with.

        Design scenarios fall back to their validation spec (or defaults
        when the design is unvalidated), so kernel-level oracles always have
        seeds and grid parameters to work with.
        """
        if self.study is not None:
            return self.study.analysis
        if self.design.validation is not None:
            return self.design.validation
        return AnalysisSpec()

    # -- serialisation --------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {"name": self.name}
        if self.study is not None:
            data["study"] = self.study.to_dict()
        else:
            data["design"] = self.design.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Scenario":
        unknown = set(data) - {"name", "study", "design"}
        if unknown:
            raise ValueError(f"unknown Scenario field(s): {sorted(unknown)}")
        study = data.get("study")
        design = data.get("design")
        return cls(
            name=data.get("name", ""),
            study=StudySpec.from_dict(study) if isinstance(study, Mapping) else study,
            design=DesignStudySpec.from_dict(design)
            if isinstance(design, Mapping)
            else design,
        )

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        return cls.from_dict(json.loads(text))


# ----------------------------------------------------------------------
# Committed corpus
# ----------------------------------------------------------------------
def load_corpus(path: str | pathlib.Path) -> tuple[Scenario, ...]:
    """Load a scenario corpus from a JSON file (a list of scenario dicts)."""
    payload = json.loads(pathlib.Path(path).read_text())
    if not isinstance(payload, list):
        raise ValueError(f"corpus file {path} must contain a JSON list")
    scenarios = tuple(Scenario.from_dict(entry) for entry in payload)
    names = [scenario.name for scenario in scenarios]
    duplicates = {name for name in names if names.count(name) > 1}
    if duplicates:
        raise ValueError(f"corpus has duplicate scenario names: {sorted(duplicates)}")
    return scenarios


def save_corpus(scenarios: Iterable[Scenario], path: str | pathlib.Path) -> None:
    """Write a scenario corpus as indented JSON (stable for diffs)."""
    payload = [scenario.to_dict() for scenario in scenarios]
    pathlib.Path(path).write_text(json.dumps(payload, indent=2) + "\n")


def builtin_corpus() -> tuple[Scenario, ...]:
    """The committed conformance corpus (``src/repro/verify/corpus.json``).

    Curated to cover all registered backends, all optimizer x sizer
    combinations, every built-in pipeline family (plus ``random_logic``)
    and the inter-only / intra-only / combined variation regimes.  To add a
    scenario, append its dict to the JSON file (``Scenario.to_dict()``
    emits the right shape) with a unique name.
    """
    return load_corpus(_CORPUS_PATH)


# ----------------------------------------------------------------------
# Scenario fuzzer
# ----------------------------------------------------------------------
class ScenarioFuzzer:
    """Seeded random generator of conformance scenarios.

    Deterministic for a given seed (two fuzzers with the same seed emit the
    same scenario sequence), yet every draw spans the axes the ROADMAP cares
    about: pipeline topology (depth, fanin/reconvergence, ISCAS profiles),
    tech sigmas and spatial correlation, sigma scaling, every analysis
    backend and every optimizer x sizer combination.  Generated workloads
    are deliberately small -- the point is breadth of *structure*, not
    sample count.
    """

    #: Small ISCAS profiles kept cheap enough for per-run fuzzing.
    ISCAS_CHOICES = ("c432", "c499", "c880")
    BACKENDS = ("montecarlo", "analytic", "ssta")
    OPTIMIZERS = ("balanced", "redistribute", "global")
    SIZERS = ("lagrangian", "greedy")

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._rng = np.random.default_rng(np.random.SeedSequence(self.seed))
        self._count = 0

    # -- component draws -------------------------------------------------
    def _draw_pipeline(self, *, small: bool = False) -> PipelineSpec:
        rng = self._rng
        kind = str(
            rng.choice(
                ["inverter_chain", "random_logic", "alu_decoder", "iscas"],
                p=[0.40, 0.30, 0.15, 0.15],
            )
        )
        if kind == "inverter_chain":
            n_stages = int(rng.integers(1, 4 if small else 7))
            if rng.random() < 0.3 and n_stages > 1:
                depth = tuple(int(d) for d in rng.integers(2, 11, size=n_stages))
            else:
                depth = int(rng.integers(2, 11))
            return PipelineSpec(
                kind=kind,
                n_stages=n_stages,
                logic_depth=depth,
                size=float(rng.choice([0.5, 1.0, 1.0, 2.0])),
            )
        if kind == "random_logic":
            n_stages = int(rng.integers(1, 3 if small else 4))
            depth = int(rng.integers(3, 9))
            return PipelineSpec(
                kind=kind,
                n_stages=n_stages,
                logic_depth=depth,
                options={
                    "n_gates": int(rng.integers(depth * 3, depth * 6)),
                    "n_inputs": int(rng.integers(3, 9)),
                    "n_outputs": int(rng.integers(2, 6)),
                    "seed": int(rng.integers(0, 2**31 - 1)),
                },
            )
        if kind == "alu_decoder":
            return PipelineSpec(
                kind=kind,
                width=int(rng.integers(3, 5 if small else 9)),
                n_address=int(rng.integers(2, 4)),
            )
        if small:
            # Design fuzzing sizes every gate repeatedly; keep the ISCAS
            # stand-in to the smallest profile so a fuzz batch stays cheap.
            return PipelineSpec(kind="iscas", benchmarks=("c432",))
        benchmarks = tuple(
            rng.choice(self.ISCAS_CHOICES, size=int(rng.integers(1, 3)), replace=False)
        )
        return PipelineSpec(kind="iscas", benchmarks=benchmarks)

    def _draw_variation(self) -> VariationSpec:
        rng = self._rng
        regime = rng.random()
        # The upper ends stay near the paper's own sigmas: far beyond them
        # the first-order SSTA mean genuinely drifts from Monte-Carlo and
        # the agreement oracles would flag model physics, not kernel bugs.
        sigma_scale = float(np.round(rng.uniform(0.5, 1.5), 3))
        if regime < 0.2:
            base = VariationSpec.intra_random_only(
                sigma_vth_random=float(np.round(rng.uniform(0.01, 0.03), 4))
            )
        elif regime < 0.4:
            base = VariationSpec.inter_only(
                sigma_vth_inter=float(np.round(rng.uniform(0.01, 0.04), 4))
            )
        else:
            base = VariationSpec(
                sigma_vth_inter=float(np.round(rng.uniform(0.005, 0.025), 4)),
                sigma_vth_random=float(np.round(rng.uniform(0.005, 0.03), 4)),
                sigma_vth_systematic=float(np.round(rng.uniform(0.0, 0.015), 4)),
                correlation_length=float(np.round(rng.uniform(0.2, 1.0), 3)),
                sigma_l_inter=float(np.round(rng.uniform(0.0, 0.025), 4)),
                sigma_l_systematic=float(np.round(rng.uniform(0.0, 0.012), 4)),
            )
        return base.scaled(sigma_scale)

    def _draw_analysis(self, backend: str | None = None) -> AnalysisSpec:
        rng = self._rng
        return AnalysisSpec(
            backend=backend if backend is not None else str(rng.choice(self.BACKENDS)),
            n_samples=int(rng.integers(400, 1201)),
            seed=int(rng.integers(0, 2**31 - 1)),
            grid_size=int(rng.choice([4, 8])),
            chunk_size=None if rng.random() < 0.7 else int(rng.choice([64, 256])),
            ordering=str(rng.choice(["increasing", "decreasing", "given"], p=[0.7, 0.15, 0.15])),
        )

    def _draw_design(self) -> DesignSpec:
        rng = self._rng
        optimizer = str(rng.choice(self.OPTIMIZERS))
        sizer = str(rng.choice(self.SIZERS))
        options: dict[str, Any] = {}
        if sizer == "greedy":
            options["max_moves"] = int(rng.integers(200, 500))
        elif rng.random() < 0.5:
            options["max_outer"] = int(rng.integers(15, 40))
        return DesignSpec(
            optimizer=optimizer,
            sizer=sizer,
            sizer_options=options,
            yield_target=float(np.round(rng.uniform(0.70, 0.90), 3)),
            stage_yield=None if rng.random() < 0.6 else float(np.round(rng.uniform(0.90, 0.97), 3)),
            delay_policy=str(rng.choice(["stage_max", "stage_min"], p=[0.75, 0.25])),
            delay_scale=float(np.round(rng.uniform(0.9, 1.1), 3)),
            curve_points=int(rng.integers(2, 4)),
            ordering=str(rng.choice(["ri_ascending", "ri_descending", "pipeline"], p=[0.7, 0.15, 0.15])),
            fraction=float(np.round(rng.uniform(0.05, 0.25), 3)),
            mode=str(rng.choice(["best", "worst"], p=[0.8, 0.2])),
        )

    # -- scenario draws --------------------------------------------------
    def _next_name(self, kind: str) -> str:
        self._count += 1
        return f"fuzz-{self.seed}-{self._count:03d}-{kind}"

    def study_scenario(self) -> Scenario:
        """One fresh random analysis scenario."""
        return Scenario(
            name=self._next_name("study"),
            study=StudySpec(
                pipeline=self._draw_pipeline(),
                variation=self._draw_variation(),
                analysis=self._draw_analysis(),
            ),
        )

    def design_scenario(self) -> Scenario:
        """One fresh random design scenario (small pipeline, validated)."""
        return Scenario(
            name=self._next_name("design"),
            design=DesignStudySpec(
                pipeline=self._draw_pipeline(small=True),
                variation=self._draw_variation(),
                design=self._draw_design(),
                validation=self._draw_analysis(backend="montecarlo"),
            ),
        )

    def scenarios(self, n_study: int, n_design: int = 0) -> list[Scenario]:
        """A batch of fresh scenarios: ``n_study`` analysis + ``n_design`` design."""
        batch = [self.study_scenario() for _ in range(n_study)]
        batch.extend(self.design_scenario() for _ in range(n_design))
        return batch
