"""Typed tolerance policies for differential oracles.

Every oracle in :mod:`repro.verify.oracles` compares a fast implementation
against its reference under an explicit, named :class:`Tolerance`.  A policy
is the usual mixed absolute/relative band

    |actual - expected|  <=  abs + rel * |expected|

evaluated elementwise; :meth:`Tolerance.excess` reports *how far over* the
band the worst element sits (<= 1 passes), so conformance reports can rank
near-misses instead of collapsing everything to a boolean.

Three regimes recur across the suite and get named constructors:

* :meth:`Tolerance.exact` -- bit-level agreement expected (the vectorized
  STA max is exact, any fold order reproduces the naive loop),
* :meth:`Tolerance.kernel` -- floating-point reassociation only (batched
  SSTA folds sum in a different order than the scalar reference),
* :meth:`Tolerance.statistical` -- model-vs-sampled comparisons where the
  band covers approximation error plus Monte-Carlo noise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Tolerance:
    """Mixed absolute/relative agreement band for one comparison.

    Parameters
    ----------
    rel:
        Relative component, scaled by ``|expected|`` elementwise.
    abs:
        Absolute floor; also what keeps zero-sigma comparisons meaningful
        (a relative band around an expected value of 0 is empty).
    scale_abs_to_expected:
        When true, the absolute floor is additionally scaled by the largest
        ``|expected|`` of the whole comparison -- the convention the timing
        kernel tests use, where "1e-12 of the result's own scale" is the
        natural unit for delays of order 1e-10 s.
    """

    rel: float = 0.0
    abs: float = 0.0
    scale_abs_to_expected: bool = False

    def __post_init__(self) -> None:
        if self.rel < 0.0 or self.abs < 0.0:
            raise ValueError(
                f"tolerance components must be non-negative, got "
                f"rel={self.rel}, abs={self.abs}"
            )
        if self.rel == 0.0 and self.abs == 0.0:
            raise ValueError("tolerance must allow some band (rel or abs > 0)")

    # -- named regimes ---------------------------------------------------
    @classmethod
    def exact(cls) -> "Tolerance":
        """Bit-level agreement up to 1e-12 of the result's own scale."""
        return cls(rel=1e-12, abs=1e-12, scale_abs_to_expected=True)

    @classmethod
    def kernel(cls) -> "Tolerance":
        """Floating-point reassociation differences only."""
        return cls(rel=1e-9, abs=1e-9, scale_abs_to_expected=True)

    @classmethod
    def statistical(cls, rel: float, abs: float = 0.0) -> "Tolerance":
        """Model-approximation plus sampling-noise band."""
        return cls(rel=rel, abs=abs)

    @classmethod
    def yield_points(cls, points: float) -> "Tolerance":
        """Absolute band on a probability, in yield percentage points."""
        return cls(rel=0.0, abs=points / 100.0)

    # -- evaluation ------------------------------------------------------
    def band(self, expected: np.ndarray) -> np.ndarray:
        """The allowed elementwise deviation for ``expected``."""
        expected = np.asarray(expected, dtype=float)
        floor = self.abs
        if self.scale_abs_to_expected:
            # Delays here are of order 1e-10 s: the floor must scale down
            # with the data (the tiny lower clamp only guards an all-zero
            # expected array against a zero-width band).
            scale = float(np.abs(expected).max()) if expected.size else 0.0
            floor = self.abs * max(scale, 1e-300)
        return floor + self.rel * np.abs(expected)

    def excess(self, actual, expected) -> float:
        """Worst deviation as a multiple of the allowed band (<= 1 passes).

        ``actual`` and ``expected`` are broadcastable arrays or scalars.
        Non-finite disagreements (one side nan/inf, the other not) return
        ``inf``.
        """
        actual = np.asarray(actual, dtype=float)
        expected = np.asarray(expected, dtype=float)
        if actual.shape != expected.shape:
            return float("inf")
        finite = np.isfinite(actual) & np.isfinite(expected)
        if not finite.all():
            same = (~np.isfinite(actual)) & (actual == expected)
            if not (finite | same).all():
                return float("inf")
        if actual.size == 0:
            return 0.0
        deviation = np.where(finite, np.abs(actual - expected), 0.0)
        return float((deviation / self.band(expected)).max())

    def check(self, actual, expected) -> bool:
        """Whether every element of ``actual`` sits inside the band."""
        return self.excess(actual, expected) <= 1.0

    def describe(self) -> str:
        """Compact human-readable band description for reports."""
        parts = []
        if self.rel:
            parts.append(f"rel={self.rel:g}")
        if self.abs:
            suffix = "*scale" if self.scale_abs_to_expected else ""
            parts.append(f"abs={self.abs:g}{suffix}")
        return "+".join(parts)
