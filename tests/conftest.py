"""Shared fixtures for the test suite.

Fixtures are deliberately small (tiny circuits, modest Monte-Carlo sample
counts) so the whole suite stays fast; the heavyweight paper-scale runs live
in ``benchmarks/``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit.flipflop import FlipFlopTiming
from repro.circuit.generators import inverter_chain, random_logic_block
from repro.circuit.netlist import Netlist
from repro.montecarlo.engine import MonteCarloEngine
from repro.optimize.lagrangian import LagrangianSizer
from repro.pipeline.builder import alu_decoder_pipeline, inverter_chain_pipeline
from repro.pipeline.stage import PipelineStage
from repro.process.technology import Technology, default_technology
from repro.process.variation import VariationModel


@pytest.fixture(scope="session")
def technology() -> Technology:
    """The default synthetic 70 nm technology."""
    return default_technology()


@pytest.fixture(scope="session")
def variation_combined() -> VariationModel:
    """Inter + intra (random and systematic) variation."""
    return VariationModel.combined()


@pytest.fixture(scope="session")
def variation_intra_only() -> VariationModel:
    """Random intra-die variation only (independent stages)."""
    return VariationModel.intra_random_only()


@pytest.fixture(scope="session")
def variation_inter_only() -> VariationModel:
    """Inter-die variation only (perfectly correlated stages)."""
    return VariationModel.inter_only()


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for sampling tests."""
    return np.random.default_rng(20050307)


@pytest.fixture
def small_chain() -> Netlist:
    """A 6-inverter chain netlist."""
    return inverter_chain(6, name="chain6")


@pytest.fixture
def small_random_block() -> Netlist:
    """A small random-logic block (40 gates, depth 8)."""
    return random_logic_block(
        "blk40", n_gates=40, depth=8, n_inputs=6, n_outputs=4, seed=7
    )


@pytest.fixture
def small_stage(small_random_block) -> PipelineStage:
    """A pipeline stage wrapping the small random block."""
    return PipelineStage(name="blk40", netlist=small_random_block, flipflop=FlipFlopTiming())


@pytest.fixture
def chain_pipeline_3x5():
    """A 3-stage pipeline of 5-deep inverter chains."""
    return inverter_chain_pipeline(3, 5)


@pytest.fixture
def alu_pipeline():
    """The 3-stage ALU-Decoder pipeline (small width for test speed)."""
    return alu_decoder_pipeline(width=4, n_address=3)


@pytest.fixture
def mc_engine_combined(variation_combined) -> MonteCarloEngine:
    """Monte-Carlo engine with combined variation and a modest sample count."""
    return MonteCarloEngine(variation_combined, n_samples=1500, seed=42)


@pytest.fixture
def lagrangian_sizer(technology, variation_combined) -> LagrangianSizer:
    """Default statistical sizer."""
    return LagrangianSizer(technology, variation_combined)
