"""Tests for repro.analysis (histogram, error metrics, reporting)."""

import numpy as np
import pytest

from repro.analysis.error_metrics import (
    ModelErrorReport,
    compare_model_to_samples,
    percent_error,
)
from repro.analysis.histogram import distribution_series, histogram_series, overlay_series
from repro.analysis.reporting import format_series, format_table


class TestErrorMetrics:
    def test_percent_error(self):
        assert percent_error(110.0, 100.0) == pytest.approx(10.0)
        assert percent_error(90.0, 100.0) == pytest.approx(10.0)
        assert percent_error(0.0, 0.0) == 0.0
        with pytest.raises(ValueError):
            percent_error(1.0, 0.0)

    def test_compare_model_to_samples(self, rng):
        samples = rng.normal(100.0, 5.0, size=50000)
        report = compare_model_to_samples(100.0, 5.0, samples, target_delay=105.0,
                                          model_yield=0.84)
        assert report.mean_error_percent < 1.0
        assert report.std_error_percent < 5.0
        assert report.mc_yield == pytest.approx(0.84, abs=0.02)
        assert report.yield_error_points is not None
        assert report.yield_error_points < 3.0

    def test_yield_error_none_when_not_requested(self, rng):
        samples = rng.normal(100.0, 5.0, size=100)
        report = compare_model_to_samples(100.0, 5.0, samples)
        assert report.yield_error_points is None

    def test_compare_validation(self):
        with pytest.raises(ValueError):
            compare_model_to_samples(1.0, 1.0, np.array([1.0]))

    def test_empty_and_batched_samples_rejected(self):
        with pytest.raises(ValueError):
            compare_model_to_samples(1.0, 1.0, np.array([]))
        with pytest.raises(ValueError):
            compare_model_to_samples(1.0, 1.0, np.ones((10, 2)))

    def test_zero_sigma_samples(self):
        """Constant samples: a zero model sigma agrees, a nonzero one can't."""
        constant = np.full(100, 5.0)
        report = compare_model_to_samples(5.0, 0.0, constant, target_delay=5.0)
        assert report.mc_std == 0.0
        assert report.std_error_percent == 0.0
        assert report.mc_yield == 1.0
        # A nonzero model sigma against zero-spread samples has no defined
        # percent error -- the comparison must refuse, not divide by zero.
        with pytest.raises(ValueError, match="zero reference"):
            compare_model_to_samples(5.0, 0.1, constant)

    def test_zero_sigma_yield_is_a_step(self):
        constant = np.full(100, 5.0)
        below = compare_model_to_samples(5.0, 0.0, constant, target_delay=4.9)
        assert below.mc_yield == 0.0

    def test_single_stage_pipeline_comparison(self, mc_engine_combined):
        """One-stage pipeline: pipeline samples ARE the stage samples."""
        from repro.pipeline.builder import inverter_chain_pipeline

        run = mc_engine_combined.run_pipeline(inverter_chain_pipeline(1, 4))
        assert run.n_stages == 1
        np.testing.assert_array_equal(
            run.pipeline_samples, run.stage_samples[:, 0]
        )
        fitted = run.stage_distributions()[0]
        report = compare_model_to_samples(
            fitted.mean, fitted.std, run.pipeline_samples
        )
        assert report.mean_error_percent == pytest.approx(0.0, abs=1e-9)
        assert report.std_error_percent == pytest.approx(0.0, abs=1e-9)


class TestHistogram:
    def test_histogram_series_density_normalised(self, rng):
        samples = rng.normal(0.0, 1.0, size=20000)
        centres, density = histogram_series(samples, bins=50)
        width = centres[1] - centres[0]
        assert (density * width).sum() == pytest.approx(1.0, rel=0.01)

    def test_distribution_series_peaks_at_mean(self):
        grid = np.linspace(-3, 3, 301)
        density = distribution_series(0.0, 1.0, grid)
        assert grid[np.argmax(density)] == pytest.approx(0.0, abs=0.05)

    def test_overlay_series_keys_and_match(self, rng):
        samples = rng.normal(10.0, 1.0, size=50000)
        overlay = overlay_series(samples, 10.0, 1.0, bins=40)
        assert set(overlay) == {"delay", "monte_carlo", "analytical"}
        # The histogram and the Gaussian should roughly agree near the mode.
        centre = np.argmin(np.abs(overlay["delay"] - 10.0))
        assert overlay["monte_carlo"][centre] == pytest.approx(
            overlay["analytical"][centre], rel=0.2
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            histogram_series(np.array([1.0]))
        with pytest.raises(ValueError):
            distribution_series(0.0, 0.0, np.array([1.0]))


class TestReporting:
    def test_format_table_contains_cells(self):
        text = format_table(
            ["name", "value"], [["a", 1.25], ["b", 2.5]], title="Table X"
        )
        assert "Table X" in text
        assert "a" in text and "1.25" in text and "2.5" in text

    def test_format_table_row_length_checked(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only one"]])

    def test_format_series(self):
        text = format_series("x", [1, 2, 3], {"y": [10.0, 20.0, 30.0]})
        assert "x" in text and "y" in text and "30" in text

    def test_format_series_length_checked(self):
        with pytest.raises(ValueError):
            format_series("x", [1, 2], {"y": [1.0]})

    def test_scientific_formatting_for_small_values(self):
        text = format_table(["v"], [[1.5e-12]])
        assert "e-12" in text

    def test_empty_rows_render_header_only(self):
        text = format_table(["name", "value"], [], title="empty")
        lines = text.splitlines()
        assert lines[0] == "empty"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 3  # title, header, separator -- no data rows

    def test_zero_and_trailing_zero_formatting(self):
        text = format_table(["v"], [[0.0], [2.500], [-0.0]])
        lines = text.splitlines()
        assert lines[2].strip() == "0"
        assert lines[3].strip() == "2.5"
        assert lines[4].strip() == "0"

    def test_large_magnitudes_go_scientific(self):
        text = format_table(["v"], [[12345.6]])
        assert "1.235e+04" in text

    def test_non_float_cells_pass_through(self):
        text = format_table(["a", "b"], [[3, "chain -> out"]])
        assert "3" in text and "chain -> out" in text

    def test_series_error_names_the_offending_series(self):
        with pytest.raises(ValueError, match="'short'"):
            format_series(
                "x", [1, 2], {"fine": [1.0, 2.0], "short": [1.0]}
            )

    def test_format_series_single_point(self):
        text = format_series("x", [7], {"y": [0.5]}, title="one point")
        assert "one point" in text and "0.5" in text
