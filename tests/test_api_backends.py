"""Backend registry, DelayReport semantics and cross-backend agreement."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.stats import norm

from repro.api.backends import (
    DelayAnalysisBackend,
    DelayReport,
    available_backends,
    get_backend,
    register_backend,
)
from repro.api.session import Session, Study, run_study
from repro.api.spec import AnalysisSpec, PipelineSpec, StudySpec, VariationSpec


@pytest.fixture(scope="module")
def small_study_spec() -> StudySpec:
    return StudySpec(
        pipeline=PipelineSpec(n_stages=3, logic_depth=6),
        variation=VariationSpec.combined(),
        analysis=AnalysisSpec(backend="montecarlo", n_samples=4000, seed=3),
    )


@pytest.fixture(scope="module")
def session() -> Session:
    return Session()


@pytest.fixture(scope="module")
def reports(session, small_study_spec) -> dict[str, DelayReport]:
    return {
        name: session.analyze(small_study_spec, backend=name)
        for name in ("montecarlo", "analytic", "ssta")
    }


class TestDelayReport:
    def make(self, with_samples: bool) -> DelayReport:
        rng = np.random.default_rng(5)
        samples = tuple(float(s) for s in rng.normal(1e-10, 5e-12, 500))
        return DelayReport(
            backend="montecarlo" if with_samples else "analytic",
            stage_names=("s0", "s1"),
            stage_means=(9e-11, 9.5e-11),
            stage_stds=(4e-12, 5e-12),
            correlation=((1.0, 0.3), (0.3, 1.0)),
            pipeline_mean=1e-10,
            pipeline_std=5e-12,
            samples=samples if with_samples else None,
        )

    @pytest.mark.parametrize("with_samples", [True, False])
    def test_json_round_trip(self, with_samples):
        report = self.make(with_samples)
        assert DelayReport.from_json(report.to_json()) == report

    def test_json_can_drop_samples(self):
        report = self.make(True)
        slim = DelayReport.from_json(report.to_json(include_samples=False))
        assert slim.samples is None
        assert slim.pipeline_mean == report.pipeline_mean

    def test_empirical_vs_gaussian_queries(self):
        sampled = self.make(True)
        gaussian = self.make(False)
        target = 1.02e-10
        expected_empirical = float(
            (np.asarray(sampled.samples) <= target).mean()
        )
        assert sampled.yield_at(target) == expected_empirical
        assert gaussian.yield_at(target) == pytest.approx(
            float(norm.cdf((target - 1e-10) / 5e-12))
        )
        assert sampled.delay_at_yield(0.5) == pytest.approx(
            float(np.quantile(np.asarray(sampled.samples), 0.5))
        )
        assert gaussian.delay_at_yield(0.5) == pytest.approx(1e-10)

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="stage names"):
            DelayReport(
                backend="x",
                stage_names=("a",),
                stage_means=(1.0, 2.0),
                stage_stds=(0.1,),
                correlation=((1.0,),),
                pipeline_mean=1.0,
                pipeline_std=0.1,
            )
        with pytest.raises(ValueError, match="correlation"):
            DelayReport(
                backend="x",
                stage_names=("a", "b"),
                stage_means=(1.0, 2.0),
                stage_stds=(0.1, 0.1),
                correlation=((1.0, 0.0),),
                pipeline_mean=1.0,
                pipeline_std=0.1,
            )

    def test_stage_helpers(self):
        report = self.make(False)
        dists = report.stage_distributions()
        assert [d.name for d in dists] == ["s0", "s1"]
        assert report.stage_variabilities() == pytest.approx(
            [4e-12 / 9e-11, 5e-12 / 9.5e-11]
        )
        assert report.mean_stage_correlation() == pytest.approx(0.3)


class TestRegistry:
    def test_builtins_registered(self):
        assert {"montecarlo", "analytic", "ssta"} <= set(available_backends())

    def test_unknown_backend_error_names_alternatives(self):
        with pytest.raises(KeyError, match="montecarlo"):
            get_backend("spice")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend(get_backend("ssta"))

    def test_custom_backend_addressable_from_spec(self, small_study_spec):
        class ConstantBackend:
            name = "test_constant"

            def analyze(self, session, study):
                return DelayReport(
                    backend=self.name,
                    stage_names=("s",),
                    stage_means=(1e-10,),
                    stage_stds=(1e-12,),
                    correlation=((1.0,),),
                    pipeline_mean=1e-10,
                    pipeline_std=1e-12,
                )

        backend = ConstantBackend()
        assert isinstance(backend, DelayAnalysisBackend)
        register_backend(backend, replace=True)
        report = run_study(small_study_spec, backend="test_constant")
        assert report.backend == "test_constant"


class TestCrossBackendAgreement:
    """MC, SSTA and analytic must tell one consistent story (satellite)."""

    def test_pipeline_mean_agrees(self, reports):
        mc = reports["montecarlo"].pipeline_mean
        assert reports["analytic"].pipeline_mean == pytest.approx(mc, rel=0.02)
        assert reports["ssta"].pipeline_mean == pytest.approx(mc, rel=0.03)

    def test_pipeline_sigma_agrees(self, reports):
        mc = reports["montecarlo"].pipeline_std
        # First-order canonical SSTA is known to underestimate sigma over
        # many near-critical paths; keep the same band the SSTA tests use.
        assert reports["analytic"].pipeline_std == pytest.approx(mc, rel=0.25)
        assert reports["ssta"].pipeline_std == pytest.approx(mc, rel=0.40)

    def test_stage_means_agree(self, reports):
        mc = np.asarray(reports["montecarlo"].stage_means)
        ssta = np.asarray(reports["ssta"].stage_means)
        assert np.allclose(ssta, mc, rtol=0.03)
        # analytic fits per-column slices, MC reduces over axis 0 -- the
        # summation orders differ, so agreement is to float precision.
        assert np.allclose(
            reports["analytic"].stage_means, mc, rtol=1e-12, atol=0.0
        )

    def test_same_yield_query_through_one_session(self, session, small_study_spec):
        """Acceptance: one Session, three backends, no backend imports."""
        target = session.analyze(small_study_spec).delay_at_yield(0.9)
        yields = {
            name: session.yield_at(small_study_spec, target, backend=name)
            for name in ("montecarlo", "analytic", "ssta")
        }
        assert yields["montecarlo"] == pytest.approx(0.9, abs=0.01)
        for name, value in yields.items():
            assert 0.75 < value < 0.99, (name, value)

    def test_correlation_regimes_through_backends(self, session):
        base = StudySpec(
            pipeline=PipelineSpec(n_stages=3, logic_depth=5),
            analysis=AnalysisSpec(n_samples=1500, seed=9),
        )
        inter = base.replace(variation=VariationSpec.inter_only(0.03))
        intra = base.replace(variation=VariationSpec.intra_random_only(0.03))
        for backend in ("montecarlo", "ssta"):
            rho_inter = session.analyze(inter, backend=backend).mean_stage_correlation()
            rho_intra = session.analyze(intra, backend=backend).mean_stage_correlation()
            assert rho_inter > 0.9, backend
            assert abs(rho_intra) < 0.25, backend


class TestSessionCaching:
    def test_analytic_reuses_mc_characterisation(self, small_study_spec):
        session = Session()
        session.analyze(small_study_spec, backend="montecarlo")
        assert (session.cache_hits, session.cache_misses) == (0, 1)
        session.analyze(small_study_spec, backend="analytic")
        assert (session.cache_hits, session.cache_misses) == (1, 1)

    def test_pipeline_objects_cached(self, small_study_spec):
        session = Session()
        first = session.pipeline(small_study_spec.pipeline)
        assert session.pipeline(small_study_spec.pipeline) is first

    def test_report_cache_returns_same_object(self, small_study_spec):
        session = Session()
        assert session.analyze(small_study_spec) is session.analyze(small_study_spec)

    def test_seed_none_uses_session_root_seed(self):
        spec = StudySpec(
            pipeline=PipelineSpec(n_stages=2, logic_depth=3),
            analysis=AnalysisSpec(n_samples=200, seed=None),
        )
        a = Session(root_seed=77).analyze(spec)
        b = Session(root_seed=77).analyze(spec)
        c = Session(root_seed=78).analyze(spec)
        assert a == b
        assert a.pipeline_mean != c.pipeline_mean


class TestStudyFacade:
    def test_study_parts_and_spec_are_exclusive(self, small_study_spec):
        with pytest.raises(ValueError, match="not both"):
            Study(small_study_spec, pipeline=PipelineSpec())
        with pytest.raises(ValueError, match="not both"):
            Study(small_study_spec, name="mislabel")

    def test_study_json_round_trip_runs(self, small_study_spec, session):
        study = Study(small_study_spec, session=session)
        clone = Study.from_json(study.to_json(), session=session)
        assert clone.spec == study.spec
        assert clone.run() is study.run()

    def test_reports_cover_requested_backends(self, session, small_study_spec):
        study = Study(small_study_spec, session=session)
        reports = study.reports(("montecarlo", "ssta"))
        assert set(reports) == {"montecarlo", "ssta"}
        assert reports["ssta"].backend == "ssta"

    def test_run_study_accepts_spec_and_study(self, small_study_spec, session):
        via_spec = run_study(small_study_spec, session=session)
        via_study = run_study(Study(small_study_spec, session=session))
        assert via_spec == via_study
