"""Tests for the Design API: specs, optimizer registry, session design runs.

Everything runs on tiny inverter-chain pipelines with the greedy sizer so
the whole module stays fast; the paper-scale design flows live in
``benchmarks/``.
"""

import numpy as np
import pytest

from repro.api import (
    AnalysisSpec,
    DesignReport,
    DesignSpec,
    DesignStudySpec,
    PipelineSpec,
    ScenarioSweep,
    Session,
    StudySpec,
    VariationSpec,
    available_optimizers,
    get_optimizer,
    register_optimizer,
    run_study,
    run_sweep,
)
from repro.api.sweep import apply_axis
from repro.optimize.sizers import available_sizers, make_sizer
from repro.process.technology import default_technology
from repro.process.variation import VariationModel

PIPE = PipelineSpec(kind="inverter_chain", n_stages=2, logic_depth=4)
VAR = VariationSpec.combined()
FAST_DESIGN = DesignSpec(
    optimizer="balanced",
    sizer="greedy",
    sizer_options={"max_moves": 300},
    yield_target=0.85,
    delay_policy="stage_min",
    delay_scale=0.9,
    curve_points=2,
)


def design_spec(**overrides) -> DesignStudySpec:
    fields = dict(
        pipeline=PIPE,
        variation=VAR,
        design=FAST_DESIGN,
        validation=AnalysisSpec(n_samples=200, seed=7),
    )
    fields.update(overrides)
    return DesignStudySpec(**fields)


@pytest.fixture(scope="module")
def session() -> Session:
    return Session()


# ----------------------------------------------------------------------
# Specs
# ----------------------------------------------------------------------
class TestDesignSpec:
    def test_defaults_are_valid(self):
        spec = DesignSpec()
        assert spec.optimizer == "global"
        assert spec.sizer == "lagrangian"

    def test_sizer_options_accepts_mapping_and_stays_hashable(self):
        spec = DesignSpec(sizer_options={"max_outer": 10, "min_size": 1.0})
        assert dict(spec.sizer_options) == {"max_outer": 10, "min_size": 1.0}
        hash(spec)  # must not raise

    def test_sizer_options_order_insensitive(self):
        # Specs are cache keys: the same options in a different order must
        # compare and hash equal.
        a = DesignSpec(sizer_options={"max_outer": 10, "min_size": 1.0})
        b = DesignSpec(sizer_options={"min_size": 1.0, "max_outer": 10})
        assert a == b
        assert hash(a) == hash(b)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"optimizer": ""},
            {"sizer": ""},
            {"yield_target": 1.2},
            {"stage_yield": 0.0},
            {"delay_target": -1.0},
            {"delay_policy": "nope"},
            {"delay_scale": 0.0},
            {"delay_probe": 1.5},
            {"curve_points": 0},
            {"ordering": "sideways"},
            {"rounds": 0},
            {"max_stage_yield": 0.4},
            {"fraction": 0.95},
            {"mode": "middling"},
        ],
    )
    def test_validation_errors(self, kwargs):
        with pytest.raises(ValueError):
            DesignSpec(**kwargs)

    def test_json_round_trip(self):
        spec = DesignSpec(
            optimizer="redistribute",
            sizer="greedy",
            sizer_options={"max_moves": 123},
            yield_target=0.9,
            stage_yield=0.97,
            delay_policy="sized",
            fraction=0.2,
            mode="worst",
        )
        assert DesignSpec.from_json(spec.to_json()) == spec

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown DesignSpec field"):
            DesignSpec.from_dict({"optimiser": "global"})

    def test_balance_key_ignores_optimizer_knobs(self):
        a = DesignSpec(optimizer="balanced", fraction=0.1, mode="best")
        b = DesignSpec(optimizer="redistribute", fraction=0.3, mode="worst",
                       ordering="pipeline", curve_points=9)
        assert a.balance_key() == b.balance_key()
        assert a.balance_key() != DesignSpec(yield_target=0.7).balance_key()

    def test_with_optimizer(self):
        assert DesignSpec().with_optimizer("balanced").optimizer == "balanced"


class TestDesignStudySpec:
    def test_json_round_trip_with_validation(self):
        spec = design_spec(name="roundtrip")
        assert DesignStudySpec.from_json(spec.to_json()) == spec

    def test_json_round_trip_without_validation(self):
        spec = design_spec(validation=None)
        restored = DesignStudySpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.validation is None

    def test_specs_are_hashable_cache_keys(self):
        assert len({design_spec(), design_spec()}) == 1


# ----------------------------------------------------------------------
# Registries
# ----------------------------------------------------------------------
class TestRegistries:
    def test_builtin_optimizers_registered(self):
        assert {"balanced", "redistribute", "global"} <= set(available_optimizers())

    def test_unknown_optimizer_raises(self):
        with pytest.raises(KeyError, match="no pipeline optimizer"):
            get_optimizer("simulated_annealing")

    def test_duplicate_registration_rejected(self):
        existing = get_optimizer("balanced")
        with pytest.raises(ValueError, match="already registered"):
            register_optimizer(existing)
        register_optimizer(existing, replace=True)  # replace is explicit

    def test_builtin_sizers_registered(self):
        assert {"lagrangian", "greedy"} <= set(available_sizers())

    def test_make_sizer_forwards_options(self):
        sizer = make_sizer(
            "greedy", default_technology(), VariationModel.combined(), max_moves=42
        )
        assert sizer.max_moves == 42


# ----------------------------------------------------------------------
# Design runs through the facade
# ----------------------------------------------------------------------
class TestDesignRuns:
    @pytest.mark.parametrize("optimizer", ["balanced", "redistribute", "global"])
    def test_every_optimizer_by_name_returns_design_report(self, session, optimizer):
        report = run_study(design_spec().with_optimizer(optimizer), session=session)
        assert isinstance(report, DesignReport)
        assert report.optimizer == optimizer
        assert report.stage_names == ("stage0", "stage1")
        assert report.total_area > 0.0
        assert 0.0 <= report.predicted_yield <= 1.0
        assert report.validation is not None
        assert DesignReport.from_json(report.to_json()) == report

    def test_design_report_is_cached(self, session):
        spec = design_spec()
        assert session.design(spec) is session.design(spec)

    def test_balanced_trace_and_baseline(self, session):
        report = session.design(design_spec())
        assert len(report.trace) == 2
        assert report.baseline is not None
        # Sizing for a reachable target grows area relative to min size.
        assert report.total_area >= report.baseline.total_area

    def test_redistribute_roles_disjoint(self, session):
        report = session.design(design_spec(), optimizer="redistribute")
        assert report.donor_stages and report.receiver_stages
        assert not set(report.donor_stages) & set(report.receiver_stages)

    def test_global_stage_order_is_permutation(self, session):
        report = session.design(design_spec(), optimizer="global")
        assert sorted(report.stage_order) == sorted(report.stage_names)
        assert report.validation_baseline is not None

    def test_curves_shared_between_modes(self, session):
        spec_best = design_spec().with_optimizer("redistribute")
        curves_a = session.area_delay_curves(spec_best, 0.9)
        curves_b = session.area_delay_curves(
            spec_best.replace(design=spec_best.design.with_optimizer("global")), 0.9
        )
        assert curves_a is curves_b

    def test_balanced_baseline_shared_between_optimizers(self, session):
        balanced_a, *_ = session.balanced_design(design_spec())
        balanced_b, *_ = session.balanced_design(
            design_spec().with_optimizer("global")
        )
        assert balanced_a is balanced_b

    def test_stage_relative_policy_rejected_outside_balanced(self, session):
        relative = design_spec(
            design=DesignSpec(
                optimizer="global",
                sizer="greedy",
                sizer_options={"max_moves": 100},
                delay_policy="stage_relative",
                delay_scale=0.9,
            )
        )
        with pytest.raises(ValueError, match="stage_relative"):
            session.design(relative)

    def test_stage_relative_policy_gives_per_stage_targets(self, session):
        relative = design_spec(
            pipeline=PipelineSpec(kind="inverter_chain", n_stages=2,
                                  logic_depth=(3, 6)),
            design=DesignSpec(
                optimizer="balanced",
                sizer="greedy",
                sizer_options={"max_moves": 100},
                delay_policy="stage_relative",
                delay_scale=0.9,
            ),
            validation=None,
        )
        report = session.design(relative)
        assert report.stage_targets[0] != report.stage_targets[1]
        assert report.target_delay == max(report.stage_targets)


# ----------------------------------------------------------------------
# The pipeline-mutation footgun (regression)
# ----------------------------------------------------------------------
class TestDesignIsolation:
    def test_design_does_not_perturb_cached_pipeline_or_analysis(self):
        session = Session()
        study = StudySpec(
            pipeline=PIPE,
            variation=VAR,
            analysis=AnalysisSpec(n_samples=300, seed=11),
        )
        before = session.analyze(study)
        sizes_before = [
            stage.netlist.sizes().copy()
            for stage in session.pipeline(PIPE).stages
        ]

        # Run every optimizer against the SAME pipeline spec on the SAME
        # session; each resizes gates aggressively.
        for optimizer in ("balanced", "redistribute", "global"):
            session.design(design_spec(validation=None), optimizer=optimizer)

        sizes_after = [
            stage.netlist.sizes() for stage in session.pipeline(PIPE).stages
        ]
        for old, new in zip(sizes_before, sizes_after):
            assert np.array_equal(old, new)

        # Recompute the analysis from the cached pipeline (drop only the
        # memoized reports/characterisations, keeping the shared pipeline):
        # a mutated pipeline would produce different samples here.
        session._reports.clear()
        session._mc_runs.clear()
        after = session.analyze(study)
        assert after == before

    def test_pipeline_copy_is_fresh(self):
        session = Session()
        copy_a = session.pipeline_copy(PIPE)
        copy_b = session.pipeline_copy(PIPE)
        assert copy_a is not copy_b
        assert copy_a is not session.pipeline(PIPE)
        copy_a.stages[0].netlist.set_sizes(
            np.full(copy_a.stages[0].netlist.n_gates, 9.0)
        )
        assert not np.array_equal(
            copy_a.stages[0].netlist.sizes(),
            session.pipeline(PIPE).stages[0].netlist.sizes(),
        )


# ----------------------------------------------------------------------
# Design sweeps
# ----------------------------------------------------------------------
class TestDesignSweeps:
    def test_design_axes_compose_with_variation_axes(self, session):
        result = run_sweep(
            design_spec(validation=None),
            {
                "design.optimizer": ["balanced", "global"],
                "variation.sigma_scale": [1.0, 1.5],
            },
            session=session,
        )
        assert len(result) == 4
        assert all(isinstance(point.report, DesignReport) for point in result)
        records = result.to_records()
        assert {record["design.optimizer"] for record in records} == {
            "balanced", "global",
        }
        # More variation should not improve the predicted yield.
        by_coords = {
            (p.coord("design.optimizer"), p.coord("variation.sigma_scale")): p.report
            for p in result
        }
        assert (
            by_coords[("balanced", 1.5)].predicted_yield
            <= by_coords[("balanced", 1.0)].predicted_yield + 1e-9
        )

    def test_optimizer_axis_points_share_validation_stream(self):
        sweep = ScenarioSweep(
            design_spec(),
            {
                "design.optimizer": ["balanced", "global"],
                "design.yield_target": [0.7, 0.8],
            },
        )
        specs = sweep.specs()
        # Grid order: optimizer-major.  Points differing only in optimizer
        # share a validation seed; points differing in yield target do not.
        assert specs[0].validation.seed == specs[2].validation.seed
        assert specs[1].validation.seed == specs[3].validation.seed
        assert specs[0].validation.seed != specs[1].validation.seed

    def test_zip_sizer_axis_shares_validation_stream(self):
        # The sizer-ablation pattern: sizer and its options zipped together
        # must still validate every sizer on one sample stream.
        sweep = ScenarioSweep(
            design_spec(),
            {
                "design.sizer": ["lagrangian", "greedy"],
                "design.sizer_options": [{}, {"max_moves": 2500}],
            },
            mode="zip",
        )
        seeds = {spec.validation.seed for spec in sweep.specs()}
        assert len(seeds) == 1

    def test_yield_target_axis_changes_reports(self, session):
        result = run_sweep(
            design_spec(validation=None),
            {"design.yield_target": [0.6, 0.9]},
            session=session,
        )
        loose, strict = result[0].report, result[1].report
        assert loose.target_yield == 0.6
        assert strict.target_yield == 0.9

    def test_apply_axis_design_sections(self):
        spec = design_spec()
        assert apply_axis(spec, "design.mode", "worst").design.mode == "worst"
        assert apply_axis(spec, "validation.n_samples", 50).validation.n_samples == 50
        with pytest.raises(ValueError, match="axis path"):
            apply_axis(spec, "analysis.backend", "ssta")
