"""Spec layer of the Study API: validation, hashing, JSON round-trips."""

from __future__ import annotations

import dataclasses

import pytest

from repro.api.spec import (
    AnalysisSpec,
    PipelineSpec,
    StudySpec,
    VariationSpec,
    pipeline_kinds,
    register_pipeline_kind,
)
from repro.pipeline.builder import inverter_chain_pipeline
from repro.process.variation import VariationModel


class TestPipelineSpec:
    def test_defaults_build_an_inverter_chain(self):
        pipeline = PipelineSpec().build()
        assert pipeline.n_stages == 5
        assert all(stage.logic_depth == 8 for stage in pipeline.stages)

    def test_build_matches_direct_builder(self):
        spec = PipelineSpec(kind="inverter_chain", n_stages=3, logic_depth=(4, 5, 6))
        direct = inverter_chain_pipeline(3, [4, 5, 6])
        built = spec.build()
        assert built.stage_names == direct.stage_names
        assert [s.logic_depth for s in built.stages] == [
            s.logic_depth for s in direct.stages
        ]

    def test_alu_and_iscas_kinds(self):
        alu = PipelineSpec(kind="alu_decoder", width=4, n_address=3).build()
        assert alu.stage_names == ["alu_part1", "decoder", "alu_part2"]
        iscas = PipelineSpec(kind="iscas", benchmarks=("c432", "c1908")).build()
        assert iscas.stage_names == ["c432", "c1908"]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown pipeline kind"):
            PipelineSpec(kind="nonsense")

    def test_depth_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="logic depths"):
            PipelineSpec(n_stages=3, logic_depth=(4, 5))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_stages": 0},
            {"logic_depth": 0},
            {"size": 0.0},
            {"kind": "iscas", "benchmarks": ()},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            PipelineSpec(**kwargs)

    def test_hashable_and_list_depth_coerced(self):
        a = PipelineSpec(n_stages=2, logic_depth=[3, 4])
        b = PipelineSpec(n_stages=2, logic_depth=(3, 4))
        assert a == b
        assert {a: "cached"}[b] == "cached"

    def test_json_round_trip(self):
        spec = PipelineSpec(kind="inverter_chain", n_stages=5, logic_depth=(6, 8, 10, 8, 6))
        assert PipelineSpec.from_json(spec.to_json()) == spec

    def test_options_are_order_insensitive_cache_keys(self):
        a = PipelineSpec(options={"n_gates": 20, "seed": 7})
        b = PipelineSpec(options=(("seed", 7), ("n_gates", 20)))
        assert a == b
        assert {a: "cached"}[b] == "cached"

    def test_options_json_round_trip(self):
        spec = PipelineSpec(
            kind="random_logic",
            n_stages=2,
            logic_depth=4,
            options={"n_gates": 12, "n_inputs": 3, "n_outputs": 2, "seed": 5},
        )
        restored = PipelineSpec.from_json(spec.to_json())
        assert restored == spec
        assert dict(restored.options)["n_gates"] == 12

    def test_register_custom_kind(self):
        def factory(spec, technology):
            return inverter_chain_pipeline(2, 2, technology=technology)

        register_pipeline_kind("test_custom_kind", factory, replace=True)
        assert "test_custom_kind" in pipeline_kinds()
        assert PipelineSpec(kind="test_custom_kind").build().n_stages == 2


class TestVariationSpec:
    @pytest.mark.parametrize(
        "preset",
        ["intra_random_only", "inter_only", "combined"],
    )
    def test_presets_mirror_variation_model(self, preset):
        spec = getattr(VariationSpec, preset)()
        model = getattr(VariationModel, preset)()
        assert spec.build() == model

    def test_sigma_scale_scales_sigmas_not_correlation_length(self):
        spec = VariationSpec.combined().scaled(2.0)
        model = spec.build()
        base = VariationModel.combined()
        assert model.sigma_vth_inter == pytest.approx(2.0 * base.sigma_vth_inter)
        assert model.sigma_vth_random == pytest.approx(2.0 * base.sigma_vth_random)
        assert model.correlation_length == base.correlation_length

    def test_from_model_round_trip(self):
        model = VariationModel.combined(sigma_vth_inter=0.033)
        assert VariationSpec.from_model(model).build() == model

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            VariationSpec(sigma_vth_inter=-0.01)
        with pytest.raises(ValueError):
            VariationSpec(sigma_scale=-1.0)

    def test_json_round_trip(self):
        spec = VariationSpec.inter_only(0.04).scaled(1.5)
        assert VariationSpec.from_json(spec.to_json()) == spec


class TestAnalysisSpec:
    def test_with_backend_and_seed(self):
        spec = AnalysisSpec(backend="montecarlo", seed=7)
        assert spec.with_backend("ssta").backend == "ssta"
        assert spec.with_seed(None).seed is None
        # the original is untouched (frozen)
        assert spec.backend == "montecarlo" and spec.seed == 7

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"backend": ""},
            {"n_samples": 1},
            {"seed": -1},
            {"grid_size": 0},
            {"chunk_size": 0},
            {"variance_coverage": 0.0},
            {"ordering": "sideways"},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            AnalysisSpec(**kwargs)

    def test_json_round_trip(self):
        spec = AnalysisSpec(backend="ssta", n_samples=123, seed=None, chunk_size=16)
        assert AnalysisSpec.from_json(spec.to_json()) == spec


class TestStudySpec:
    def make(self) -> StudySpec:
        return StudySpec(
            pipeline=PipelineSpec(n_stages=2, logic_depth=3),
            variation=VariationSpec.combined(),
            analysis=AnalysisSpec(n_samples=100, seed=3),
            target_yield=0.9,
            target_quantile=0.85,
            name="roundtrip",
        )

    def test_json_round_trip(self):
        spec = self.make()
        restored = StudySpec.from_json(spec.to_json())
        assert restored == spec
        assert hash(restored) == hash(spec)

    def test_json_round_trip_preserves_nested_types(self):
        restored = StudySpec.from_json(self.make().to_json(indent=2))
        assert isinstance(restored.pipeline, PipelineSpec)
        assert isinstance(restored.variation, VariationSpec)
        assert isinstance(restored.analysis, AnalysisSpec)

    def test_with_backend(self):
        spec = self.make().with_backend("analytic")
        assert spec.analysis.backend == "analytic"
        assert spec.pipeline == self.make().pipeline

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown StudySpec field"):
            StudySpec.from_dict({"nonsense": 1})

    def test_target_ranges_validated(self):
        with pytest.raises(ValueError, match="target_yield"):
            dataclasses.replace(self.make(), target_yield=1.0)
        with pytest.raises(ValueError, match="target_quantile"):
            dataclasses.replace(self.make(), target_quantile=0.0)
