"""Scenario-sweep runner: axis handling, RNG hygiene, streaming, parallelism."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

import repro.api.sweep as sweep_module
from repro.api.session import Session, Study, derive_seed
from repro.api.spec import AnalysisSpec, PipelineSpec, StudySpec, VariationSpec
from repro.api.sweep import (
    ScenarioSweep,
    SweepPoint,
    _evaluate_point,
    _worker_session,
    apply_axis,
    run_sweep,
)
from repro.process.technology import default_technology


@pytest.fixture(scope="module")
def base_spec() -> StudySpec:
    return StudySpec(
        pipeline=PipelineSpec(n_stages=2, logic_depth=3),
        variation=VariationSpec.combined(),
        analysis=AnalysisSpec(backend="montecarlo", n_samples=200, seed=11),
    )


class TestAxisApplication:
    def test_nested_sections(self, base_spec):
        spec = apply_axis(base_spec, "pipeline.n_stages", 4)
        spec = apply_axis(spec, "variation.sigma_scale", 0.5)
        spec = apply_axis(spec, "analysis.backend", "ssta")
        assert spec.pipeline.n_stages == 4
        assert spec.variation.sigma_scale == 0.5
        assert spec.analysis.backend == "ssta"
        # base untouched
        assert base_spec.pipeline.n_stages == 2

    def test_top_level_fields(self, base_spec):
        assert apply_axis(base_spec, "target_yield", 0.9).target_yield == 0.9
        assert apply_axis(base_spec, "study.target_yield", 0.8).target_yield == 0.8

    def test_bad_section_rejected(self, base_spec):
        with pytest.raises(ValueError, match="axis path"):
            apply_axis(base_spec, "nonsense.field", 1)

    def test_bad_field_rejected(self, base_spec):
        with pytest.raises(TypeError):
            apply_axis(base_spec, "pipeline.nonsense", 1)


class TestSweepConstruction:
    def test_grid_is_cartesian_product_in_axis_order(self, base_spec):
        sweep = ScenarioSweep(
            base_spec,
            {"pipeline.n_stages": [2, 3], "pipeline.logic_depth": [3, 4, 5]},
        )
        assert len(sweep) == 6
        coords = sweep.coords()
        assert coords[0] == (("pipeline.n_stages", 2), ("pipeline.logic_depth", 3))
        assert coords[-1] == (("pipeline.n_stages", 3), ("pipeline.logic_depth", 5))

    def test_zip_pairs_elementwise(self, base_spec):
        sweep = ScenarioSweep(
            base_spec,
            {"pipeline.n_stages": [2, 3], "pipeline.logic_depth": [3, 4]},
            mode="zip",
        )
        assert len(sweep) == 2
        assert [spec.pipeline.logic_depth for spec in sweep.specs()] == [3, 4]

    def test_zip_length_mismatch_rejected(self, base_spec):
        with pytest.raises(ValueError, match="equal-length"):
            ScenarioSweep(
                base_spec,
                {"pipeline.n_stages": [2, 3], "pipeline.logic_depth": [3]},
                mode="zip",
            )

    @pytest.mark.parametrize(
        "kwargs", [{"mode": "diagonal"}, {"seed_policy": "random"}]
    )
    def test_bad_modes_rejected(self, base_spec, kwargs):
        with pytest.raises(ValueError):
            ScenarioSweep(base_spec, {"pipeline.n_stages": [2]}, **kwargs)

    def test_empty_axes_rejected(self, base_spec):
        with pytest.raises(ValueError, match="at least one axis"):
            ScenarioSweep(base_spec, {})
        with pytest.raises(ValueError, match="no values"):
            ScenarioSweep(base_spec, {"pipeline.n_stages": []})


class TestSeedHygiene:
    def test_spawned_seeds_are_unique_and_deterministic(self, base_spec):
        axes = {"pipeline.n_stages": [2, 3, 4]}
        seeds_a = [s.analysis.seed for s in ScenarioSweep(base_spec, axes).specs()]
        seeds_b = [s.analysis.seed for s in ScenarioSweep(base_spec, axes).specs()]
        assert seeds_a == seeds_b
        assert len(set(seeds_a)) == len(seeds_a)
        assert all(seed != base_spec.analysis.seed for seed in seeds_a)

    def test_derive_seed_matches_seed_sequence_spawning(self):
        child = np.random.SeedSequence(11, spawn_key=(2, 5))
        assert derive_seed(11, 2, 5) == int(child.generate_state(1, dtype=np.uint64)[0])

    def test_none_base_seed_spawns_from_session_root(self, base_spec):
        spec = base_spec.replace(
            analysis=base_spec.analysis.with_seed(None)
        )
        sweep = ScenarioSweep(spec, {"pipeline.n_stages": [2, 3]})
        # the seed stays deferred until a session is known...
        assert [s.analysis.seed for s in sweep.specs()] == [None, None]
        # ...then resolves against the executing session's root seed
        points = list(sweep.iter_results(Session(root_seed=7)))
        seeds = [point.spec.analysis.seed for point in points]
        assert None not in seeds and len(set(seeds)) == 2
        assert seeds == [derive_seed(7, 0), derive_seed(7, 1)]
        # a different session root gives different (still independent) streams
        other = [
            point.spec.analysis.seed
            for point in sweep.iter_results(Session(root_seed=8))
        ]
        assert set(other).isdisjoint(seeds)

    def test_fixed_policy_keeps_base_seed(self, base_spec):
        sweep = ScenarioSweep(
            base_spec, {"pipeline.n_stages": [2, 3]}, seed_policy="fixed"
        )
        assert [s.analysis.seed for s in sweep.specs()] == [11, 11]

    def test_explicit_seed_axis_wins_over_spawning(self, base_spec):
        sweep = ScenarioSweep(base_spec, {"analysis.seed": [1, 2, 3]})
        assert [s.analysis.seed for s in sweep.specs()] == [1, 2, 3]

    def test_backend_axis_points_share_a_seed(self, base_spec):
        """Backend-only coordinates keep one seed, so the montecarlo and
        analytic points of a backend sweep share a cached characterisation."""
        sweep = ScenarioSweep(
            base_spec,
            {"analysis.backend": ["montecarlo", "analytic"],
             "pipeline.n_stages": [2, 3]},
        )
        by_stage: dict[int, set[int]] = {}
        for spec in sweep.specs():
            by_stage.setdefault(spec.pipeline.n_stages, set()).add(
                spec.analysis.seed
            )
        # one seed per n_stages value, shared across both backends
        assert all(len(seeds) == 1 for seeds in by_stage.values())
        assert by_stage[2] != by_stage[3]


class TestSweepExecution:
    def test_streaming_preserves_order_and_specs(self, base_spec):
        sweep = ScenarioSweep(
            base_spec, {"pipeline.n_stages": [2, 3]}, seed_policy="fixed"
        )
        points = list(sweep.iter_results(Session()))
        assert [point.index for point in points] == [0, 1]
        assert [point.coord("pipeline.n_stages") for point in points] == [2, 3]
        assert all(isinstance(point, SweepPoint) for point in points)

    def test_points_match_standalone_studies_under_fixed_seed(self, base_spec):
        session = Session()
        sweep = ScenarioSweep(
            base_spec, {"pipeline.n_stages": [2, 3]}, seed_policy="fixed"
        )
        result = sweep.run(session=session)
        for point in result:
            standalone = Study(point.spec, session=Session()).run()
            assert standalone == point.report

    def test_parallel_matches_serial(self, base_spec):
        axes = {"pipeline.n_stages": [2, 3], "variation.sigma_scale": [0.5, 1.0]}
        serial = ScenarioSweep(base_spec, axes).run()
        parallel = ScenarioSweep(base_spec, axes).run(n_jobs=2)
        assert serial.reports() == parallel.reports()

    def test_parallel_workers_inherit_session_parameters(self, base_spec):
        """Workers must mirror the dispatching session's root seed, so a
        non-default session gives identical numbers serially and in parallel."""
        spec = base_spec.replace(analysis=base_spec.analysis.with_seed(None))
        axes = {"pipeline.n_stages": [2, 3]}
        session = Session(root_seed=7)
        serial = ScenarioSweep(spec, axes).run(session=session)
        parallel = ScenarioSweep(spec, axes).run(
            session=Session(root_seed=7), n_jobs=2
        )
        assert serial.reports() == parallel.reports()
        assert [p.spec.analysis.seed for p in serial] == [
            p.spec.analysis.seed for p in parallel
        ]

    def test_run_sweep_facade_and_records(self, base_spec):
        result = run_sweep(
            base_spec.replace(target_yield=0.9),
            {"variation.sigma_scale": [0.5, 1.0]},
            session=Session(),
        )
        records = result.to_records()
        assert len(records) == 2
        assert records[0]["variation.sigma_scale"] == 0.5
        assert "pipeline_mean_ps" in records[0]
        assert "delay_at_target_yield" in records[0]
        # higher variation -> higher variability
        assert records[1]["variability"] > records[0]["variability"]
        table = result.format(title="sweep")
        assert "variation.sigma_scale" in table

    def test_format_unions_headers_across_records(self, base_spec):
        result = run_sweep(
            base_spec,
            {"target_yield": [None, 0.9]},
            session=Session(),
            seed_policy="fixed",
        )
        table = result.format()
        assert "delay_at_target_yield" in table

    @pytest.mark.parametrize("policy", ["fixed", "spawn"])
    def test_backend_sweep_shares_characterisation(self, base_spec, policy):
        session = Session()
        ScenarioSweep(
            base_spec,
            {"analysis.backend": ["montecarlo", "analytic"]},
            seed_policy=policy,
        ).run(session=session)
        # Both points share one cached characterisation under either policy.
        assert (session.cache_hits, session.cache_misses) == (1, 1), policy

    def test_serial_and_parallel_default_the_bound_session_identically(
        self, base_spec
    ):
        """Both branches of ``run`` must resolve ``self.session`` the same
        way: with a None base seed, per-point seeds spawn from the *bound*
        session's root seed whether or not a pool is used."""
        spec = base_spec.replace(analysis=base_spec.analysis.with_seed(None))
        axes = {"pipeline.n_stages": [2, 3]}
        bound_serial = ScenarioSweep(spec, axes, session=Session(root_seed=7))
        bound_parallel = ScenarioSweep(spec, axes, session=Session(root_seed=7))
        serial = bound_serial.run()  # no explicit session either way
        parallel = bound_parallel.run(n_jobs=2)
        expected = [derive_seed(7, 0), derive_seed(7, 1)]
        assert [p.spec.analysis.seed for p in serial] == expected
        assert [p.spec.analysis.seed for p in parallel] == expected
        assert serial.reports() == parallel.reports()

    def test_run_attaches_an_execution_trace(self, base_spec):
        result = ScenarioSweep(
            base_spec, {"pipeline.n_stages": [2, 3]}, seed_policy="fixed"
        ).run(session=Session())
        trace = result.trace
        assert trace.pool_kind == "serial"
        assert trace.fallback_reason is None
        assert (trace.n_points, trace.n_completed, trace.n_failed) == (2, 2, 0)
        assert result.failures == ()
        assert result.ok == list(result)
        assert result.raise_on_failure() is result

    def test_study_sweep_binds_the_study_session(self, base_spec):
        study = Study(base_spec)
        study.run()
        assert study.session.cache_misses == 1
        sweep = study.sweep({"analysis.backend": ["analytic"]}, seed_policy="fixed")
        assert len(sweep) == 1
        sweep.run()
        # the sweep ran on the study's session and reused its characterisation
        assert (study.session.cache_hits, study.session.cache_misses) == (1, 1)


class TestWorkerSessionReuse:
    """The module-global worker session must be reused across payloads and
    rebuilt exactly when the dispatching session's parameters change."""

    @pytest.fixture(autouse=True)
    def fresh_worker_state(self, monkeypatch):
        monkeypatch.setattr(sweep_module, "_WORKER_SESSION", None)

    def test_reused_for_identical_parameters(self):
        technology = default_technology()
        first = _worker_session(technology, 7)
        assert sweep_module._WORKER_SESSION is first
        assert _worker_session(technology, 7) is first

    def test_rebuilt_on_root_seed_change(self):
        technology = default_technology()
        first = _worker_session(technology, 7)
        second = _worker_session(technology, 8)
        assert second is not first
        assert second.root_seed == 8
        assert sweep_module._WORKER_SESSION is second

    def test_rebuilt_on_technology_change(self):
        technology = default_technology()
        first = _worker_session(technology, 7)
        altered = dataclasses.replace(technology, vdd=technology.vdd * 1.1)
        second = _worker_session(altered, 7)
        assert second is not first
        assert second.technology == altered
        # and switching back rebuilds again (no multi-entry cache)
        third = _worker_session(technology, 7)
        assert third is not second

    def test_evaluate_point_runs_on_the_worker_session(self, base_spec):
        payload = (0, (("pipeline.n_stages", 2),), base_spec,
                   default_technology(), 7)
        point = _evaluate_point(payload)
        worker = sweep_module._WORKER_SESSION
        assert worker is not None and worker.root_seed == 7
        assert point.report == Session().analyze(base_spec)
        # a second payload with the same parameters reuses the session: the
        # cached report object comes back identically (not just equal)
        again = _evaluate_point(payload)
        assert again.report is point.report
        assert sweep_module._WORKER_SESSION is worker
