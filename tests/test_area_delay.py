"""Tests for repro.optimize.area_delay."""

import numpy as np
import pytest

from repro.circuit.flipflop import FlipFlopTiming
from repro.circuit.generators import random_logic_block
from repro.optimize.area_delay import AreaDelayCurve, AreaDelayPoint, characterize_stage
from repro.pipeline.stage import PipelineStage


def make_point(delay, area):
    return AreaDelayPoint(
        target_delay=delay,
        delay=delay,
        mean=delay * 0.95,
        std=delay * 0.03,
        area=area,
        sizes=np.ones(3),
        met_target=True,
    )


@pytest.fixture
def curve():
    return AreaDelayCurve(
        stage_name="s",
        target_yield=0.9,
        points=(
            make_point(1.0e-10, 300.0),
            make_point(1.5e-10, 120.0),
            make_point(2.0e-10, 80.0),
            make_point(2.5e-10, 70.0),
        ),
    )


class TestAreaDelayCurve:
    def test_points_sorted_by_delay(self, curve):
        assert np.all(np.diff(curve.delays()) > 0.0)

    def test_areas_monotonically_decrease(self, curve):
        assert np.all(np.diff(curve.areas()) < 0.0)

    def test_dominated_points_removed(self):
        curve = AreaDelayCurve(
            stage_name="s",
            target_yield=0.9,
            points=(
                make_point(1.0e-10, 300.0),
                make_point(1.5e-10, 120.0),
                make_point(1.8e-10, 500.0),  # dominated: slower AND bigger
                make_point(2.5e-10, 70.0),
            ),
        )
        assert len(curve.points) == 3
        assert np.all(np.diff(curve.areas()) < 0.0)

    def test_interpolation_roundtrip(self, curve):
        delay = 1.7e-10
        area = curve.area_for_delay(delay)
        assert curve.delay_for_area(area) == pytest.approx(delay, rel=1e-6)

    def test_interpolation_clamps_out_of_range(self, curve):
        assert curve.area_for_delay(1e-11) == pytest.approx(300.0)
        assert curve.area_for_delay(1.0) == pytest.approx(70.0)

    def test_point_for_delay_picks_nearest(self, curve):
        point = curve.point_for_delay(1.45e-10)
        assert point.delay == pytest.approx(1.5e-10)

    def test_min_max_delay(self, curve):
        assert curve.min_delay == pytest.approx(1.0e-10)
        assert curve.max_delay == pytest.approx(2.5e-10)

    def test_sensitivity_ratio_positive(self, curve):
        assert curve.sensitivity_ratio() > 0.0

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            AreaDelayCurve("s", 0.9, (make_point(1.0e-10, 100.0),))


class TestCharacterizeStage:
    @pytest.fixture
    def stage(self):
        block = random_logic_block(
            "blk", n_gates=40, depth=8, n_inputs=6, n_outputs=3, seed=21
        )
        return PipelineStage("blk", block, flipflop=FlipFlopTiming())

    def test_curve_has_expected_points_and_shape(self, stage, lagrangian_sizer):
        curve = characterize_stage(stage, lagrangian_sizer, 0.93, n_points=3)
        assert len(curve.points) >= 2
        assert np.all(np.diff(curve.areas()) <= 0.0)
        assert curve.stage_name == "blk"

    def test_characterization_restores_sizes(self, stage, lagrangian_sizer):
        before = stage.netlist.sizes()
        characterize_stage(stage, lagrangian_sizer, 0.93, n_points=3)
        assert np.allclose(stage.netlist.sizes(), before)

    def test_endpoint_is_minimum_size_design(self, stage, lagrangian_sizer):
        curve = characterize_stage(stage, lagrangian_sizer, 0.93, n_points=3)
        min_area = stage.netlist.total_area(np.ones(stage.n_gates))
        assert curve.areas().min() == pytest.approx(min_area, rel=1e-6)

    def test_validation(self, stage, lagrangian_sizer):
        with pytest.raises(ValueError):
            characterize_stage(stage, lagrangian_sizer, 0.93, n_points=0)
        with pytest.raises(ValueError):
            characterize_stage(stage, lagrangian_sizer, 0.93, speedup_range=(1.0, 0.5))
