"""Tests for repro.optimize.balance and repro.optimize.redistribute."""

import numpy as np
import pytest

from repro.core.yield_model import stage_yield_budget
from repro.optimize.area_delay import characterize_stage
from repro.optimize.balance import design_balanced_pipeline
from repro.optimize.redistribute import redistribute_area
from repro.pipeline.builder import alu_decoder_pipeline


@pytest.fixture(scope="module")
def small_alu_pipeline():
    return alu_decoder_pipeline(width=4, n_address=3)


@pytest.fixture(scope="module")
def balanced(small_alu_pipeline, technology, variation_combined):
    from repro.optimize.lagrangian import LagrangianSizer

    sizer = LagrangianSizer(technology, variation_combined)
    # Pick a target tight enough that *every* stage needs some upsizing (the
    # paper's balanced setup: all stages at their delay target), but loose
    # enough that every stage can meet it: just below the fastest stage's
    # minimum-size delay at the stage yield budget.
    stage_yield = stage_yield_budget(0.80, small_alu_pipeline.n_stages)
    fastest = min(
        sizer.stage_distribution(stage).delay_at_yield(stage_yield)
        for stage in small_alu_pipeline.stages
    )
    return design_balanced_pipeline(
        small_alu_pipeline, sizer, 0.96 * fastest, 0.80
    ), sizer


class TestBalancedDesign:
    def test_input_pipeline_untouched(self, small_alu_pipeline, balanced):
        result, _ = balanced
        assert result.pipeline is not small_alu_pipeline
        # The generators build the decoder's word drivers at size 2; whatever
        # the input sizes were, the balanced flow must not have modified them.
        for stage in small_alu_pipeline.stages:
            rebuilt = alu_decoder_pipeline(width=4, n_address=3).stage(stage.name)
            assert np.allclose(stage.netlist.sizes(), rebuilt.netlist.sizes())

    def test_stage_yield_budget_is_equal_split(self, balanced):
        result, _ = balanced
        assert result.stage_yield_target == pytest.approx(0.80 ** (1.0 / 3.0))

    def test_stages_meet_their_budget(self, balanced):
        result, _ = balanced
        assert np.all(result.stage_yields() >= result.stage_yield_target - 0.03)

    def test_predicted_pipeline_yield_meets_target(self, balanced):
        result, _ = balanced
        assert result.predicted_pipeline_yield() >= 0.75

    def test_areas_positive_and_recorded(self, balanced):
        result, _ = balanced
        assert np.all(result.stage_areas() > 0.0)
        assert result.total_area == pytest.approx(result.pipeline.total_area())

    def test_distributions_in_pipeline_order(self, balanced):
        result, _ = balanced
        names = [d.name for d in result.stage_distributions()]
        assert names == result.pipeline.stage_names

    def test_validation(self, small_alu_pipeline, balanced):
        _, sizer = balanced
        with pytest.raises(ValueError):
            design_balanced_pipeline(small_alu_pipeline, sizer, -1.0, 0.8)


class TestRedistribution:
    @pytest.fixture(scope="class")
    def curves(self, balanced):
        result, sizer = balanced
        stage_yield = result.stage_yield_target
        return {
            stage.name: characterize_stage(stage, sizer, stage_yield, n_points=4)
            for stage in result.pipeline.stages
        }

    def test_total_area_approximately_conserved(self, balanced, curves):
        result, sizer = balanced
        redistribution = redistribute_area(
            result.pipeline, curves, sizer, result.target_delay,
            result.stage_yield_target, fraction=0.15, mode="best",
        )
        assert redistribution.total_area == pytest.approx(result.total_area, rel=0.15)

    def test_best_mode_moves_area_toward_low_ratio_stages(self, balanced, curves):
        result, sizer = balanced
        redistribution = redistribute_area(
            result.pipeline, curves, sizer, result.target_delay,
            result.stage_yield_target, fraction=0.15, mode="best",
        )
        assert set(redistribution.donor_stages).isdisjoint(
            redistribution.receiver_stages
        )
        assert redistribution.donor_stages and redistribution.receiver_stages

    def test_worst_mode_swaps_roles(self, balanced, curves):
        result, sizer = balanced
        best = redistribute_area(
            result.pipeline, curves, sizer, result.target_delay,
            result.stage_yield_target, fraction=0.15, mode="best",
        )
        worst = redistribute_area(
            result.pipeline, curves, sizer, result.target_delay,
            result.stage_yield_target, fraction=0.15, mode="worst",
        )
        assert set(best.donor_stages) == set(worst.receiver_stages)

    def test_stage_yields_shift_in_opposite_directions(self, balanced, curves):
        result, sizer = balanced
        redistribution = redistribute_area(
            result.pipeline, curves, sizer, result.target_delay,
            result.stage_yield_target, fraction=0.2, mode="best",
        )
        target = result.target_delay
        balanced_yields = dict(zip(result.pipeline.stage_names, result.stage_yields()))
        new_yields = dict(
            zip(
                redistribution.pipeline.stage_names,
                redistribution.stage_yields(target),
            )
        )
        receiver = redistribution.receiver_stages[0]
        donor = redistribution.donor_stages[0]
        assert new_yields[receiver] >= balanced_yields[receiver] - 0.01
        assert new_yields[donor] <= balanced_yields[donor] + 0.01

    def test_validation(self, balanced, curves):
        result, sizer = balanced
        with pytest.raises(ValueError):
            redistribute_area(
                result.pipeline, curves, sizer, result.target_delay,
                result.stage_yield_target, fraction=1.5,
            )
        with pytest.raises(ValueError):
            redistribute_area(
                result.pipeline, curves, sizer, result.target_delay,
                result.stage_yield_target, mode="sideways",
            )
        with pytest.raises(KeyError):
            redistribute_area(
                result.pipeline, {}, sizer, result.target_delay,
                result.stage_yield_target,
            )
