"""Spec identity: canonical JSON, content digests and tagged wire forms.

``repro.api.canonical`` is the single answer to "are these two specs the
same computation?" -- shared by the on-disk checkpoint store and the study
server's request coalescing.  The byte layout of the canonical JSON is an
on-disk compatibility contract, so the digests of reference specs are
**pinned** here: if one of these assertions fails, every existing
checkpoint store has been orphaned.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.api.canonical import (
    canonical_spec_json,
    report_from_wire,
    report_to_wire,
    resolved_store_spec,
    spec_digest,
    spec_from_wire,
    spec_store_payload,
    spec_to_wire,
)
from repro.api.session import Session
from repro.api.spec import (
    AnalysisSpec,
    DesignStudySpec,
    PipelineSpec,
    StudySpec,
)
from repro.robust.checkpoint import CheckpointStore

SMALL = StudySpec(
    pipeline=PipelineSpec(n_stages=2),
    analysis=AnalysisSpec(n_samples=200, seed=11),
)


class TestPinnedDigests:
    """The on-disk compatibility contract: these digests must never change."""

    def test_default_study_spec_digest_is_pinned(self):
        assert spec_digest(StudySpec()) == (
            "b4f23dcea6e616dc3407a8392d8a3007d53afecd4c71cf6529e783f12249ca6a"
        )

    def test_reference_design_spec_digest_is_pinned(self):
        spec = DesignStudySpec(validation=AnalysisSpec(n_samples=500, seed=7))
        assert spec_digest(spec) == (
            "44909bfb6653e3806c04000419fdcc3141331aef2fa49d8ce1a053ab9505ca93"
        )

    def test_canonical_json_is_sorted_and_compact(self):
        text = canonical_spec_json(StudySpec())
        payload = json.loads(text)
        assert text == json.dumps(payload, sort_keys=True, separators=(",", ":"))
        assert payload["kind"] == "study"

    def test_name_and_targets_do_not_change_the_digest(self):
        base = spec_digest(SMALL)
        relabelled = SMALL.replace(name="relabelled", target_yield=0.42)
        assert spec_digest(relabelled) == base

    def test_computation_fields_do_change_the_digest(self):
        base = spec_digest(SMALL)
        changed = SMALL.replace(
            analysis=dataclasses.replace(SMALL.analysis, n_samples=201)
        )
        assert spec_digest(changed) != base


class TestCheckpointEquivalence:
    """The checkpoint store and the serving layer share one identity."""

    def test_checkpoint_reexports_are_the_same_functions(self):
        from repro.robust import checkpoint

        assert checkpoint.spec_digest is spec_digest
        assert checkpoint.spec_store_payload is spec_store_payload
        assert checkpoint.resolved_store_spec is resolved_store_spec

    def test_store_path_uses_the_shared_digest(self, tmp_path):
        store = CheckpointStore(tmp_path)
        digest = spec_digest(SMALL)
        assert store.digest(SMALL) == digest
        assert store.path_for(digest).name == f"{digest}.json"

    def test_on_disk_entry_lands_at_the_pinned_address(self, tmp_path):
        store = CheckpointStore(tmp_path)
        session = Session(store=store)
        report = session.run(SMALL)
        digest = spec_digest(SMALL)
        path = store.path_for(digest)
        assert path.exists()
        assert store.get(SMALL) == report

    def test_deferred_seed_resolves_before_digesting(self):
        deferred = SMALL.replace(
            analysis=dataclasses.replace(SMALL.analysis, seed=None)
        )
        low, high = Session(root_seed=1), Session(root_seed=2)
        resolved_low = resolved_store_spec(deferred, low)
        resolved_high = resolved_store_spec(deferred, high)
        assert resolved_low.analysis.seed is not None
        assert spec_digest(resolved_low) != spec_digest(resolved_high)
        # A concrete seed passes through untouched.
        assert resolved_store_spec(SMALL, low) is SMALL


class TestWireForms:
    def test_study_spec_wire_round_trip(self):
        wire = spec_to_wire(SMALL)
        assert wire["kind"] == "study"
        assert spec_from_wire(json.loads(json.dumps(wire))) == SMALL

    def test_design_spec_wire_round_trip(self):
        spec = DesignStudySpec(validation=AnalysisSpec(n_samples=500, seed=7))
        wire = spec_to_wire(spec)
        assert wire["kind"] == "design"
        assert spec_from_wire(json.loads(json.dumps(wire))) == spec

    def test_delay_report_wire_round_trip(self):
        report = Session().run(SMALL)
        wire = report_to_wire(report)
        assert wire["kind"] == "delay"
        assert report_from_wire(json.loads(json.dumps(wire))) == report

    def test_design_report_wire_round_trip(self):
        # 3 stages: the degenerate 2-stage design yields a NaN sensitivity
        # ratio, and NaN breaks equality (not the wire format) after a trip.
        spec = DesignStudySpec(
            pipeline=PipelineSpec(n_stages=3),
            validation=AnalysisSpec(n_samples=200, seed=5),
        )
        report = Session().run(spec)
        wire = report_to_wire(report)
        assert wire["kind"] == "design"
        assert report_from_wire(json.loads(json.dumps(wire))) == report

    def test_unknown_kinds_are_rejected(self):
        with pytest.raises(ValueError, match="unknown spec wire kind"):
            spec_from_wire({"kind": "mystery", "data": {}})
        with pytest.raises(ValueError, match="unknown report wire kind"):
            report_from_wire({"kind": "mystery", "data": {}})
        with pytest.raises(TypeError):
            spec_store_payload(object())
        with pytest.raises(TypeError):
            report_to_wire(object())


class TestSessionStats:
    def test_stats_shape_and_counters(self):
        session = Session()
        stats = session.stats()
        assert stats["cache_hits"] == 0
        assert stats["cache_misses"] == 0
        assert stats["has_store"] is False
        assert set(stats["cached"]) == {
            "pipelines", "variations", "mc_runs", "analyzers", "reports",
            "sizers", "balanced", "curves", "design_reports",
            "design_validations",
        }
        assert all(count == 0 for count in stats["cached"].values())

        session.run(SMALL)
        after = session.stats()
        assert after["cached"]["reports"] == 1
        assert after["cached"]["mc_runs"] == 1
        assert after["cache_misses"] > 0

    def test_stats_is_json_safe(self):
        session = Session()
        session.run(SMALL)
        assert json.loads(json.dumps(session.stats())) == session.stats()
