"""Tests for repro.circuit.cell_library."""

import pytest

from repro.circuit.cell_library import Cell, CellLibrary, standard_cell_library
from repro.process.technology import default_technology


class TestCell:
    def test_input_capacitance_scales_with_size(self):
        tech = default_technology()
        inv = standard_cell_library()["INV"]
        assert inv.input_capacitance(2.0, tech) == pytest.approx(
            2.0 * inv.input_capacitance(1.0, tech)
        )

    def test_drive_resistance_shrinks_with_size(self):
        tech = default_technology()
        inv = standard_cell_library()["INV"]
        assert inv.drive_resistance(4.0, tech) == pytest.approx(
            inv.drive_resistance(1.0, tech) / 4.0
        )

    def test_area_scales_with_size(self):
        tech = default_technology()
        nand = standard_cell_library()["NAND2"]
        assert nand.area(3.0, tech) == pytest.approx(3.0 * nand.area(1.0, tech))

    def test_nand_has_more_input_cap_than_inverter(self):
        tech = default_technology()
        lib = standard_cell_library()
        assert lib["NAND2"].input_capacitance(1.0, tech) > lib["INV"].input_capacitance(
            1.0, tech
        )

    def test_rejects_nonpositive_size_for_resistance(self):
        tech = default_technology()
        inv = standard_cell_library()["INV"]
        with pytest.raises(ValueError):
            inv.drive_resistance(0.0, tech)

    def test_cell_validation(self):
        with pytest.raises(ValueError):
            Cell("BAD", 0, 1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            Cell("BAD", 1, -1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            Cell("BAD", 1, 1.0, -1.0, 1.0)
        with pytest.raises(ValueError):
            Cell("BAD", 1, 1.0, 1.0, 0.0)


class TestCellLibrary:
    def test_standard_library_contents(self):
        lib = standard_cell_library()
        for name in ("INV", "NAND2", "NOR2", "XOR2", "AOI21"):
            assert name in lib

    def test_lookup_unknown_cell_raises(self):
        lib = standard_cell_library()
        with pytest.raises(KeyError):
            lib["NAND17"]

    def test_duplicate_cells_rejected(self):
        inv = Cell("INV", 1, 1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            CellLibrary([inv, inv])

    def test_cells_with_inputs(self):
        lib = standard_cell_library()
        two_input = lib.cells_with_inputs(2)
        assert all(cell.n_inputs == 2 for cell in two_input)
        assert {"NAND2", "NOR2", "XOR2", "XNOR2"} <= {cell.name for cell in two_input}

    def test_iteration_and_len(self):
        lib = standard_cell_library()
        assert len(list(lib)) == len(lib)
        assert set(lib.names) == {cell.name for cell in lib}

    def test_inverter_is_reference_cell(self):
        lib = standard_cell_library()
        inv = lib["INV"]
        assert inv.logical_effort == pytest.approx(1.0)
        assert inv.area_factor == pytest.approx(1.0)
