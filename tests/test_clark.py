"""Tests for repro.core.clark (Clark's max approximation, paper eqs. 4-6)."""

import numpy as np
import pytest
from scipy.stats import norm

from repro.core.clark import (
    correlation_with_max,
    max_of_gaussians,
    max_of_two_gaussians,
)


class TestMaxOfTwo:
    def test_iid_standard_normals_known_moments(self):
        """E[max(X,Y)] = 1/sqrt(pi), Var = 1 - 1/pi for iid N(0,1)."""
        result = max_of_two_gaussians(0.0, 1.0, 0.0, 1.0, 0.0)
        assert result.mean == pytest.approx(1.0 / np.sqrt(np.pi), rel=1e-9)
        assert result.variance == pytest.approx(1.0 - 1.0 / np.pi, rel=1e-9)

    def test_perfectly_correlated_equal_sigmas(self):
        result = max_of_two_gaussians(1.0, 0.5, 2.0, 0.5, 1.0)
        assert result.mean == pytest.approx(2.0)
        assert result.std == pytest.approx(0.5)

    def test_dominant_variable_wins(self):
        result = max_of_two_gaussians(0.0, 1.0, 100.0, 1.0, 0.0)
        assert result.mean == pytest.approx(100.0, rel=1e-9)
        assert result.std == pytest.approx(1.0, rel=1e-6)

    def test_symmetry(self):
        a = max_of_two_gaussians(1.0, 0.3, 2.0, 0.8, 0.4)
        b = max_of_two_gaussians(2.0, 0.8, 1.0, 0.3, 0.4)
        assert a.mean == pytest.approx(b.mean)
        assert a.std == pytest.approx(b.std)

    def test_mean_of_max_exceeds_both_means(self):
        result = max_of_two_gaussians(1.0, 0.5, 1.2, 0.7, 0.2)
        assert result.mean >= 1.2

    def test_correlation_reduces_mean_of_max(self):
        independent = max_of_two_gaussians(1.0, 0.5, 1.0, 0.5, 0.0)
        correlated = max_of_two_gaussians(1.0, 0.5, 1.0, 0.5, 0.8)
        assert correlated.mean < independent.mean

    def test_deterministic_inputs(self):
        result = max_of_two_gaussians(3.0, 0.0, 5.0, 0.0, 0.0)
        assert result.mean == pytest.approx(5.0)
        assert result.std == pytest.approx(0.0)

    def test_scale_invariance_in_time_units(self):
        """Moments scale linearly with the unit (seconds vs picoseconds)."""
        in_seconds = max_of_two_gaussians(200e-12, 10e-12, 210e-12, 12e-12, 0.3)
        in_picoseconds = max_of_two_gaussians(200.0, 10.0, 210.0, 12.0, 0.3)
        assert in_seconds.mean * 1e12 == pytest.approx(in_picoseconds.mean, rel=1e-9)
        assert in_seconds.std * 1e12 == pytest.approx(in_picoseconds.std, rel=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            max_of_two_gaussians(0.0, -1.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            max_of_two_gaussians(0.0, 1.0, 0.0, 1.0, correlation=1.5)

    def test_against_monte_carlo(self):
        rng = np.random.default_rng(1)
        cov = np.array([[1.0, 0.3 * 1.0 * 2.0], [0.3 * 1.0 * 2.0, 4.0]])
        samples = rng.multivariate_normal([1.0, 0.5], cov, size=400000).max(axis=1)
        result = max_of_two_gaussians(1.0, 1.0, 0.5, 2.0, 0.3)
        assert result.mean == pytest.approx(samples.mean(), rel=0.01)
        assert result.std == pytest.approx(samples.std(), rel=0.02)


class TestCorrelationWithMax:
    def test_symmetric_case(self):
        """Y correlated identically with X1, X2 keeps that correlation with the max."""
        rho = correlation_with_max(
            0.0, 1.0, 0.0, 1.0, 0.0, std_other=1.0,
            correlation_other_1=0.5, correlation_other_2=0.5,
        )
        # Cov(Y, max) = 0.5*Phi(0) + 0.5*Phi(0) = 0.5; sigma_max = sqrt(1-1/pi)
        expected = 0.5 / np.sqrt(1.0 - 1.0 / np.pi)
        assert rho == pytest.approx(expected, rel=1e-9)

    def test_uncorrelated_third_variable(self):
        rho = correlation_with_max(
            0.0, 1.0, 0.0, 1.0, 0.0, std_other=1.0,
            correlation_other_1=0.0, correlation_other_2=0.0,
        )
        assert rho == pytest.approx(0.0)

    def test_dominant_branch_determines_correlation(self):
        rho = correlation_with_max(
            100.0, 1.0, 0.0, 1.0, 0.0, std_other=1.0,
            correlation_other_1=0.9, correlation_other_2=0.0,
        )
        assert rho == pytest.approx(0.9, rel=1e-6)

    def test_result_clipped_to_valid_range(self):
        rho = correlation_with_max(
            0.0, 1.0, 0.0, 1.0, 0.99, std_other=1.0,
            correlation_other_1=1.0, correlation_other_2=1.0,
        )
        assert -1.0 <= rho <= 1.0

    def test_zero_sigma_other_gives_zero(self):
        rho = correlation_with_max(
            0.0, 1.0, 0.0, 1.0, 0.0, std_other=0.0,
            correlation_other_1=0.5, correlation_other_2=0.5,
        )
        assert rho == 0.0


class TestMaxOfGaussians:
    def test_single_variable_identity(self):
        result = max_of_gaussians(np.array([2.0]), np.array([0.3]))
        assert result.mean == pytest.approx(2.0)
        assert result.std == pytest.approx(0.3)

    def test_iid_max_against_monte_carlo(self):
        rng = np.random.default_rng(2)
        n = 8
        samples = rng.standard_normal((400000, n)).max(axis=1)
        result = max_of_gaussians(np.zeros(n), np.ones(n))
        assert result.mean == pytest.approx(samples.mean(), rel=0.01)
        # Clark's repeated pairwise reduction is known to underestimate the
        # sigma of an iid max slightly; allow that bias.
        assert result.std == pytest.approx(samples.std(), rel=0.08)

    def test_correlated_max_against_monte_carlo(self):
        rng = np.random.default_rng(3)
        n = 6
        rho = 0.5
        cov = np.full((n, n), rho)
        np.fill_diagonal(cov, 1.0)
        samples = rng.multivariate_normal(np.zeros(n), cov, size=300000).max(axis=1)
        result = max_of_gaussians(np.zeros(n), np.ones(n), cov)
        assert result.mean == pytest.approx(samples.mean(), rel=0.01)
        assert result.std == pytest.approx(samples.std(), rel=0.05)

    def test_perfectly_correlated_stages(self):
        n = 5
        corr = np.ones((n, n))
        means = np.array([1.0, 2.0, 3.0, 2.5, 1.5])
        stds = np.full(n, 0.4)
        result = max_of_gaussians(means, stds, corr)
        assert result.mean == pytest.approx(3.0)
        assert result.std == pytest.approx(0.4)

    def test_mean_respects_jensen_lower_bound(self):
        rng = np.random.default_rng(4)
        means = rng.uniform(1.0, 2.0, size=7)
        stds = rng.uniform(0.1, 0.4, size=7)
        result = max_of_gaussians(means, stds)
        assert result.mean >= means.max() - 1e-12

    def test_more_variables_larger_mean(self):
        base = max_of_gaussians(np.zeros(3), np.ones(3))
        more = max_of_gaussians(np.zeros(6), np.ones(6))
        assert more.mean > base.mean

    def test_orderings_give_similar_results(self):
        rng = np.random.default_rng(5)
        means = rng.uniform(0.9, 1.1, size=6)
        stds = rng.uniform(0.05, 0.15, size=6)
        increasing = max_of_gaussians(means, stds, ordering="increasing")
        decreasing = max_of_gaussians(means, stds, ordering="decreasing")
        given = max_of_gaussians(means, stds, ordering="given")
        assert increasing.mean == pytest.approx(decreasing.mean, rel=0.02)
        assert increasing.mean == pytest.approx(given.mean, rel=0.02)

    def test_all_orderings_stay_close_to_truth(self):
        """All orderings approximate the true moments; the ordering ablation
        benchmark quantifies which one is best for which statistics."""
        rng = np.random.default_rng(6)
        means = np.array([0.0, 0.5, 1.0, 1.5, 2.0])
        stds = np.array([1.5, 1.2, 1.0, 0.8, 0.5])
        samples = (
            rng.standard_normal((500000, 5)) * stds[None, :] + means[None, :]
        ).max(axis=1)
        for ordering in ("increasing", "decreasing", "given"):
            result = max_of_gaussians(means, stds, ordering=ordering)
            assert result.mean == pytest.approx(samples.mean(), rel=0.02)
            assert result.std == pytest.approx(samples.std(), rel=0.10)

    def test_validation(self):
        with pytest.raises(ValueError):
            max_of_gaussians(np.array([]), np.array([]))
        with pytest.raises(ValueError):
            max_of_gaussians(np.zeros(2), np.ones(3))
        with pytest.raises(ValueError):
            max_of_gaussians(np.zeros(2), np.ones(2), np.ones((3, 3)))
        with pytest.raises(ValueError):
            max_of_gaussians(np.zeros(2), np.ones(2), np.array([[1.0, 2.0], [2.0, 1.0]]))
        with pytest.raises(ValueError):
            max_of_gaussians(np.zeros(2), np.ones(2), ordering="random")

    def test_asymmetric_correlation_matrix_rejected(self):
        corr = np.array([[1.0, 0.2], [0.5, 1.0]])
        with pytest.raises(ValueError):
            max_of_gaussians(np.zeros(2), np.ones(2), corr)
